//! Reference optimizers that IAMA is evaluated against (Section 6.1).
//!
//! * [`one_shot`] — the non-iterative approximation scheme of prior work
//!   (Trummer & Koch, SIGMOD 2014): a single dynamic-programming pass that
//!   prunes with the *target* precision directly and keeps result sets
//!   minimal. Produces the finest frontier immediately, but nothing before.
//! * [`memoryless_series`] — the iterative/anytime baseline: the same DP
//!   run from scratch once per resolution level, producing the same
//!   sequence of result plan sets as IAMA but redoing all work each time.
//! * [`exhaustive_pareto`] — the full-Pareto DP in the style of Ganguly et
//!   al. (`alpha = 1`): exact Pareto sets, exponential blow-up in practice.
//!   Used as ground truth by the correctness tests and quality benchmarks.
//! * [`single_objective_dp`] — classical Selinger-style DP over a scalar
//!   weighted cost; the amortized-complexity comparison point of
//!   Theorem 5 ("averaged time complexity over many iterations equals the
//!   time complexity of single-objective query optimization with bushy
//!   plans").

#![warn(missing_docs)]

pub mod dp;
pub mod scalar;

pub use dp::{approx_dp, exhaustive_pareto, memoryless_series, one_shot, DpOutcome};
pub use scalar::{single_objective_dp, ScalarOutcome};
