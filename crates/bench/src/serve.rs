//! Serving-front experiment: submit→first-frontier latency and shard
//! warm-hit rate under a skewed fingerprint workload (`repro serve`).
//!
//! The interactive SLO of an anytime optimizer service is not total
//! optimization time but **time to first visualized frontier** — how long
//! after `submit` a user sees tradeoffs to drag bounds over. The
//! experiment measures it twice over the same skewed workload (a few hot
//! templates dominating, an ad-hoc tail): once against a cold engine, and
//! again after every session retired — when the hot fingerprints resume
//! from parked frontiers on their home shards and the first invocation
//! does zero plan generation.

use moqo_cost::ResolutionSchedule;
use moqo_costmodel::StandardCostModel;
use moqo_engine::EngineConfig;
use moqo_query::{testkit, QuerySpec};
use moqo_serve::{GlobalSessionId, ShardConfig, ShardedEngine};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Latency and warm-hit figures for one pass over the workload.
#[derive(Clone, Debug)]
pub struct ServingPhaseReport {
    /// `"cold"` or `"warm"`.
    pub label: &'static str,
    /// Sessions submitted.
    pub sessions: usize,
    /// Distinct fingerprints in the workload.
    pub distinct: usize,
    /// Mean submit→first-frontier latency (microseconds).
    pub mean_us: f64,
    /// Median latency (microseconds).
    pub p50_us: f64,
    /// Worst latency (microseconds).
    pub max_us: f64,
    /// Submissions routed to a shard already parking their frontier.
    pub warm_routed: u64,
    /// Sessions whose first invocation generated zero plans.
    pub zero_plan_starts: usize,
}

/// A skewed fingerprint workload: template `k` repeats ~`16/(k+1)` times.
pub fn serving_workload(fast: bool) -> Vec<Arc<QuerySpec>> {
    let mut templates: Vec<Arc<QuerySpec>> = Vec::new();
    let top = if fast { 4 } else { 6 };
    for n in 2..=top {
        templates.push(Arc::new(testkit::chain_query(n, 60_000)));
        templates.push(Arc::new(testkit::star_query(n, 90_000)));
    }
    for seed in [3, 7, 11, 13] {
        templates.push(Arc::new(testkit::random_query(4, seed)));
    }
    let (total, hot) = if fast { (24, 8) } else { (64, 16) };
    let mut specs = Vec::new();
    let mut k = 0usize;
    while specs.len() < total {
        for _ in 0..(hot / (k + 1)).max(1) {
            if specs.len() < total {
                specs.push(templates[k % templates.len()].clone());
            }
        }
        k += 1;
    }
    specs
}

/// Submits the workload and records submit→first-frontier latency per
/// session via the per-session watch channels (no engine-global waits on
/// the measurement path). Each channel delivers delta-streamed
/// [`moqo_serve::SessionEvent`]s; a client-side
/// [`moqo_serve::SessionView`] reassembles them exactly as a remote UI
/// would.
fn run_phase(
    engine: &ShardedEngine,
    specs: &[Arc<QuerySpec>],
    label: &'static str,
) -> ServingPhaseReport {
    let warm_before: u64 = engine.shard_stats().iter().map(|s| s.warm_routed).sum();
    let mut watchers: Vec<(
        GlobalSessionId,
        Instant,
        std::sync::mpsc::Receiver<moqo_serve::SessionEvent>,
        moqo_serve::SessionView,
    )> = Vec::new();
    for spec in specs {
        let t0 = Instant::now();
        let (gid, _) = engine.submit(spec.clone());
        let rx = engine.watch(gid).expect("fresh session");
        watchers.push((gid, t0, rx, moqo_serve::SessionView::default()));
    }
    // Round-robin over the channels until every session showed a frontier.
    let mut latency = vec![None::<Duration>; watchers.len()];
    let mut zero_plan_starts = 0usize;
    let deadline = Instant::now() + Duration::from_secs(600);
    while latency.iter().any(Option::is_none) {
        assert!(Instant::now() < deadline, "serving experiment stalled");
        let mut progressed = false;
        for (i, (_, t0, rx, view)) in watchers.iter_mut().enumerate() {
            if latency[i].is_some() {
                continue;
            }
            while let Ok(event) = rx.try_recv() {
                progressed = true;
                view.fold(&event).expect("ordered watch stream");
                if !view.frontier.is_empty() && latency[i].is_none() {
                    latency[i] = Some(t0.elapsed());
                    if view
                        .first_report
                        .as_ref()
                        .is_some_and(|r| r.plans_generated == 0)
                    {
                        zero_plan_starts += 1;
                    }
                    break;
                }
            }
        }
        if !progressed {
            std::thread::yield_now();
        }
    }
    assert!(engine.wait_idle(Duration::from_secs(600)));
    for (gid, _, _, _) in &watchers {
        engine.finish(*gid);
    }
    let mut us: Vec<f64> = latency
        .into_iter()
        .map(|d| d.expect("measured").as_secs_f64() * 1e6)
        .collect();
    us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let distinct = {
        let mut fps: Vec<u64> = specs
            .iter()
            .map(|s| engine.fingerprint(s).as_u64())
            .collect();
        fps.sort_unstable();
        fps.dedup();
        fps.len()
    };
    let warm_after: u64 = engine.shard_stats().iter().map(|s| s.warm_routed).sum();
    ServingPhaseReport {
        label,
        sessions: specs.len(),
        distinct,
        mean_us: us.iter().sum::<f64>() / us.len() as f64,
        p50_us: us[us.len() / 2],
        max_us: us.last().copied().unwrap_or(0.0),
        warm_routed: warm_after - warm_before,
        zero_plan_starts,
    }
}

/// Runs the cold pass and the warm pass over one sharded engine.
pub fn serving_experiment(fast: bool) -> Vec<ServingPhaseReport> {
    let engine = ShardedEngine::new(
        Arc::new(StandardCostModel::paper_metrics()),
        ResolutionSchedule::linear(if fast { 2 } else { 4 }, 1.02, 0.4),
        ShardConfig {
            shards: 4,
            engine: EngineConfig {
                workers: 2,
                ..EngineConfig::default()
            },
            rebalance_headroom: 8,
        },
    );
    let specs = serving_workload(fast);
    // Cold pass: every fingerprint is new; frontiers park on finish.
    let cold = run_phase(&engine, &specs, "cold");
    // Warm pass: repeats resume parked frontiers on their warm shards.
    let warm = run_phase(&engine, &specs, "warm");
    vec![cold, warm]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_pass_serves_from_parked_frontiers() {
        let reports = serving_experiment(true);
        assert_eq!(reports.len(), 2);
        let (cold, warm) = (&reports[0], &reports[1]);
        assert_eq!(cold.sessions, warm.sessions);
        assert_eq!(cold.warm_routed, 0, "first sight cannot be warm");
        assert_eq!(cold.zero_plan_starts, 0);
        // The cold pass parked each fingerprint at least once (rebalanced
        // duplicates may have parked copies on several shards). The warm
        // pass resumes every parked copy — `take` transfers ownership, so
        // concurrent duplicates beyond the parked copies run cold — and
        // exactly the warm-routed sessions start with zero plans.
        assert!(
            warm.warm_routed >= warm.distinct as u64,
            "every distinct fingerprint must resume warm at least once: {warm:?}"
        );
        assert_eq!(warm.zero_plan_starts as u64, warm.warm_routed);
        assert!(cold.mean_us > 0.0 && warm.mean_us > 0.0);
    }
}
