//! Similar-query warm-start experiment (`repro similarity`).
//!
//! Production traffic is rarely byte-identical, so the exact-fingerprint
//! frontier cache alone under-serves it. This experiment measures the two
//! near-miss tiers built on the paper's per-subset incremental state:
//!
//! * **transplant** — recipients share join subgraphs (query prefixes)
//!   with previously finished *donor* queries; their subsets seed from
//!   harvested sub-frontier blobs;
//! * **rebase** — the same queries resubmitted after a statistics
//!   refresh (cardinalities scaled, shape untouched); the parked donor's
//!   plans re-enter as level-0 candidates under the new stats (the
//!   Lemma 7 path: re-pruning known plans is cheaper than regenerating
//!   them).
//!
//! Four phases over identical recipient shapes — `cold`, `exact-warm`,
//! `transplant`, `rebase` — each recording submit→first-frontier latency
//! and the total plans generated per session (summed over the per-slice
//! invocation reports of its watch stream, so each phase counts only its
//! own work even when optimizer state carries across phases).

use moqo_cost::ResolutionSchedule;
use moqo_costmodel::StandardCostModel;
use moqo_engine::EngineConfig;
use moqo_query::{testkit, QuerySpec};
use moqo_serve::{GlobalSessionId, ShardConfig, ShardedEngine};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Latency and plan-work figures for one pass of the experiment.
#[derive(Clone, Debug)]
pub struct SimilarityPhaseReport {
    /// `"cold"`, `"exact-warm"`, `"transplant"`, or `"rebase"`.
    pub label: &'static str,
    /// Sessions submitted (one per recipient query).
    pub sessions: usize,
    /// Mean submit→first-frontier latency (microseconds).
    pub mean_us: f64,
    /// Median latency (microseconds).
    pub p50_us: f64,
    /// Worst latency (microseconds).
    pub max_us: f64,
    /// Plans generated across all sessions *during this phase*.
    pub plans_generated: u64,
    /// Sessions whose first invocation generated zero plans.
    pub zero_plan_starts: usize,
    /// Sessions that started from a stats-drift rebase.
    pub rebased_sessions: usize,
    /// Sessions seeded from at least one transplanted sub-frontier.
    pub transplanted_sessions: usize,
    /// Table subsets seeded across all sessions of the phase.
    pub seeded_subsets: u64,
}

fn engine(fast: bool) -> ShardedEngine {
    ShardedEngine::new(
        Arc::new(StandardCostModel::paper_metrics()),
        ResolutionSchedule::linear(if fast { 2 } else { 4 }, 1.02, 0.4),
        ShardConfig {
            shards: 4,
            engine: EngineConfig {
                workers: 2,
                ..EngineConfig::default()
            },
            rebalance_headroom: 8,
        },
    )
}

/// Donor queries: the smaller members of each overlapping family.
pub fn similarity_donors(fast: bool) -> Vec<Arc<QuerySpec>> {
    let ns: &[usize] = if fast { &[4, 5] } else { &[4, 5, 6] };
    let mut specs = Vec::new();
    for &n in ns {
        specs.push(Arc::new(testkit::chain_query(n, 60_000)));
        specs.push(Arc::new(testkit::star_query(n, 90_000)));
    }
    specs
}

/// Recipient queries: larger members of the same families — every donor
/// is an induced-subgraph prefix of its family's recipients, so donor
/// sub-frontiers transplant, while no recipient fingerprint (or shape)
/// equals a donor's.
pub fn similarity_recipients(fast: bool) -> Vec<Arc<QuerySpec>> {
    let ns: &[usize] = if fast { &[6, 7] } else { &[7, 8, 9] };
    let mut specs = Vec::new();
    for &n in ns {
        specs.push(Arc::new(testkit::chain_query(n, 60_000)));
        specs.push(Arc::new(testkit::star_query(n, 90_000)));
    }
    specs
}

/// Submits `specs`, recording submit→first-frontier latency per session
/// and folding each session's full watch stream to sum the plans its
/// invocations generated within this phase. Sessions are finished at the
/// end of the phase (parking their frontiers and harvesting their
/// sub-frontiers for the next phase, where applicable).
fn run_phase(
    eng: &ShardedEngine,
    specs: &[Arc<QuerySpec>],
    label: &'static str,
) -> SimilarityPhaseReport {
    let mut watchers: Vec<(
        GlobalSessionId,
        Instant,
        std::sync::mpsc::Receiver<moqo_serve::SessionEvent>,
        moqo_serve::SessionView,
    )> = Vec::new();
    for spec in specs {
        let t0 = Instant::now();
        let (gid, _) = eng.submit(spec.clone());
        let rx = eng.watch(gid).expect("fresh session");
        watchers.push((gid, t0, rx, moqo_serve::SessionView::default()));
    }
    let mut latency = vec![None::<Duration>; watchers.len()];
    let mut plans = vec![0u64; watchers.len()];
    let mut zero_plan_starts = 0usize;
    let deadline = Instant::now() + Duration::from_secs(600);
    while latency.iter().any(Option::is_none) {
        assert!(Instant::now() < deadline, "similarity experiment stalled");
        let mut progressed = false;
        for (i, (_, t0, rx, view)) in watchers.iter_mut().enumerate() {
            if latency[i].is_some() {
                continue;
            }
            while let Ok(event) = rx.try_recv() {
                progressed = true;
                if let Some(r) = &event.report {
                    plans[i] += r.plans_generated;
                }
                view.fold(&event).expect("ordered watch stream");
                if !view.frontier.is_empty() && latency[i].is_none() {
                    latency[i] = Some(t0.elapsed());
                    if view
                        .first_report
                        .as_ref()
                        .is_some_and(|r| r.plans_generated == 0)
                    {
                        zero_plan_starts += 1;
                    }
                    break;
                }
            }
        }
        if !progressed {
            std::thread::yield_now();
        }
    }
    assert!(eng.wait_idle(Duration::from_secs(600)));
    // Drain the remainder of each stream: the ladder kept refining after
    // the first frontier, and that work belongs to this phase too.
    let mut rebased_sessions = 0usize;
    let mut transplanted_sessions = 0usize;
    let mut seeded_subsets = 0u64;
    for (i, (gid, _, rx, _)) in watchers.iter().enumerate() {
        while let Ok(event) = rx.try_recv() {
            if let Some(r) = &event.report {
                plans[i] += r.plans_generated;
            }
        }
        let s = eng.status(*gid).expect("session still tracked");
        if s.rebased {
            rebased_sessions += 1;
        }
        if s.seeded_subsets > 0 {
            transplanted_sessions += 1;
            seeded_subsets += u64::from(s.seeded_subsets);
        }
        eng.finish(*gid);
    }
    let mut us: Vec<f64> = latency
        .into_iter()
        .map(|d| d.expect("measured").as_secs_f64() * 1e6)
        .collect();
    us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    SimilarityPhaseReport {
        label,
        sessions: specs.len(),
        mean_us: us.iter().sum::<f64>() / us.len() as f64,
        p50_us: us[us.len() / 2],
        max_us: us.last().copied().unwrap_or(0.0),
        plans_generated: plans.iter().sum(),
        zero_plan_starts,
        rebased_sessions,
        transplanted_sessions,
        seeded_subsets,
    }
}

/// Runs the four phases and returns their reports in order `cold`,
/// `exact-warm`, `transplant`, `rebase`.
pub fn similarity_experiment(fast: bool) -> Vec<SimilarityPhaseReport> {
    let donors = similarity_donors(fast);
    let recipients = similarity_recipients(fast);

    // Phase 1+2: one engine; the recipients run cold, then resubmit as
    // exact repeats against their own parked frontiers.
    let e = engine(fast);
    let cold = run_phase(&e, &recipients, "cold");
    let exact = run_phase(&e, &recipients, "exact-warm");

    // Phase 3: a fresh engine that has only ever seen the *donors* — the
    // recipients' fingerprints all miss, but their shared subsets seed
    // from the harvested donor sub-frontiers.
    let e = engine(fast);
    run_phase(&e, &donors, "donor-prime");
    let transplant = run_phase(&e, &recipients, "transplant");

    // Phase 4: a fresh engine primed with the recipients under *stale*
    // statistics, then replayed under a 5% cardinality drift — exact
    // fingerprints miss, the cardinality-blind rebase tier hits.
    let e = engine(fast);
    run_phase(&e, &recipients, "stale-prime");
    let drifted: Vec<Arc<QuerySpec>> = recipients
        .iter()
        .map(|s| Arc::new(testkit::drift_cardinalities(s, 1.05)))
        .collect();
    let rebase = run_phase(&e, &drifted, "rebase");

    vec![cold, exact, transplant, rebase]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transplant_and_rebase_beat_cold() {
        let reports = similarity_experiment(true);
        assert_eq!(reports.len(), 4);
        let (cold, exact, transplant, rebase) =
            (&reports[0], &reports[1], &reports[2], &reports[3]);
        assert_eq!(cold.rebased_sessions, 0);
        assert_eq!(cold.transplanted_sessions, 0);
        assert!(cold.plans_generated > 0);
        // Exact repeats do no plan work at all.
        assert_eq!(exact.plans_generated, 0);
        assert_eq!(exact.zero_plan_starts, exact.sessions);
        // Every recipient seeds from donor sub-frontiers and generates
        // measurably fewer plans than its cold twin.
        assert_eq!(transplant.transplanted_sessions, transplant.sessions);
        assert!(transplant.seeded_subsets as usize >= transplant.sessions);
        assert!(
            transplant.plans_generated < cold.plans_generated,
            "transplant {} !< cold {}",
            transplant.plans_generated,
            cold.plans_generated
        );
        // Every drifted replay rebases and also beats cold regeneration.
        assert_eq!(rebase.rebased_sessions, rebase.sessions);
        assert!(
            rebase.plans_generated < cold.plans_generated,
            "rebase {} !< cold {}",
            rebase.plans_generated,
            cold.plans_generated
        );
    }
}
