//! A k-d tree plan index.
//!
//! The paper points to Bentley & Friedman's survey of range-search
//! structures and notes that "different data structures offer different
//! tradeoffs between insertion and retrieval time". Besides the cell grid
//! and the flat index, this module provides the classic k-d tree: each
//! node splits on one cost metric (cycling through the metrics by depth),
//! and a `[0, b]` range query descends into the left child always and
//! into the right child only when the node's split value is within the
//! bound — pruning whole subtrees the way the cell grid prunes cells.
//!
//! Insertion appends at a leaf (`O(depth)`); no rebalancing is performed,
//! which matches the optimizer's workload (bounded number of insertions,
//! unbounded number of retrievals, no deletions except drains).

use crate::entry::Entry;
use crate::PlanIndex;
use moqo_cost::Bounds;

struct Node<T: Copy> {
    entry: Entry<T>,
    /// Metric this node splits on.
    axis: u8,
    /// Lazily deleted by `drain` (tombstone).
    dead: bool,
    left: Option<Box<Node<T>>>,
    right: Option<Box<Node<T>>>,
}

impl<T: Copy> Node<T> {
    fn new(entry: Entry<T>, axis: u8) -> Self {
        Self {
            entry,
            axis,
            dead: false,
            left: None,
            right: None,
        }
    }
}

/// A per-resolution-level forest of k-d trees implementing [`PlanIndex`].
pub struct KdTree<T: Copy> {
    dim: usize,
    levels: Vec<Option<Box<Node<T>>>>,
    len: usize,
    /// Tombstoned entries awaiting compaction.
    dead: usize,
}

impl<T: Copy> KdTree<T> {
    /// Creates an empty tree index for `dim` metrics.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0 && dim <= moqo_cost::MAX_DIM);
        Self {
            dim,
            levels: Vec::new(),
            len: 0,
            dead: 0,
        }
    }

    fn insert_node(&mut self, level: usize, entry: Entry<T>) {
        if self.levels.len() <= level {
            self.levels.resize_with(level + 1, || None);
        }
        let dim = self.dim;
        let mut slot = &mut self.levels[level];
        let mut depth = 0usize;
        while let Some(node) = slot {
            let axis = node.axis as usize;
            slot = if entry.cost[axis] < node.entry.cost[axis] {
                &mut node.left
            } else {
                &mut node.right
            };
            depth += 1;
        }
        *slot = Some(Box::new(Node::new(entry, (depth % dim) as u8)));
    }

    fn scan_node<'a>(
        node: &'a Node<T>,
        bounds: &Bounds,
        visitor: &mut dyn FnMut(&Entry<T>) -> bool,
    ) -> bool {
        if !node.dead && bounds.respects(&node.entry.cost) && visitor(&node.entry) {
            return true;
        }
        if let Some(left) = &node.left {
            if Self::scan_node(left, bounds, visitor) {
                return true;
            }
        }
        // The right subtree only holds entries with cost[axis] >= this
        // node's split value; skip it when the split already exceeds the
        // bound on that axis.
        let axis = node.axis as usize;
        if node.entry.cost[axis] <= bounds.limits()[axis] {
            if let Some(right) = &node.right {
                if Self::scan_node(right, bounds, visitor) {
                    return true;
                }
            }
        }
        false
    }

    fn drain_node(node: &mut Node<T>, bounds: &Bounds, out: &mut Vec<Entry<T>>) {
        if !node.dead && bounds.respects(&node.entry.cost) {
            node.dead = true;
            out.push(node.entry);
        }
        if let Some(left) = &mut node.left {
            Self::drain_node(left, bounds, out);
        }
        let axis = node.axis as usize;
        if node.entry.cost[axis] <= bounds.limits()[axis] {
            if let Some(right) = &mut node.right {
                Self::drain_node(right, bounds, out);
            }
        }
    }

    /// Rebuilds a level's tree without tombstones (compaction).
    fn compact(&mut self) {
        let mut survivors: Vec<(usize, Entry<T>)> = Vec::with_capacity(self.len);
        for (level, root) in self.levels.iter().enumerate() {
            let mut stack: Vec<&Node<T>> = root.iter().map(|b| b.as_ref()).collect();
            while let Some(n) = stack.pop() {
                if !n.dead {
                    survivors.push((level, n.entry));
                }
                if let Some(l) = &n.left {
                    stack.push(l);
                }
                if let Some(r) = &n.right {
                    stack.push(r);
                }
            }
        }
        self.levels.clear();
        self.dead = 0;
        self.len = 0;
        for (level, entry) in survivors {
            self.insert_node(level, entry);
            self.len += 1;
        }
    }
}

impl<T: Copy> PlanIndex<T> for KdTree<T> {
    fn insert(&mut self, entry: Entry<T>) {
        debug_assert_eq!(entry.cost.dim(), self.dim);
        self.insert_node(entry.level as usize, entry);
        self.len += 1;
    }

    fn scan(
        &self,
        bounds: &Bounds,
        max_level: u8,
        visitor: &mut dyn FnMut(&Entry<T>) -> bool,
    ) -> bool {
        for root in self.levels.iter().take(max_level as usize + 1).flatten() {
            if Self::scan_node(root, bounds, visitor) {
                return true;
            }
        }
        false
    }

    fn drain(&mut self, bounds: &Bounds, max_level: u8) -> Vec<Entry<T>> {
        let mut out = Vec::new();
        for root in self
            .levels
            .iter_mut()
            .take(max_level as usize + 1)
            .flatten()
        {
            Self::drain_node(root, bounds, &mut out);
        }
        self.len -= out.len();
        self.dead += out.len();
        // Compact once tombstones dominate, to keep scans proportional to
        // live entries.
        if self.dead > 64 && self.dead > self.len {
            self.compact();
        }
        out
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_cost::CostVector;

    fn entry(item: u32, cost: &[f64], level: u8) -> Entry<u32> {
        Entry::new(item, CostVector::new(cost), level, 0)
    }

    #[test]
    fn insert_scan_and_level_filter() {
        let mut t: KdTree<u32> = KdTree::new(2);
        t.insert(entry(1, &[1.0, 9.0], 0));
        t.insert(entry(2, &[9.0, 1.0], 0));
        t.insert(entry(3, &[5.0, 5.0], 1));
        assert_eq!(PlanIndex::len(&t), 3);
        assert_eq!(t.collect(&Bounds::unbounded(2), 1).len(), 3);
        assert_eq!(t.collect(&Bounds::unbounded(2), 0).len(), 2);
        let low: Vec<u32> = t
            .collect(&Bounds::from_slice(&[6.0, 6.0]), 1)
            .iter()
            .map(|e| e.item)
            .collect();
        assert_eq!(low, vec![3]);
    }

    #[test]
    fn drain_tombstones_and_compaction() {
        let mut t: KdTree<u32> = KdTree::new(1);
        for i in 0..200u32 {
            t.insert(entry(i, &[i as f64], 0));
        }
        let drained = t.drain(&Bounds::from_slice(&[99.0]), 0);
        assert_eq!(drained.len(), 100);
        assert_eq!(PlanIndex::len(&t), 100);
        // Drained entries no longer appear.
        assert!(t.collect(&Bounds::from_slice(&[99.0]), 0).is_empty());
        // Remaining entries all there (compaction may or may not have
        // happened; both must be transparent).
        assert_eq!(t.collect(&Bounds::unbounded(1), 0).len(), 100);
        // Re-inserting after a drain works.
        t.insert(entry(1000, &[5.0], 0));
        assert_eq!(t.collect(&Bounds::from_slice(&[99.0]), 0).len(), 1);
    }

    #[test]
    fn scan_early_exit() {
        let mut t: KdTree<u32> = KdTree::new(2);
        for i in 0..50u32 {
            t.insert(entry(i, &[i as f64, (50 - i) as f64], 0));
        }
        let mut seen = 0;
        assert!(t.scan(&Bounds::unbounded(2), 0, &mut |_| {
            seen += 1;
            true
        }));
        assert_eq!(seen, 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::linear::LinearIndex;
    use moqo_cost::CostVector;
    use proptest::prelude::*;

    proptest! {
        /// The k-d tree agrees with the linear index on arbitrary
        /// insert/query/drain workloads.
        #[test]
        fn kdtree_equivalent_to_linear(
            entries in proptest::collection::vec(
                ((0.0f64..1e4), (0.0f64..1e4), 0u8..4), 0..60),
            queries in proptest::collection::vec(
                ((0.0f64..1.2e4), (0.0f64..1.2e4), 0u8..4, any::<bool>()), 1..6),
        ) {
            let mut tree: KdTree<u32> = KdTree::new(2);
            let mut lin: LinearIndex<u32> = LinearIndex::new();
            for (i, (a, b, lvl)) in entries.iter().enumerate() {
                let e = Entry::new(i as u32, CostVector::new(&[*a, *b]), *lvl, 0);
                tree.insert(e);
                lin.insert(e);
            }
            let norm = |mut v: Vec<Entry<u32>>| {
                v.sort_by_key(|e| e.item);
                v.iter().map(|e| e.item).collect::<Vec<_>>()
            };
            for (qa, qb, qr, do_drain) in queries {
                let bounds = Bounds::from_slice(&[qa, qb]);
                prop_assert_eq!(
                    norm(tree.collect(&bounds, qr)),
                    norm(lin.collect(&bounds, qr))
                );
                if do_drain {
                    prop_assert_eq!(
                        norm(tree.drain(&bounds, qr)),
                        norm(lin.drain(&bounds, qr))
                    );
                    prop_assert_eq!(PlanIndex::len(&tree), PlanIndex::len(&lin));
                }
            }
            let all = Bounds::unbounded(2);
            prop_assert_eq!(norm(tree.collect(&all, 4)), norm(lin.collect(&all, 4)));
        }
    }
}
