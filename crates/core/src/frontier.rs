//! Frontier snapshots — what the `Visualize` procedure of Algorithm 1
//! would render.

use moqo_cost::{pareto_filter, CostVector};
use moqo_plan::PlanId;

/// One visualized cost tradeoff: a completed query plan and its cost.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FrontierPoint {
    /// The plan realizing this tradeoff.
    pub plan: PlanId,
    /// Its cost vector.
    pub cost: CostVector,
}

/// The set of completed-plan cost tradeoffs shown to the user after an
/// optimizer invocation (`Res^Q[0..b, 0..r]`).
///
/// IAMA's result sets are not minimal — dominated result plans are kept so
/// sub-plan pointers stay valid (Section 4.2) — so a snapshot may contain
/// dominated points; [`FrontierSnapshot::pareto_points`] filters them for
/// display.
#[derive(Clone, Debug, Default)]
pub struct FrontierSnapshot {
    /// All result points for the full query under the current bounds and
    /// resolution.
    pub points: Vec<FrontierPoint>,
}

impl FrontierSnapshot {
    /// Creates a snapshot from raw points.
    pub fn new(points: Vec<FrontierPoint>) -> Self {
        Self { points }
    }

    /// Number of points (dominated ones included).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the snapshot holds no plans.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The cost vectors of all points.
    pub fn costs(&self) -> Vec<CostVector> {
        self.points.iter().map(|p| p.cost).collect()
    }

    /// The Pareto-optimal subset of the snapshot (what a 2-D/3-D plot
    /// would draw as the frontier).
    pub fn pareto_points(&self) -> Vec<FrontierPoint> {
        let costs = self.costs();
        pareto_filter(&costs)
            .into_iter()
            .map(|i| self.points[i])
            .collect()
    }

    /// The point minimizing metric `metric_idx`, if any.
    pub fn min_by_metric(&self, metric_idx: usize) -> Option<&FrontierPoint> {
        self.points
            .iter()
            .min_by(|a, b| a.cost[metric_idx].partial_cmp(&b.cost[metric_idx]).unwrap())
    }

    /// True if the two snapshots are identical point for point — same
    /// order, same plans, bitwise-equal costs. This is the equality the
    /// protocol's delta streams guarantee
    /// ([`FrontierDelta::between`](crate::FrontierDelta::between)
    /// reassembles exactly), and the one tests and examples should
    /// assert with.
    pub fn bits_eq(&self, other: &FrontierSnapshot) -> bool {
        self.points.len() == other.points.len()
            && self
                .points
                .iter()
                .zip(&other.points)
                .all(|(a, b)| a.bits_eq(b))
    }
}

impl FrontierPoint {
    /// True if `other` is the same plan with a bitwise-equal cost vector
    /// (no float tolerance: delta streams promise exactness).
    pub fn bits_eq(&self, other: &FrontierPoint) -> bool {
        self.plan == other.plan
            && self.cost.dim() == other.cost.dim()
            && self
                .cost
                .as_slice()
                .iter()
                .zip(other.cost.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(plan: u32, cost: &[f64]) -> FrontierPoint {
        FrontierPoint {
            plan: PlanId(plan),
            cost: CostVector::new(cost),
        }
    }

    #[test]
    fn pareto_points_filter_dominated_entries() {
        let s = FrontierSnapshot::new(vec![
            pt(0, &[1.0, 4.0]),
            pt(1, &[2.0, 5.0]), // dominated by 0
            pt(2, &[4.0, 1.0]),
        ]);
        assert_eq!(s.len(), 3);
        let pareto = s.pareto_points();
        assert_eq!(pareto.len(), 2);
        assert!(pareto.iter().any(|p| p.plan == PlanId(0)));
        assert!(pareto.iter().any(|p| p.plan == PlanId(2)));
    }

    #[test]
    fn min_by_metric_finds_extremes() {
        let s = FrontierSnapshot::new(vec![pt(0, &[1.0, 4.0]), pt(1, &[4.0, 1.0])]);
        assert_eq!(s.min_by_metric(0).unwrap().plan, PlanId(0));
        assert_eq!(s.min_by_metric(1).unwrap().plan, PlanId(1));
        assert!(FrontierSnapshot::default().min_by_metric(0).is_none());
    }
}
