//! Figure 3 regression bench: per-invocation time of IAMA vs the
//! memoryless and one-shot baselines at moderate target precision
//! (`alpha_T = 1.01`, `alpha_S = 0.05`), on representative TPC-H blocks
//! of each table count. The `repro fig3` binary prints the full table;
//! this bench tracks the same code paths in criterion for regressions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moqo_baselines::{memoryless_series, one_shot};
use moqo_bench::{bench_model, iama_series, ExperimentSetup};
use moqo_cost::Bounds;
use moqo_costmodel::CostModel;
use moqo_tpch::query_block;

/// One representative block per table count (kept small via sf = 0.1 so a
/// bench run stays in seconds).
const BLOCKS: &[(&str, usize)] = &[("q12", 2), ("q03", 3), ("q10", 4), ("q02", 5), ("q05", 6)];
const SF: f64 = 0.1;
const LEVELS: usize = 5;

fn bench_fig3(c: &mut Criterion) {
    let model = bench_model();
    let setup = ExperimentSetup::fig3();
    let schedule = setup.schedule(LEVELS);
    let bounds = Bounds::unbounded(model.dim());
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    for &(name, tables) in BLOCKS {
        let spec = query_block(name, SF).expect("block");
        group.bench_with_input(BenchmarkId::new("iama_series", tables), &spec, |b, spec| {
            b.iter(|| iama_series(spec, &model, &schedule))
        });
        group.bench_with_input(
            BenchmarkId::new("memoryless_series", tables),
            &spec,
            |b, spec| b.iter(|| memoryless_series(spec, &model, &schedule, &bounds)),
        );
        group.bench_with_input(BenchmarkId::new("one_shot", tables), &spec, |b, spec| {
            b.iter(|| one_shot(spec, &model, &schedule, &bounds))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
