//! Oracle tests for warm-state sharing across *similar* (not identical)
//! queries: sub-frontier transplanting and stats-drift rebasing must not
//! weaken the Theorem 2 guarantee. Seeded runs are checked against the
//! exhaustive-DP ground truth exactly like cold runs are — the seed only
//! changes *how fast* the frontier is reached, never *what* it covers.

use moqo::baselines::exhaustive_pareto;
use moqo::core::{IamaConfig, IamaOptimizer};
use moqo::cost::{coverage_factor, Bounds, ResolutionSchedule};
use moqo::costmodel::{CostModel, MetricSet, StandardCostModel, StandardCostModelConfig};
use moqo::query::{testkit, TableSet};
use std::sync::Arc;

/// A reduced operator space keeps exhaustive DP tractable.
fn small_model() -> StandardCostModel {
    StandardCostModel::new(
        MetricSet::paper(),
        StandardCostModelConfig {
            dops: vec![1, 4],
            sampling_rates_pm: vec![100, 500],
            eval_spin: 0,
            ..StandardCostModelConfig::default()
        },
    )
}

fn schedule() -> ResolutionSchedule {
    ResolutionSchedule::linear(3, 1.05, 0.5)
}

fn run_ladder(opt: &mut IamaOptimizer) -> Vec<moqo::cost::CostVector> {
    let b = Bounds::unbounded(opt.model_dim());
    for r in 0..=opt.schedule().r_max() {
        opt.optimize(&b, r);
    }
    opt.frontier(&b, opt.schedule().r_max()).costs()
}

#[test]
fn theorem2_holds_for_transplant_seeded_optimizers() {
    // Donor: a fully refined chain(4). Recipient: a cold chain(5) whose
    // {0..3} subsets are seeded from the donor's harvested sub-frontiers.
    // The seeded run must stay within the Theorem 2 factor of exhaustive
    // ground truth — the transplant is a head start, not a shortcut.
    let model = small_model();
    let sched = schedule();
    let donor_spec = Arc::new(testkit::chain_query(4, 150_000));
    let spec = Arc::new(testkit::chain_query(5, 150_000));

    let mut donor = IamaOptimizer::new(donor_spec, Arc::new(model.clone()), sched.clone());
    run_ladder(&mut donor);

    let mut seeded = IamaOptimizer::new(spec.clone(), Arc::new(model.clone()), sched.clone());
    let mut admitted = 0usize;
    for tables in TableSet::full(4).subsets() {
        if tables.len() < 2 {
            continue;
        }
        if let Some(blob) = donor.export_subset(tables) {
            admitted += seeded.import_subset(tables, &blob).unwrap();
        }
    }
    assert!(admitted > 0, "the shared prefix must transplant");

    let frontier = run_ladder(&mut seeded);
    let exact = exhaustive_pareto(&spec, &model, &Bounds::unbounded(model.dim()));
    let factor = coverage_factor(&frontier, &exact.pareto_costs());
    let guarantee = sched.guarantee(sched.r_max(), spec.n_tables());
    assert!(
        factor <= guarantee + 1e-9,
        "transplant broke Theorem 2: measured {factor} > guarantee {guarantee}"
    );
}

#[test]
fn theorem2_holds_for_rebased_optimizers() {
    // Donor refined under stale statistics; the recipient rebases it
    // under drifted cardinalities. The frontier served under the *new*
    // stats must cover the *new* exhaustive ground truth — the donor's
    // plans only ever enter through the door, re-costed by the live
    // model over the live catalog.
    let model = small_model();
    let sched = schedule();
    let stale = Arc::new(testkit::chain_query(4, 150_000));
    let fresh = Arc::new(testkit::drift_cardinalities(&stale, 1.25));

    let mut donor = IamaOptimizer::new(stale, Arc::new(model.clone()), sched.clone());
    run_ladder(&mut donor);

    let mut rebased = IamaOptimizer::new(fresh.clone(), Arc::new(model.clone()), sched.clone());
    let admitted = rebased.rebase_from(&donor).unwrap();
    assert!(admitted > 0, "the drifted twin must rebase");

    let frontier = run_ladder(&mut rebased);
    let exact = exhaustive_pareto(&fresh, &model, &Bounds::unbounded(model.dim()));
    let factor = coverage_factor(&frontier, &exact.pareto_costs());
    let guarantee = sched.guarantee(sched.r_max(), fresh.n_tables());
    assert!(
        factor <= guarantee + 1e-9,
        "rebase broke Theorem 2: measured {factor} > guarantee {guarantee}"
    );
}

#[test]
fn seed_cap_amortizes_the_first_slice_within_the_guarantee() {
    // The PR 7 follow-up: rebase/transplant used to admit every donor
    // seed synchronously, so a seeded session's first frontier paid for
    // the entire donor up front. Seeds now queue and drain at most
    // `IamaConfig::max_seeds_per_slice` per invocation: a tight cap
    // strictly shrinks the first slice's work (lower seeded
    // first-frontier latency), while the final frontier still meets
    // Theorem 2 — the seeds are an accelerant, never load-bearing.
    let model = small_model();
    let sched = schedule();
    let stale = Arc::new(testkit::chain_query(4, 150_000));
    let fresh = Arc::new(testkit::drift_cardinalities(&stale, 1.25));
    let mut donor = IamaOptimizer::new(stale, Arc::new(model.clone()), sched.clone());
    run_ladder(&mut donor);

    let seeded = |cap: usize| {
        let mut opt = IamaOptimizer::with_config(
            fresh.clone(),
            Arc::new(model.clone()),
            sched.clone(),
            IamaConfig {
                max_seeds_per_slice: cap,
                ..IamaConfig::default()
            },
        );
        let queued = opt.rebase_from(&donor).unwrap();
        assert!(queued > 0, "the drifted twin must rebase");
        assert_eq!(opt.pending_seeds(), queued, "seeds queue, not drain");
        let b = Bounds::unbounded(opt.model_dim());
        let first = opt.optimize(&b, 0);
        for r in 1..=sched.r_max() {
            opt.optimize(&b, r);
        }
        let frontier = opt.frontier(&b, sched.r_max()).costs();
        (first, frontier, queued)
    };

    let (first_uncapped, frontier_uncapped, queued) = seeded(usize::MAX);
    let cap = 8;
    assert!(queued > cap, "the cap must actually bind on this workload");
    let (first_capped, frontier_capped, _) = seeded(cap);

    // The capped run's first invocation admits at most `cap` seeds
    // instead of the whole donor: strictly less candidate work before
    // the first frontier is served.
    assert!(
        first_capped.candidate_insertions < first_uncapped.candidate_insertions,
        "capped first slice must insert fewer candidates: {} vs {}",
        first_capped.candidate_insertions,
        first_uncapped.candidate_insertions
    );
    assert!(first_capped.candidates_retrieved <= first_uncapped.candidates_retrieved);

    // Both ladders still cover the fresh exhaustive ground truth within
    // the Theorem 2 factor — an undrained seed queue never weakens the
    // guarantee, because cold enumeration alone already provides it.
    let exact = exhaustive_pareto(&fresh, &model, &Bounds::unbounded(model.dim()));
    let guarantee = sched.guarantee(sched.r_max(), fresh.n_tables());
    for (label, frontier) in [("uncapped", frontier_uncapped), ("capped", frontier_capped)] {
        let factor = coverage_factor(&frontier, &exact.pareto_costs());
        assert!(
            factor <= guarantee + 1e-9,
            "{label} rebase broke Theorem 2: measured {factor} > guarantee {guarantee}"
        );
    }
}

#[test]
fn seeding_from_an_unrelated_query_is_refused_not_absorbed() {
    // A hash collision in the sub-frontier cache would hand an optimizer
    // a blob from an unrelated subset. The structural backstop in the
    // blob (induced stats, edges, metric layout, model identity) must
    // refuse it — correctness never rests on the hash alone.
    let model = small_model();
    let sched = schedule();
    let donor_spec = Arc::new(testkit::star_query(4, 200_000));
    let mut donor = IamaOptimizer::new(donor_spec, Arc::new(model.clone()), sched.clone());
    run_ladder(&mut donor);

    let spec = Arc::new(testkit::chain_query(4, 150_000));
    let mut opt = IamaOptimizer::new(spec, Arc::new(model.clone()), sched.clone());
    let tables = TableSet::full(3);
    let blob = donor.export_subset(tables).expect("star subset exports");
    assert!(
        opt.import_subset(tables, &blob).is_err(),
        "a foreign sub-frontier must be refused"
    );
    assert_eq!(opt.stats().transplanted_candidates, 0);
}
