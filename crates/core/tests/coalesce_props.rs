//! Property tests for the event-stream coalescing laws the serving
//! front's backpressure valve relies on: for **any** event stream and
//! **any** split of it into chunks, coalescing each chunk into one frame
//! and folding the frames leaves a [`SessionView`] bits-equal to folding
//! every event one at a time — across appends, removals, refocus resets,
//! and terminal events. The valve may merge any suffix of a slow
//! reader's queue at any moment, so the law must hold for every split,
//! not just the ones the server happens to produce.

use moqo_core::{
    FrontierDelta, FrontierPoint, FrontierSnapshot, InvocationReport, ProtocolError, SessionEvent,
    SessionOutcome, SessionView,
};
use moqo_cost::{Bounds, CostVector};
use moqo_plan::PlanId;
use proptest::prelude::*;
use std::time::Duration;

const DIM: usize = 3;

fn cost_component() -> BoxedStrategy<f64> {
    prop_oneof![
        (0u64..1_000_000).prop_map(|v| v as f64 / 64.0),
        Just(0.0),
        Just(f64::INFINITY),
    ]
    .boxed()
}

fn cost_vector() -> BoxedStrategy<CostVector> {
    proptest::collection::vec(cost_component(), DIM)
        .prop_map(|v| CostVector::new(&v))
        .boxed()
}

fn frontier_point() -> BoxedStrategy<FrontierPoint> {
    (0u32..64, cost_vector())
        .prop_map(|(plan, cost)| FrontierPoint {
            plan: PlanId(plan),
            cost,
        })
        .boxed()
}

/// A deterministic report whose fields depend on `seed`, so report
/// bookkeeping mistakes (dropped / swapped reports) cannot cancel out.
fn mk_report(seed: u32) -> InvocationReport {
    InvocationReport {
        invocation: seed,
        resolution: seed as usize % 9,
        alpha: 1.0 + f64::from(seed % 50) / 100.0,
        duration: Duration::from_micros(u64::from(seed)),
        frontier_size: seed as usize % 17,
        plans_generated: u64::from(seed % 7),
        candidates_retrieved: u64::from(seed % 11),
        pairs_generated: u64::from(seed % 13),
        result_insertions: u64::from(seed % 5),
        candidate_insertions: u64::from(seed % 3),
        subsets_visited: u64::from(seed % 19),
        splits_visited: u64::from(seed % 23),
        splits_skipped: u64::from(seed % 29),
        used_delta: seed.is_multiple_of(2),
    }
}

/// One step of a generated stream: how the frontier evolves plus the
/// scalar payload of the event covering the step.
#[derive(Clone, Debug)]
struct Step {
    /// 0 = append, 1 = remove-and-append, 2 = refocus (reset delta).
    kind: u8,
    points: Vec<FrontierPoint>,
    remove_mask: u64,
    bounds_limit: u64,
    report: Option<u32>,
    first_report: Option<u32>,
    /// 0 = none, 1 = retired, 2 = selected.
    outcome: u8,
}

fn maybe_seed() -> BoxedStrategy<Option<u32>> {
    prop_oneof![Just(None), any::<u32>().prop_map(Some)].boxed()
}

fn step() -> BoxedStrategy<Step> {
    (
        (
            0u8..3,
            proptest::collection::vec(frontier_point(), 0..5),
            any::<u64>(),
        ),
        (1u64..1_000_000, maybe_seed(), maybe_seed(), 0u8..3),
    )
        .prop_map(
            |((kind, points, remove_mask), (bounds_limit, report, first_report, outcome))| Step {
                kind,
                points,
                remove_mask,
                bounds_limit,
                report,
                first_report,
                outcome,
            },
        )
        .boxed()
}

/// Realizes a step sequence as (snapshots, events): snapshot `i + 1` is
/// the frontier after event `i + 1`, events carry epochs `1..`, and the
/// stream primes with a reset delta exactly like a live session stream.
/// Appended points get fresh plan ids so append/remove steps stay
/// expressible as non-reset deltas; refocus steps keep the generated
/// (possibly colliding) ids and ship a full reset.
fn realize(steps: &[Step]) -> Vec<SessionEvent> {
    let mut snaps = vec![FrontierSnapshot::default()];
    let mut events = Vec::with_capacity(steps.len());
    let mut next_plan = 1_000u32;
    for (i, s) in steps.iter().enumerate() {
        let prev = snaps.last().unwrap().clone();
        let renumber = |points: &[FrontierPoint], next_plan: &mut u32| -> Vec<FrontierPoint> {
            points
                .iter()
                .map(|p| {
                    *next_plan += 1;
                    FrontierPoint {
                        plan: PlanId(*next_plan),
                        cost: p.cost,
                    }
                })
                .collect()
        };
        let new = match s.kind {
            0 => {
                let mut n = prev.clone();
                n.points.extend(renumber(&s.points, &mut next_plan));
                n
            }
            1 => {
                let mut n = FrontierSnapshot::new(
                    prev.points
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| s.remove_mask >> (j % 64) & 1 == 0)
                        .map(|(_, p)| *p)
                        .collect(),
                );
                n.points.extend(renumber(&s.points, &mut next_plan));
                n
            }
            _ => FrontierSnapshot::new(s.points.clone()),
        };
        let delta = if i == 0 || s.kind == 2 {
            FrontierDelta::full(&new)
        } else {
            FrontierDelta::between(&prev, &new)
        };
        events.push(SessionEvent {
            epoch: i as u64 + 1,
            delta,
            resolution: i % 9,
            bounds: Bounds::unbounded(DIM).with_limit(0, s.bounds_limit as f64),
            invocations: i as u64,
            report: s.report.map(mk_report),
            first_report: s.first_report.map(mk_report),
            outcome: match s.outcome {
                0 => None,
                1 => Some(SessionOutcome::Retired),
                _ => Some(SessionOutcome::Selected {
                    plan: PlanId(7),
                    by_preference: true,
                }),
            },
            coalesced: 0,
        });
        snaps.push(new);
    }
    events
}

/// Splits `events` into contiguous chunks: bit `i` of `mask` set means a
/// chunk boundary after event `i`.
fn chunks(events: &[SessionEvent], mask: u64) -> Vec<&[SessionEvent]> {
    let mut out = Vec::new();
    let mut start = 0;
    for i in 0..events.len() {
        if i + 1 == events.len() || mask >> (i % 64) & 1 == 1 {
            out.push(&events[start..=i]);
            start = i + 1;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The valve's contract: any chunking, coalesced per chunk, folds to
    /// the same view — frontier bits, epoch, scalars, and all three
    /// report/outcome slots — as the unchunked stream.
    #[test]
    fn any_chunking_coalesces_to_a_bits_equal_view(
        steps in proptest::collection::vec(step(), 1..12),
        chunk_mask in any::<u64>(),
    ) {
        let events = realize(&steps);

        let mut reference = SessionView::default();
        for e in &events {
            reference.fold(e).expect("contiguous stream folds");
        }

        let mut chunked = SessionView::default();
        for chunk in chunks(&events, chunk_mask) {
            let merged = chunk[1..]
                .iter()
                .fold(chunk[0].clone(), |acc, e| acc.coalesce(e));
            prop_assert_eq!(merged.coalesced, chunk.len() as u64 - 1);
            chunked.fold(&merged).expect("coalesced frame declares its epoch range");
        }

        prop_assert!(chunked.frontier.bits_eq(&reference.frontier));
        prop_assert_eq!(chunked.epoch, reference.epoch);
        prop_assert_eq!(chunked.resolution, reference.resolution);
        prop_assert_eq!(chunked.invocations, reference.invocations);
        prop_assert!(chunked.bounds == reference.bounds);
        prop_assert_eq!(chunked.first_report, reference.first_report);
        prop_assert_eq!(chunked.last_report, reference.last_report);
        prop_assert_eq!(chunked.outcome, reference.outcome);
    }

    /// The delta law under the valve: composing consecutive deltas with
    /// `then` applies identically to applying them in sequence, and
    /// `between` reassembles the target exactly.
    #[test]
    fn then_composition_equals_sequential_application(
        base in proptest::collection::vec(frontier_point(), 0..8),
        mid in proptest::collection::vec(frontier_point(), 0..8),
        last in proptest::collection::vec(frontier_point(), 0..8),
    ) {
        let base = FrontierSnapshot::new(base);
        let mid = FrontierSnapshot::new(mid);
        let last = FrontierSnapshot::new(last);
        let d1 = FrontierDelta::between(&base, &mid);
        let d2 = FrontierDelta::between(&mid, &last);

        let mut sequential = base.clone();
        d1.apply(&mut sequential);
        prop_assert!(sequential.bits_eq(&mid));
        d2.apply(&mut sequential);
        prop_assert!(sequential.bits_eq(&last));

        let mut composed = base.clone();
        d1.then(&d2).apply(&mut composed);
        prop_assert!(composed.bits_eq(&last));
    }

    /// The gap check behind the `coalesced` accounting: silently dropping
    /// a frame is always detected (the next non-reset frame is rejected
    /// with an epoch gap), while the same pair merged into one declared
    /// frame folds fine. A reset frame resynchronizes by design.
    #[test]
    fn undeclared_drops_are_rejected_declared_merges_fold(
        steps in proptest::collection::vec(step(), 3..12),
    ) {
        let events = realize(&steps);
        let mut view = SessionView::default();
        view.fold(&events[0]).expect("prime folds");
        for k in 0..events.len().saturating_sub(2) {
            let skipped = &events[k + 2];
            if !skipped.delta.reset {
                let err = view.clone().fold(skipped).expect_err("gap must be caught");
                prop_assert!(matches!(err, ProtocolError::EpochGap { .. }));
            }
            let merged = events[k + 1].clone().coalesce(skipped);
            view.clone()
                .fold(&merged)
                .expect("the merged frame covers the gap");
            view.fold(&events[k + 1]).expect("contiguous frame folds");
        }
    }
}
