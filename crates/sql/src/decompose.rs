//! Statement → query-block decomposition (Section 4.3 / Selinger).

use crate::ast::{Comparison, Condition, SelectStatement};
use moqo_catalog::{Catalog, ColumnRole};
use moqo_query::{JoinGraph, QuerySpec};
use std::fmt;
use std::sync::Arc;

/// Name-resolution / statistics error during decomposition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecomposeError {
    /// A `FROM` table does not exist in the catalog.
    UnknownTable(String),
    /// A predicate references an alias missing from the `FROM` list.
    UnknownAlias(String),
    /// A predicate references a column the catalog table does not have.
    UnknownColumn(String, String),
}

impl fmt::Display for DecomposeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecomposeError::UnknownTable(t) => write!(f, "unknown table {t:?}"),
            DecomposeError::UnknownAlias(a) => write!(f, "unknown alias {a:?}"),
            DecomposeError::UnknownColumn(t, c) => {
                write!(f, "table {t:?} has no column {c:?}")
            }
        }
    }
}

/// Default selectivity for range predicates (`<`, `<=`, `>`, `>=`) — the
/// classic System-R magic constant.
const RANGE_SELECTIVITY: f64 = 1.0 / 3.0;
/// Default selectivity for inequality predicates.
const NEQ_SELECTIVITY: f64 = 0.9;

/// Decomposes a statement into optimizable query blocks: the outer block
/// first, then each sub-query block in discovery order (recursively).
///
/// Per Section 4.3, predicates and projections are "applied as early as
/// possible in the join tree": local filters scale the effective base
/// cardinality of their table, and equi-join predicates become join-graph
/// edges with selectivity `1 / max(ndv(left), ndv(right))`. Sub-query
/// blocks are optimized independently, exactly how the Postgres planner
/// in the paper "may split up optimization of one TPC-H query into
/// multiple optimizations of sub-queries".
pub fn decompose(
    stmt: &SelectStatement,
    catalog: &Arc<Catalog>,
) -> Result<Vec<QuerySpec>, DecomposeError> {
    let mut blocks = Vec::new();
    decompose_into(stmt, catalog, "q", &mut blocks)?;
    Ok(blocks)
}

fn decompose_into(
    stmt: &SelectStatement,
    catalog: &Arc<Catalog>,
    name: &str,
    blocks: &mut Vec<QuerySpec>,
) -> Result<(), DecomposeError> {
    // Resolve FROM tables.
    let mut table_ids = Vec::with_capacity(stmt.from.len());
    for t in &stmt.from {
        let (id, _) = catalog
            .table_by_name(&t.table)
            .ok_or_else(|| DecomposeError::UnknownTable(t.table.clone()))?;
        table_ids.push(id);
    }
    let mut graph = JoinGraph::new(table_ids.clone());
    // Accumulated filter selectivity per position.
    let mut filters = vec![1.0f64; stmt.from.len()];
    let mut sub_count = 0usize;

    for cond in &stmt.conditions {
        match cond {
            Condition::Join(l, r) => {
                let lp = resolve_alias(stmt, &l.table)?;
                let rp = resolve_alias(stmt, &r.table)?;
                let l_ndv = column_ndv(catalog, &stmt.from[lp].table, &l.column)?;
                let r_ndv = column_ndv(catalog, &stmt.from[rp].table, &r.column)?;
                let sel = 1.0 / (l_ndv.max(r_ndv) as f64);
                graph.add_edge(lp, rp, sel.clamp(1e-12, 1.0));
            }
            Condition::Filter(col, op, lit) => {
                let pos = resolve_alias(stmt, &col.table)?;
                let ndv = column_ndv(catalog, &stmt.from[pos].table, &col.column)?;
                let sel = match op {
                    Comparison::Eq => 1.0 / ndv as f64,
                    Comparison::Neq => NEQ_SELECTIVITY,
                    _ => RANGE_SELECTIVITY,
                };
                let _ = lit; // literals only matter for real execution
                filters[pos] *= sel;
            }
            Condition::InSubquery(col, sub) => {
                // The correlation column behaves like a semi-join filter on
                // the outer block; the sub-query becomes its own block.
                let pos = resolve_alias(stmt, &col.table)?;
                filters[pos] *= 0.5; // semi-join selectivity heuristic
                sub_count += 1;
                decompose_into(sub, catalog, &format!("{name}s{sub_count}"), blocks)?;
                // Re-order: outer block should precede its sub-blocks; we
                // fix ordering below by inserting the outer block first.
            }
            Condition::Exists(sub) => {
                sub_count += 1;
                decompose_into(sub, catalog, &format!("{name}s{sub_count}"), blocks)?;
            }
        }
    }
    for (pos, sel) in filters.iter().enumerate() {
        if *sel < 1.0 {
            graph.set_filter(pos, sel.max(1e-9));
        }
    }
    // The outer block goes before the sub-blocks discovered above.
    let insert_at = blocks
        .iter()
        .position(|b| b.name.starts_with(name) && b.name.len() > name.len())
        .unwrap_or(blocks.len());
    blocks.insert(insert_at, QuerySpec::new(name, graph, Arc::clone(catalog)));
    Ok(())
}

fn resolve_alias(stmt: &SelectStatement, alias: &str) -> Result<usize, DecomposeError> {
    stmt.alias_position(alias)
        .ok_or_else(|| DecomposeError::UnknownAlias(alias.to_string()))
}

/// Number of distinct values of a column, from catalog statistics;
/// primary keys count the full cardinality.
fn column_ndv(
    catalog: &Arc<Catalog>,
    table_name: &str,
    column: &str,
) -> Result<u64, DecomposeError> {
    let (_, table) = catalog
        .table_by_name(table_name)
        .ok_or_else(|| DecomposeError::UnknownTable(table_name.to_string()))?;
    let (_, col) = table
        .column_by_name(column)
        .ok_or_else(|| DecomposeError::UnknownColumn(table_name.to_string(), column.to_string()))?;
    Ok(match col.role {
        ColumnRole::PrimaryKey => table.cardinality.max(1),
        _ => col.distinct_values,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_select;
    use moqo_tpch::tpch_catalog;

    #[test]
    fn q3_like_statement_decomposes_to_one_block() {
        let catalog = tpch_catalog(1.0);
        let stmt = parse_select(
            "SELECT c.c_custkey FROM customer c, orders o, lineitem l \
             WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey \
             AND c.c_mktsegment = 'BUILDING' AND o.o_orderdate < 19950315",
        )
        .unwrap();
        let blocks = decompose(&stmt, &catalog).unwrap();
        assert_eq!(blocks.len(), 1);
        let q = &blocks[0];
        assert_eq!(q.n_tables(), 3);
        assert_eq!(q.graph.edges.len(), 2);
        assert!(q.graph.is_connected());
        // Equality on c_mktsegment (5 ndv) -> 0.2 filter on customer.
        assert!((q.graph.filters[0] - 0.2).abs() < 1e-12);
        // Range on o_orderdate -> 1/3 on orders.
        assert!((q.graph.filters[1] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn join_selectivity_uses_key_statistics() {
        let catalog = tpch_catalog(1.0);
        let stmt = parse_select(
            "SELECT o.o_orderkey FROM orders o, lineitem l \
             WHERE o.o_orderkey = l.l_orderkey",
        )
        .unwrap();
        let blocks = decompose(&stmt, &catalog).unwrap();
        let q = &blocks[0];
        // o_orderkey is the orders primary key: sel = 1 / |orders|.
        assert!((q.graph.edges[0].selectivity - 1.0 / 1_500_000.0).abs() < 1e-18);
        // FK join cardinality ≈ |lineitem| (filtered slightly by nothing).
        let card = q.cardinality(q.all_tables());
        assert!(card > 5_000_000.0 && card < 7_000_000.0);
    }

    #[test]
    fn subqueries_become_their_own_blocks_outer_first() {
        let catalog = tpch_catalog(0.1);
        let stmt = parse_select(
            "SELECT o.o_orderkey FROM orders o WHERE o.o_orderkey IN \
             (SELECT l.l_orderkey FROM lineitem l, partsupp p \
              WHERE l.l_partkey = p.ps_partkey) \
             AND EXISTS (SELECT n.n_name FROM nation n, region r \
                         WHERE n.n_regionkey = r.r_regionkey)",
        )
        .unwrap();
        let blocks = decompose(&stmt, &catalog).unwrap();
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[0].name, "q");
        assert_eq!(blocks[0].n_tables(), 1);
        // Sub-blocks are two-table joins.
        assert_eq!(blocks[1].n_tables(), 2);
        assert_eq!(blocks[2].n_tables(), 2);
        // Semi-join filter applied on the outer table.
        assert!(blocks[0].graph.filters[0] < 1.0);
    }

    #[test]
    fn self_joins_resolve_via_aliases() {
        let catalog = tpch_catalog(1.0);
        let stmt = parse_select(
            "SELECT n1.n_name FROM nation n1, nation n2, region r \
             WHERE n1.n_regionkey = r.r_regionkey AND n2.n_regionkey = r.r_regionkey",
        )
        .unwrap();
        let blocks = decompose(&stmt, &catalog).unwrap();
        let q = &blocks[0];
        assert_eq!(q.n_tables(), 3);
        assert_eq!(q.graph.tables[0], q.graph.tables[1]); // nation twice
        assert!(q.graph.is_connected());
    }

    #[test]
    fn name_resolution_errors() {
        let catalog = tpch_catalog(1.0);
        let bad_table = parse_select("SELECT t.x FROM nosuch t").unwrap();
        assert_eq!(
            decompose(&bad_table, &catalog).unwrap_err(),
            DecomposeError::UnknownTable("nosuch".into())
        );
        let bad_alias =
            parse_select("SELECT o.o_orderkey FROM orders o WHERE x.o_orderkey = 1").unwrap();
        assert_eq!(
            decompose(&bad_alias, &catalog).unwrap_err(),
            DecomposeError::UnknownAlias("x".into())
        );
        let bad_col = parse_select("SELECT o.nope FROM orders o WHERE o.nope = 1").unwrap();
        assert!(matches!(
            decompose(&bad_col, &catalog).unwrap_err(),
            DecomposeError::UnknownColumn(..)
        ));
    }

    #[test]
    fn end_to_end_block_is_optimizable() {
        // The decomposed block feeds straight into the optimizer stack
        // (cardinalities positive, graph connected).
        let catalog = tpch_catalog(0.01);
        let blocks = crate::plan_blocks(
            "SELECT s.s_suppkey FROM supplier s, nation n \
             WHERE s.s_nationkey = n.n_nationkey AND n.n_name = 'FRANCE'",
            &catalog,
        )
        .unwrap();
        let q = &blocks[0];
        assert!(q.cardinality(q.all_tables()) >= 1.0);
        assert!(q.graph.is_connected());
    }
}
