//! Index entries.

use moqo_cost::CostVector;

/// One indexed plan: payload, cost vector, resolution tag, and the
/// optimizer-invocation number at which it was inserted.
///
/// The invocation tag supports the `Δ` filtering in the paper's `Fresh`
/// function: "auxiliary data structures that index plans based on the
/// invocation at which they were inserted" (Section 4.2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Entry<T: Copy> {
    /// The payload (a plan id in the optimizer).
    pub item: T,
    /// The plan's cost vector.
    pub cost: CostVector,
    /// Resolution level this entry is registered for.
    pub level: u8,
    /// Optimizer-invocation number at which the entry was inserted.
    pub invocation: u32,
}

impl<T: Copy> Entry<T> {
    /// Creates an entry.
    #[inline]
    pub fn new(item: T, cost: CostVector, level: u8, invocation: u32) -> Self {
        Self {
            item,
            cost,
            level,
            invocation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_is_plain_data() {
        let e = Entry::new(42u32, CostVector::new(&[1.0]), 3, 7);
        let copy = e;
        assert_eq!(copy.item, 42);
        assert_eq!(copy.level, 3);
        assert_eq!(copy.invocation, 7);
        assert_eq!(e, copy);
    }
}
