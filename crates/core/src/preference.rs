//! Preference functions over cost tradeoffs.
//!
//! Prior work (which the paper contrasts with) assumed "users specify a
//! preference function in the form of weights and cost bounds prior to
//! optimization". This module provides those preference functions so that
//! programmatic consumers — which, unlike humans, *can* state preferences
//! up front — can pick a plan from a frontier automatically: a weighted
//! sum, the Chebyshev (weighted max) scalarization, and lexicographic
//! orderings.

use crate::frontier::{FrontierPoint, FrontierSnapshot};
use moqo_cost::{Bounds, CostVector};

/// A scalarization of cost vectors; smaller is better.
#[derive(Clone, Debug)]
pub enum Preference {
    /// `sum_i w_i * c_i` — the classic linear preference. Only finds
    /// supported (convex-hull) Pareto points.
    WeightedSum(Vec<f64>),
    /// `max_i w_i * c_i` — the weighted Chebyshev scalarization; can
    /// select any Pareto-optimal point.
    Chebyshev(Vec<f64>),
    /// Minimize metrics in the given priority order, breaking ties by the
    /// next metric (with a relative tolerance for "tied").
    Lexicographic {
        /// Metric indices, most important first.
        order: Vec<usize>,
        /// Relative tie tolerance (e.g. `0.01` = within 1 % is a tie).
        tolerance: f64,
    },
}

impl Preference {
    /// Scores a cost vector (lower is better). Lexicographic preferences
    /// are handled by [`Preference::select`] instead and return the
    /// primary metric here.
    pub fn score(&self, cost: &CostVector) -> f64 {
        match self {
            Preference::WeightedSum(w) => {
                assert_eq!(w.len(), cost.dim(), "weight dimension mismatch");
                cost.as_slice().iter().zip(w).map(|(c, w)| c * w).sum()
            }
            Preference::Chebyshev(w) => {
                assert_eq!(w.len(), cost.dim(), "weight dimension mismatch");
                cost.as_slice()
                    .iter()
                    .zip(w)
                    .map(|(c, w)| c * w)
                    .fold(0.0, f64::max)
            }
            Preference::Lexicographic { order, .. } => {
                let first = *order.first().expect("non-empty order");
                cost[first]
            }
        }
    }

    /// Selects the best point of a frontier under this preference,
    /// restricted to points respecting `bounds`. Returns `None` when no
    /// point qualifies.
    pub fn select<'a>(
        &self,
        frontier: &'a FrontierSnapshot,
        bounds: &Bounds,
    ) -> Option<&'a FrontierPoint> {
        let qualified: Vec<&FrontierPoint> = frontier
            .points
            .iter()
            .filter(|p| bounds.respects(&p.cost))
            .collect();
        if qualified.is_empty() {
            return None;
        }
        match self {
            Preference::Lexicographic { order, tolerance } => {
                assert!(!order.is_empty(), "lexicographic order must be non-empty");
                let mut pool = qualified;
                for &metric in order {
                    let best = pool
                        .iter()
                        .map(|p| p.cost[metric])
                        .fold(f64::INFINITY, f64::min);
                    let cutoff = best * (1.0 + tolerance) + f64::EPSILON;
                    pool.retain(|p| p.cost[metric] <= cutoff);
                    if pool.len() == 1 {
                        break;
                    }
                }
                pool.into_iter().next()
            }
            _ => qualified.into_iter().min_by(|a, b| {
                self.score(&a.cost)
                    .partial_cmp(&self.score(&b.cost))
                    .expect("finite scores")
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_plan::PlanId;

    fn snapshot() -> FrontierSnapshot {
        let pts = vec![
            (0, [1.0, 9.0]),
            (1, [4.0, 4.0]),
            (2, [9.0, 1.0]),
            (3, [9.5, 1.0]), // dominated straggler
        ];
        FrontierSnapshot::new(
            pts.into_iter()
                .map(|(id, c)| FrontierPoint {
                    plan: PlanId(id),
                    cost: CostVector::new(&c),
                })
                .collect(),
        )
    }

    #[test]
    fn weighted_sum_moves_with_weights() {
        let f = snapshot();
        let unb = Bounds::unbounded(2);
        let time_heavy = Preference::WeightedSum(vec![1.0, 0.01]);
        assert_eq!(time_heavy.select(&f, &unb).unwrap().plan, PlanId(0));
        let fee_heavy = Preference::WeightedSum(vec![0.01, 1.0]);
        assert_eq!(fee_heavy.select(&f, &unb).unwrap().plan, PlanId(2));
        let balanced = Preference::WeightedSum(vec![1.0, 1.0]);
        assert_eq!(balanced.select(&f, &unb).unwrap().plan, PlanId(1));
    }

    #[test]
    fn chebyshev_picks_balanced_points() {
        let f = snapshot();
        let unb = Bounds::unbounded(2);
        let p = Preference::Chebyshev(vec![1.0, 1.0]);
        assert_eq!(p.select(&f, &unb).unwrap().plan, PlanId(1));
    }

    #[test]
    fn lexicographic_with_tolerance() {
        let f = snapshot();
        let unb = Bounds::unbounded(2);
        // Strictly minimize metric 1, tie-break by metric 0: plans 2 and 3
        // tie on metric 1; plan 2 has the better time.
        let p = Preference::Lexicographic {
            order: vec![1, 0],
            tolerance: 0.0,
        };
        assert_eq!(p.select(&f, &unb).unwrap().plan, PlanId(2));
    }

    #[test]
    fn bounds_restrict_selection() {
        let f = snapshot();
        let p = Preference::WeightedSum(vec![1.0, 0.0]);
        // Cheapest time overall is plan 0, but it violates the fee bound.
        let b = Bounds::from_slice(&[10.0, 6.0]);
        assert_eq!(p.select(&f, &b).unwrap().plan, PlanId(1));
        // Nothing qualifies under impossible bounds.
        let none = Bounds::from_slice(&[0.5, 0.5]);
        assert!(p.select(&f, &none).is_none());
    }

    #[test]
    #[should_panic(expected = "weight dimension mismatch")]
    fn rejects_mismatched_weights() {
        Preference::WeightedSum(vec![1.0]).score(&CostVector::new(&[1.0, 2.0]));
    }
}
