//! moqo-wire — the versioned, length-prefixed binary wire format that
//! puts the session protocol on a network.
//!
//! Every in-process serving layer already speaks one typed vocabulary —
//! [`SessionRequest`] / [`SessionCommand`] / [`SessionEvent`] /
//! [`AdmissionResponse`] / [`ProtocolError`] — and `moqo_core::wire`
//! gives each of those types a validated little-endian codec (the same
//! `MOQOFRNT`-style discipline the frontier snapshot format uses). This
//! crate adds what a TCP front needs on top of the payload codec:
//!
//! * **A handshake** ([`client_hello`] / [`check_hello`]): 8 magic bytes
//!   (`MOQOWIRE`) plus a little-endian [`WIRE_VERSION`], exchanged once
//!   per connection in each direction. Version skew is detected before
//!   any payload parsing.
//! * **Frames** ([`write_frame`], [`read_frame`], [`FrameBuffer`]): every
//!   message travels as a `u32` little-endian length prefix followed by
//!   that many payload bytes, capped at [`MAX_FRAME`] so a corrupt or
//!   hostile length can never trigger a huge allocation. [`FrameBuffer`]
//!   reassembles frames incrementally from nonblocking reads.
//! * **Message envelopes** ([`ClientMessage`], [`ServerMessage`]): the
//!   tagged unions a connection exchanges. A client submits one request
//!   and then streams commands; the server answers with the admission
//!   decision, then streams [`SessionEvent`]s (whose deltas reassemble
//!   into a bit-exact `SessionView`) and typed protocol errors.
//!
//! Per-session cost-model overrides cross the wire **by identity**: the
//! decoder resolves them against a server-side model registry
//! ([`ModelResolver`]; `moqo_engine::ModelRegistry` is the deployment
//! implementation), so clients can select among deployed cost models but
//! can never inject cost semantics the operator did not register.
//!
//! Decoding is total: arbitrary, truncated, or bit-flipped bytes produce
//! a typed [`WireError`], never a panic — property-tested in
//! `tests/codec_props.rs`, mirroring the snapshot importer's corruption
//! tests.

#![warn(missing_docs)]

pub mod framing;
pub mod message;

pub use framing::{
    check_hello, client_hello, read_frame, write_frame, FrameBuffer, NetError, WriteBuffer,
    HELLO_LEN, MAX_FRAME, WIRE_MAGIC, WIRE_VERSION,
};
pub use message::{ClientFrameKind, ClientMessage, ServerMessage};

// The payload codec this crate frames, re-exported so wire users need no
// direct moqo-core dependency.
pub use moqo_core::wire::{WireDecode, WireEncode, WireError, WireReader, WireResult, WireWriter};
pub use moqo_core::{
    AdmissionResponse, ProtocolError, SessionCommand, SessionEvent, SessionRequest,
};
pub use moqo_costmodel::ModelResolver;
