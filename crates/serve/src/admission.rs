//! Admission control: bounded intake with pluggable overload policy.
//!
//! A serving front that admits every submission degrades for everyone at
//! once — worker pools time-slice ever thinner and no session refines.
//! The [`AdmissionController`] bounds intake at
//! [`AdmissionConfig::max_live`] concurrent sessions and applies one of
//! three policies beyond that point:
//!
//! * [`AdmissionPolicy::Reject`] — shed load immediately; the caller gets
//!   an explicit rejection to retry elsewhere/later (classic
//!   backpressure).
//! * [`AdmissionPolicy::Queue`] — park up to `depth` submissions in a
//!   **bounded** FIFO; they admit as capacity frees. Beyond `depth`,
//!   reject — the queue never grows without bound.
//! * [`AdmissionPolicy::Degrade`] — IAMA's resolution ladder is a
//!   built-in load-shedding knob: admit the session anyway, but at a
//!   coarser target resolution (fewer, cheaper invocations, weaker
//!   [approximation guarantee](moqo_cost::ResolutionSchedule::guarantee)).
//!   The paper's single-user loop always refines to `rM`; a server under
//!   load stops earlier for new arrivals instead of stalling everyone.
//!   Beyond `hard_cap` live sessions even degraded admission stops and
//!   the submission is rejected.
//!
//! The controller is policy + accounting; it holds the queued payloads
//! but never touches the engine. The serving API drains it via
//! [`AdmissionController::release`] whenever capacity may have freed.

use moqo_core::protocol::RejectReason;
use moqo_cost::ResolutionSchedule;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// What to do with submissions beyond [`AdmissionConfig::max_live`].
#[derive(Clone, Debug)]
pub enum AdmissionPolicy {
    /// Reject immediately (pure backpressure).
    Reject,
    /// Hold up to `depth` submissions in a bounded FIFO, admitting them
    /// as sessions finish; reject once the queue is full.
    Queue {
        /// Maximum queued submissions.
        depth: usize,
    },
    /// Admit with a coarser resolution ladder up to `hard_cap` live
    /// sessions, then reject.
    Degrade {
        /// The degraded ladder (typically 1–2 levels with a coarse
        /// target factor).
        schedule: ResolutionSchedule,
        /// Absolute live-session ceiling; must exceed `max_live` to have
        /// any effect.
        hard_cap: usize,
    },
}

/// Tunables of the admission controller.
#[derive(Clone, Debug)]
pub struct AdmissionConfig {
    /// Live sessions admitted at full resolution before the overload
    /// policy kicks in.
    pub max_live: usize,
    /// Policy beyond `max_live`.
    pub policy: AdmissionPolicy,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            max_live: 256,
            policy: AdmissionPolicy::Reject,
        }
    }
}

/// Outcome of an admission request — the controller-internal shape of the
/// protocol's [`AdmissionResponse`](moqo_core::AdmissionResponse) (the
/// serving API converts; the [`RejectReason`] is the protocol's own).
/// The queued payload stays inside the controller; everything else is
/// returned to the caller.
#[derive(Debug)]
pub enum Admission {
    /// Admit now at full resolution.
    Admit,
    /// Admit now under the given degraded ladder.
    AdmitDegraded(ResolutionSchedule),
    /// Parked in the pending queue at the returned position (0-based).
    Queued {
        /// Position in the pending queue at enqueue time.
        position: usize,
    },
    /// Turned away.
    Rejected(RejectReason),
}

/// Monotone admission counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Submissions admitted at full resolution (including dequeued ones).
    pub admitted: u64,
    /// Submissions admitted under a degraded ladder.
    pub degraded: u64,
    /// Submissions parked in the pending queue.
    pub queued: u64,
    /// Submissions rejected.
    pub rejected: u64,
}

/// Bounded-intake gate in front of a serving engine; generic over the
/// queued payload (the serving API queues `(ticket, spec, config)`
/// triples).
pub struct AdmissionController<T> {
    config: AdmissionConfig,
    pending: Mutex<VecDeque<T>>,
    admitted: AtomicU64,
    degraded: AtomicU64,
    queued: AtomicU64,
    rejected: AtomicU64,
}

impl<T> AdmissionController<T> {
    /// Creates a controller with the given bounds and policy.
    pub fn new(config: AdmissionConfig) -> Self {
        Self {
            config,
            pending: Mutex::new(VecDeque::new()),
            admitted: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// The configured bounds and policy.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Decides on a submission given the engine's current live-session
    /// count. `payload` is retained only when the decision is
    /// [`Admission::Queued`].
    ///
    /// Fairness: while submissions are already queued, new arrivals under
    /// the `Queue` policy go to the back of the queue even if capacity
    /// just freed — [`AdmissionController::release`] drains in FIFO
    /// order.
    pub fn request(&self, live: usize, payload: T) -> Admission {
        let max = self.config.max_live;
        match &self.config.policy {
            _ if live < max && self.pending_is_empty() => {
                self.admitted.fetch_add(1, Ordering::Relaxed);
                Admission::Admit
            }
            AdmissionPolicy::Reject => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                Admission::Rejected(RejectReason::Overloaded { live })
            }
            AdmissionPolicy::Queue { depth } => {
                let mut pending = self.pending.lock().expect("admission queue poisoned");
                if live < max && pending.is_empty() {
                    // Capacity freed between the fast path and the lock.
                    self.admitted.fetch_add(1, Ordering::Relaxed);
                    return Admission::Admit;
                }
                if pending.len() >= *depth {
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                    return Admission::Rejected(RejectReason::QueueFull { depth: *depth });
                }
                pending.push_back(payload);
                self.queued.fetch_add(1, Ordering::Relaxed);
                Admission::Queued {
                    position: pending.len() - 1,
                }
            }
            AdmissionPolicy::Degrade { schedule, hard_cap } => {
                if live < *hard_cap {
                    self.degraded.fetch_add(1, Ordering::Relaxed);
                    Admission::AdmitDegraded(schedule.clone())
                } else {
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                    Admission::Rejected(RejectReason::Overloaded { live })
                }
            }
        }
    }

    /// Pops the oldest pending submission if the engine has capacity for
    /// it. Call whenever load may have dropped (a session finished or a
    /// caller polls); each successful release counts as an admission.
    pub fn release(&self, live: usize) -> Option<T> {
        if live >= self.config.max_live {
            return None;
        }
        let popped = self
            .pending
            .lock()
            .expect("admission queue poisoned")
            .pop_front();
        if popped.is_some() {
            self.admitted.fetch_add(1, Ordering::Relaxed);
        }
        popped
    }

    /// Number of submissions currently parked in the pending queue.
    pub fn pending(&self) -> usize {
        self.pending.lock().expect("admission queue poisoned").len()
    }

    fn pending_is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Monotone counters.
    pub fn stats(&self) -> AdmissionStats {
        AdmissionStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            queued: self.queued.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(policy: AdmissionPolicy) -> AdmissionConfig {
        AdmissionConfig {
            max_live: 2,
            policy,
        }
    }

    #[test]
    fn reject_policy_sheds_beyond_the_bound() {
        let c: AdmissionController<u32> = AdmissionController::new(config(AdmissionPolicy::Reject));
        assert!(matches!(c.request(0, 1), Admission::Admit));
        assert!(matches!(c.request(1, 2), Admission::Admit));
        assert!(matches!(
            c.request(2, 3),
            Admission::Rejected(RejectReason::Overloaded { live: 2 })
        ));
        let s = c.stats();
        assert_eq!((s.admitted, s.rejected), (2, 1));
    }

    #[test]
    fn queue_policy_is_bounded_and_fifo() {
        let c: AdmissionController<u32> =
            AdmissionController::new(config(AdmissionPolicy::Queue { depth: 2 }));
        assert!(matches!(
            c.request(2, 10),
            Admission::Queued { position: 0 }
        ));
        assert!(matches!(
            c.request(2, 11),
            Admission::Queued { position: 1 }
        ));
        // Bounded: the third overload submission is rejected, not queued.
        assert!(matches!(
            c.request(2, 12),
            Admission::Rejected(RejectReason::QueueFull { depth: 2 })
        ));
        assert_eq!(c.pending(), 2);
        // No release while at capacity.
        assert_eq!(c.release(2), None);
        // FIFO drain as capacity frees.
        assert_eq!(c.release(1), Some(10));
        assert_eq!(c.release(1), Some(11));
        assert_eq!(c.release(0), None);
        let s = c.stats();
        assert_eq!((s.admitted, s.queued, s.rejected), (2, 2, 1));
    }

    #[test]
    fn queue_policy_keeps_fifo_order_for_new_arrivals() {
        let c: AdmissionController<u32> =
            AdmissionController::new(config(AdmissionPolicy::Queue { depth: 4 }));
        assert!(matches!(c.request(2, 1), Admission::Queued { .. }));
        // Capacity freed, but an older submission waits: the newcomer
        // queues behind it instead of jumping the line.
        assert!(matches!(c.request(0, 2), Admission::Queued { position: 1 }));
        assert_eq!(c.release(0), Some(1));
        assert_eq!(c.release(1), Some(2));
    }

    #[test]
    fn degrade_policy_admits_coarse_up_to_the_hard_cap() {
        let ladder = ResolutionSchedule::linear(0, 1.5, 0.5);
        let c: AdmissionController<u32> =
            AdmissionController::new(config(AdmissionPolicy::Degrade {
                schedule: ladder.clone(),
                hard_cap: 4,
            }));
        assert!(matches!(c.request(1, 1), Admission::Admit));
        match c.request(2, 2) {
            Admission::AdmitDegraded(s) => assert_eq!(s.levels(), ladder.levels()),
            other => panic!("expected degraded admission, got {other:?}"),
        }
        assert!(matches!(
            c.request(4, 3),
            Admission::Rejected(RejectReason::Overloaded { live: 4 })
        ));
        let s = c.stats();
        assert_eq!((s.admitted, s.degraded, s.rejected), (1, 1, 1));
    }
}
