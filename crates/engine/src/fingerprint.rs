//! Canonical query fingerprints.
//!
//! Two interactive sessions over "the same" query should share optimizer
//! state: a user re-running yesterday's dashboard query must not pay for
//! plan generation from resolution 0 again. The fingerprint captures
//! exactly the inputs the optimizer's plan sets depend on —
//!
//! * the **join-graph shape**: table count, join edges with their
//!   selectivities, and per-table local-filter selectivities;
//! * the **catalog statistics** of the referenced tables: cardinality and
//!   row width (what the cost formulas consume);
//! * the **cost model**: its metric layout *and* its
//!   [identity](moqo_costmodel::CostModel::identity) — two sessions over
//!   one query under differently parameterized models produce different
//!   frontiers, so their warm state must never cross —
//!
//! and deliberately ignores presentation-level identity such as the query
//! or table *names*: `chain-3` submitted twice under different labels is
//! one cache entry.

use moqo_costmodel::CostModel;
use moqo_query::QuerySpec;

/// A 64-bit canonical fingerprint of (query shape, catalog stats, cost
/// model).
///
/// Computed with FNV-1a over a canonical byte encoding; collisions are
/// astronomically unlikely at serving-cache sizes, and a collision's worst
/// case is a warm start from an unrelated frontier — costs are recomputed
/// per plan, never trusted across specs, so results stay correct only if
/// the specs really were equivalent; treat the fingerprint as an equality
/// proxy for *equivalent* specs, which is how [`crate::FrontierCache`]
/// uses it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryFingerprint(u64);

impl QueryFingerprint {
    /// Fingerprints a query spec under a cost model (metric layout plus
    /// model identity).
    pub fn of<M: CostModel + ?Sized>(spec: &QuerySpec, model: &M) -> Self {
        let metrics = model.metrics();
        let mut h = moqo_cost::Fnv64::new();
        let g = &spec.graph;
        h.u64(g.n_tables() as u64);
        for pos in 0..g.n_tables() {
            let table = spec.catalog.table(g.tables[pos]);
            h.u64(table.cardinality);
            h.u64(table.row_width as u64);
            h.u64(g.filters[pos].to_bits());
        }
        // Edges in canonical order (JoinEdge::new normalizes left < right).
        let mut edges: Vec<(usize, usize, u64)> = g
            .edges
            .iter()
            .map(|e| (e.left, e.right, e.selectivity.to_bits()))
            .collect();
        edges.sort_unstable();
        for (l, r, sel) in edges {
            h.u64(l as u64);
            h.u64(r as u64);
            h.u64(sel);
        }
        for i in 0..metrics.dim() {
            h.str(metrics.metric(i).name());
        }
        h.u64(model.identity());
        Self(h.finish())
    }

    /// The raw 64-bit value (diagnostics, logging, sharding).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_costmodel::{MetricSet, StandardCostModel, StandardCostModelConfig};
    use moqo_query::testkit;

    fn model() -> StandardCostModel {
        StandardCostModel::paper_metrics()
    }

    #[test]
    fn equivalent_specs_share_a_fingerprint_despite_names() {
        let m = model();
        let a = testkit::chain_query(3, 100_000);
        let b = testkit::chain_query(3, 100_000);
        // testkit names tables identically, but even a renamed spec matches:
        // fingerprints ignore the spec's display name entirely.
        let mut c = testkit::chain_query(3, 100_000);
        c.name = "totally-different-label".into();
        assert_eq!(QueryFingerprint::of(&a, &m), QueryFingerprint::of(&b, &m));
        assert_eq!(QueryFingerprint::of(&a, &m), QueryFingerprint::of(&c, &m));
    }

    #[test]
    fn shape_stats_metrics_and_model_identity_all_discriminate() {
        let m = model();
        let base = QueryFingerprint::of(&testkit::chain_query(3, 100_000), &m);
        // Different join-graph shape.
        assert_ne!(
            base,
            QueryFingerprint::of(&testkit::star_query(3, 100_000), &m)
        );
        // Different catalog stats.
        assert_ne!(
            base,
            QueryFingerprint::of(&testkit::chain_query(3, 200_000), &m)
        );
        // Different metric set.
        let cloud = StandardCostModel::new(MetricSet::cloud(), StandardCostModelConfig::default());
        assert_ne!(
            base,
            QueryFingerprint::of(&testkit::chain_query(3, 100_000), &cloud)
        );
        // Same metric layout, different cost parameters: the model
        // identity keeps warm state from crossing models.
        let tweaked = StandardCostModel::new(
            MetricSet::paper(),
            StandardCostModelConfig {
                dops: vec![1, 2],
                ..StandardCostModelConfig::default()
            },
        );
        assert_ne!(
            base,
            QueryFingerprint::of(&testkit::chain_query(3, 100_000), &tweaked)
        );
    }
}
