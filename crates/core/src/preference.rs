//! Preference functions over cost tradeoffs.
//!
//! Prior work (which the paper contrasts with) assumed "users specify a
//! preference function in the form of weights and cost bounds prior to
//! optimization". This module provides those preference functions so that
//! programmatic consumers — which, unlike humans, *can* state preferences
//! up front — can pick a plan from a frontier automatically: a weighted
//! sum, the Chebyshev (weighted max) scalarization, and lexicographic
//! orderings. A [`crate::SessionRequest`] carries one to auto-select a
//! plan at the target resolution without a `SelectPlan` round-trip.
//!
//! Malformed preferences (wrong weight dimension, empty order) are
//! [`ProtocolError`]s, never panics: a bad serve-layer request must not
//! crash a shard worker.

use crate::frontier::{FrontierPoint, FrontierSnapshot};
use crate::protocol::ProtocolError;
use moqo_cost::{Bounds, CostVector};

/// A scalarization of cost vectors; smaller is better.
#[derive(Clone, Debug, PartialEq)]
pub enum Preference {
    /// `sum_i w_i * c_i` — the classic linear preference. Only finds
    /// supported (convex-hull) Pareto points.
    WeightedSum(Vec<f64>),
    /// `max_i w_i * c_i` — the weighted Chebyshev scalarization; can
    /// select any Pareto-optimal point.
    Chebyshev(Vec<f64>),
    /// Minimize metrics in the given priority order, breaking ties by the
    /// next metric (with a relative tolerance for "tied").
    Lexicographic {
        /// Metric indices, most important first.
        order: Vec<usize>,
        /// Relative tie tolerance (e.g. `0.01` = within 1 % is a tie).
        tolerance: f64,
    },
}

impl Preference {
    /// Checks the preference against a cost-model dimension. Non-finite
    /// weights or tolerances are rejected too: a NaN weight would poison
    /// every score comparison downstream, and this `validate` is the
    /// door-check serving layers rely on to keep client data from ever
    /// panicking a worker.
    pub fn validate(&self, dim: usize) -> Result<(), ProtocolError> {
        match self {
            Preference::WeightedSum(w) | Preference::Chebyshev(w) => {
                if w.len() != dim {
                    return Err(ProtocolError::WeightDimensionMismatch {
                        expected: dim,
                        got: w.len(),
                    });
                }
                if w.iter().any(|x| !x.is_finite()) {
                    return Err(ProtocolError::NonFinitePreference);
                }
            }
            Preference::Lexicographic { order, tolerance } => {
                if order.is_empty() {
                    return Err(ProtocolError::EmptyPreferenceOrder);
                }
                if let Some(&metric) = order.iter().find(|&&m| m >= dim) {
                    return Err(ProtocolError::MetricOutOfRange { metric, dim });
                }
                if !tolerance.is_finite() {
                    return Err(ProtocolError::NonFinitePreference);
                }
            }
        }
        Ok(())
    }

    /// Scores a cost vector (lower is better). Lexicographic preferences
    /// are handled by [`Preference::select`] instead and return the
    /// primary metric here.
    pub fn score(&self, cost: &CostVector) -> Result<f64, ProtocolError> {
        self.validate(cost.dim())?;
        Ok(self.raw_score(cost))
    }

    /// The scalarization with no validation — callers must have run
    /// [`Preference::validate`] against the cost's dimension.
    fn raw_score(&self, cost: &CostVector) -> f64 {
        match self {
            Preference::WeightedSum(w) => cost.as_slice().iter().zip(w).map(|(c, w)| c * w).sum(),
            Preference::Chebyshev(w) => cost
                .as_slice()
                .iter()
                .zip(w)
                .map(|(c, w)| c * w)
                .fold(0.0, f64::max),
            Preference::Lexicographic { order, .. } => cost[order[0]],
        }
    }

    /// Selects the best point of a frontier under this preference,
    /// restricted to points respecting `bounds`. Returns `Ok(None)` when
    /// no point qualifies and a [`ProtocolError`] for malformed weights
    /// or metric indices.
    pub fn select<'a>(
        &self,
        frontier: &'a FrontierSnapshot,
        bounds: &Bounds,
    ) -> Result<Option<&'a FrontierPoint>, ProtocolError> {
        self.validate(bounds.dim())?;
        let qualified: Vec<&FrontierPoint> = frontier
            .points
            .iter()
            .filter(|p| bounds.respects(&p.cost))
            .collect();
        if qualified.is_empty() {
            return Ok(None);
        }
        Ok(match self {
            Preference::Lexicographic { order, tolerance } => {
                let mut pool = qualified;
                for &metric in order {
                    let best = pool
                        .iter()
                        .map(|p| p.cost[metric])
                        .fold(f64::INFINITY, f64::min);
                    let cutoff = best * (1.0 + tolerance) + f64::EPSILON;
                    pool.retain(|p| p.cost[metric] <= cutoff);
                    if pool.len() == 1 {
                        break;
                    }
                }
                pool.into_iter().next()
            }
            // Score each point once (not per comparison). Scores of
            // validated (finite) weights over non-NaN costs compare
            // totally in practice; the Equal fallback covers the one
            // residual hole (a zero weight against an infinite cost
            // metric makes NaN) — workers never panic on client data.
            _ => qualified
                .into_iter()
                .map(|p| (self.raw_score(&p.cost), p))
                .min_by(|(a, _), (b, _)| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(_, p)| p),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_plan::PlanId;

    fn snapshot() -> FrontierSnapshot {
        let pts = vec![
            (0, [1.0, 9.0]),
            (1, [4.0, 4.0]),
            (2, [9.0, 1.0]),
            (3, [9.5, 1.0]), // dominated straggler
        ];
        FrontierSnapshot::new(
            pts.into_iter()
                .map(|(id, c)| FrontierPoint {
                    plan: PlanId(id),
                    cost: CostVector::new(&c),
                })
                .collect(),
        )
    }

    #[test]
    fn weighted_sum_moves_with_weights() {
        let f = snapshot();
        let unb = Bounds::unbounded(2);
        let time_heavy = Preference::WeightedSum(vec![1.0, 0.01]);
        assert_eq!(
            time_heavy.select(&f, &unb).unwrap().unwrap().plan,
            PlanId(0)
        );
        let fee_heavy = Preference::WeightedSum(vec![0.01, 1.0]);
        assert_eq!(fee_heavy.select(&f, &unb).unwrap().unwrap().plan, PlanId(2));
        let balanced = Preference::WeightedSum(vec![1.0, 1.0]);
        assert_eq!(balanced.select(&f, &unb).unwrap().unwrap().plan, PlanId(1));
    }

    #[test]
    fn chebyshev_picks_balanced_points() {
        let f = snapshot();
        let unb = Bounds::unbounded(2);
        let p = Preference::Chebyshev(vec![1.0, 1.0]);
        assert_eq!(p.select(&f, &unb).unwrap().unwrap().plan, PlanId(1));
    }

    #[test]
    fn lexicographic_with_tolerance() {
        let f = snapshot();
        let unb = Bounds::unbounded(2);
        // Strictly minimize metric 1, tie-break by metric 0: plans 2 and 3
        // tie on metric 1; plan 2 has the better time.
        let p = Preference::Lexicographic {
            order: vec![1, 0],
            tolerance: 0.0,
        };
        assert_eq!(p.select(&f, &unb).unwrap().unwrap().plan, PlanId(2));
    }

    #[test]
    fn bounds_restrict_selection() {
        let f = snapshot();
        let p = Preference::WeightedSum(vec![1.0, 0.0]);
        // Cheapest time overall is plan 0, but it violates the fee bound.
        let b = Bounds::from_slice(&[10.0, 6.0]);
        assert_eq!(p.select(&f, &b).unwrap().unwrap().plan, PlanId(1));
        // Nothing qualifies under impossible bounds.
        let none = Bounds::from_slice(&[0.5, 0.5]);
        assert!(p.select(&f, &none).unwrap().is_none());
    }

    #[test]
    fn mismatched_weights_are_a_typed_error_not_a_panic() {
        let err = Preference::WeightedSum(vec![1.0])
            .score(&CostVector::new(&[1.0, 2.0]))
            .unwrap_err();
        assert_eq!(
            err,
            ProtocolError::WeightDimensionMismatch {
                expected: 2,
                got: 1
            }
        );
        let f = snapshot();
        assert!(Preference::Chebyshev(vec![1.0, 1.0, 1.0])
            .select(&f, &Bounds::unbounded(2))
            .is_err());
        assert_eq!(
            Preference::Lexicographic {
                order: vec![],
                tolerance: 0.0
            }
            .validate(2),
            Err(ProtocolError::EmptyPreferenceOrder)
        );
        assert_eq!(
            Preference::Lexicographic {
                order: vec![0, 5],
                tolerance: 0.0
            }
            .validate(2),
            Err(ProtocolError::MetricOutOfRange { metric: 5, dim: 2 })
        );
    }

    #[test]
    fn non_finite_weights_are_rejected_not_scored() {
        // NaN or infinite weights would poison every score comparison —
        // they must fail validation, never reach a worker's select().
        assert_eq!(
            Preference::WeightedSum(vec![f64::NAN, 0.0]).validate(2),
            Err(ProtocolError::NonFinitePreference)
        );
        assert_eq!(
            Preference::Chebyshev(vec![1.0, f64::INFINITY]).validate(2),
            Err(ProtocolError::NonFinitePreference)
        );
        assert_eq!(
            Preference::Lexicographic {
                order: vec![0],
                tolerance: f64::NAN
            }
            .validate(2),
            Err(ProtocolError::NonFinitePreference)
        );
        let f = snapshot();
        assert!(Preference::WeightedSum(vec![f64::NAN, 0.0])
            .select(&f, &Bounds::unbounded(2))
            .is_err());
    }
}
