//! Declarative experiment harness.
//!
//! Every `repro` experiment used to hand-roll the same loop: build
//! fresh state, run a few labelled phases, time them, summarize
//! latencies, print a `TextTable`, and emit a `BENCH_<name>.json` file
//! — each with its own copy of the percentile helper and its own ad-hoc
//! JSON schema. This module owns that loop once, after dashflow's
//! experiment-framework design: an [`Experiment`] is a *declaration*
//! (name, fresh-state setup closure, ordered variants, metric
//! extraction per variant) and [`Experiment::run`] is the single
//! executor that owns timing, summarization via [`crate::stats`], the
//! human table, and the shared JSON envelope (`schema_version`,
//! `experiment`, `fast`, git commit, ISO timestamp, host — see
//! `docs/benchmarks.md`).
//!
//! The envelope gives every metric a *direction* (`lower` / `higher` /
//! info), which is what lets `repro diff` decide whether a delta
//! between two runs is a regression without per-experiment knowledge.

use std::time::{Instant, SystemTime, UNIX_EPOCH};

use moqo_viz::TextTable;

use crate::benchjson::Json;
use crate::stats::Summary;

/// Version stamp of the `BENCH_*.json` envelope; bump on breaking
/// schema changes so `repro diff` can refuse to compare across them.
pub const SCHEMA_VERSION: u64 = 1;

/// A single extracted metric value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A counter.
    Int(u64),
    /// A measurement.
    Num(f64),
    /// A label or other non-numeric figure.
    Str(String),
    /// A pass/fail or mode flag.
    Bool(bool),
}

impl Value {
    /// Numeric view (counters widen to `f64`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Counter view.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    fn to_json(&self) -> Json {
        match self {
            Value::Int(n) => Json::Int(*n),
            Value::Num(v) => Json::Num(*v),
            Value::Str(s) => Json::Str(s.clone()),
            Value::Bool(b) => Json::Bool(*b),
        }
    }

    fn cell(&self) -> String {
        match self {
            Value::Int(n) => n.to_string(),
            Value::Num(v) => fmt_num(*v),
            Value::Str(s) => s.clone(),
            Value::Bool(b) => b.to_string(),
        }
    }
}

fn fmt_num(v: f64) -> String {
    let a = v.abs();
    if v == 0.0 {
        "0".to_string()
    } else if a >= 1000.0 {
        format!("{v:.0}")
    } else if a >= 10.0 {
        format!("{v:.1}")
    } else if a >= 0.001 {
        format!("{v:.3}")
    } else {
        format!("{v:.2e}")
    }
}

/// Whether a smaller or larger value of a metric is better — the
/// contract `repro diff` uses to turn a delta into a verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Smaller is better (latencies, plan counts, memory).
    Lower,
    /// Larger is better (throughput, prune share, adoption counts).
    Higher,
    /// Context only (sizes, modes, labels); never gates a diff.
    Info,
}

impl Direction {
    fn as_str(self) -> &'static str {
        match self {
            Direction::Lower => "lower",
            Direction::Higher => "higher",
            Direction::Info => "info",
        }
    }
}

/// One extracted metric: key, value, and gating direction.
#[derive(Clone, Debug)]
pub struct Metric {
    /// Column name in the table and key in the envelope.
    pub key: String,
    /// Extracted value.
    pub value: Value,
    /// Gating direction for `repro diff`.
    pub direction: Direction,
}

/// Metric sink handed to each variant's measurement closure.
///
/// The closure runs the workload and records what it extracted; the
/// harness owns everything downstream (table, envelope, directions).
#[derive(Debug, Default)]
pub struct Trial {
    metrics: Vec<Metric>,
}

impl Trial {
    fn record(&mut self, key: &str, value: Value, direction: Direction) {
        assert!(
            !self.metrics.iter().any(|m| m.key == key),
            "metric {key:?} recorded twice in one variant"
        );
        self.metrics.push(Metric {
            key: key.to_string(),
            value,
            direction,
        });
    }

    /// Records a context counter (never gates a diff).
    pub fn int(&mut self, key: &str, v: u64) {
        self.record(key, Value::Int(v), Direction::Info);
    }

    /// Records a counter where smaller is better.
    pub fn int_lower(&mut self, key: &str, v: u64) {
        self.record(key, Value::Int(v), Direction::Lower);
    }

    /// Records a counter where larger is better.
    pub fn int_higher(&mut self, key: &str, v: u64) {
        self.record(key, Value::Int(v), Direction::Higher);
    }

    /// Records a context measurement (never gates a diff).
    pub fn num(&mut self, key: &str, v: f64) {
        self.record(key, Value::Num(v), Direction::Info);
    }

    /// Records a measurement where smaller is better.
    pub fn num_lower(&mut self, key: &str, v: f64) {
        self.record(key, Value::Num(v), Direction::Lower);
    }

    /// Records a measurement where larger is better.
    pub fn num_higher(&mut self, key: &str, v: f64) {
        self.record(key, Value::Num(v), Direction::Higher);
    }

    /// Records a label.
    pub fn text(&mut self, key: &str, v: impl Into<String>) {
        self.record(key, Value::Str(v.into()), Direction::Info);
    }

    /// Records a pass/fail or mode flag.
    pub fn flag(&mut self, key: &str, v: bool) {
        self.record(key, Value::Bool(v), Direction::Info);
    }

    /// Records a latency summary as `{prefix}mean_us` / `p50_us` /
    /// `p99_us` / `max_us`, all lower-is-better. `prefix` is usually
    /// empty (one latency family per variant) or `"submit_"`-style.
    pub fn summary_us(&mut self, prefix: &str, s: Summary) {
        self.record(
            &format!("{prefix}mean_us"),
            Value::Num(s.mean),
            Direction::Lower,
        );
        self.record(
            &format!("{prefix}p50_us"),
            Value::Num(s.p50),
            Direction::Lower,
        );
        self.record(
            &format!("{prefix}p99_us"),
            Value::Num(s.p99),
            Direction::Lower,
        );
        self.record(
            &format!("{prefix}max_us"),
            Value::Num(s.max),
            Direction::Lower,
        );
    }
}

struct Variant<S> {
    section: String,
    label: String,
    #[allow(clippy::type_complexity)]
    run: Box<dyn FnOnce(&mut S, &mut Trial)>,
}

/// A declarative experiment: fresh-state setup, ordered variants, and
/// optional teardown. Build with [`Experiment::new`], add variants,
/// then [`Experiment::run`].
pub struct Experiment<S> {
    name: &'static str,
    title: String,
    conclusion: String,
    fast: bool,
    setup: Box<dyn FnOnce() -> S>,
    variants: Vec<Variant<S>>,
    teardown: Option<Box<dyn FnOnce(S)>>,
}

impl<S> Experiment<S> {
    /// Declares an experiment. `name` becomes `BENCH_<name>.json`
    /// (dashes mapped to underscores); `setup` builds the fresh state
    /// every run starts from, so runs never inherit a previous run's
    /// warm caches unless a variant warms them on purpose.
    pub fn new(name: &'static str, fast: bool, setup: impl FnOnce() -> S + 'static) -> Self {
        Experiment {
            name,
            title: name.to_string(),
            conclusion: String::new(),
            fast,
            setup: Box::new(setup),
            variants: Vec::new(),
            teardown: None,
        }
    }

    /// Human heading printed above the tables.
    pub fn title(mut self, title: impl Into<String>) -> Self {
        self.title = title.into();
        self
    }

    /// One-paragraph interpretation printed after the tables.
    pub fn conclusion(mut self, text: impl Into<String>) -> Self {
        self.conclusion = text.into();
        self
    }

    /// Adds a measured variant. Variants run in declaration order and
    /// share the state built by `setup`; `section` groups rows into one
    /// table. The closure records extracted metrics into the [`Trial`].
    pub fn variant(
        mut self,
        section: &str,
        label: impl Into<String>,
        run: impl FnOnce(&mut S, &mut Trial) + 'static,
    ) -> Self {
        self.variants.push(Variant {
            section: section.to_string(),
            label: label.into(),
            run: Box::new(run),
        });
        self
    }

    /// Cleanup (kill child processes, shut listeners down) after the
    /// last variant.
    pub fn teardown(mut self, f: impl FnOnce(S) + 'static) -> Self {
        self.teardown = Some(Box::new(f));
        self
    }

    /// Executes setup, every variant (timing each), and teardown.
    pub fn run(self) -> ExperimentReport {
        let mut state = (self.setup)();
        let mut variants = Vec::with_capacity(self.variants.len());
        for v in self.variants {
            let mut trial = Trial::default();
            let t0 = Instant::now();
            (v.run)(&mut state, &mut trial);
            let wall = t0.elapsed().as_secs_f64();
            trial.record("wall_s", Value::Num(wall), Direction::Info);
            variants.push(VariantReport {
                section: v.section,
                label: v.label,
                metrics: trial.metrics,
            });
        }
        if let Some(teardown) = self.teardown {
            teardown(state);
        }
        ExperimentReport {
            name: self.name,
            title: self.title,
            conclusion: self.conclusion,
            fast: self.fast,
            variants,
        }
    }
}

/// Metrics extracted from one variant run.
#[derive(Clone, Debug)]
pub struct VariantReport {
    /// Table the row belongs to.
    pub section: String,
    /// Row label.
    pub label: String,
    /// Extracted metrics in recording order.
    pub metrics: Vec<Metric>,
}

/// The result of [`Experiment::run`]: everything needed to print the
/// human tables and write the JSON envelope.
#[derive(Clone, Debug)]
pub struct ExperimentReport {
    /// Experiment name (`BENCH_<name>.json` stem).
    pub name: &'static str,
    /// Human heading.
    pub title: String,
    /// Interpretation paragraph (may be empty).
    pub conclusion: String,
    /// Whether the run used the reduced `--fast` workload.
    pub fast: bool,
    /// Per-variant extracted metrics, in execution order.
    pub variants: Vec<VariantReport>,
}

impl ExperimentReport {
    /// Looks a metric up by variant label and key (first matching
    /// variant wins) — how in-crate tests assert on outcomes.
    pub fn metric(&self, label: &str, key: &str) -> Option<&Value> {
        self.variants
            .iter()
            .filter(|v| v.label == label)
            .flat_map(|v| v.metrics.iter())
            .find(|m| m.key == key)
            .map(|m| &m.value)
    }

    /// Renders the human tables (one per section, in first-seen
    /// order). Sections with a single variant and many metrics
    /// transpose into a `figure | value` table.
    pub fn render(&self) -> String {
        let mut out = format!("=== {} ===\n", self.title);
        for section in self.section_order() {
            let rows: Vec<&VariantReport> = self
                .variants
                .iter()
                .filter(|v| v.section == section)
                .collect();
            if !section.is_empty() {
                out.push_str(&format!("\n-- {section} --\n"));
            } else {
                out.push('\n');
            }
            if rows.len() == 1 && rows[0].metrics.len() > 6 {
                let mut table = TextTable::new(vec!["figure", "value"]);
                for m in &rows[0].metrics {
                    table.row(vec![m.key.clone(), m.value.cell()]);
                }
                out.push_str(&table.render());
            } else {
                let keys = self.section_keys(&rows);
                let mut headers = vec!["variant"];
                headers.extend(keys.iter().map(String::as_str));
                let mut table = TextTable::new(headers);
                for row in &rows {
                    let mut cells = vec![row.label.clone()];
                    for key in &keys {
                        cells.push(
                            row.metrics
                                .iter()
                                .find(|m| &m.key == key)
                                .map(|m| m.value.cell())
                                .unwrap_or_default(),
                        );
                    }
                    table.row(cells);
                }
                out.push_str(&table.render());
            }
        }
        if !self.conclusion.is_empty() {
            out.push_str(&format!("\n{}\n", self.conclusion));
        }
        out
    }

    fn section_order(&self) -> Vec<String> {
        let mut order: Vec<String> = Vec::new();
        for v in &self.variants {
            if !order.contains(&v.section) {
                order.push(v.section.clone());
            }
        }
        order
    }

    fn section_keys(&self, rows: &[&VariantReport]) -> Vec<String> {
        let mut keys: Vec<String> = Vec::new();
        for row in rows {
            for m in &row.metrics {
                if !keys.contains(&m.key) {
                    keys.push(m.key.clone());
                }
            }
        }
        keys
    }

    /// Builds the shared `BENCH_*.json` envelope (schema documented in
    /// `docs/benchmarks.md`).
    pub fn envelope(&self) -> Json {
        let mut directions: Vec<(String, Json)> = Vec::new();
        for v in &self.variants {
            for m in &v.metrics {
                if m.direction == Direction::Info {
                    continue;
                }
                if !directions.iter().any(|(k, _)| k == &m.key) {
                    directions.push((m.key.clone(), Json::Str(m.direction.as_str().into())));
                }
            }
        }
        let variants = self
            .variants
            .iter()
            .map(|v| {
                Json::obj(vec![
                    ("section", Json::Str(v.section.clone())),
                    ("label", Json::Str(v.label.clone())),
                    (
                        "metrics",
                        Json::Obj(
                            v.metrics
                                .iter()
                                .map(|m| (m.key.clone(), m.value.to_json()))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        Json::obj(vec![
            ("schema_version", Json::Int(SCHEMA_VERSION)),
            ("experiment", Json::Str(self.name.to_string())),
            ("title", Json::Str(self.title.clone())),
            ("fast", Json::Bool(self.fast)),
            ("git_commit", Json::Str(git_commit())),
            ("timestamp", Json::Str(iso_timestamp())),
            ("host", host_info()),
            ("directions", Json::Obj(directions)),
            ("variants", Json::Arr(variants)),
        ])
    }

    /// File the envelope is written to: `BENCH_<name>.json` with dashes
    /// mapped to underscores, in the current directory.
    pub fn json_path(&self) -> String {
        format!("BENCH_{}.json", self.name.replace('-', "_"))
    }

    /// Prints the tables and writes the envelope — the tail every
    /// `repro` experiment shares.
    pub fn emit(&self) {
        print!("{}", self.render());
        let path = self.json_path();
        match self.envelope().write_file(std::path::Path::new(&path)) {
            Ok(()) => println!("\nwrote {path}"),
            Err(e) => eprintln!("\nfailed to write {path}: {e}"),
        }
    }
}

/// Best-effort current commit hash, read straight from `.git` (the
/// workspace is offline and has no git2 binding): walk up from the
/// working directory to a `.git`, follow `HEAD`, and fall back through
/// loose refs and `packed-refs`. `"unknown"` when not in a checkout.
fn git_commit() -> String {
    fn lookup() -> Option<String> {
        let mut dir = std::env::current_dir().ok()?;
        let git = loop {
            let candidate = dir.join(".git");
            if candidate.is_dir() {
                break candidate;
            }
            if !dir.pop() {
                return None;
            }
        };
        let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
        let head = head.trim();
        let Some(refname) = head.strip_prefix("ref: ") else {
            return Some(head.to_string());
        };
        if let Ok(hash) = std::fs::read_to_string(git.join(refname)) {
            return Some(hash.trim().to_string());
        }
        let packed = std::fs::read_to_string(git.join("packed-refs")).ok()?;
        packed
            .lines()
            .filter(|l| !l.starts_with('#') && !l.starts_with('^'))
            .find_map(|l| {
                let (hash, name) = l.split_once(' ')?;
                (name == refname).then(|| hash.to_string())
            })
    }
    lookup().unwrap_or_else(|| "unknown".to_string())
}

/// UTC wall-clock time as `YYYY-MM-DDThh:mm:ssZ`, derived from the Unix
/// epoch with the standard civil-from-days conversion (no chrono in an
/// offline workspace).
fn iso_timestamp() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    let rem = secs % 86_400;
    let (h, min, s) = (rem / 3600, (rem / 60) % 60, rem % 60);
    // Howard Hinnant's civil_from_days.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}T{h:02}:{min:02}:{s:02}Z")
}

fn host_info() -> Json {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(0);
    let hostname = std::fs::read_to_string("/proc/sys/kernel/hostname")
        .map(|s| s.trim().to_string())
        .or_else(|_| std::env::var("HOSTNAME"))
        .unwrap_or_else(|_| "unknown".to_string());
    Json::obj(vec![
        ("os", Json::Str(std::env::consts::OS.to_string())),
        ("arch", Json::Str(std::env::consts::ARCH.to_string())),
        ("cpus", Json::Int(cpus)),
        ("hostname", Json::Str(hostname)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Samples;

    fn toy_report() -> ExperimentReport {
        Experiment::new("toy", true, || vec![10.0_f64, 20.0, 30.0])
            .title("toy experiment")
            .conclusion("the toy concluded")
            .variant("phases", "cold", |state, t| {
                let samples: Samples = state.iter().copied().collect();
                t.int("sessions", state.len() as u64);
                t.summary_us("", Summary::of_or_zero(&samples));
                t.int_lower("plans", 12);
            })
            .variant("phases", "warm", |state, t| {
                state.iter_mut().for_each(|v| *v *= 0.5);
                let samples: Samples = state.iter().copied().collect();
                t.int("sessions", state.len() as u64);
                t.summary_us("", Summary::of_or_zero(&samples));
                t.int_lower("plans", 0);
                t.flag("warm", true);
            })
            .run()
    }

    #[test]
    fn runs_variants_in_order_over_shared_fresh_state() {
        let report = toy_report();
        assert_eq!(report.metric("cold", "p50_us"), Some(&Value::Num(20.0)));
        // The warm variant saw the state the cold variant left behind.
        assert_eq!(report.metric("warm", "p50_us"), Some(&Value::Num(10.0)));
        assert_eq!(report.metric("warm", "plans"), Some(&Value::Int(0)));
        // Wall-clock is recorded automatically for every variant.
        assert!(report.metric("cold", "wall_s").is_some());
    }

    #[test]
    fn renders_one_table_per_section_with_the_union_of_keys() {
        let report = toy_report();
        let text = report.render();
        assert!(text.starts_with("=== toy experiment ==="));
        assert!(text.contains("-- phases --"));
        assert!(text.contains("variant"));
        assert!(text.contains("p99_us"));
        assert!(text.contains("cold"));
        assert!(text.contains("warm"));
        assert!(text.contains("the toy concluded"));
    }

    #[test]
    fn envelope_carries_metadata_directions_and_parses_back() {
        let report = toy_report();
        let envelope = report.envelope();
        let parsed = Json::parse(&envelope.render()).unwrap();
        assert_eq!(
            parsed.get("schema_version"),
            Some(&Json::Int(SCHEMA_VERSION))
        );
        assert_eq!(parsed.get("experiment").and_then(Json::as_str), Some("toy"));
        assert_eq!(parsed.get("fast"), Some(&Json::Bool(true)));
        assert!(parsed.get("git_commit").and_then(Json::as_str).is_some());
        let ts = parsed.get("timestamp").and_then(Json::as_str).unwrap();
        assert!(ts.len() == 20 && ts.ends_with('Z'), "bad timestamp {ts}");
        assert!(parsed.get("host").and_then(|h| h.get("os")).is_some());
        let dirs = parsed.get("directions").unwrap();
        assert_eq!(dirs.get("p50_us").and_then(Json::as_str), Some("lower"));
        assert!(dirs.get("sessions").is_none(), "info metrics do not gate");
        let variants = parsed.get("variants").and_then(Json::as_arr).unwrap();
        assert_eq!(variants.len(), 2);
        let warm = &variants[1];
        assert_eq!(warm.get("label").and_then(Json::as_str), Some("warm"));
        assert_eq!(
            warm.get("metrics").and_then(|m| m.get("plans")),
            Some(&Json::Int(0))
        );
    }

    #[test]
    fn duplicate_metric_keys_are_a_bug() {
        let result = std::panic::catch_unwind(|| {
            Experiment::new("dup", true, || ())
                .variant("s", "v", |_, t| {
                    t.int("k", 1);
                    t.int("k", 2);
                })
                .run()
        });
        assert!(result.is_err());
    }

    #[test]
    fn timestamp_is_plausible() {
        let ts = iso_timestamp();
        // 2026 or later (the repo did not exist before 2024).
        let year: u32 = ts[..4].parse().unwrap();
        assert!(year >= 2024, "{ts}");
        assert_eq!(&ts[4..5], "-");
        assert_eq!(&ts[10..11], "T");
    }
}
