//! TPC-H workload substrate.
//!
//! The paper evaluates on "TPC-H queries containing at least one join",
//! optimized on an extended Postgres whose planner "may split up
//! optimization of one TPC-H query into multiple optimizations of
//! sub-queries with different numbers of tables" (Section 6.1). We rebuild
//! that workload analytically:
//!
//! * [`schema`] — the eight TPC-H tables with their standard cardinalities
//!   at a configurable scale factor;
//! * [`queries`] — the select-project-join blocks of the 22 TPC-H queries
//!   as join graphs with foreign-key selectivities and local-filter
//!   selectivities. The block sizes reproduce the paper's distribution:
//!   2–6 and 8 joined tables, with **no 7-table block** (the missing bar
//!   in Figures 3–5), and the single 8-table block (from Q8) touching
//!   several small tables (footnote 4).
//!
//! No actual tuples are generated — the optimizers only consume
//! statistics, exactly like the paper's cost models.

#![warn(missing_docs)]

pub mod queries;
pub mod schema;

pub use queries::{all_join_blocks, join_blocks_with_tables, query_block, table_counts};
pub use schema::{tpch_catalog, TpchTable, SF_DEFAULT};
