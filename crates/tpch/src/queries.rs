//! Select-project-join blocks of the 22 TPC-H queries.
//!
//! Each block is a join graph over the TPC-H catalog with foreign-key join
//! selectivities (`1 / |referenced table|`) and approximate local-filter
//! selectivities derived from the query predicates (date windows, segment
//! and brand equality, etc. — the standard textbook estimates). Queries
//! without a join (Q1, Q6) are omitted, matching the paper's "TPC-H
//! queries containing at least one join". Nested queries are decomposed
//! into separate blocks, mirroring how the Postgres planner "may split up
//! optimization of one TPC-H query into multiple optimizations of
//! sub-queries" (Section 6.1); blocks are named `q<NN>` for the main block
//! and `q<NN>s` for a sub-query block.
//!
//! The resulting table-count distribution matches the paper's figures:
//! blocks with 2, 3, 4, 5, 6, and 8 tables — and none with 7.

use crate::schema::{tpch_catalog, TpchTable};
use moqo_catalog::Catalog;
use moqo_query::{JoinGraph, QuerySpec};
use std::sync::Arc;

use TpchTable::*;

/// FK-join selectivity: one match per referenced key.
fn fk(referenced: TpchTable, sf: f64) -> f64 {
    1.0 / referenced.cardinality(sf) as f64
}

struct BlockDef {
    name: &'static str,
    tables: Vec<TpchTable>,
    /// Edges as (position, position, referenced table for selectivity).
    edges: Vec<(usize, usize, TpchTable)>,
    /// Local filters as (position, selectivity).
    filters: Vec<(usize, f64)>,
}

fn block_defs() -> Vec<BlockDef> {
    vec![
        // Q2: part ⋈ partsupp ⋈ supplier ⋈ nation ⋈ region, p_size/p_type
        // filters.
        BlockDef {
            name: "q02",
            tables: vec![Part, PartSupp, Supplier, Nation, Region],
            edges: vec![
                (0, 1, Part),
                (1, 2, Supplier),
                (2, 3, Nation),
                (3, 4, Region),
            ],
            filters: vec![(0, 0.0013), (4, 0.2)],
        },
        // Q2 correlated sub-query: min supply cost per part.
        BlockDef {
            name: "q02s",
            tables: vec![PartSupp, Supplier, Nation, Region],
            edges: vec![(0, 1, Supplier), (1, 2, Nation), (2, 3, Region)],
            filters: vec![(3, 0.2)],
        },
        // Q3: customer ⋈ orders ⋈ lineitem; segment + two date filters.
        BlockDef {
            name: "q03",
            tables: vec![Customer, Orders, Lineitem],
            edges: vec![(0, 1, Customer), (1, 2, Orders)],
            filters: vec![(0, 0.2), (1, 0.48), (2, 0.54)],
        },
        // Q4: orders with EXISTS(lineitem) — flattened to a semi-join block.
        BlockDef {
            name: "q04",
            tables: vec![Orders, Lineitem],
            edges: vec![(0, 1, Orders)],
            filters: vec![(0, 0.038), (1, 0.63)],
        },
        // Q5: customer ⋈ orders ⋈ lineitem ⋈ supplier ⋈ nation ⋈ region.
        BlockDef {
            name: "q05",
            tables: vec![Customer, Orders, Lineitem, Supplier, Nation, Region],
            edges: vec![
                (0, 1, Customer),
                (1, 2, Orders),
                (2, 3, Supplier),
                (3, 4, Nation),
                (0, 4, Nation),
                (4, 5, Region),
            ],
            filters: vec![(1, 0.152), (5, 0.2)],
        },
        // Q7: supplier ⋈ lineitem ⋈ orders ⋈ customer ⋈ nation ⋈ nation
        // (nation appears twice — a self-join on the catalog table).
        BlockDef {
            name: "q07",
            tables: vec![Supplier, Lineitem, Orders, Customer, Nation, Nation],
            edges: vec![
                (0, 1, Supplier),
                (1, 2, Orders),
                (2, 3, Customer),
                (0, 4, Nation),
                (3, 5, Nation),
            ],
            filters: vec![(1, 0.305), (4, 0.04), (5, 0.04)],
        },
        // Q8: the only 8-table block; touches the small nation (twice) and
        // region tables — footnote 4's "many small tables".
        BlockDef {
            name: "q08",
            tables: vec![
                Part, Supplier, Lineitem, Orders, Customer, Nation, Nation, Region,
            ],
            edges: vec![
                (0, 2, Part),
                (1, 2, Supplier),
                (2, 3, Orders),
                (3, 4, Customer),
                (4, 5, Nation),
                (5, 7, Region),
                (1, 6, Nation),
            ],
            filters: vec![(0, 0.0007), (3, 0.305), (7, 0.2)],
        },
        // Q9: part ⋈ supplier ⋈ lineitem ⋈ partsupp ⋈ orders ⋈ nation.
        BlockDef {
            name: "q09",
            tables: vec![Part, Supplier, Lineitem, PartSupp, Orders, Nation],
            edges: vec![
                (0, 2, Part),
                (1, 2, Supplier),
                (2, 3, PartSupp),
                (2, 4, Orders),
                (1, 5, Nation),
            ],
            filters: vec![(0, 0.055)],
        },
        // Q10: customer ⋈ orders ⋈ lineitem ⋈ nation; returned-flag filter.
        BlockDef {
            name: "q10",
            tables: vec![Customer, Orders, Lineitem, Nation],
            edges: vec![(0, 1, Customer), (1, 2, Orders), (0, 3, Nation)],
            filters: vec![(1, 0.038), (2, 0.25)],
        },
        // Q11: partsupp ⋈ supplier ⋈ nation.
        BlockDef {
            name: "q11",
            tables: vec![PartSupp, Supplier, Nation],
            edges: vec![(0, 1, Supplier), (1, 2, Nation)],
            filters: vec![(2, 0.04)],
        },
        // Q12: orders ⋈ lineitem; ship-mode and date filters.
        BlockDef {
            name: "q12",
            tables: vec![Orders, Lineitem],
            edges: vec![(0, 1, Orders)],
            filters: vec![(1, 0.005)],
        },
        // Q13: customer left-join orders (treated as inner block).
        BlockDef {
            name: "q13",
            tables: vec![Customer, Orders],
            edges: vec![(0, 1, Customer)],
            filters: vec![(1, 0.98)],
        },
        // Q14: lineitem ⋈ part; one-month date window.
        BlockDef {
            name: "q14",
            tables: vec![Lineitem, Part],
            edges: vec![(0, 1, Part)],
            filters: vec![(0, 0.0125)],
        },
        // Q15: supplier ⋈ revenue view (aggregated lineitem).
        BlockDef {
            name: "q15",
            tables: vec![Supplier, Lineitem],
            edges: vec![(0, 1, Supplier)],
            filters: vec![(1, 0.0375)],
        },
        // Q16: partsupp ⋈ part; brand/type/size filters.
        BlockDef {
            name: "q16",
            tables: vec![PartSupp, Part],
            edges: vec![(0, 1, Part)],
            filters: vec![(1, 0.1)],
        },
        // Q17: lineitem ⋈ part; brand + container filters.
        BlockDef {
            name: "q17",
            tables: vec![Lineitem, Part],
            edges: vec![(0, 1, Part)],
            filters: vec![(1, 0.001)],
        },
        // Q18: customer ⋈ orders ⋈ lineitem (large-order hunt).
        BlockDef {
            name: "q18",
            tables: vec![Customer, Orders, Lineitem],
            edges: vec![(0, 1, Customer), (1, 2, Orders)],
            filters: vec![],
        },
        // Q19: lineitem ⋈ part; disjunctive brand/container predicate.
        BlockDef {
            name: "q19",
            tables: vec![Lineitem, Part],
            edges: vec![(0, 1, Part)],
            filters: vec![(0, 0.02), (1, 0.002)],
        },
        // Q20: supplier ⋈ nation, with a partsupp ⋈ part sub-query block.
        BlockDef {
            name: "q20",
            tables: vec![Supplier, Nation],
            edges: vec![(0, 1, Nation)],
            filters: vec![(1, 0.04)],
        },
        BlockDef {
            name: "q20s",
            tables: vec![PartSupp, Part],
            edges: vec![(0, 1, Part)],
            filters: vec![(1, 0.011)],
        },
        // Q21: supplier ⋈ lineitem ⋈ orders ⋈ nation.
        BlockDef {
            name: "q21",
            tables: vec![Supplier, Lineitem, Orders, Nation],
            edges: vec![(0, 1, Supplier), (1, 2, Orders), (0, 3, Nation)],
            filters: vec![(2, 0.49), (3, 0.04)],
        },
        // Q22: customer anti-join orders (flattened).
        BlockDef {
            name: "q22",
            tables: vec![Customer, Orders],
            edges: vec![(0, 1, Customer)],
            filters: vec![(0, 0.28)],
        },
    ]
}

fn build_block(def: &BlockDef, catalog: &Arc<Catalog>, sf: f64) -> QuerySpec {
    let mut g = JoinGraph::new(def.tables.iter().map(|t| t.id()).collect());
    for &(a, b, referenced) in &def.edges {
        g.add_edge(a, b, fk(referenced, sf));
    }
    for &(pos, sel) in &def.filters {
        g.set_filter(pos, sel);
    }
    QuerySpec::new(def.name, g, Arc::clone(catalog))
}

/// All TPC-H join blocks (queries with at least one join, nested queries
/// decomposed) at scale factor `sf`.
pub fn all_join_blocks(sf: f64) -> Vec<QuerySpec> {
    let catalog = tpch_catalog(sf);
    block_defs()
        .iter()
        .map(|d| build_block(d, &catalog, sf))
        .collect()
}

/// The blocks joining exactly `n` tables.
pub fn join_blocks_with_tables(n: usize, sf: f64) -> Vec<QuerySpec> {
    all_join_blocks(sf)
        .into_iter()
        .filter(|q| q.n_tables() == n)
        .collect()
}

/// A single block by name (e.g. `"q05"`).
pub fn query_block(name: &str, sf: f64) -> Option<QuerySpec> {
    all_join_blocks(sf).into_iter().find(|q| q.name == name)
}

/// The distinct table counts appearing in the workload, ascending — the
/// x-axis of the paper's Figures 3–5.
pub fn table_counts(sf: f64) -> Vec<usize> {
    let mut counts: Vec<usize> = all_join_blocks(sf).iter().map(|q| q.n_tables()).collect();
    counts.sort_unstable();
    counts.dedup();
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_shape_matches_paper() {
        // Figures 3-5 group by 2, 3, 4, 5, 6, 8 tables; "no TPC-H
        // sub-query joins seven tables".
        assert_eq!(table_counts(1.0), vec![2, 3, 4, 5, 6, 8]);
    }

    #[test]
    fn every_block_is_connected_with_at_least_one_join() {
        for q in all_join_blocks(1.0) {
            assert!(q.n_tables() >= 2, "{} has no join", q.name);
            assert!(q.graph.is_connected(), "{} is disconnected", q.name);
            assert!(!q.graph.edges.is_empty());
        }
    }

    #[test]
    fn exactly_one_eight_table_block_from_q8() {
        let blocks = join_blocks_with_tables(8, 1.0);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].name, "q08");
        // Footnote 4: the 8-table query touches many small tables (nation
        // twice, region) that admit no sampling strategies.
        let small = blocks[0]
            .graph
            .tables
            .iter()
            .filter(|t| blocks[0].catalog.table(**t).cardinality < 10_000)
            .count();
        assert!(small >= 3);
    }

    #[test]
    fn q7_contains_a_nation_self_join() {
        let q7 = query_block("q07", 1.0).unwrap();
        let nation_positions = q7
            .graph
            .tables
            .iter()
            .filter(|t| **t == TpchTable::Nation.id())
            .count();
        assert_eq!(nation_positions, 2);
    }

    #[test]
    fn block_lookup_by_name() {
        assert!(query_block("q05", 1.0).is_some());
        assert!(query_block("q01", 1.0).is_none()); // no join
        assert!(query_block("nope", 1.0).is_none());
    }

    #[test]
    fn fk_joins_give_plausible_cardinalities() {
        // customer ⋈ orders ⋈ lineitem without filters ≈ |lineitem|.
        let q18 = query_block("q18", 1.0).unwrap();
        let card = q18.cardinality(q18.all_tables());
        let li = TpchTable::Lineitem.cardinality(1.0) as f64;
        assert!(
            card > li * 0.5 && card < li * 2.0,
            "q18 cardinality {card} implausible vs lineitem {li}"
        );
    }

    #[test]
    fn scale_factor_scales_block_cardinalities() {
        let q3_small = query_block("q03", 0.1).unwrap();
        let q3_big = query_block("q03", 1.0).unwrap();
        let c_small = q3_small.cardinality(q3_small.all_tables());
        let c_big = q3_big.cardinality(q3_big.all_tables());
        assert!(c_big > c_small * 5.0);
    }

    #[test]
    fn workload_has_around_twenty_blocks() {
        let n = all_join_blocks(1.0).len();
        assert!((20..=24).contains(&n), "unexpected block count {n}");
    }
}
