//! The `repro churn` experiment: bound-drag and refocus storms against
//! one interactive [`Session`] per query topology.
//!
//! The paper's evaluation refines with bounds fixed to infinity; the
//! interactive story (Figure 1c, Example 3) is the opposite — a user
//! dragging bounds mid-session, each drag resetting the resolution
//! focus (Algorithm 1 lines 19-21) and forcing a recombination pass
//! over plan sets that were already combined in an earlier churn
//! epoch. Those passes are exactly what the watermark rectangles and
//! the `IsFresh` hash fallback exist for, so this experiment hammers
//! them: after a full refinement ladder, a deterministic storm of
//! tighten / drag / loosen / refocus bound changes runs, each followed
//! by refinement back to the target resolution, and the
//! [`OptimizerStats`](moqo_core::OptimizerStats) deltas report how much
//! plan work the storm re-did versus skipped.

use moqo_core::{IamaConfig, IamaOptimizer, Session, SessionCommand};
use moqo_cost::{Bounds, ResolutionSchedule};
use moqo_costmodel::{
    CostModel, MetricSet, SharedCostModel, StandardCostModel, StandardCostModelConfig,
};
use moqo_query::{testkit, QuerySpec};
use std::sync::Arc;
use std::time::Instant;

use crate::harness::{Experiment, ExperimentReport, Trial};
use crate::stats::{Samples, Summary};
use crate::workload::XorShift;

/// Lean model for the storm ladders: small option sets, no evaluation
/// spin — the counters being reported are structure metrics.
fn lean_model() -> SharedCostModel {
    Arc::new(StandardCostModel::new(
        MetricSet::paper(),
        StandardCostModelConfig {
            dops: vec![1, 4],
            sampling_rates_pm: vec![100, 500],
            eval_spin: 0,
            ..StandardCostModelConfig::default()
        },
    ))
}

/// The topologies the storm runs over.
fn churn_specs(fast: bool) -> Vec<Arc<QuerySpec>> {
    let n = if fast { 7 } else { 9 };
    vec![
        Arc::new(testkit::chain_query(n, 100_000)),
        Arc::new(testkit::star_query(if fast { 5 } else { 7 }, 100_000)),
        Arc::new(testkit::clique_query(if fast { 4 } else { 6 }, 1000)),
    ]
}

/// Applies `Refine` until the session has invoked at the ladder's
/// target resolution.
fn refine_to_target(session: &mut Session, steps: usize) {
    for _ in 0..steps {
        session
            .apply(SessionCommand::Refine)
            .expect("live session refines");
    }
}

/// Median of one cost metric over the currently visualized frontier,
/// `None` when the bounded frontier is empty.
fn frontier_p50(session: &Session, metric: usize) -> Option<f64> {
    let costs = session.frontier().costs();
    let samples: Samples = costs.iter().map(|c| c[metric]).collect();
    Summary::of(&samples).map(|s| s.p50)
}

/// Runs the ladder-then-storm sequence for one query and records the
/// re-optimization economy into `trial`.
fn run_storm(fast: bool, spec: &Arc<QuerySpec>, trial: &mut Trial) {
    let model = lean_model();
    let dim = model.dim();
    let schedule = ResolutionSchedule::linear(if fast { 2 } else { 4 }, 1.05, 0.5);
    let r_max = schedule.r_max();
    let opt = IamaOptimizer::with_config(spec.clone(), model, schedule, IamaConfig::default());
    let mut session = Session::new(opt);

    // Phase 1: the uninterrupted ladder (the paper's scenario).
    refine_to_target(&mut session, r_max + 1);
    let base = session.optimizer().stats().clone();
    let ladder_plans = base.plans_generated;

    // Phase 2: the storm. Every bound change resets the resolution
    // focus to 0; refining back to the target makes each round a full
    // re-optimization pass under the new focus.
    let rounds = if fast { 8 } else { 16 };
    let mut rng = XorShift::new(0xc402_c402);
    let mut round_us = Samples::with_capacity(rounds);
    for _ in 0..rounds {
        let t_mid = frontier_p50(&session, 0);
        let bounds = match (rng.next_u64() % 4, t_mid) {
            // Tighten: clamp the time metric at the visualized median.
            (0, Some(mid)) => Bounds::unbounded(dim).with_limit(0, mid),
            // Drag: jitter the time bound around the median, the way a
            // user wiggles a slider.
            (1, Some(mid)) => {
                Bounds::unbounded(dim).with_limit(0, mid * (0.75 + 0.5 * rng.next_f64()))
            }
            // Refocus: move the constraint to the last metric entirely.
            (3, _) => match frontier_p50(&session, dim - 1) {
                Some(mid) => Bounds::unbounded(dim).with_limit(dim - 1, mid),
                None => Bounds::unbounded(dim),
            },
            // Loosen (also the fallback when the frontier emptied).
            _ => Bounds::unbounded(dim),
        };
        let t0 = Instant::now();
        session
            .apply(SessionCommand::SetBounds(bounds))
            .expect("well-formed bounds");
        refine_to_target(&mut session, r_max);
        round_us.push(t0.elapsed().as_secs_f64() * 1e6);
    }

    // Finish loose so the final frontier figure is the unbounded one.
    session
        .apply(SessionCommand::SetBounds(Bounds::unbounded(dim)))
        .expect("well-formed bounds");
    refine_to_target(&mut session, r_max);

    let stats = session.optimizer().stats();
    trial.int("tables", spec.n_tables() as u64);
    trial.int("rounds", rounds as u64);
    trial.int("invocations", session.invocations());
    trial.int("ladder_plans", ladder_plans);
    // Plans generated after the ladder: the storm's re-optimization
    // cost. Deterministic (seeded storm, deterministic model), so it
    // gates — churn re-pruning known plans must not regress into
    // regenerating them.
    trial.int_lower("storm_plans", stats.plans_generated - ladder_plans);
    // Splits settled wholesale: a watermark rectangle covering the full
    // cross product retires the split before a single pair forms, so
    // the storm's skip economy shows up here, not in the pair counters.
    trial.int(
        "storm_splits_visited",
        stats.splits_visited - base.splits_visited,
    );
    trial.int_higher(
        "storm_splits_skipped",
        stats.splits_skipped - base.splits_skipped,
    );
    trial.int(
        "storm_pairs_skipped_watermark",
        stats.pairs_skipped_watermark - base.pairs_skipped_watermark,
    );
    trial.int(
        "storm_stale_pairs_skipped",
        stats.stale_pairs_skipped - base.stale_pairs_skipped,
    );
    trial.int("frontier_size", session.frontier().len() as u64);
    trial.summary_us("round_", Summary::of_or_zero(&round_us));
}

/// Runs the bound-drag/refocus storm over each topology and reports
/// per-round latency and the skip-path economy.
pub fn churn_experiment(fast: bool) -> ExperimentReport {
    let mut exp = Experiment::new("churn", fast, || ())
        .title("bound churn: drag/refocus storms against parked plan sets");
    for spec in churn_specs(fast) {
        let label = spec.name.clone();
        exp = exp.variant("bound storm", label, move |_, t| run_storm(fast, &spec, t));
    }
    exp.conclusion(
        "Every bound change resets the resolution focus, yet the storm \
         generates almost no new plans: recombination passes settle \
         positionally on the watermark rectangles, with the IsFresh hash \
         fallback catching pairs from older churn epochs.",
    )
    .run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storms_reprune_instead_of_regenerating() {
        let report = churn_experiment(true);
        assert_eq!(report.variants.len(), 3);
        for v in &report.variants {
            let counter = |key: &str| report.metric(&v.label, key).unwrap().as_u64().unwrap();
            assert!(counter("ladder_plans") > 0, "{}", v.label);
            assert!(counter("frontier_size") > 0, "{}", v.label);
            // The storm's recombination passes must be settled by the
            // skip paths, not by regenerating the plan space: the
            // watermark rectangles retire whole splits, and skips
            // dominate fresh plan generation across the storm.
            let skips = counter("storm_splits_skipped");
            assert!(
                skips > counter("storm_plans"),
                "{}: {skips} split skips vs {} regenerated plans",
                v.label,
                counter("storm_plans")
            );
        }
    }
}
