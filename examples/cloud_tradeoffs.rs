//! Example 1 from the paper: SQL processing in the cloud, where buying
//! more resources speeds up execution — a tradeoff between execution time
//! and monetary fees. The user sets a budget (a cost bound on fees) and
//! inspects the tradeoffs inside it.
//!
//! ```text
//! cargo run --release --example cloud_tradeoffs
//! ```

use moqo::prelude::*;
use moqo::viz::{render_scatter, ScatterOptions};
use std::sync::Arc;

fn main() {
    // TPC-H Q5: a six-table join (customer/orders/lineitem/supplier/
    // nation/region) at scale factor 0.1.
    let spec = Arc::new(moqo::tpch::query_block("q05", 0.1).expect("q05 exists"));

    // Two metrics: execution time and fees (core-seconds billed).
    let model = Arc::new(StandardCostModel::cloud_metrics());
    let schedule = ResolutionSchedule::linear(8, 1.02, 0.4);
    let mut optimizer = IamaOptimizer::new(spec.clone(), model.clone(), schedule);

    // Phase 1: no budget — discover the whole tradeoff curve.
    let unbounded = Bounds::unbounded(model.dim());
    for _ in 0..5 {
        optimizer.run_invocation(unbounded);
    }
    let frontier = optimizer.frontier(&unbounded, 4);
    println!("unconstrained tradeoffs ({} plans):", frontier.len());
    let opts = ScatterOptions {
        x_metric: 0,
        y_metric: 1,
        x_label: "execution time".into(),
        y_label: "fees".into(),
        ..ScatterOptions::default()
    };
    println!("{}", render_scatter(&frontier.costs(), &opts));

    // Phase 2: the user sets a fee budget at 60 % of the most expensive
    // Pareto plan. The optimizer reuses everything it already knows
    // (incrementality) — plans outside the budget were kept as candidates.
    let max_fee = frontier.costs().iter().map(|c| c[1]).fold(0.0f64, f64::max);
    let budget = Bounds::unbounded(model.dim()).with_limit(1, max_fee * 0.6);
    println!("setting fee budget: {budget}\n");
    let mut last_report = None;
    for _ in 0..9 {
        last_report = Some(optimizer.run_invocation(budget));
    }
    let report = last_report.unwrap();
    let bounded = optimizer.frontier(&budget, report.resolution);
    println!(
        "within budget: {} plans (finest resolution reached: {})",
        bounded.len(),
        report.resolution
    );
    let opts = ScatterOptions {
        bounds: Some(budget),
        ..opts
    };
    println!("{}", render_scatter(&bounded.costs(), &opts));

    // Pick the fastest plan within budget — what the user would click.
    let choice = bounded
        .min_by_metric(0)
        .expect("at least one plan in budget");
    println!(
        "selected plan: time={:.2}, fees={:.4}",
        choice.cost[0], choice.cost[1]
    );
    println!("{}", moqo::plan::explain(optimizer.arena(), choice.plan));
}
