//! SQL tokenizer.

use std::fmt;

/// A SQL token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Keyword or identifier (keywords are matched case-insensitively by
    /// the parser; the original spelling is preserved here).
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// Single-quoted string literal (quotes stripped).
    String(String),
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `*`
    Star,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Number(n) => write!(f, "{n}"),
            Token::String(s) => write!(f, "'{s}'"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Eq => write!(f, "="),
            Token::Neq => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Star => write!(f, "*"),
        }
    }
}

/// A lexing error with byte position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.position)
    }
}

/// Tokenizes a SQL string.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Neq);
                    i += 2;
                } else {
                    return Err(LexError {
                        position: i,
                        message: "expected '=' after '!'".into(),
                    });
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    tokens.push(Token::Le);
                    i += 2;
                }
                Some(b'>') => {
                    tokens.push(Token::Neq);
                    i += 2;
                }
                _ => {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(LexError {
                        position: i,
                        message: "unterminated string literal".into(),
                    });
                }
                tokens.push(Token::String(input[start..j].to_string()));
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && ((bytes[i] as char).is_ascii_digit() || bytes[i] == b'.') {
                    // A dot followed by a non-digit is a separate token
                    // (not part of this number).
                    if bytes[i] == b'.'
                        && !bytes
                            .get(i + 1)
                            .map(|b| (*b as char).is_ascii_digit())
                            .unwrap_or(false)
                    {
                        break;
                    }
                    i += 1;
                }
                let text = &input[start..i];
                let value = text.parse().map_err(|_| LexError {
                    position: start,
                    message: format!("invalid number {text:?}"),
                })?;
                tokens.push(Token::Number(value));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(input[start..i].to_string()));
            }
            other => {
                return Err(LexError {
                    position: i,
                    message: format!("unexpected character {other:?}"),
                });
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_a_simple_query() {
        let toks = tokenize("SELECT a.x FROM t a WHERE a.x >= 1.5").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("SELECT".into()),
                Token::Ident("a".into()),
                Token::Dot,
                Token::Ident("x".into()),
                Token::Ident("FROM".into()),
                Token::Ident("t".into()),
                Token::Ident("a".into()),
                Token::Ident("WHERE".into()),
                Token::Ident("a".into()),
                Token::Dot,
                Token::Ident("x".into()),
                Token::Ge,
                Token::Number(1.5),
            ]
        );
    }

    #[test]
    fn operators_and_strings() {
        let toks = tokenize("x <> 'ab c' ( ) , <= < > != *").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("x".into()),
                Token::Neq,
                Token::String("ab c".into()),
                Token::LParen,
                Token::RParen,
                Token::Comma,
                Token::Le,
                Token::Lt,
                Token::Gt,
                Token::Neq,
                Token::Star,
            ]
        );
    }

    #[test]
    fn number_dot_ident_disambiguation() {
        // "t1.c" must not lex "1.c" as a number.
        let toks = tokenize("t1.c = 2.");
        // trailing "2." -> number 2 then dot.
        let toks = toks.unwrap();
        assert_eq!(toks[0], Token::Ident("t1".into()));
        assert_eq!(toks[1], Token::Dot);
        assert_eq!(toks[2], Token::Ident("c".into()));
        assert_eq!(toks[4], Token::Number(2.0));
        assert_eq!(toks[5], Token::Dot);
    }

    #[test]
    fn error_positions() {
        let err = tokenize("a ? b").unwrap_err();
        assert_eq!(err.position, 2);
        let err = tokenize("'unterminated").unwrap_err();
        assert!(err.message.contains("unterminated"));
        let err = tokenize("a ! b").unwrap_err();
        assert!(err.message.contains("expected '='"));
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").unwrap().is_empty());
        assert!(tokenize("   \n\t ").unwrap().is_empty());
    }
}
