//! A full scripted interactive session (the paper's Figure 1 workflow):
//! coarse frontier quickly → refinement without input → the user drags a
//! bound → focused refinement → plan selection.
//!
//! ```text
//! cargo run --release --example interactive_session
//! ```

use moqo::core::{Session, StepOutcome, UserEvent};
use moqo::prelude::*;
use moqo::viz::{render_scatter, ScatterOptions};
use std::sync::Arc;

fn main() {
    let spec = Arc::new(moqo::tpch::query_block("q09", 0.1).expect("q09 exists"));
    let model = Arc::new(StandardCostModel::paper_metrics());
    let schedule = ResolutionSchedule::linear(12, 1.01, 0.3);
    let optimizer = IamaOptimizer::new(spec.clone(), model.clone(), schedule);
    let mut session = Session::new(optimizer);

    let plot = |frontier: &moqo::core::FrontierSnapshot, bounds: Option<Bounds>| {
        let opts = ScatterOptions {
            width: 56,
            height: 14,
            x_metric: 0,
            y_metric: 1,
            x_label: "time".into(),
            y_label: "cores".into(),
            bounds,
        };
        render_scatter(&frontier.costs(), &opts)
    };

    // Step 1: the first invocation returns a coarse frontier quickly.
    let first = match session.step(UserEvent::None) {
        StepOutcome::Continue { report, frontier } => {
            println!(
                "first approximation after {:.1} ms ({} plans):",
                report.seconds() * 1e3,
                frontier.len()
            );
            println!("{}", plot(&frontier, None));
            frontier
        }
        _ => unreachable!(),
    };

    // Steps 2-4: refinement without user input.
    let mut refined = first;
    for _ in 0..3 {
        if let StepOutcome::Continue { frontier, .. } = session.step(UserEvent::None) {
            refined = frontier;
        }
    }
    println!("after three refinements ({} plans):", refined.len());
    println!("{}", plot(&refined, None));

    // Step 5: the user reserves at most 4 cores.
    let bounds = Bounds::unbounded(model.dim()).with_limit(1, 4.0);
    println!("user drags the cores bound to 4: {bounds}");
    session.step(UserEvent::SetBounds(bounds));

    // Steps 6-8: focused refinement under the new bounds (resolution was
    // reset to 0 and climbs again; candidate plans are reused, nothing is
    // regenerated).
    let mut focused = None;
    for _ in 0..3 {
        if let StepOutcome::Continue { frontier, report } = session.step(UserEvent::None) {
            println!(
                "  focused invocation at resolution {}: {} plans, {:.1} ms",
                report.resolution,
                frontier.len(),
                report.seconds() * 1e3
            );
            focused = Some(frontier);
        }
    }
    let focused = focused.expect("session still running");
    println!(
        "\nfrontier within the core budget ({} plans):",
        focused.len()
    );
    println!("{}", plot(&focused, Some(bounds)));

    // Step 9: the user clicks the plan with the best time within budget.
    let choice = focused.min_by_metric(0).expect("non-empty frontier");
    match session.step(UserEvent::SelectPlan(choice.plan)) {
        StepOutcome::Selected(plan) => {
            println!(
                "selected plan {plan:?}: time={:.1}, cores={:.0}, error={:.3}",
                choice.cost[0], choice.cost[1], choice.cost[2]
            );
            println!("{}", moqo::plan::explain(session.optimizer().arena(), plan));
        }
        _ => unreachable!(),
    }
    // Incrementality receipt: nothing was ever generated twice.
    let stats = session.optimizer().stats();
    println!(
        "session totals: {} invocations, {} plans generated, {} pairs combined",
        stats.invocations, stats.plans_generated, stats.pairs_generated
    );
}
