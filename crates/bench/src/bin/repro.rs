//! Regenerates the paper's figures as terminal tables and plots.
//!
//! ```text
//! cargo run --release -p moqo-bench --bin repro -- <experiment> [--sf <f>] [--fast]
//! ```
//!
//! Experiments: `fig1`, `fig2a`, `fig2b`, `fig3`, `fig4`, `fig5`,
//! `lemmas`, `quality`, `ablation-index`, `ablation-delta`,
//! `ablation-shadow`, `bounds`, `space`, `amortized`, `schedules`,
//! `enumeration`, `pruning`, `serve`, `net`, `net-scale`, `similarity`,
//! `fleet`, `fleet-router`, `replay`, `churn`, or `all`.
//! `--fast` shrinks the scale factor and level counts for a quick smoke
//! run; `--stats` appends the enumeration-plane counter table (splits
//! visited/skipped, pairs skipped, scratch high-water) regardless of the
//! chosen experiment. `net-scale` takes `--connections <n>` (default
//! 10000; 512 with `--fast`); `fleet-router` takes `--watch <ms>`
//! (default 500) and `--ticks <n>` (default: run until SIGTERM).
//!
//! The `enumeration`, `pruning`, `serve`, `net`, `net-scale`,
//! `similarity`, `fleet`, `replay`, `churn`, and bounded `fleet-router`
//! experiments additionally drop machine-readable `BENCH_<name>.json`
//! files — one shared envelope schema — into the working directory
//! (schema in `docs/benchmarks.md`).
//!
//! Two envelopes compare with the perf-trajectory gate:
//!
//! ```text
//! repro diff <old.json> <new.json> [--tolerance <fraction>]
//! ```
//!
//! which exits 0 when no direction-gated metric regressed beyond the
//! tolerance, 1 on a regression or schema drift, and 2 on unreadable
//! input.
//!
//! `repro fleet` spawns real serving processes by re-executing this
//! binary in a hidden child mode which serves one fleet node until its
//! stdin closes:
//!
//! ```text
//! repro fleet-node --id <id> --store <dir>
//! ```

use moqo_baselines::one_shot;
use moqo_bench::*;
use moqo_core::{IamaConfig, IamaOptimizer, Session, SessionCommand};
use moqo_cost::{Bounds, ResolutionSchedule};
use moqo_costmodel::{CostModel, StandardCostModel};
use moqo_tpch::query_block;
use moqo_viz::{render_scatter, ScatterOptions, TextTable};
use std::env;
use std::sync::Arc;
use std::time::Duration;

struct Cli {
    experiment: String,
    sf: f64,
    fast: bool,
    stats: bool,
    /// `net-scale`: connections to hold (default 10000, or 512 with
    /// `--fast`).
    connections: Option<usize>,
    /// `fleet-router`: watch-loop cadence in milliseconds.
    watch_ms: u64,
    /// `fleet-router`: beats to run before tearing down (`None` = run
    /// until SIGTERM).
    ticks: Option<u64>,
}

const EXPERIMENTS: &[&str] = &[
    "fig1",
    "fig2a",
    "fig2b",
    "fig3",
    "fig4",
    "fig5",
    "lemmas",
    "quality",
    "ablation-index",
    "ablation-delta",
    "ablation-shadow",
    "bounds",
    "space",
    "amortized",
    "schedules",
    "enumeration",
    "pruning",
    "serve",
    "net",
    "net-scale",
    "similarity",
    "fleet",
    "fleet-router",
    "replay",
    "churn",
    "all",
];

fn usage() -> String {
    format!(
        "usage: repro [<experiment>] [--sf <positive number>] [--fast] [--stats]\n\
         \x20            [--connections <n>] [--watch <ms>] [--ticks <n>]\n\
         \x20      repro diff <old.json> <new.json> [--tolerance <fraction>]\n\
         experiments: {}\n\
         net-scale holds --connections idle sessions (default 10000; 512 with --fast).\n\
         fleet-router runs a liveness loop every --watch ms (default 500) until\n\
         SIGTERM, or for --ticks beats (with one induced node kill) when bounded.\n\
         diff compares two BENCH_*.json envelopes; exit 0 = clean, 1 = regression\n\
         or schema drift, 2 = unreadable input.",
        EXPERIMENTS.join(", ")
    )
}

/// Prints the problem plus usage to stderr and exits nonzero.
fn cli_error(msg: &str) -> ! {
    eprintln!("error: {msg}\n{}", usage());
    std::process::exit(2);
}

fn parse_cli() -> Cli {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut experiment = String::from("all");
    let mut sf = 1.0;
    let mut fast = false;
    let mut stats = false;
    let mut connections = None;
    let mut watch_ms = 500;
    let mut ticks = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            "--sf" => {
                i += 1;
                sf = match args.get(i).map(|s| s.parse::<f64>()) {
                    Some(Ok(v)) if v > 0.0 && v.is_finite() => v,
                    Some(_) => {
                        cli_error(&format!("--sf needs a positive number, got {:?}", args[i]))
                    }
                    None => cli_error("--sf needs a value"),
                };
            }
            "--fast" => fast = true,
            "--stats" => stats = true,
            "--connections" => {
                i += 1;
                connections = match args.get(i).map(|s| s.parse::<usize>()) {
                    Some(Ok(v)) if v > 0 => Some(v),
                    Some(_) => cli_error(&format!(
                        "--connections needs a positive count, got {:?}",
                        args[i]
                    )),
                    None => cli_error("--connections needs a value"),
                };
            }
            "--watch" => {
                i += 1;
                watch_ms = match args.get(i).map(|s| s.parse::<u64>()) {
                    Some(Ok(v)) if v > 0 => v,
                    Some(_) => cli_error(&format!(
                        "--watch needs a positive millisecond count, got {:?}",
                        args[i]
                    )),
                    None => cli_error("--watch needs a value"),
                };
            }
            "--ticks" => {
                i += 1;
                ticks = match args.get(i).map(|s| s.parse::<u64>()) {
                    Some(Ok(v)) if v > 0 => Some(v),
                    Some(_) => cli_error(&format!(
                        "--ticks needs a positive count, got {:?}",
                        args[i]
                    )),
                    None => cli_error("--ticks needs a value"),
                };
            }
            other if !other.starts_with('-') => {
                if !EXPERIMENTS.contains(&other) {
                    cli_error(&format!("unknown experiment {other:?}"));
                }
                experiment = other.to_string();
            }
            other => cli_error(&format!("unknown flag {other:?}")),
        }
        i += 1;
    }
    Cli {
        experiment,
        sf,
        fast,
        stats,
        connections,
        watch_ms,
        ticks,
    }
}

/// The hidden `fleet-node` child mode: parses `--id`/`--store` and
/// serves one fleet node until stdin closes (never returns).
fn fleet_node_main(args: &[String]) -> ! {
    let mut id: Option<&str> = None;
    let mut store: Option<&str> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--id" => {
                i += 1;
                id = args.get(i).map(String::as_str);
            }
            "--store" => {
                i += 1;
                store = args.get(i).map(String::as_str);
            }
            other => cli_error(&format!("unknown fleet-node flag {other:?}")),
        }
        i += 1;
    }
    match (id, store) {
        (Some(id), Some(store)) => fleet_node_serve(id, std::path::Path::new(store)),
        _ => cli_error("fleet-node needs --id <id> --store <dir>"),
    }
}

/// The `repro diff` subcommand: compares two `BENCH_*.json` envelopes
/// metric by metric and exits 0 (clean), 1 (regression or schema
/// drift), or 2 (unreadable input). Never returns.
fn diff_main(args: &[String]) -> ! {
    let mut tolerance = 0.5;
    let mut files: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tolerance" => {
                i += 1;
                tolerance = match args.get(i).map(|s| s.parse::<f64>()) {
                    Some(Ok(v)) if v >= 0.0 && v.is_finite() => v,
                    Some(_) => cli_error(&format!(
                        "--tolerance needs a nonnegative fraction, got {:?}",
                        args[i]
                    )),
                    None => cli_error("--tolerance needs a value"),
                };
            }
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other if !other.starts_with('-') => files.push(other),
            other => cli_error(&format!("unknown diff flag {other:?}")),
        }
        i += 1;
    }
    let [old, new] = files[..] else {
        cli_error("diff needs exactly two files: repro diff <old.json> <new.json>");
    };
    match diff_files(
        std::path::Path::new(old),
        std::path::Path::new(new),
        tolerance,
    ) {
        Ok(outcome) => {
            print!("{}", outcome.render());
            std::process::exit(if outcome.failed() { 1 } else { 0 });
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    // `repro fleet` re-executes this binary as its node processes; the
    // child mode must win before normal CLI parsing, and `diff` takes
    // positional file arguments no experiment takes.
    let raw: Vec<String> = env::args().skip(1).collect();
    match raw.first().map(String::as_str) {
        Some("fleet-node") => fleet_node_main(&raw[1..]),
        Some("diff") => diff_main(&raw[1..]),
        _ => {}
    }
    let cli = parse_cli();
    let model = bench_model();
    let run = |name: &str| cli.experiment == name || cli.experiment == "all";

    if run("fig1") {
        fig1(&model, cli.sf);
    }
    if run("fig2a") {
        fig2a(&model, cli.sf);
    }
    if run("fig2b") {
        fig2b(&model, cli.sf);
    }
    if run("fig3") {
        figure_times(
            "Figure 3 (avg time/invocation, alpha_T=1.01, alpha_S=0.05)",
            {
                let mut s = ExperimentSetup::fig3();
                s.sf = cli.sf;
                if cli.fast {
                    s.level_counts = vec![1, 5];
                }
                s
            },
            &model,
            false,
        );
    }
    if run("fig4") {
        figure_times(
            "Figure 4 (avg time/invocation, alpha_T=1.005, alpha_S=0.5)",
            {
                let mut s = ExperimentSetup::fig4();
                s.sf = cli.sf;
                if cli.fast {
                    s.level_counts = vec![1, 5];
                }
                s
            },
            &model,
            false,
        );
    }
    if run("fig5") {
        figure_times(
            "Figure 5 (MAX time/invocation, alpha_T=1.005, 20 levels)",
            {
                let mut s = ExperimentSetup::fig4();
                s.sf = cli.sf;
                s.level_counts = if cli.fast { vec![5] } else { vec![20] };
                s
            },
            &model,
            true,
        );
    }
    if run("lemmas") {
        lemmas(&model, cli.sf, cli.fast);
    }
    if run("quality") {
        quality(cli.sf);
    }
    if run("ablation-index") {
        ablations_index(&model, cli.sf);
    }
    if run("ablation-delta") {
        ablations_delta(&model, cli.sf);
    }
    if run("ablation-shadow") {
        ablation_shadow_exp(&model, cli.sf);
    }
    if run("bounds") {
        bounds_exp(&model, cli.sf);
    }
    if run("space") {
        space_exp(&model, cli.sf, cli.fast);
    }
    if run("amortized") {
        amortized_exp(&model, cli.sf);
    }
    if run("schedules") {
        schedules_exp(&model, cli.sf);
    }
    if run("enumeration") || cli.stats {
        enumeration_experiment(cli.sf, cli.fast).emit();
    }
    if run("pruning") {
        pruning_experiment(cli.fast).emit();
    }
    if run("serve") {
        serving_experiment(cli.fast).emit();
    }
    if run("net") {
        net_serving_experiment(cli.fast).emit();
    }
    if run("net-scale") {
        let connections = cli
            .connections
            .unwrap_or(if cli.fast { 512 } else { 10_000 });
        net_scale_experiment(connections, cli.fast).emit();
    }
    if run("similarity") {
        similarity_experiment(cli.fast).emit();
    }
    if run("replay") {
        replay_experiment(cli.fast).emit();
    }
    if run("churn") {
        churn_experiment(cli.fast).emit();
    }
    if run("fleet") {
        let exe = env::current_exe().expect("own executable path");
        fleet_experiment(&exe, cli.fast).emit();
    }
    if run("fleet-router") {
        // Under `all` the loop must terminate: bound it like `--ticks 5`.
        let ticks = match (cli.experiment.as_str(), cli.ticks) {
            ("all", None) => Some(5),
            (_, t) => t,
        };
        let exe = env::current_exe().expect("own executable path");
        let every = Duration::from_millis(cli.watch_ms);
        match ticks {
            // Bounded runs (with one induced node kill) go through the
            // harness and drop an envelope like every other experiment.
            Some(n) => fleet_router_experiment(&exe, every, n, cli.fast).emit(),
            // Unbounded: the daemonizable liveness loop, no envelope —
            // it ends by SIGTERM, not by finishing a measurement.
            None => {
                println!("=== Fleet router: liveness watch loop over 3 real node processes ===\n");
                let report = fleet_router_watch(&exe, every, None, cli.fast);
                println!(
                    "\n{} beats: {} death(s) found, {} orphaned key(s), {} adopted warm,\n\
                     \x20        {} leveling move(s).\n",
                    report.ticks,
                    report.deaths,
                    report.orphaned,
                    report.adopted_warm,
                    report.rebalanced
                );
            }
        }
    }
}

/// Future-work experiment: linear vs geometric precision ladders.
fn schedules_exp(model: &StandardCostModel, sf: f64) {
    println!("=== Schedule shapes: linear vs geometric precision ladders ===\n");
    let mut t = TextTable::new(vec![
        "query",
        "schedule",
        "avg s/inv",
        "MAX s/inv",
        "total s",
    ]);
    for name in ["q05", "q08"] {
        let spec = query_block(name, sf).expect("block");
        for (label, avg, max, total) in schedule_comparison(&spec, model, 20, 1.005, 0.5) {
            t.row(vec![
                name.to_string(),
                label.to_string(),
                format!("{avg:.4}"),
                format!("{max:.4}"),
                format!("{total:.4}"),
            ]);
        }
    }
    println!("{}", t.render());
    println!(
        "On the calibrated (cost-saturating) substrate the two ladders\n         perform within a few percent; the geometric ladder's advantage\n         grows on denser cost spaces where the finest levels dominate\n         (set `quantize_grid: None` in the model to observe it).\n"
    );
}

/// Theorem 5: amortized invocation time vs single-objective DP.
fn amortized_exp(model: &StandardCostModel, sf: f64) {
    println!("=== Theorem 5: amortized invocation time over long series ===\n");
    let schedule = ExperimentSetup::fig4().schedule(10);
    let mut t = TextTable::new(vec![
        "query",
        "amortized s/inv (50 rounds)",
        "first-ladder s/inv",
        "single-objective DP (s)",
    ]);
    for name in ["q03", "q05", "q09"] {
        let spec = query_block(name, sf).expect("block");
        let (amortized, first, single) = amortized_time(&spec, model, &schedule, 50);
        t.row(vec![
            name.to_string(),
            format!("{amortized:.5}"),
            format!("{first:.5}"),
            format!("{single:.5}"),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Amortized time collapses far below the first ladder; the remaining\n         steady-state cost per invocation is the O(3^n) table-set sweep.\n"
    );
}

/// Theorem 3: accumulated space after a full invocation series.
fn space_exp(model: &StandardCostModel, sf: f64, fast: bool) {
    println!("=== Theorem 3: accumulated space consumption on TPC-H ===\n");
    let schedule = ExperimentSetup::fig4().schedule(if fast { 5 } else { 20 });
    let mut t = TextTable::new(vec![
        "query",
        "tables",
        "plans (arena)",
        "result entries",
        "candidate entries",
        "frontier",
    ]);
    for r in space_consumption(model, &schedule, sf) {
        t.row(vec![
            r.query,
            r.n_tables.to_string(),
            r.plans.to_string(),
            r.result_entries.to_string(),
            r.candidate_entries.to_string(),
            r.frontier.to_string(),
        ]);
    }
    println!("{}", t.render());
}

/// Figure 1: the interactive refinement loop with a bound change.
fn fig1(model: &StandardCostModel, sf: f64) {
    println!("=== Figure 1: interactive anytime optimization (q05) ===\n");
    let spec = query_block("q05", sf).expect("q05");
    let schedule = ResolutionSchedule::linear(8, 1.01, 0.3);
    let opt = IamaOptimizer::new(Arc::new(spec.clone()), Arc::new(model.clone()), schedule);
    let mut session = Session::new(opt);
    let opts = |bounds| ScatterOptions {
        width: 64,
        height: 16,
        x_metric: 0,
        y_metric: 2,
        x_label: "time".into(),
        y_label: "error".into(),
        bounds,
    };
    // (a) first coarse approximation.
    session.apply(SessionCommand::Refine).expect("live session");
    {
        let frontier = session.frontier();
        println!("(a) first approximation ({} plans):", frontier.len());
        println!("{}", render_scatter(&frontier.costs(), &opts(None)));
    }
    // (b) refined without user interaction.
    for _ in 0..3 {
        session.apply(SessionCommand::Refine).expect("live session");
    }
    {
        let frontier = session.frontier();
        println!("(b) refined approximation ({} plans):", frontier.len());
        println!("{}", render_scatter(&frontier.costs(), &opts(None)));
    }
    // (c) the user drags the time bound to the median visualized time.
    let dim = model.dim();
    let t_mid = {
        let f = session
            .optimizer()
            .frontier(session.bounds(), session.resolution());
        let ts: Samples = f.costs().iter().map(|c| c[0]).collect();
        Summary::of(&ts).map(|s| s.p50).unwrap_or(f64::INFINITY)
    };
    let new_bounds = Bounds::unbounded(dim).with_limit(0, t_mid);
    session
        .apply(SessionCommand::SetBounds(new_bounds))
        .expect("live session");
    session.apply(SessionCommand::Refine).expect("live session");
    {
        let frontier = session.frontier();
        println!(
            "(c) after dragging the time bound to {t_mid:.2} ({} plans):",
            frontier.len()
        );
        println!(
            "{}",
            render_scatter(&frontier.costs(), &opts(Some(new_bounds)))
        );
    }
}

/// Figure 2a: anytime vs one-shot result quality over time.
fn fig2a(model: &StandardCostModel, sf: f64) {
    println!("=== Figure 2a: anytime vs one-shot quality over time (q05) ===\n");
    let spec = query_block("q05", sf).expect("q05");
    let schedule = ExperimentSetup::fig4().schedule(20);
    let (curve, oneshot_secs) = anytime_quality(&spec, model, &schedule);
    let mut t = TextTable::new(vec![
        "invocation",
        "cum. seconds",
        "coverage vs final",
        "frontier size",
    ]);
    for p in &curve {
        t.row(vec![
            p.invocation.to_string(),
            format!("{:.4}", p.cumulative_seconds),
            format!("{:.4}", p.coverage_vs_final),
            p.frontier_size.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "one-shot: first (and only) result after {oneshot_secs:.4}s\n\
         IAMA: first result after {:.4}s, {} refinements before the one-shot finishes\n",
        curve.first().map(|p| p.cumulative_seconds).unwrap_or(0.0),
        curve
            .iter()
            .filter(|p| p.cumulative_seconds < oneshot_secs)
            .count()
    );
}

/// Figure 2b: incremental vs memoryless per-invocation time.
fn fig2b(model: &StandardCostModel, sf: f64) {
    println!("=== Figure 2b: incremental vs memoryless run time per invocation (q05) ===\n");
    let spec = query_block("q05", sf).expect("q05");
    let schedule = ExperimentSetup::fig4().schedule(20);
    let rows = incremental_vs_memoryless(&spec, model, &schedule);
    let mut t = TextTable::new(vec!["invocation", "incremental (s)", "memoryless (s)"]);
    for (i, a, m) in rows {
        t.row(vec![i.to_string(), format!("{a:.4}"), format!("{m:.4}")]);
    }
    println!("{}", t.render());
}

/// Figures 3-5: per-invocation time tables grouped by table count.
fn figure_times(title: &str, setup: ExperimentSetup, model: &StandardCostModel, use_max: bool) {
    println!("=== {title} (sf={}) ===\n", setup.sf);
    let rows = figure_invocation_times(&setup, model);
    for &levels in &setup.level_counts {
        println!("With {levels} resolution level(s):");
        let mut t = TextTable::new(vec![
            "tables",
            "queries",
            "IAMA (s)",
            "memoryless (s)",
            "one-shot (s)",
            "speedup vs 1-shot",
        ]);
        for row in rows.iter().filter(|r| r.levels == levels) {
            let (iama, mem) = if use_max {
                (row.iama_max, row.memoryless_max)
            } else {
                (row.iama_avg, row.memoryless_avg)
            };
            t.row(vec![
                row.n_tables.to_string(),
                row.queries.to_string(),
                format!("{iama:.4}"),
                format!("{mem:.4}"),
                format!("{:.4}", row.oneshot),
                format!("{:.1}x", row.oneshot / iama.max(1e-9)),
            ]);
        }
        println!("{}", t.render());
    }
}

/// Lemma 5-7 invariant verification across the TPC-H workload.
fn lemmas(model: &StandardCostModel, sf: f64, fast: bool) {
    println!("=== Lemmas 5-7: incremental invariants on TPC-H ===\n");
    let schedule = ExperimentSetup::fig4().schedule(if fast { 5 } else { 20 });
    let reports = verify_invariants(model, &schedule, sf);
    let mut t = TextTable::new(vec![
        "query",
        "max plan gens (<=1)",
        "max pair gens (<=1)",
        "max cand retrievals",
        "bound rM+1",
    ]);
    let mut ok = true;
    for r in &reports {
        ok &= r.max_plan_generations <= 1
            && r.max_pair_generations <= 1
            && r.max_candidate_retrievals <= r.retrieval_bound;
        t.row(vec![
            r.query.clone(),
            r.max_plan_generations.to_string(),
            r.max_pair_generations.to_string(),
            r.max_candidate_retrievals.to_string(),
            r.retrieval_bound.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("all invariants hold: {ok}\n");
}

/// Theorem 2 in practice: measured vs guaranteed approximation factors.
fn quality(sf: f64) {
    println!("=== Theorem 2: measured vs guaranteed approximation factor ===\n");
    let model = bench_model_small();
    let schedule = ResolutionSchedule::linear(4, 1.05, 0.5);
    let reports = verify_quality(&model, &schedule, sf * 0.01, 4);
    let mut t = TextTable::new(vec![
        "query",
        "tables",
        "measured",
        "guarantee a^n",
        "exhaustive size",
        "IAMA size",
    ]);
    for r in &reports {
        t.row(vec![
            r.query.clone(),
            r.n_tables.to_string(),
            format!("{:.4}", r.measured_factor),
            format!("{:.4}", r.guarantee),
            r.exhaustive_size.to_string(),
            r.iama_size.to_string(),
        ]);
    }
    println!("{}", t.render());
}

/// Ablation: cell grid vs linear index.
fn ablations_index(model: &StandardCostModel, sf: f64) {
    println!("=== Ablation: cell-grid index vs flat index ===\n");
    let schedule = ExperimentSetup::fig4().schedule(20);
    let mut t = TextTable::new(vec!["query", "cell grid (s)", "linear (s)"]);
    for name in ["q03", "q05", "q09"] {
        let spec = query_block(name, sf).expect("block");
        let (grid, linear) = ablation_index(&spec, model, &schedule);
        t.row(vec![
            name.to_string(),
            format!("{grid:.4}"),
            format!("{linear:.4}"),
        ]);
    }
    println!("{}", t.render());
}

/// Ablation: delta-set filtering on/off.
fn ablations_delta(model: &StandardCostModel, sf: f64) {
    println!("=== Ablation: delta-set filtering in Fresh ===\n");
    let schedule = ExperimentSetup::fig4().schedule(20);
    let mut t = TextTable::new(vec![
        "query",
        "with delta (s)",
        "without (s)",
        "settled pairs skipped",
    ]);
    for name in ["q03", "q05", "q09"] {
        let spec = query_block(name, sf).expect("block");
        let (with_d, without_d, settled) = ablation_delta(&spec, model, &schedule);
        t.row(vec![
            name.to_string(),
            format!("{with_d:.4}"),
            format!("{without_d:.4}"),
            settled.to_string(),
        ]);
    }
    println!("{}", t.render());
}

/// Ablation: result-plan shadowing on/off.
fn ablation_shadow_exp(model: &StandardCostModel, sf: f64) {
    println!("=== Ablation: shadowing of dominated result plans ===\n");
    let schedule = ExperimentSetup::fig4().schedule(10);
    let mut t = TextTable::new(vec![
        "query",
        "shadowed (s)",
        "paper-exact (s)",
        "plans shadowed",
        "plans exact",
    ]);
    for name in ["q03", "q05", "q09"] {
        let spec = query_block(name, sf).expect("block");
        let on = iama_series_with_config(&spec, model, &schedule, IamaConfig::default());
        let off = iama_series_with_config(
            &spec,
            model,
            &schedule,
            IamaConfig {
                shadow_dominated: false,
                ..IamaConfig::default()
            },
        );
        let secs =
            |rs: &[moqo_core::InvocationReport]| -> f64 { rs.iter().map(|r| r.seconds()).sum() };
        let plans = |rs: &[moqo_core::InvocationReport]| -> u64 {
            rs.iter().map(|r| r.plans_generated).sum()
        };
        t.row(vec![
            name.to_string(),
            format!("{:.4}", secs(&on)),
            format!("{:.4}", secs(&off)),
            plans(&on).to_string(),
            plans(&off).to_string(),
        ]);
    }
    println!("{}", t.render());
}

/// Bound-tightening scenario (Example 3).
fn bounds_exp(model: &StandardCostModel, sf: f64) {
    println!("=== Bounds scenario: user tightens the time bound mid-session (q05) ===\n");
    let spec = query_block("q05", sf).expect("q05");
    let schedule = ExperimentSetup::fig4().schedule(10);
    let rows = bounds_scenario(&spec, model, &schedule);
    let mut t = TextTable::new(vec!["step", "resolution", "seconds", "frontier size"]);
    for (i, r, secs, size) in rows {
        t.row(vec![
            i.to_string(),
            r.to_string(),
            format!("{secs:.4}"),
            size.to_string(),
        ]);
    }
    println!("{}", t.render());
    // Sanity: contrast with a cold optimizer for the bounded phase.
    let b = Bounds::unbounded(model.dim());
    let shot = one_shot(&spec, model, &schedule, &b);
    println!(
        "(for scale: a cold one-shot run at target precision takes {:.4}s)\n",
        shot.duration.as_secs_f64()
    );
}
