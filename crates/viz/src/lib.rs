//! Terminal rendering of cost-tradeoff frontiers.
//!
//! The paper's interface continuously visualizes the approximated
//! Pareto-optimal cost tradeoffs (Figure 1). This crate renders 2-D
//! projections of cost vectors as ASCII scatter plots — enough for the
//! examples and the `repro` binary to show the anytime refinement in a
//! terminal — plus a small fixed-width table helper for experiment output.

#![warn(missing_docs)]

pub mod scatter;
pub mod table;

pub use scatter::{render_scatter, ScatterOptions};
pub use table::TextTable;
