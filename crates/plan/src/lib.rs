//! Physical query plans: operators, physical properties, and the plan arena.
//!
//! Section 5.2 of the paper assumes plans are represented in `O(1)` space:
//! a scan plan by the id of the table it scans, any other plan by the ids
//! of its two sub-plans. The [`PlanArena`] realizes exactly that — plans
//! are append-only arena entries addressed by [`PlanId`], and result plans
//! are never removed (the paper explicitly renounces discarding result
//! plans so sub-plan pointers stay valid across optimizer invocations).
//!
//! Operators cover the plan space of the paper's evaluation substrate:
//! full and sampled scans (sampling trades result precision for execution
//! time), and hash / sort-merge / nested-loop joins with configurable
//! degrees of parallelism (trading reserved cores for execution time).
//! Sort-merge joins produce an *interesting order* that the pruning logic
//! honors, per the Selinger extension discussed in Section 4.3.

#![warn(missing_docs)]

pub mod arena;
pub mod explain;
pub mod operator;
pub mod props;

pub use arena::{PlanArena, PlanId, PlanNode};
pub use explain::explain;
pub use operator::{JoinAlgo, Operator, ScanMethod};
pub use props::{OrderKey, PhysicalProps};
