//! Cross-algorithm consistency: the whole stack agrees with itself.

use moqo::baselines::{memoryless_series, single_objective_dp};
use moqo::core::{IamaOptimizer, Preference};
use moqo::cost::{Bounds, ResolutionSchedule};
use moqo::costmodel::{CostModel, MetricSet, StandardCostModel, StandardCostModelConfig};
use moqo::query::testkit;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn model() -> StandardCostModel {
    StandardCostModel::new(
        MetricSet::paper(),
        StandardCostModelConfig {
            dops: vec![1, 4],
            sampling_rates_pm: vec![500],
            eval_spin: 0,
            ..StandardCostModelConfig::default()
        },
    )
}

#[test]
fn weighted_frontier_minimum_matches_single_objective_dp() {
    // Selecting from IAMA's finest frontier with a linear preference must
    // come within the approximation guarantee of the true scalar optimum
    // (computed by the classical single-objective DP).
    let spec = testkit::chain_query(4, 120_000);
    let model = model();
    let schedule = ResolutionSchedule::linear(4, 1.02, 0.4);
    let weights = [1.0, 0.5, 100.0];

    let scalar = single_objective_dp(&spec, &model, &weights);
    let optimum = scalar.best.expect("scalar plan exists").1;

    let mut opt = IamaOptimizer::new(
        Arc::new(spec.clone()),
        Arc::new(model.clone()),
        schedule.clone(),
    );
    let b = Bounds::unbounded(model.dim());
    for r in 0..=schedule.r_max() {
        opt.optimize(&b, r);
    }
    let frontier = opt.frontier(&b, schedule.r_max());
    let pick = Preference::WeightedSum(weights.to_vec())
        .select(&frontier, &b)
        .expect("well-formed preference")
        .expect("frontier non-empty");
    let picked_score: f64 = pick
        .cost
        .as_slice()
        .iter()
        .zip(&weights)
        .map(|(c, w)| c * w)
        .sum();
    // A linear score of an alpha^n-covered frontier is within alpha^n of
    // the optimum (linearity preserves the factor).
    let guarantee = schedule.guarantee(schedule.r_max(), spec.n_tables());
    assert!(
        picked_score <= optimum * guarantee + 1e-9,
        "weighted pick {picked_score} exceeds {guarantee} x optimum {optimum}"
    );
    assert!(
        picked_score >= optimum - 1e-9,
        "weighted pick beats the true optimum?!"
    );
}

#[test]
fn memoryless_and_iama_agree_level_by_level() {
    // "The memoryless algorithm produces the same sequence of result plan
    // sets as the incremental anytime algorithm" — exact set equality is
    // insertion-order dependent, but at every level the two frontiers
    // must mutually cover within that level's guarantee (both are
    // alpha_r^n-approximate Pareto sets), and their sizes stay close.
    let spec = testkit::star_query(4, 250_000);
    let model = model();
    let schedule = ResolutionSchedule::linear(4, 1.05, 0.5);
    let b = Bounds::unbounded(model.dim());
    let mem = memoryless_series(&spec, &model, &schedule, &b);
    let mut opt = IamaOptimizer::new(
        Arc::new(spec.clone()),
        Arc::new(model.clone()),
        schedule.clone(),
    );
    for (r, mem_out) in mem.iter().enumerate() {
        opt.optimize(&b, r);
        let iama = opt.frontier(&b, r).costs();
        let mem_costs = mem_out.frontier_costs();
        let guarantee = schedule.guarantee(r, spec.n_tables());
        let a = moqo::cost::coverage_factor(&iama, &mem_costs);
        let m = moqo::cost::coverage_factor(&mem_costs, &iama);
        assert!(
            a <= guarantee + 1e-9 && m <= guarantee + 1e-9,
            "level {r}: frontiers diverge ({a} / {m} vs {guarantee})"
        );
        // Sizes track each other within a factor of two.
        let (big, small) = (
            iama.len().max(mem_costs.len()),
            iama.len().min(mem_costs.len()),
        );
        assert!(
            small * 2 >= big,
            "level {r}: sizes diverge ({} vs {})",
            iama.len(),
            mem_costs.len()
        );
    }
}

#[test]
fn network_replay_of_the_protocol_tour_is_bit_exact_with_the_core_session() {
    // The `protocol_tour` script — refine to saturation, drag one bound,
    // refine again, install a preference that auto-selects — replayed
    // through NetClient -> NetServer over real loopback TCP must produce
    // a SessionView whose frontier is `bits_eq` with the in-process
    // `Session` run, and the same auto-selected plan. This is the
    // process-boundary extension of the three-layer agreement the
    // protocol_tour example asserts in-process.
    use moqo::core::{Session, SessionView};
    use moqo::prelude::*;

    const IDLE: Duration = Duration::from_secs(120);
    let spec = || Arc::new(testkit::chain_query(4, 75_000));
    let schedule = ResolutionSchedule::linear(3, 1.05, 0.5);
    let levels = schedule.levels() as u64;
    let shared_model: SharedCostModel = Arc::new(StandardCostModel::paper_metrics());
    let preference = Preference::WeightedSum(vec![1.0, 0.05, 0.05]);

    // --- Reference: the bare core session, in process. ---
    let mut session = Session::open(
        SessionRequest::new(spec()),
        shared_model.clone(),
        schedule.clone(),
    )
    .expect("valid request");
    let mut core_view = SessionView::default();
    for _ in 0..levels {
        let ev = session.apply(SessionCommand::Refine).expect("live");
        core_view.fold(&ev).expect("ordered stream");
    }
    let anchor = core_view.frontier.min_by_metric(0).expect("non-empty").cost[0];
    let bound = Bounds::unbounded(shared_model.dim()).with_limit(0, anchor * 4.0);
    let ev = session
        .apply(SessionCommand::SetBounds(bound))
        .expect("live");
    core_view.fold(&ev).expect("ordered stream");
    for _ in 0..levels {
        let ev = session.apply(SessionCommand::Refine).expect("live");
        core_view.fold(&ev).expect("ordered stream");
    }
    let ev = session
        .apply(SessionCommand::SetPreference(Some(preference.clone())))
        .expect("live");
    core_view.fold(&ev).expect("ordered stream");
    let core_selected = core_view.selected().expect("preference fired");

    // --- The same script over TCP. ---
    let server = Arc::new(MoqoServer::new(
        shared_model.clone(),
        schedule.clone(),
        ServeConfig {
            shard: ShardConfig {
                shards: 2,
                engine: EngineConfig {
                    workers: 2,
                    ..EngineConfig::default()
                },
                rebalance_headroom: 8,
            },
            ..ServeConfig::default()
        },
    ));
    let registry = Arc::new(ModelRegistry::with_default(shared_model.clone()));
    let net = NetServer::bind(server, registry, NetConfig::default()).expect("bind loopback");
    let mut client = NetClient::connect(net.local_addr()).expect("connect");
    let response = client
        .submit(SessionRequest::new(spec()), IDLE)
        .expect("well-formed request");
    assert_eq!(response, AdmissionResponse::Admitted);
    let wait_for = |client: &mut NetClient, invocations: u64| {
        let deadline = Instant::now() + IDLE;
        while client.view().invocations < invocations {
            assert!(Instant::now() < deadline, "stream stalled");
            client.recv(IDLE).expect("healthy stream");
        }
    };
    // The served session auto-refines one full ladder, like the core
    // session's scripted `Refine`s.
    wait_for(&mut client, levels);
    let anchor = client
        .view()
        .frontier
        .min_by_metric(0)
        .expect("non-empty")
        .cost[0];
    let bound = Bounds::unbounded(shared_model.dim()).with_limit(0, anchor * 4.0);
    client
        .command(SessionCommand::SetBounds(bound))
        .expect("send");
    // The refocus runs one invocation and re-refines to saturation.
    wait_for(&mut client, 2 * levels + 1);
    client
        .command(SessionCommand::SetPreference(Some(preference)))
        .expect("send");
    let net_view = client.wait_finished(IDLE).expect("terminal event").clone();
    net.shutdown();

    assert!(
        core_view.frontier.bits_eq(&net_view.frontier),
        "network replay diverged from the core session: {} vs {} points",
        core_view.frontier.len(),
        net_view.frontier.len()
    );
    assert_eq!(
        net_view.selected(),
        Some(core_selected),
        "the same preference must select the same plan across the wire"
    );
}

#[test]
fn metric_subsets_agree_on_shared_extremes() {
    // Optimizing with 2 metrics (time, cores) and with 3 (adding error)
    // must find the same minimum achievable time: extra metrics never
    // remove plans from the space.
    let spec = testkit::chain_query(3, 200_000);
    let config = StandardCostModelConfig {
        dops: vec![1, 4],
        sampling_rates_pm: vec![500],
        eval_spin: 0,
        ..StandardCostModelConfig::default()
    };
    let m2 = StandardCostModel::new(
        MetricSet::new(vec![
            moqo::costmodel::Metric::Time,
            moqo::costmodel::Metric::Cores,
        ]),
        config.clone(),
    );
    let m3 = StandardCostModel::new(MetricSet::paper(), config);
    let schedule = ResolutionSchedule::linear(4, 1.01, 0.3);
    let min_time = |model: &StandardCostModel| -> f64 {
        let mut opt = IamaOptimizer::new(
            Arc::new(spec.clone()),
            Arc::new(model.clone()),
            schedule.clone(),
        );
        let b = Bounds::unbounded(model.dim());
        for r in 0..=schedule.r_max() {
            opt.optimize(&b, r);
        }
        opt.frontier(&b, schedule.r_max())
            .min_by_metric(0)
            .unwrap()
            .cost[0]
    };
    let t2 = min_time(&m2);
    let t3 = min_time(&m3);
    // Identical plan spaces; pruning factors may blur the shared extreme
    // by at most the guarantee.
    let guarantee = schedule.guarantee(schedule.r_max(), spec.n_tables());
    assert!(
        (t2 - t3).abs() <= t2.min(t3) * (guarantee - 1.0) + 1e-9,
        "min-time mismatch: {t2} (2 metrics) vs {t3} (3 metrics)"
    );
}

#[test]
fn batched_and_scalar_pruning_produce_bit_identical_frontiers() {
    // The struct-of-arrays lane kernels behind `use_batch_kernels` are a
    // pure speed knob: across a full refine ladder, a mid-session bound
    // drag, and a second ladder, every intermediate frontier must agree
    // byte for byte with the scalar visitor path — on every index kind
    // (the kinds without a batched override exercise the default
    // one-row-batch adapters).
    use moqo::core::IamaConfig;
    use moqo::index::IndexKind;

    let spec = testkit::star_query(4, 250_000);
    let model = model();
    let schedule = ResolutionSchedule::linear(4, 1.05, 0.5);
    for kind in [IndexKind::CellGrid, IndexKind::Linear, IndexKind::KdTree] {
        let mut opts: Vec<IamaOptimizer> = [true, false]
            .iter()
            .map(|&batch| {
                IamaOptimizer::with_config(
                    Arc::new(spec.clone()),
                    Arc::new(model.clone()),
                    schedule.clone(),
                    IamaConfig {
                        index_kind: kind,
                        use_batch_kernels: batch,
                        ..IamaConfig::default()
                    },
                )
            })
            .collect();
        let unbounded = Bounds::unbounded(model.dim());
        let check = |opts: &mut Vec<IamaOptimizer>, bounds: &Bounds, r: usize, step: &str| {
            let frontiers: Vec<_> = opts
                .iter_mut()
                .map(|o| {
                    o.optimize(bounds, r);
                    o.frontier(bounds, r)
                })
                .collect();
            assert!(
                frontiers[0].bits_eq(&frontiers[1]),
                "{kind:?}/{step}/r={r}: batched and scalar frontiers differ \
                 ({} vs {} points)",
                frontiers[0].len(),
                frontiers[1].len()
            );
            frontiers.into_iter().next().unwrap()
        };
        let mut last = None;
        for r in 0..=schedule.r_max() {
            last = Some(check(&mut opts, &unbounded, r, "ladder"));
        }
        // Drag the time bound to the frontier's median and refine again.
        let costs = last.expect("non-empty ladder").costs();
        let mut ts: Vec<f64> = costs.iter().map(|c| c[0]).collect();
        ts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let bound = Bounds::unbounded(model.dim()).with_limit(0, ts[ts.len() / 2]);
        for r in 0..=schedule.r_max() {
            check(&mut opts, &bound, r, "dragged");
        }
    }
}
