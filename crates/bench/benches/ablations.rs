//! Ablation benches for the design decisions DESIGN.md calls out:
//! Δ-set filtering in `Fresh`, eager candidate re-indexing, and shadowing
//! of dominated result plans.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moqo_bench::{bench_model, iama_series_with_config, ExperimentSetup};
use moqo_core::IamaConfig;
use moqo_tpch::query_block;

const SF: f64 = 0.1;
const LEVELS: usize = 8;

fn bench_ablations(c: &mut Criterion) {
    let model = bench_model();
    let schedule = ExperimentSetup::fig4().schedule(LEVELS);
    let spec = query_block("q05", SF).expect("q05");

    let variants: Vec<(&str, IamaConfig)> = vec![
        ("default", IamaConfig::default()),
        (
            "no_delta",
            IamaConfig {
                use_delta: false,
                ..IamaConfig::default()
            },
        ),
        (
            "no_eager_requeue",
            IamaConfig {
                eager_level_skip: false,
                ..IamaConfig::default()
            },
        ),
        (
            "no_shadowing",
            IamaConfig {
                shadow_dominated: false,
                ..IamaConfig::default()
            },
        ),
        (
            "paper_exact",
            IamaConfig {
                eager_level_skip: false,
                shadow_dominated: false,
                ..IamaConfig::default()
            },
        ),
    ];

    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    for (name, config) in variants {
        group.bench_with_input(BenchmarkId::new("series", name), &config, |b, config| {
            b.iter(|| iama_series_with_config(&spec, &model, &schedule, config.clone()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
