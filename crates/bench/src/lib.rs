//! Experiment harness regenerating the paper's figures.
//!
//! Every figure of the paper's evaluation (and the conceptual figures of
//! the introduction) maps to a function here; the `repro` binary prints
//! the same series the paper reports and the criterion benches in
//! `benches/` time the same code. See DESIGN.md §5 for the experiment
//! index and EXPERIMENTS.md for the recorded paper-vs-measured results.

#![warn(missing_docs)]

pub mod benchjson;
pub mod experiments;
pub mod fleet;
pub mod net;
pub mod net_scale;
pub mod pruning;
pub mod serve;
pub mod similarity;
pub mod workload;

pub use benchjson::Json;
pub use experiments::*;
pub use fleet::{
    fleet_experiment, fleet_node_serve, fleet_router_watch, fleet_workload, FleetPhaseReport,
    FleetReport, WatchReport,
};
pub use net::{net_serving_experiment, net_workload, NetPhaseReport};
pub use net_scale::{net_scale_experiment, net_scale_templates, proc_status, NetScaleReport};
pub use pruning::{
    build_pruning_grid, kernel_measurements, prune_share_rows, KernelMeasurement, PruneShareRow,
    KERNEL_CELL_SIZES, KERNEL_DIMS,
};
pub use serve::{serving_experiment, serving_workload, ServingPhaseReport};
pub use similarity::{
    similarity_donors, similarity_experiment, similarity_recipients, SimilarityPhaseReport,
};
pub use workload::{bench_model, bench_model_small, ExperimentSetup};
