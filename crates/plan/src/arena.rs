//! The plan arena: O(1)-space plan representation with stable ids.

use crate::operator::Operator;
use crate::props::PhysicalProps;
use moqo_cost::CostVector;
use moqo_query::TableSet;

/// Identifies a plan within a [`PlanArena`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlanId(pub u32);

impl PlanId {
    /// Arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One arena entry: operator, child ids, joined tables, cost, properties.
///
/// Mirrors the paper's O(1)-per-plan representation (Section 5.2): scan
/// plans carry no children; join plans carry exactly two child ids. Cost
/// vectors are cached so that combining plans evaluates the recursive cost
/// formulas in O(1) (Lemma 4).
#[derive(Clone, Copy, Debug)]
pub struct PlanNode {
    /// The operator at the root of this (sub-)plan.
    pub op: Operator,
    /// Children (empty for scans, two ids for joins).
    pub children: Option<(PlanId, PlanId)>,
    /// The set of query tables this plan joins.
    pub tables: TableSet,
    /// Cached cost vector.
    pub cost: CostVector,
    /// Physical properties of the output.
    pub props: PhysicalProps,
}

/// Append-only arena of plans for one query.
///
/// Plans are never removed: the incremental optimizer keeps result plans
/// alive because earlier invocations may have used them as sub-plans
/// (Section 4.2's second design decision). Dropping the whole arena at the
/// end of a session releases everything at once.
#[derive(Clone, Debug, Default)]
pub struct PlanArena {
    nodes: Vec<PlanNode>,
}

impl PlanArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty arena with room for `cap` plans.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            nodes: Vec::with_capacity(cap),
        }
    }

    /// Number of plans ever inserted.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no plan was inserted yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Inserts a scan plan.
    pub fn push_scan(
        &mut self,
        op: Operator,
        position: usize,
        cost: CostVector,
        props: PhysicalProps,
    ) -> PlanId {
        debug_assert!(op.is_scan());
        self.push_node(PlanNode {
            op,
            children: None,
            tables: TableSet::singleton(position),
            cost,
            props,
        })
    }

    /// Inserts a join plan over two existing plans.
    ///
    /// # Panics
    /// Panics (in debug builds) if the children's table sets overlap.
    pub fn push_join(
        &mut self,
        op: Operator,
        left: PlanId,
        right: PlanId,
        cost: CostVector,
        props: PhysicalProps,
    ) -> PlanId {
        debug_assert!(op.is_join());
        let tables = {
            let l = self.node(left).tables;
            let r = self.node(right).tables;
            debug_assert!(l.is_disjoint(r), "join children overlap: {l:?} vs {r:?}");
            l.union(r)
        };
        self.push_node(PlanNode {
            op,
            children: Some((left, right)),
            tables,
            cost,
            props,
        })
    }

    fn push_node(&mut self, node: PlanNode) -> PlanId {
        let id = PlanId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// The node for `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn node(&self, id: PlanId) -> &PlanNode {
        &self.nodes[id.index()]
    }

    /// The cached cost of `id`.
    #[inline]
    pub fn cost(&self, id: PlanId) -> &CostVector {
        &self.node(id).cost
    }

    /// The table set joined by `id`.
    #[inline]
    pub fn tables(&self, id: PlanId) -> TableSet {
        self.node(id).tables
    }

    /// Iterates over all `(id, node)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (PlanId, &PlanNode)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (PlanId(i as u32), n))
    }

    /// The number of operator nodes in the tree rooted at `id` (counts
    /// shared sub-plans once per occurrence).
    pub fn tree_size(&self, id: PlanId) -> usize {
        match self.node(id).children {
            None => 1,
            Some((l, r)) => 1 + self.tree_size(l) + self.tree_size(r),
        }
    }

    /// Depth of the tree rooted at `id` (a scan has depth 1).
    pub fn depth(&self, id: PlanId) -> usize {
        match self.node(id).children {
            None => 1,
            Some((l, r)) => 1 + self.depth(l).max(self.depth(r)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::JoinAlgo;

    fn cost(v: f64) -> CostVector {
        CostVector::new(&[v, v])
    }

    #[test]
    fn scan_and_join_construction() {
        let mut arena = PlanArena::new();
        let s0 = arena.push_scan(Operator::full_scan(0), 0, cost(1.0), PhysicalProps::NONE);
        let s1 = arena.push_scan(Operator::full_scan(1), 1, cost(2.0), PhysicalProps::NONE);
        let j = arena.push_join(
            Operator::join(JoinAlgo::Hash, 1),
            s0,
            s1,
            cost(5.0),
            PhysicalProps::NONE,
        );
        assert_eq!(arena.len(), 3);
        assert_eq!(arena.tables(j), TableSet::from_positions([0, 1]));
        assert_eq!(arena.cost(j).as_slice(), &[5.0, 5.0]);
        assert_eq!(arena.node(j).children, Some((s0, s1)));
        assert_eq!(arena.tree_size(j), 3);
        assert_eq!(arena.depth(j), 2);
    }

    #[test]
    fn shared_subplans_are_counted_per_occurrence() {
        let mut arena = PlanArena::new();
        let s0 = arena.push_scan(Operator::full_scan(0), 0, cost(1.0), PhysicalProps::NONE);
        let s1 = arena.push_scan(Operator::full_scan(1), 1, cost(1.0), PhysicalProps::NONE);
        let s2 = arena.push_scan(Operator::full_scan(2), 2, cost(1.0), PhysicalProps::NONE);
        let j01 = arena.push_join(
            Operator::join(JoinAlgo::Hash, 1),
            s0,
            s1,
            cost(2.0),
            PhysicalProps::NONE,
        );
        let j012 = arena.push_join(
            Operator::join(JoinAlgo::SortMerge, 2),
            j01,
            s2,
            cost(3.0),
            PhysicalProps::NONE,
        );
        assert_eq!(arena.tree_size(j012), 5);
        assert_eq!(arena.depth(j012), 3);
        assert_eq!(arena.tables(j012), TableSet::full(3));
    }

    #[test]
    fn iter_preserves_insertion_order() {
        let mut arena = PlanArena::new();
        let a = arena.push_scan(Operator::full_scan(0), 0, cost(1.0), PhysicalProps::NONE);
        let b = arena.push_scan(Operator::full_scan(1), 1, cost(1.0), PhysicalProps::NONE);
        let ids: Vec<PlanId> = arena.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![a, b]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "join children overlap")]
    fn join_rejects_overlapping_children() {
        let mut arena = PlanArena::new();
        let s0 = arena.push_scan(Operator::full_scan(0), 0, cost(1.0), PhysicalProps::NONE);
        let s0b = arena.push_scan(Operator::full_scan(0), 0, cost(1.0), PhysicalProps::NONE);
        arena.push_join(
            Operator::join(JoinAlgo::Hash, 1),
            s0,
            s0b,
            cost(2.0),
            PhysicalProps::NONE,
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::operator::JoinAlgo;
    use proptest::prelude::*;

    /// Builds a random plan forest in the arena and returns the roots of
    /// complete binary trees over disjoint positions.
    fn random_tree(ops: Vec<(u8, u8)>) -> (PlanArena, Option<PlanId>) {
        let mut arena = PlanArena::new();
        // Leaves over positions 0..8.
        let leaves: Vec<PlanId> = (0..8)
            .map(|i| {
                arena.push_scan(
                    Operator::full_scan(i),
                    i,
                    CostVector::new(&[1.0, 1.0]),
                    crate::props::PhysicalProps::NONE,
                )
            })
            .collect();
        // Fold random pairs of disjoint roots into joins.
        let mut roots = leaves;
        for (a, b) in ops {
            if roots.len() < 2 {
                break;
            }
            let i = (a as usize) % roots.len();
            let l = roots.swap_remove(i);
            let j = (b as usize) % roots.len();
            let r = roots.swap_remove(j);
            let cost = arena.cost(l).add(arena.cost(r));
            let id = arena.push_join(
                Operator::join(JoinAlgo::Hash, 1),
                l,
                r,
                cost,
                crate::props::PhysicalProps::NONE,
            );
            roots.push(id);
        }
        let root = roots.last().copied();
        (arena, root)
    }

    proptest! {
        /// Structural invariants of arbitrary plan trees: the table set of
        /// a join is the disjoint union of its children's, tree size is
        /// odd (full binary tree), and depth <= size.
        #[test]
        fn arena_structural_invariants(ops in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..7)) {
            let (arena, root) = random_tree(ops);
            for (id, node) in arena.iter() {
                if let Some((l, r)) = node.children {
                    let lt = arena.tables(l);
                    let rt = arena.tables(r);
                    prop_assert!(lt.is_disjoint(rt));
                    prop_assert_eq!(lt.union(rt), node.tables);
                    prop_assert!(l < id && r < id, "children precede parents");
                }
            }
            if let Some(root) = root {
                let size = arena.tree_size(root);
                prop_assert_eq!(size % 2, 1, "full binary trees have odd size");
                prop_assert!(arena.depth(root) <= size);
                prop_assert_eq!(
                    arena.tables(root).len(),
                    size.div_ceil(2),
                    "leaf count equals joined tables"
                );
            }
        }
    }
}
