//! Durable warm state: snapshot/restore of parked frontiers.
//!
//! The frontier caches are the serving front's accumulated capital — each
//! parked optimizer represents a full refinement ladder someone already
//! paid for. [`SnapshotStore`] writes every parked optimizer to disk
//! (one file per [`moqo_engine::QueryFingerprint`], bytes produced by
//! [`IamaOptimizer::export_frontier`], already versioned and
//! self-validating) and re-parks them on startup, so a restarted server's
//! first invocation of a known query still generates **zero** plans.
//!
//! Restore is tolerant by design: every file is decoded independently,
//! and files that fail validation (truncated writes, version skew, a cost
//! model whose metric layout changed) are skipped and reported, never
//! trusted. Frontiers are re-parked at their fingerprint's *home* shard —
//! placement is a pure function of `(fingerprint, shard count)`, so the
//! router finds them even if the saving process ran with a different
//! shard count.
//!
//! Writes go through a temp file + rename, so a crash mid-save leaves the
//! previous snapshot generation intact rather than a half-written file.
//!
//! Saves are **incremental per fingerprint**: the store remembers the
//! content hash of every file it has persisted (or restored) and skips
//! fingerprints whose frontier bytes are unchanged — a periodic
//! snapshot sweep over a mostly-idle cache costs serialization, not IO.
//!
//! Snapshots embed the exporting cost model's
//! [identity](moqo_costmodel::CostModel::identity) (format v2), so a
//! frontier refined under a per-session model override is *skipped* on
//! restore under the deployment default model — reported, never silently
//! resumed under a model that would cost it differently.

use crate::shard::ShardedEngine;
use moqo_core::IamaOptimizer;
use moqo_engine::QueryFingerprint;
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// File extension of frontier snapshot files.
pub const FRONTIER_EXT: &str = "frontier";

/// What a [`SnapshotStore::save`] wrote.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SaveReport {
    /// Snapshot files written.
    pub written: usize,
    /// Total bytes written.
    pub bytes: u64,
    /// Fingerprints whose frontier bytes were unchanged since the last
    /// persist — serialized for comparison, but no file touched.
    pub unchanged: usize,
}

/// What a [`SnapshotStore::restore`] brought back.
#[derive(Clone, Debug, Default)]
pub struct RestoreReport {
    /// Frontiers re-parked into shard caches.
    pub restored: usize,
    /// Files skipped, with the reason (corrupt, version skew, model
    /// mismatch, unreadable).
    pub skipped: Vec<(PathBuf, String)>,
}

impl fmt::Display for RestoreReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "restored {} frontier(s)", self.restored)?;
        if !self.skipped.is_empty() {
            write!(f, ", skipped {}", self.skipped.len())?;
        }
        Ok(())
    }
}

/// A directory of frontier snapshots, one file per fingerprint, with
/// per-fingerprint dirty tracking (unchanged frontiers skip the write).
#[derive(Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
    /// Content hash of the last bytes persisted (or restored) per
    /// fingerprint; a matching hash with the file still on disk means
    /// the frontier is clean and the write is skipped.
    persisted: Mutex<HashMap<u64, u64>>,
}

/// FNV-1a over a byte blob (the dirty-tracking content hash).
fn content_hash(bytes: &[u8]) -> u64 {
    moqo_cost::Fnv64::hash_bytes(bytes)
}

/// Process-wide sequence for unique snapshot temp-file names.
static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl SnapshotStore {
    /// A store rooted at `dir` (created on first save).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            persisted: Mutex::new(HashMap::new()),
        }
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn file_for(&self, fp: moqo_engine::QueryFingerprint) -> PathBuf {
        self.dir
            .join(format!("{:016x}.{FRONTIER_EXT}", fp.as_u64()))
    }

    /// Serializes every parked frontier of every shard to the store
    /// directory. Live sessions are not captured — retire them first
    /// (e.g. [`ShardedEngine::finish`]) if their state should survive.
    ///
    /// A fingerprint can be parked on several shards at once (rebalanced
    /// copies of one hot query each finished on their own shard); one
    /// file per fingerprint is written, keeping the copy with the most
    /// accumulated result state.
    ///
    /// Serialization takes each shard's state lock once **per entry**
    /// (not across the whole pass), so a snapshot sweep interleaves with
    /// live submissions; file IO happens with no lock held at all.
    ///
    /// Fingerprints whose serialized bytes match what this store last
    /// persisted (and whose file is still on disk) are counted in
    /// [`SaveReport::unchanged`] and skip the write entirely — repeated
    /// sweeps over an idle cache do no IO.
    pub fn save(&self, engine: &ShardedEngine) -> io::Result<SaveReport> {
        fs::create_dir_all(&self.dir)?;
        let exported =
            engine.map_parked(|fp, opt| (fp, opt.stats().result_insertions, opt.export_frontier()));
        let mut blobs: HashMap<u64, (QueryFingerprint, u64, Vec<u8>)> = HashMap::new();
        for (fp, warmth, bytes) in exported {
            match blobs.entry(fp.as_u64()) {
                std::collections::hash_map::Entry::Occupied(mut e) if e.get().1 < warmth => {
                    e.insert((fp, warmth, bytes));
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert((fp, warmth, bytes));
                }
                _ => {}
            }
        }
        let mut report = SaveReport::default();
        // Skip decisions happen under the dirty-map lock; the lock drops
        // before any file is written, so concurrent sweeps over one
        // store serialize only the (cheap) hash comparison, not the IO.
        let dirty: Vec<(QueryFingerprint, u64, Vec<u8>)> = {
            let persisted = self.persisted.lock().expect("snapshot dirty map poisoned");
            blobs
                .into_values()
                .filter_map(|(fp, _, bytes)| {
                    let hash = content_hash(&bytes);
                    if persisted.get(&fp.as_u64()) == Some(&hash) && self.file_for(fp).exists() {
                        report.unchanged += 1;
                        None
                    } else {
                        Some((fp, hash, bytes))
                    }
                })
                .collect()
        };
        for (fp, hash, bytes) in dirty {
            let path = self.file_for(fp);
            // The temp name is unique per call: two concurrent sweeps
            // that both found the fingerprint dirty must not interleave
            // writes into one temp inode and rename mixed bytes into
            // place (the rename itself is atomic; the write is not).
            let tmp = path.with_extension(format!(
                "tmp.{}.{}",
                std::process::id(),
                TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            ));
            fs::write(&tmp, &bytes)?;
            // Publish and record under the dirty-map lock so the map can
            // never claim bytes that lost the rename race to a concurrent
            // sweep (disk and map always describe the same generation;
            // the bulk byte write above stays outside the lock).
            {
                let mut persisted = self.persisted.lock().expect("snapshot dirty map poisoned");
                fs::rename(&tmp, &path)?;
                persisted.insert(fp.as_u64(), hash);
            }
            report.written += 1;
            report.bytes += bytes.len() as u64;
        }
        Ok(report)
    }

    /// Restores the single snapshot file for `fp` — if present, valid,
    /// and actually describing `fp` (the fingerprint is recomputed from
    /// the decoded spec; a mis-named file is refused) — re-parks it at
    /// the fingerprint's home shard, and returns the raw bytes.
    ///
    /// This is the fleet adopt-after-death hook: when placement moves a
    /// fingerprint to a new home node, that node pulls the dead home's
    /// last persisted frontier out of the *shared* store directory
    /// lazily, on first demand, instead of bulk-restoring everything.
    pub fn restore_one(&self, engine: &ShardedEngine, fp: QueryFingerprint) -> Option<Vec<u8>> {
        let bytes = fs::read(self.file_for(fp)).ok()?;
        let opt = IamaOptimizer::import_frontier(engine.model(), &bytes).ok()?;
        let model = opt.model();
        if QueryFingerprint::of(opt.spec(), &model) != fp {
            return None;
        }
        engine.park(fp, opt);
        self.persisted
            .lock()
            .expect("snapshot dirty map poisoned")
            .insert(fp.as_u64(), content_hash(&bytes));
        Some(bytes)
    }

    /// Decodes every snapshot file and re-parks the frontiers in their
    /// home shards. Individual bad files are skipped (reported in the
    /// result); only directory-level IO fails the whole restore. A
    /// missing directory restores nothing.
    pub fn restore(&self, engine: &ShardedEngine) -> io::Result<RestoreReport> {
        let mut report = RestoreReport::default();
        let entries = match fs::read_dir(&self.dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(report),
            Err(e) => return Err(e),
        };
        for entry in entries {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some(FRONTIER_EXT) {
                continue;
            }
            let bytes = match fs::read(&path) {
                Ok(b) => b,
                Err(e) => {
                    report.skipped.push((path, format!("unreadable: {e}")));
                    continue;
                }
            };
            match IamaOptimizer::import_frontier(engine.model(), &bytes) {
                Ok(opt) => {
                    // The fingerprint is recomputed from the decoded spec
                    // under the optimizer's own model (content-
                    // authoritative, file names are cosmetic).
                    let model = opt.model();
                    let fp = QueryFingerprint::of(opt.spec(), &model);
                    engine.park(fp, opt);
                    // The file on disk is this frontier's current state:
                    // seed the dirty tracker so an immediate save sweep
                    // that finds it unchanged skips the rewrite.
                    self.persisted
                        .lock()
                        .expect("snapshot dirty map poisoned")
                        .insert(fp.as_u64(), content_hash(&bytes));
                    report.restored += 1;
                }
                Err(e) => report.skipped.push((path, e.to_string())),
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ShardConfig;
    use moqo_cost::ResolutionSchedule;
    use moqo_costmodel::StandardCostModel;
    use moqo_engine::EngineConfig;
    use moqo_query::testkit;
    use std::sync::Arc;
    use std::time::Duration;

    const IDLE: Duration = Duration::from_secs(60);

    fn engine(shards: usize) -> ShardedEngine {
        ShardedEngine::new(
            Arc::new(StandardCostModel::paper_metrics()),
            ResolutionSchedule::linear(2, 1.1, 0.4),
            ShardConfig {
                shards,
                engine: EngineConfig {
                    workers: 2,
                    ..EngineConfig::default()
                },
                rebalance_headroom: 0,
            },
        )
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("moqo-persist-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn snapshot_survives_a_kill_restore_cycle() {
        // Satellite requirement: snapshot → drop → restore → the first
        // invocation of a known query generates 0 fresh plans.
        let dir = temp_dir("cycle");
        let store = SnapshotStore::new(&dir);
        let specs: Vec<Arc<_>> = (2..=5)
            .map(|n| Arc::new(testkit::chain_query(n, 77_000)))
            .collect();
        {
            let e = engine(4);
            let ids: Vec<_> = specs.iter().map(|s| e.submit(s.clone()).0).collect();
            assert!(e.wait_idle(IDLE));
            for id in ids {
                e.finish(id).unwrap();
            }
            let saved = store.save(&e).unwrap();
            assert_eq!(saved.written, specs.len());
            assert!(saved.bytes > 0);
        } // drop = kill: worker pools join, all in-memory state is gone

        let e = engine(4);
        let restored = store.restore(&e).unwrap();
        assert_eq!(restored.restored, specs.len());
        assert!(restored.skipped.is_empty(), "{:?}", restored.skipped);
        for spec in &specs {
            let fp = e.fingerprint(spec);
            assert!(e.has_parked(fp));
            // Restored frontiers live at the fingerprint's home shard.
            assert_eq!(e.home_shard(fp), e.route(fp).0);
            let (gid, decision) = e.submit(spec.clone());
            assert!(decision.is_warm());
            assert!(e.wait_idle(IDLE));
            let s = e.status(gid).unwrap();
            assert!(s.warm_start, "{}", spec.name);
            assert_eq!(
                s.first_report.unwrap().plans_generated,
                0,
                "{}: restored frontier regenerated plans",
                spec.name
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_tolerates_shard_count_changes() {
        let dir = temp_dir("reshard");
        let store = SnapshotStore::new(&dir);
        let spec = Arc::new(testkit::chain_query(4, 55_000));
        {
            let e = engine(2);
            let (gid, _) = e.submit(spec.clone());
            assert!(e.wait_idle(IDLE));
            e.finish(gid).unwrap();
            store.save(&e).unwrap();
        }
        // Restore into an 8-shard engine: the frontier re-parks at the
        // *new* home, so routing still finds it.
        let e = engine(8);
        assert_eq!(store.restore(&e).unwrap().restored, 1);
        let (gid, decision) = e.submit(spec);
        assert!(decision.is_warm());
        assert!(e.wait_idle(IDLE));
        assert_eq!(
            e.status(gid).unwrap().first_report.unwrap().plans_generated,
            0
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_files_are_skipped_not_trusted() {
        let dir = temp_dir("corrupt");
        let store = SnapshotStore::new(&dir);
        let spec = Arc::new(testkit::chain_query(3, 40_000));
        {
            let e = engine(2);
            let (gid, _) = e.submit(spec.clone());
            assert!(e.wait_idle(IDLE));
            e.finish(gid).unwrap();
            store.save(&e).unwrap();
        }
        // Corrupt the snapshot and drop a junk file next to it.
        let files: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        assert_eq!(files.len(), 1);
        let mut bytes = fs::read(&files[0]).unwrap();
        let mid = bytes.len() / 2;
        bytes.truncate(mid);
        fs::write(&files[0], &bytes).unwrap();
        fs::write(dir.join(format!("junk.{FRONTIER_EXT}")), b"not a snapshot").unwrap();
        fs::write(dir.join("README.txt"), b"ignored entirely").unwrap();

        let e = engine(2);
        let report = store.restore(&e).unwrap();
        assert_eq!(report.restored, 0);
        assert_eq!(report.skipped.len(), 2, "{report}");
        // The engine stays cold but functional.
        let (gid, decision) = e.submit(spec);
        assert!(!decision.is_warm());
        assert!(e.wait_idle(IDLE));
        assert!(e.status(gid).unwrap().first_report.unwrap().plans_generated > 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unchanged_frontiers_skip_the_rewrite() {
        let dir = temp_dir("dirty");
        let store = SnapshotStore::new(&dir);
        let e = engine(2);
        let specs: Vec<Arc<_>> = (2..=4)
            .map(|n| Arc::new(testkit::chain_query(n, 33_000)))
            .collect();
        let ids: Vec<_> = specs.iter().map(|s| e.submit(s.clone()).0).collect();
        assert!(e.wait_idle(IDLE));
        for id in ids {
            e.finish(id).unwrap();
        }
        // First sweep writes everything.
        let first = store.save(&e).unwrap();
        assert_eq!((first.written, first.unchanged), (specs.len(), 0));
        // Second sweep over the untouched cache writes nothing.
        let second = store.save(&e).unwrap();
        assert_eq!((second.written, second.unchanged), (0, specs.len()));
        assert_eq!(second.bytes, 0);

        // Refine one fingerprint further (resume warm, change focus, and
        // re-park): only that file is rewritten.
        let (gid, decision) = e.submit(specs[0].clone());
        assert!(decision.is_warm());
        assert!(e.wait_idle(IDLE));
        let tight = {
            let f = e.frontier(gid).unwrap();
            let anchor = f.min_by_metric(0).unwrap().cost[0];
            moqo_cost::Bounds::unbounded(3).with_limit(0, anchor * 2.0)
        };
        e.command(gid, moqo_core::SessionCommand::SetBounds(tight))
            .unwrap();
        assert!(e.wait_idle(IDLE));
        e.finish(gid).unwrap();
        let third = store.save(&e).unwrap();
        assert_eq!(
            (third.written, third.unchanged),
            (1, specs.len() - 1),
            "only the refined fingerprint is dirty"
        );

        // A deleted file is re-written even with a clean hash (the disk
        // is the source of truth for what exists).
        let victim = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().and_then(|e| e.to_str()) == Some(FRONTIER_EXT))
            .unwrap();
        fs::remove_file(&victim).unwrap();
        let fourth = store.save(&e).unwrap();
        assert_eq!(fourth.written, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_seeds_the_dirty_tracker() {
        let dir = temp_dir("restore-seed");
        let spec = Arc::new(testkit::chain_query(3, 21_000));
        {
            let e = engine(2);
            let (gid, _) = e.submit(spec.clone());
            assert!(e.wait_idle(IDLE));
            e.finish(gid).unwrap();
            SnapshotStore::new(&dir).save(&e).unwrap();
        }
        // A fresh store (fresh process) restores, then sweeps: the
        // untouched frontier must not be rewritten.
        let store = SnapshotStore::new(&dir);
        let e = engine(2);
        assert_eq!(store.restore(&e).unwrap().restored, 1);
        let sweep = store.save(&e).unwrap();
        assert_eq!(
            (sweep.written, sweep.unchanged),
            (0, 1),
            "restored-but-untouched frontier must be clean"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn restored_frontiers_serve_as_rebase_donors() {
        // Overnight: the server snapshots and stops; the catalog's stats
        // refresh; the restarted server sees the same queries under new
        // cardinalities. The exact fingerprints all miss, but restored
        // frontiers still pay off — as rebase donors.
        let dir = temp_dir("rebase");
        let store = SnapshotStore::new(&dir);
        let spec = Arc::new(testkit::chain_query(4, 70_000));
        {
            let e = engine(2);
            let (gid, _) = e.submit(spec.clone());
            assert!(e.wait_idle(IDLE));
            e.finish(gid).unwrap();
            store.save(&e).unwrap();
        }

        let e = engine(2);
        assert_eq!(store.restore(&e).unwrap().restored, 1);
        let drifted = Arc::new(testkit::drift_cardinalities(&spec, 1.1));
        assert!(
            !e.has_parked(e.fingerprint(&drifted)),
            "drifted stats must not be an exact hit"
        );
        let (gid, decision) = e.submit(drifted);
        assert!(
            decision.is_rebase(),
            "restored frontier must serve as a rebase donor, got {decision:?}"
        );
        assert!(e.wait_idle(IDLE));
        let s = e.status(gid).unwrap();
        assert!(s.rebased, "{s:?}");
        assert!(!s.frontier.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_from_a_missing_directory_is_a_clean_noop() {
        let store = SnapshotStore::new(temp_dir("missing"));
        let e = engine(2);
        let report = store.restore(&e).unwrap();
        assert_eq!(report.restored, 0);
        assert!(report.skipped.is_empty());
    }
}
