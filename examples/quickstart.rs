//! Quickstart: optimize a small join query for multiple objectives and
//! print the Pareto frontier of plan cost tradeoffs.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use moqo::plan::explain;
use moqo::prelude::*;
use std::sync::Arc;

fn main() {
    // A four-table chain query over a synthetic catalog (each table
    // ~500k rows). `testkit` wires tables, join edges, and selectivities.
    let spec = Arc::new(moqo::query::testkit::chain_query(4, 500_000));

    // The paper's three evaluation metrics: execution time, number of
    // reserved cores, and result error (1 - precision).
    let model = Arc::new(StandardCostModel::paper_metrics());

    // Resolution schedule: 6 levels from coarse (alpha = 1.55) down to the
    // target precision alpha_T = 1.05.
    let schedule = ResolutionSchedule::linear(5, 1.05, 0.5);

    let mut optimizer = IamaOptimizer::new(spec.clone(), model.clone(), schedule);
    let bounds = Bounds::unbounded(model.dim());

    // Anytime loop: each invocation refines the frontier; a real
    // application would redraw its UI after every report.
    println!("query: {} ({} tables)\n", spec.name, spec.n_tables());
    for _ in 0..6 {
        let report = optimizer.run_invocation(bounds);
        println!(
            "invocation {} (resolution {}, alpha {:.3}): {} tradeoffs in {:.2} ms",
            report.invocation,
            report.resolution,
            report.alpha,
            report.frontier_size,
            report.seconds() * 1e3,
        );
    }

    // The final frontier: Pareto-filter for display and show the extremes.
    let r_max = optimizer.schedule().r_max();
    let frontier = optimizer.frontier(&bounds, r_max);
    let pareto = frontier.pareto_points();
    println!(
        "\nfinal frontier: {} plans ({} Pareto-optimal)",
        frontier.len(),
        pareto.len()
    );

    let fastest = frontier.min_by_metric(0).expect("non-empty frontier");
    let most_precise = frontier.min_by_metric(2).expect("non-empty frontier");
    println!(
        "\nfastest plan: time={:.1}, cores={:.0}, error={:.2}",
        fastest.cost[0], fastest.cost[1], fastest.cost[2]
    );
    println!("{}", explain(optimizer.arena(), fastest.plan));
    println!(
        "most precise plan: time={:.1}, cores={:.0}, error={:.2}",
        most_precise.cost[0], most_precise.cost[1], most_precise.cost[2]
    );
    println!("{}", explain(optimizer.arena(), most_precise.plan));
}
