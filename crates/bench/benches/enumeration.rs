//! Benchmarks of the precomputed enumeration plane: one-time plan
//! construction cost per topology, rank-map lookups, and the steady-state
//! invocation that the plan is built to accelerate (every split settled
//! by watermark, zero plan work).
//!
//! Topologies at `n >= 12` follow the paper's scaling experiments: chains
//! and cycles stay near-linear in enumerated subsets, stars quadratic in
//! splits, and cliques exercise the `O(3^n)` worst case (kept at `n = 12`
//! so one build stays in the hundreds of milliseconds).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use moqo_bench::{build_pruning_grid, KERNEL_CELL_SIZES, KERNEL_DIMS};
use moqo_core::IamaOptimizer;
use moqo_cost::{Bounds, ResolutionSchedule};
use moqo_costmodel::{CostModel, MetricSet, StandardCostModel, StandardCostModelConfig};
use moqo_index::{dominance_scan_scalar, PlanIndex};
use moqo_query::{testkit, EnumerationPlan, QuerySpec};
use std::sync::Arc;

fn topologies() -> Vec<QuerySpec> {
    vec![
        testkit::chain_query(12, 100_000),
        testkit::chain_query(16, 100_000),
        testkit::star_query(12, 100_000),
        testkit::star_query(16, 100_000),
        testkit::cycle_query(12, 100_000),
        testkit::cycle_query(16, 100_000),
        testkit::clique_query(12, 1000),
    ]
}

fn bench_plan_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumeration_build");
    group.sample_size(10);
    for spec in topologies() {
        group.bench_with_input(BenchmarkId::new("build", &spec.name), &spec, |b, spec| {
            b.iter(|| EnumerationPlan::build(black_box(&spec.graph), false));
        });
    }
    group.finish();
}

fn bench_rank_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumeration_rank");
    for spec in topologies() {
        let plan = EnumerationPlan::build(&spec.graph, false);
        let sets: Vec<_> = plan.subsets().iter().map(|s| s.tables).collect();
        group.bench_with_input(
            BenchmarkId::new("subset_id_all", &spec.name),
            &plan,
            |b, plan| {
                b.iter(|| {
                    let mut found = 0usize;
                    for &s in &sets {
                        found += plan.subset_id(black_box(s)).is_some() as usize;
                    }
                    found
                })
            },
        );
    }
    group.finish();
}

/// The hot loop the refactor targets: a repeated invocation over a fully
/// refined optimizer. Every split must be settled by its watermark — the
/// measured time is the pure enumeration-plane walk.
///
/// Sparse topologies only (chains and cycles stay linear-ish in subsets):
/// the one-time refinement ladder is the setup, and a 12-table star or
/// clique ladder is a full multi-objective DP run, not a bench setup.
fn bench_steady_state_invocation(c: &mut Criterion) {
    let model = Arc::new(StandardCostModel::new(
        MetricSet::paper(),
        StandardCostModelConfig {
            dops: vec![1, 4],
            sampling_rates_pm: vec![100, 500],
            eval_spin: 0,
            ..StandardCostModelConfig::default()
        },
    ));
    let schedule = ResolutionSchedule::linear(3, 1.05, 0.5);
    let bounds = Bounds::unbounded(model.dim());
    let mut group = c.benchmark_group("enumeration_steady_state");
    group.sample_size(10);
    for spec in [
        testkit::chain_query(12, 100_000),
        testkit::cycle_query(12, 100_000),
    ] {
        let mut opt = IamaOptimizer::new(Arc::new(spec.clone()), model.clone(), schedule.clone());
        for r in 0..=schedule.r_max() {
            opt.optimize(&bounds, r);
        }
        group.bench_with_input(
            BenchmarkId::new("repeat_invocation", &spec.name),
            &(),
            |b, ()| {
                b.iter(|| {
                    let report = opt.optimize(&bounds, schedule.r_max());
                    assert_eq!(report.plans_generated, 0);
                    report.splits_skipped
                })
            },
        );
    }
    group.finish();
}

/// The pruning witness search over controlled cell populations: the
/// scalar per-entry visitor (`dominance_scan_scalar`) against the
/// batched struct-of-arrays lane kernels (`CellGrid::dominance_scan`).
/// A negative-infinity threshold forces full scans, so both paths do
/// identical logical work over identical entries — the measured delta
/// is purely storage layout and call protocol. `repro pruning` runs the
/// same sweep with medians into `BENCH_pruning.json`.
fn bench_pruning_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("pruning_dominance_scan");
    group.sample_size(20);
    for &dim in KERNEL_DIMS {
        for &cell_size in KERNEL_CELL_SIZES {
            let cells = (4096 / cell_size).clamp(1, 256);
            let (grid, target) = build_pruning_grid(dim, cells, cell_size, 0x5eed + dim as u64);
            let bounds = Bounds::unbounded(dim);
            let label = format!("dim{dim}_cell{cell_size}");
            group.bench_with_input(BenchmarkId::new("scalar", &label), &grid, |b, grid| {
                b.iter(|| {
                    dominance_scan_scalar(
                        grid,
                        black_box(&bounds),
                        0,
                        black_box(&target),
                        f64::NEG_INFINITY,
                        &mut |_| true,
                    )
                    .best_factor
                })
            });
            group.bench_with_input(BenchmarkId::new("batched", &label), &grid, |b, grid| {
                b.iter(|| {
                    grid.dominance_scan(
                        black_box(&bounds),
                        0,
                        black_box(&target),
                        f64::NEG_INFINITY,
                        &mut |_| true,
                    )
                    .best_factor
                })
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_plan_build,
    bench_rank_lookup,
    bench_steady_state_invocation,
    bench_pruning_kernels
);
criterion_main!(benches);
