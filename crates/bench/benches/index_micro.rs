//! Microbenchmarks of the (cost, resolution) plan indexes: the
//! logarithmic cell grid (the paper's recommended Bentley-Friedman-style
//! structure) versus the flat per-level vectors, on insert, narrow range
//! queries (the pruning pattern), and wide range queries (the collect
//! pattern).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moqo_cost::{Bounds, CostVector};
use moqo_index::{CellGrid, Entry, IndexKind, KdTree, LinearIndex, PlanIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 20_000;
const DIM: usize = 3;

fn entries(seed: u64) -> Vec<Entry<u32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..N as u32)
        .map(|i| {
            // Log-uniform costs across five orders of magnitude, like real
            // plan costs.
            let cost = CostVector::from_fn(DIM, |_| 10f64.powf(rng.gen_range(0.0..5.0)));
            Entry::new(i, cost, rng.gen_range(0..8), 0)
        })
        .collect()
}

fn build(kind: IndexKind, entries: &[Entry<u32>]) -> Box<dyn PlanIndex<u32>> {
    match kind {
        IndexKind::Linear => {
            let mut idx = LinearIndex::new();
            for e in entries {
                idx.insert(*e);
            }
            Box::new(idx)
        }
        IndexKind::CellGrid => {
            let mut idx = CellGrid::new(DIM);
            for e in entries {
                idx.insert(*e);
            }
            Box::new(idx)
        }
        IndexKind::KdTree => {
            let mut idx = KdTree::new(DIM);
            for e in entries {
                idx.insert(*e);
            }
            Box::new(idx)
        }
    }
}

fn bench_index(c: &mut Criterion) {
    let data = entries(7);
    let mut group = c.benchmark_group("index");
    for kind in [IndexKind::CellGrid, IndexKind::Linear, IndexKind::KdTree] {
        let label = format!("{kind:?}");
        group.bench_with_input(BenchmarkId::new("insert_20k", &label), &kind, |b, &kind| {
            b.iter(|| build(kind, &data))
        });
        let idx = build(kind, &data);
        // Narrow query: the pruning pattern — a small box around one point.
        let narrow = Bounds::from_slice(&[50.0, 50.0, 50.0]);
        group.bench_with_input(BenchmarkId::new("narrow_query", &label), &kind, |b, _| {
            b.iter(|| {
                let mut n = 0usize;
                idx.scan(&narrow, 7, &mut |_| {
                    n += 1;
                    false
                });
                n
            })
        });
        // Wide query: the collect pattern — most of the space.
        let wide = Bounds::from_slice(&[1e5, 1e5, 1e5]);
        group.bench_with_input(BenchmarkId::new("wide_query", &label), &kind, |b, _| {
            b.iter(|| {
                let mut n = 0usize;
                idx.scan(&wide, 7, &mut |_| {
                    n += 1;
                    false
                });
                n
            })
        });
        // Level-restricted query (anytime pattern): only levels <= 2.
        group.bench_with_input(BenchmarkId::new("level_query", &label), &kind, |b, _| {
            b.iter(|| {
                let mut n = 0usize;
                idx.scan(&wide, 2, &mut |_| {
                    n += 1;
                    false
                });
                n
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_index);
criterion_main!(benches);
