//! Fixed-capacity cost vectors.
//!
//! The paper treats the number of cost metrics `l` as a small constant
//! (Section 3); the evaluation uses `l = 3`. We therefore store cost vectors
//! inline in a fixed array of [`MAX_DIM`] lanes, which keeps them `Copy` and
//! avoids a heap allocation per plan — plans are created millions of times
//! during dynamic programming.

use std::fmt;
use std::ops::Index;

/// Maximum supported number of cost metrics.
///
/// The paper's generic approximation schemes were evaluated with up to six
/// metrics; eight lanes leave headroom without bloating the per-plan
/// footprint (64 bytes of cost payload).
pub const MAX_DIM: usize = 8;

/// A plan cost vector `c(p)` in `R^l_+` (component-wise non-negative).
///
/// Lower values are better for every metric. Metrics where "more is better"
/// (e.g. result precision) must be encoded as a loss (e.g. `1 - precision`)
/// before entering the optimizer; `moqo-costmodel` does this.
#[derive(Clone, Copy, PartialEq)]
pub struct CostVector {
    vals: [f64; MAX_DIM],
    dim: u8,
}

impl CostVector {
    /// Creates a cost vector from a slice of per-metric values.
    ///
    /// # Panics
    /// Panics if `values.len() > MAX_DIM`, if any value is negative, or if
    /// any value is NaN. Infinite components are allowed (used for bounds).
    #[inline]
    pub fn new(values: &[f64]) -> Self {
        assert!(
            values.len() <= MAX_DIM,
            "cost vector dimension {} exceeds MAX_DIM {}",
            values.len(),
            MAX_DIM
        );
        let mut vals = [0.0; MAX_DIM];
        for (i, &v) in values.iter().enumerate() {
            assert!(!v.is_nan(), "cost component {i} is NaN");
            assert!(v >= 0.0, "cost component {i} is negative: {v}");
            vals[i] = v;
        }
        Self {
            vals,
            dim: values.len() as u8,
        }
    }

    /// The zero vector with `dim` components.
    #[inline]
    pub fn zeros(dim: usize) -> Self {
        assert!(dim <= MAX_DIM);
        Self {
            vals: [0.0; MAX_DIM],
            dim: dim as u8,
        }
    }

    /// Builds a vector by evaluating `f` for each metric index.
    ///
    /// # Panics
    /// Panics under the same component rules as [`CostVector::new`]: NaN
    /// and negative values are rejected in all build profiles (a NaN that
    /// slipped through here would silently poison every dominance test it
    /// ever participates in), infinite values are allowed.
    #[inline]
    pub fn from_fn(dim: usize, mut f: impl FnMut(usize) -> f64) -> Self {
        assert!(dim <= MAX_DIM);
        let mut vals = [0.0; MAX_DIM];
        for (i, slot) in vals.iter_mut().enumerate().take(dim) {
            let v = f(i);
            assert!(!v.is_nan(), "cost component {i} is NaN");
            assert!(v >= 0.0, "cost component {i} is negative: {v}");
            *slot = v;
        }
        Self {
            vals,
            dim: dim as u8,
        }
    }

    /// Rebuilds a vector from components that were **already validated**
    /// by [`CostVector::new`] / [`CostVector::from_fn`] — the
    /// reconstruction path for struct-of-arrays stores (`moqo-index`
    /// cells), which persist only the raw lanes. Skips the NaN/negative
    /// asserts in release builds so reconstituting an entry costs a
    /// plain copy; debug builds still verify the contract.
    #[inline]
    pub fn from_lanes(dim: usize, mut f: impl FnMut(usize) -> f64) -> Self {
        debug_assert!(dim <= MAX_DIM);
        let mut vals = [0.0; MAX_DIM];
        for (i, slot) in vals.iter_mut().enumerate().take(dim) {
            let v = f(i);
            debug_assert!(!v.is_nan(), "cost component {i} is NaN");
            debug_assert!(v >= 0.0, "cost component {i} is negative: {v}");
            *slot = v;
        }
        Self {
            vals,
            dim: dim as u8,
        }
    }

    /// Number of cost metrics.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim as usize
    }

    /// The per-metric values as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.vals[..self.dim as usize]
    }

    /// Component-wise scaling by a non-negative factor (`alpha * c`).
    ///
    /// Used for approximate-dominance tests: scaling a cost vector by a
    /// factor greater than one makes the plan look worse than it is, which
    /// relaxes the Pareto-set requirement (Section 3).
    #[inline]
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        debug_assert!(factor >= 0.0);
        let mut out = *self;
        for v in out.vals[..self.dim as usize].iter_mut() {
            *v *= factor;
        }
        out
    }

    /// Component-wise sum.
    #[inline]
    #[must_use]
    pub fn add(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a + b)
    }

    /// Component-wise maximum.
    #[inline]
    #[must_use]
    pub fn max(&self, other: &Self) -> Self {
        self.zip_with(other, f64::max)
    }

    /// Component-wise minimum.
    #[inline]
    #[must_use]
    pub fn min(&self, other: &Self) -> Self {
        self.zip_with(other, f64::min)
    }

    /// Component-wise combination with an arbitrary operator.
    #[inline]
    #[must_use]
    pub fn zip_with(&self, other: &Self, mut f: impl FnMut(f64, f64) -> f64) -> Self {
        assert_eq!(self.dim, other.dim, "cost vector dimension mismatch");
        let mut out = *self;
        for (v, o) in out.vals[..self.dim as usize]
            .iter_mut()
            .zip(other.vals[..other.dim as usize].iter())
        {
            *v = f(*v, *o);
        }
        out
    }

    /// `self` dominates `other`: `self[i] <= other[i]` for every metric.
    ///
    /// This is the paper's `c(p1) <= c(p2)` relation ("p1 is at least as
    /// good as p2").
    #[inline]
    pub fn dominates(&self, other: &Self) -> bool {
        assert_eq!(self.dim, other.dim, "cost vector dimension mismatch");
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .all(|(a, b)| a <= b)
    }

    /// `self` strictly dominates `other`: dominates and is strictly better
    /// on at least one metric.
    #[inline]
    pub fn strictly_dominates(&self, other: &Self) -> bool {
        self.dominates(other) && self.as_slice() != other.as_slice()
    }

    /// Approximate dominance: `self <= factor * other` component-wise.
    ///
    /// Avoids materializing the scaled vector.
    #[inline]
    pub fn dominates_scaled(&self, other: &Self, factor: f64) -> bool {
        assert_eq!(self.dim, other.dim, "cost vector dimension mismatch");
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .all(|(a, b)| *a <= factor * *b)
    }

    /// The smallest factor `alpha` such that `self <= alpha * other`
    /// component-wise, or `f64::INFINITY` if no finite factor works (a
    /// component of `other` is zero while `self`'s is positive).
    #[inline]
    pub fn domination_factor(&self, other: &Self) -> f64 {
        assert_eq!(self.dim, other.dim, "cost vector dimension mismatch");
        let mut factor: f64 = 0.0;
        for (a, b) in self.as_slice().iter().zip(other.as_slice()) {
            if *a <= 0.0 {
                continue; // zero cost is covered by any factor
            }
            if *b <= 0.0 {
                return f64::INFINITY;
            }
            factor = factor.max(a / b);
        }
        factor
    }

    /// True if every component is finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.as_slice().iter().all(|v| v.is_finite())
    }

    /// The maximum component value.
    #[inline]
    pub fn max_component(&self) -> f64 {
        self.as_slice().iter().copied().fold(0.0, f64::max)
    }
}

impl Index<usize> for CostVector {
    type Output = f64;

    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.as_slice()[i]
    }
}

impl fmt::Debug for CostVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cost")?;
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl fmt::Display for CostVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.as_slice().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.3}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_accessors() {
        let c = CostVector::new(&[1.0, 2.0, 3.0]);
        assert_eq!(c.dim(), 3);
        assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0]);
        assert_eq!(c[1], 2.0);
    }

    #[test]
    fn zeros_is_all_zero() {
        let z = CostVector::zeros(4);
        assert_eq!(z.as_slice(), &[0.0; 4]);
    }

    #[test]
    fn from_fn_builds_components() {
        let c = CostVector::from_fn(3, |i| (i * i) as f64);
        assert_eq!(c.as_slice(), &[0.0, 1.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn rejects_negative_components() {
        CostVector::new(&[1.0, -0.5]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan_components() {
        CostVector::new(&[f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn from_fn_rejects_negative_components() {
        CostVector::from_fn(2, |i| if i == 1 { -1.0 } else { 0.0 });
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn from_fn_rejects_nan_components() {
        CostVector::from_fn(1, |_| f64::NAN);
    }

    #[test]
    fn from_lanes_round_trips_stored_bits() {
        let original = CostVector::new(&[0.0, 1.5, f64::INFINITY]);
        let rebuilt = CostVector::from_lanes(3, |i| original[i]);
        assert_eq!(rebuilt.dim(), 3);
        for i in 0..3 {
            assert_eq!(rebuilt[i].to_bits(), original[i].to_bits());
        }
    }

    #[test]
    fn from_fn_allows_infinite_components() {
        let c = CostVector::from_fn(2, |_| f64::INFINITY);
        assert!(!c.is_finite());
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_DIM")]
    fn rejects_oversized_vectors() {
        CostVector::new(&[0.0; MAX_DIM + 1]);
    }

    #[test]
    fn scaling() {
        let c = CostVector::new(&[1.0, 2.0]);
        assert_eq!(c.scaled(1.5).as_slice(), &[1.5, 3.0]);
        assert_eq!(c.scaled(0.0).as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn elementwise_ops() {
        let a = CostVector::new(&[1.0, 5.0]);
        let b = CostVector::new(&[2.0, 3.0]);
        assert_eq!(a.add(&b).as_slice(), &[3.0, 8.0]);
        assert_eq!(a.max(&b).as_slice(), &[2.0, 5.0]);
        assert_eq!(a.min(&b).as_slice(), &[1.0, 3.0]);
    }

    #[test]
    fn dominance_basic() {
        let a = CostVector::new(&[1.0, 2.0]);
        let b = CostVector::new(&[1.0, 3.0]);
        assert!(a.dominates(&b));
        assert!(a.strictly_dominates(&b));
        assert!(!b.dominates(&a));
        assert!(a.dominates(&a));
        assert!(!a.strictly_dominates(&a));
    }

    #[test]
    fn dominance_incomparable() {
        let a = CostVector::new(&[1.0, 4.0]);
        let b = CostVector::new(&[2.0, 3.0]);
        assert!(!a.dominates(&b));
        assert!(!b.dominates(&a));
    }

    #[test]
    fn scaled_dominance() {
        let a = CostVector::new(&[2.0, 2.0]);
        let b = CostVector::new(&[1.5, 1.5]);
        // a does not dominate b, but a <= 1.5 * b.
        assert!(!a.dominates(&b));
        assert!(a.dominates_scaled(&b, 1.5));
        assert!(!a.dominates_scaled(&b, 1.2));
    }

    #[test]
    fn domination_factor_matches_scaled_test() {
        let a = CostVector::new(&[2.0, 6.0]);
        let b = CostVector::new(&[1.0, 2.0]);
        let f = a.domination_factor(&b);
        assert_eq!(f, 3.0);
        assert!(a.dominates_scaled(&b, f));
        assert!(!a.dominates_scaled(&b, f * 0.999));
    }

    #[test]
    fn domination_factor_zero_handling() {
        let a = CostVector::new(&[0.0, 0.0]);
        let b = CostVector::new(&[0.0, 1.0]);
        assert_eq!(a.domination_factor(&b), 0.0);
        let c = CostVector::new(&[1.0, 0.0]);
        let d = CostVector::new(&[0.0, 1.0]);
        assert_eq!(c.domination_factor(&d), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dominance_requires_matching_dims() {
        let a = CostVector::new(&[1.0]);
        let b = CostVector::new(&[1.0, 2.0]);
        let _ = a.dominates(&b);
    }

    #[test]
    fn display_formats_components() {
        let c = CostVector::new(&[1.0, 2.5]);
        assert_eq!(format!("{c}"), "(1.000, 2.500)");
    }

    #[test]
    fn max_component_and_finiteness() {
        let c = CostVector::new(&[1.0, 7.0, 2.0]);
        assert_eq!(c.max_component(), 7.0);
        assert!(c.is_finite());
        let b = CostVector::new(&[f64::INFINITY]);
        assert!(!b.is_finite());
    }
}
