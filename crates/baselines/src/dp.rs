//! Non-incremental multi-objective dynamic programming.
//!
//! One routine, [`approx_dp`], parameterized by the pruning factor `alpha`
//! covers all three baselines:
//!
//! * `alpha = 1` → exhaustive full-Pareto DP ([`exhaustive_pareto`]);
//! * `alpha = alpha_target` → the one-shot approximation scheme
//!   ([`one_shot`]);
//! * one run per resolution level → the memoryless anytime baseline
//!   ([`memoryless_series`]).
//!
//! Unlike IAMA, this DP keeps its per-table-set plan sets *minimal*: a
//! newly inserted plan evicts the plans it dominates (prior work "always
//! keeps the result plan sets as small as possible", Section 4.2) — it can
//! afford to because it never reuses state across invocations. Plans whose
//! cost exceeds the bounds are discarded outright, which is safe under
//! monotone cost aggregation.

use moqo_cost::{Bounds, CostVector, ResolutionSchedule};
use moqo_costmodel::{CostModel, PlanInput};
use moqo_index::FxHashMap;
use moqo_plan::{PhysicalProps, PlanArena, PlanId};
use moqo_query::{k_subsets, QuerySpec, TableSet};
use std::time::{Duration, Instant};

/// A plan surviving pruning for one table set.
#[derive(Clone, Copy)]
struct DpEntry {
    plan: PlanId,
    cost: CostVector,
    props: PhysicalProps,
}

/// Result of one non-incremental DP run.
pub struct DpOutcome {
    /// The arena holding every plan constructed during the run.
    pub arena: PlanArena,
    /// The frontier: `(plan, cost)` for the full table set.
    pub frontier: Vec<(PlanId, CostVector)>,
    /// Plans constructed.
    pub plans_generated: u64,
    /// Ordered sub-plan pairs combined.
    pub pairs_generated: u64,
    /// Wall-clock time of the run.
    pub duration: Duration,
}

impl DpOutcome {
    /// The frontier's cost vectors.
    pub fn frontier_costs(&self) -> Vec<CostVector> {
        self.frontier.iter().map(|(_, c)| *c).collect()
    }

    /// The Pareto-minimal cost vectors of the frontier.
    ///
    /// The raw frontier keeps one plan per physical-property class, so a
    /// sorted plan may be cost-dominated by an unsorted one; for the full
    /// table set no downstream operator can exploit the order anymore, so
    /// ground-truth comparisons use this filtered view.
    pub fn pareto_costs(&self) -> Vec<CostVector> {
        let costs = self.frontier_costs();
        moqo_cost::pareto_filter(&costs)
            .into_iter()
            .map(|i| costs[i])
            .collect()
    }
}

/// Inserts `(plan, cost, props)` into a minimal `alpha`-pruned set.
///
/// Rejected if an existing entry with compatible physical properties
/// `alpha`-dominates the new cost; on acceptance, entries that the new
/// plan plainly dominates (and whose order requirements it satisfies) are
/// evicted.
fn insert_pruned(
    set: &mut Vec<DpEntry>,
    plan: PlanId,
    cost: CostVector,
    props: PhysicalProps,
    alpha: f64,
) -> bool {
    for e in set.iter() {
        if e.props.satisfies(&props) && e.cost.dominates_scaled(&cost, alpha) {
            return false;
        }
    }
    set.retain(|e| !(props.satisfies(&e.props) && cost.dominates(&e.cost)));
    set.push(DpEntry { plan, cost, props });
    true
}

/// One non-incremental approximate MOQO DP pass with pruning factor
/// `alpha` and cost bounds `bounds`.
///
/// # Panics
/// Panics if `alpha < 1` or the bounds dimension mismatches the model.
pub fn approx_dp<M: CostModel>(
    spec: &QuerySpec,
    model: &M,
    alpha: f64,
    bounds: &Bounds,
) -> DpOutcome {
    assert!(alpha >= 1.0, "pruning factor must be at least 1");
    assert_eq!(bounds.dim(), model.dim(), "bounds dimension mismatch");
    let start = Instant::now();
    let n = spec.n_tables();
    let mut arena = PlanArena::new();
    let mut sets: FxHashMap<TableSet, Vec<DpEntry>> = FxHashMap::default();
    let mut plans_generated = 0u64;
    let mut pairs_generated = 0u64;

    // Base case: scan plans.
    for pos in 0..n {
        let q = TableSet::singleton(pos);
        for (op, cost, props) in model.scan_alternatives(spec, pos) {
            let pid = arena.push_scan(op, pos, cost, props);
            plans_generated += 1;
            if bounds.exceeds(&cost) {
                continue; // cannot lead to a bounded plan (monotonicity)
            }
            insert_pruned(sets.entry(q).or_default(), pid, cost, props, alpha);
        }
    }

    // Inductive case: table sets of increasing cardinality.
    for k in 2..=n {
        for q in k_subsets(n, k) {
            for (q1, q2) in q.splits() {
                for (a, b) in [(q1, q2), (q2, q1)] {
                    if spec.is_cross_product(a, b) {
                        continue;
                    }
                    let (p1s, p2s) = match (sets.get(&a), sets.get(&b)) {
                        (Some(x), Some(y)) if !x.is_empty() && !y.is_empty() => {
                            (x.clone(), y.clone())
                        }
                        _ => continue,
                    };
                    for e1 in &p1s {
                        for e2 in &p2s {
                            pairs_generated += 1;
                            let left = PlanInput {
                                tables: a,
                                cost: e1.cost,
                                props: e1.props,
                            };
                            let right = PlanInput {
                                tables: b,
                                cost: e2.cost,
                                props: e2.props,
                            };
                            for (op, cost, props) in model.join_alternatives(spec, &left, &right) {
                                let pid = arena.push_join(op, e1.plan, e2.plan, cost, props);
                                plans_generated += 1;
                                if bounds.exceeds(&cost) {
                                    continue;
                                }
                                insert_pruned(sets.entry(q).or_default(), pid, cost, props, alpha);
                            }
                        }
                    }
                }
            }
        }
    }

    let frontier = sets
        .get(&spec.all_tables())
        .map(|entries| entries.iter().map(|e| (e.plan, e.cost)).collect())
        .unwrap_or_default();
    DpOutcome {
        arena,
        frontier,
        plans_generated,
        pairs_generated,
        duration: start.elapsed(),
    }
}

/// The exhaustive full-Pareto baseline (Ganguly-style): `alpha = 1`.
pub fn exhaustive_pareto<M: CostModel>(spec: &QuerySpec, model: &M, bounds: &Bounds) -> DpOutcome {
    approx_dp(spec, model, 1.0, bounds)
}

/// The one-shot baseline: a single DP pass at the schedule's target
/// precision (`alpha_{rM}`). "Produces the result plan set with highest
/// resolution directly, avoiding any intermediate steps."
pub fn one_shot<M: CostModel>(
    spec: &QuerySpec,
    model: &M,
    schedule: &ResolutionSchedule,
    bounds: &Bounds,
) -> DpOutcome {
    approx_dp(spec, model, schedule.target_factor(), bounds)
}

/// The memoryless baseline: one from-scratch DP pass per resolution level,
/// "the same sequence of result plan sets as the incremental anytime
/// algorithm ... produced from scratch" each time.
pub fn memoryless_series<M: CostModel>(
    spec: &QuerySpec,
    model: &M,
    schedule: &ResolutionSchedule,
    bounds: &Bounds,
) -> Vec<DpOutcome> {
    schedule
        .iter()
        .map(|(_, alpha)| approx_dp(spec, model, alpha, bounds))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_cost::{coverage_factor, pareto_filter};
    use moqo_costmodel::{StandardCostModel, StandardCostModelConfig};
    use moqo_query::testkit;

    /// A reduced operator space keeps the exhaustive baseline fast.
    fn small_model() -> StandardCostModel {
        StandardCostModel::new(
            moqo_costmodel::MetricSet::paper(),
            StandardCostModelConfig {
                dops: vec![1, 4],
                sampling_rates_pm: vec![100, 500],
                ..StandardCostModelConfig::default()
            },
        )
    }

    #[test]
    fn exhaustive_frontier_is_minimal_per_property_class() {
        let spec = testkit::chain_query(3, 100_000);
        let model = small_model();
        let out = exhaustive_pareto(&spec, &model, &Bounds::unbounded(3));
        assert!(!out.frontier.is_empty());
        // Within one physical-property class no plan dominates another.
        for (i, (p1, c1)) in out.frontier.iter().enumerate() {
            for (j, (p2, c2)) in out.frontier.iter().enumerate() {
                if i == j {
                    continue;
                }
                let props1 = out.arena.node(*p1).props;
                let props2 = out.arena.node(*p2).props;
                if props1.satisfies(&props2) {
                    assert!(
                        !c1.strictly_dominates(c2),
                        "exhaustive set not minimal within a property class"
                    );
                }
            }
        }
        // The filtered view is a genuine Pareto set.
        let pareto = out.pareto_costs();
        assert!(!pareto.is_empty());
        assert_eq!(pareto_filter(&pareto).len(), pareto.len());
    }

    #[test]
    fn approx_dp_covers_exhaustive_within_alpha_n() {
        let spec = testkit::chain_query(3, 100_000);
        let model = small_model();
        let b = Bounds::unbounded(3);
        let exact = exhaustive_pareto(&spec, &model, &b);
        let alpha = 1.2;
        let approx = approx_dp(&spec, &model, alpha, &b);
        let exact_costs: Vec<CostVector> = exact.frontier.iter().map(|(_, c)| *c).collect();
        let approx_costs: Vec<CostVector> = approx.frontier.iter().map(|(_, c)| *c).collect();
        let factor = coverage_factor(&approx_costs, &exact_costs);
        let guarantee = alpha.powi(spec.n_tables() as i32);
        assert!(
            factor <= guarantee + 1e-9,
            "coverage factor {factor} exceeds guarantee {guarantee}"
        );
        // Coarser pruning yields a frontier at most as large.
        assert!(approx.frontier.len() <= exact.frontier.len());
    }

    #[test]
    fn coarser_alpha_generates_fewer_plans() {
        let spec = testkit::chain_query(4, 100_000);
        let model = small_model();
        let b = Bounds::unbounded(3);
        let fine = approx_dp(&spec, &model, 1.01, &b);
        let coarse = approx_dp(&spec, &model, 1.5, &b);
        assert!(coarse.plans_generated <= fine.plans_generated);
        assert!(coarse.frontier.len() <= fine.frontier.len());
    }

    #[test]
    fn bounds_prune_the_search_space() {
        let spec = testkit::chain_query(3, 100_000);
        let model = small_model();
        let unb = Bounds::unbounded(3);
        let full = approx_dp(&spec, &model, 1.1, &unb);
        // Bound time to the cheapest plan's time * 1.2.
        let t_min = full
            .frontier
            .iter()
            .map(|(_, c)| c[0])
            .fold(f64::INFINITY, f64::min);
        let tight = Bounds::unbounded(3).with_limit(0, t_min * 1.2);
        let bounded = approx_dp(&spec, &model, 1.1, &tight);
        assert!(bounded.frontier.len() <= full.frontier.len());
        assert!(
            bounded.pairs_generated <= full.pairs_generated,
            "bounds must not increase work"
        );
        assert!(bounded.frontier.iter().all(|(_, c)| tight.respects(c)));
        // The bounded frontier still contains the fastest plan.
        assert!(!bounded.frontier.is_empty());
    }

    #[test]
    fn memoryless_series_matches_schedule_length_and_refines() {
        let spec = testkit::chain_query(3, 100_000);
        let model = small_model();
        let schedule = ResolutionSchedule::linear(4, 1.05, 0.5);
        let series = memoryless_series(&spec, &model, &schedule, &Bounds::unbounded(3));
        assert_eq!(series.len(), 5);
        // The last element is the one-shot result (same alpha).
        let oneshot = one_shot(&spec, &model, &schedule, &Bounds::unbounded(3));
        assert_eq!(
            series.last().unwrap().frontier.len(),
            oneshot.frontier.len()
        );
        // Frontier sizes weakly grow as alpha shrinks.
        let sizes: Vec<usize> = series.iter().map(|o| o.frontier.len()).collect();
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]), "sizes {sizes:?}");
    }

    #[test]
    fn single_table_dp() {
        let spec = testkit::chain_query(1, 50_000);
        let model = small_model();
        let out = exhaustive_pareto(&spec, &model, &Bounds::unbounded(3));
        assert!(!out.frontier.is_empty());
        assert_eq!(out.pairs_generated, 0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn rejects_alpha_below_one() {
        let spec = testkit::chain_query(2, 1000);
        let model = small_model();
        approx_dp(&spec, &model, 0.9, &Bounds::unbounded(3));
    }
}
