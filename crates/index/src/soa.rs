//! Struct-of-arrays storage for index cells.
//!
//! The cell grid stores each cell's entries column-wise: one contiguous
//! `f64` lane per cost metric plus parallel `item` / `level` /
//! `invocation` columns. The lane layout is what makes the batched
//! dominance kernels in [`moqo_cost::lanes`] auto-vectorizable — a
//! block of 64 plans is one slice per metric, not 64 pointer-chased
//! `Entry` structs — while the parallel columns keep reconstruction of
//! a full [`Entry`] a plain gather.
//!
//! Row order is insertion order and every operation here preserves it,
//! which is what lets the batched and scalar scan paths visit entries
//! in the identical sequence (the bit-exactness contract of the
//! optimizer's frontier oracles).

use crate::entry::Entry;
use moqo_cost::{lanes, Bounds, CostVector, MAX_DIM};

/// One cell's entries in struct-of-arrays layout.
#[derive(Clone, Debug)]
pub struct SoaCell<T: Copy> {
    items: Vec<T>,
    levels: Vec<u8>,
    invocations: Vec<u32>,
    cost_lanes: [Vec<f64>; MAX_DIM],
}

impl<T: Copy> Default for SoaCell<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy> SoaCell<T> {
    /// An empty cell (lanes allocate lazily on first push).
    pub fn new() -> Self {
        Self {
            items: Vec::new(),
            levels: Vec::new(),
            invocations: Vec::new(),
            cost_lanes: Default::default(),
        }
    }

    /// Number of stored rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if no rows are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Appends an entry as a new row.
    #[inline]
    pub fn push(&mut self, e: &Entry<T>) {
        self.items.push(e.item);
        self.levels.push(e.level);
        self.invocations.push(e.invocation);
        for (m, lane) in self.cost_lanes.iter_mut().enumerate().take(e.cost.dim()) {
            lane.push(e.cost[m]);
        }
    }

    /// The payload of row `i`.
    #[inline]
    pub fn item(&self, i: usize) -> T {
        self.items[i]
    }

    /// Reconstructs the cost vector of row `i` (bit-identical to the
    /// vector that was pushed).
    #[inline]
    pub fn cost(&self, i: usize, dim: usize) -> CostVector {
        CostVector::from_lanes(dim, |m| self.cost_lanes[m][i])
    }

    /// Reconstructs the full entry of row `i`.
    #[inline]
    pub fn entry(&self, i: usize, dim: usize) -> Entry<T> {
        Entry::new(
            self.items[i],
            self.cost(i, dim),
            self.levels[i],
            self.invocations[i],
        )
    }

    /// The per-metric cost lanes as borrowed slices (only the first
    /// `dim` are populated; slice with `[..dim]` before handing them to
    /// the kernels).
    #[inline]
    pub fn lane_slices(&self) -> [&[f64]; MAX_DIM] {
        std::array::from_fn(|m| self.cost_lanes[m].as_slice())
    }

    /// The item column.
    #[inline]
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// The level column.
    #[inline]
    pub fn levels(&self) -> &[u8] {
        &self.levels
    }

    /// The invocation column.
    #[inline]
    pub fn invocations(&self) -> &[u32] {
        &self.invocations
    }

    /// Moves every row into `out` as reconstructed entries (in row
    /// order) and clears the cell.
    pub fn drain_all_into(&mut self, dim: usize, out: &mut Vec<Entry<T>>) {
        out.reserve(self.len());
        for i in 0..self.len() {
            out.push(self.entry(i, dim));
        }
        self.truncate(0);
    }

    /// Single-pass stable partition: rows respecting `bounds` move into
    /// `out` (in row order), the rest compact down in place (also in
    /// row order). The bounds test runs through the lane kernels one
    /// [`lanes::BLOCK`] at a time.
    pub fn drain_respecting_into(&mut self, dim: usize, bounds: &Bounds, out: &mut Vec<Entry<T>>) {
        let n = self.len();
        let mut write = 0usize;
        let mut start = 0usize;
        while start < n {
            let blk = (n - start).min(lanes::BLOCK);
            let mask = {
                let cols = self.lane_slices();
                bounds.respects_lanes(&cols[..dim], start, blk)
            };
            for j in 0..blk {
                let i = start + j;
                if mask >> j & 1 == 1 {
                    out.push(self.entry(i, dim));
                } else {
                    if write != i {
                        self.copy_row(i, write, dim);
                    }
                    write += 1;
                }
            }
            start += blk;
        }
        self.truncate(write);
    }

    #[inline]
    fn copy_row(&mut self, from: usize, to: usize, dim: usize) {
        self.items[to] = self.items[from];
        self.levels[to] = self.levels[from];
        self.invocations[to] = self.invocations[from];
        for lane in self.cost_lanes.iter_mut().take(dim) {
            lane[to] = lane[from];
        }
    }

    #[inline]
    fn truncate(&mut self, len: usize) {
        self.items.truncate(len);
        self.levels.truncate(len);
        self.invocations.truncate(len);
        for lane in self.cost_lanes.iter_mut() {
            lane.truncate(len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(costs: &[[f64; 2]]) -> SoaCell<u32> {
        let mut c = SoaCell::new();
        for (i, v) in costs.iter().enumerate() {
            c.push(&Entry::new(
                i as u32,
                CostVector::new(v),
                (i % 3) as u8,
                i as u32 * 10,
            ));
        }
        c
    }

    #[test]
    fn push_and_reconstruct_round_trip() {
        let c = cell(&[[1.0, 9.0], [2.5, 0.0], [f64::INFINITY, 3.0]]);
        assert_eq!(c.len(), 3);
        let e = c.entry(1, 2);
        assert_eq!(e.item, 1);
        assert_eq!(e.level, 1);
        assert_eq!(e.invocation, 10);
        assert_eq!(e.cost.as_slice(), &[2.5, 0.0]);
        assert_eq!(c.lane_slices()[0], &[1.0, 2.5, f64::INFINITY]);
        assert_eq!(c.lane_slices()[1], &[9.0, 0.0, 3.0]);
    }

    #[test]
    fn drain_respecting_is_a_stable_partition() {
        let mut c = cell(&[[1.0, 1.0], [5.0, 5.0], [2.0, 2.0], [6.0, 1.0], [0.5, 3.0]]);
        let mut out = Vec::new();
        c.drain_respecting_into(2, &Bounds::from_slice(&[4.0, 4.0]), &mut out);
        // Rows 0, 2, 4 respect the bounds, in that order.
        assert_eq!(out.iter().map(|e| e.item).collect::<Vec<_>>(), [0, 2, 4]);
        // Rows 1, 3 remain, still in insertion order.
        assert_eq!(c.len(), 2);
        assert_eq!(c.item(0), 1);
        assert_eq!(c.item(1), 3);
        assert_eq!(c.lane_slices()[0], &[5.0, 6.0]);
    }

    #[test]
    fn drain_all_preserves_row_order() {
        let mut c = cell(&[[3.0, 1.0], [1.0, 3.0]]);
        let mut out = Vec::new();
        c.drain_all_into(2, &mut out);
        assert!(c.is_empty());
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].item, 0);
        assert_eq!(out[1].item, 1);
    }
}
