//! The [`CostModel`] trait: what every optimizer needs from the costing
//! substrate.

use crate::metrics::MetricSet;
use moqo_cost::CostVector;
use moqo_plan::{Operator, PhysicalProps};
use moqo_query::{QuerySpec, TableSet};
use std::sync::Arc;

/// A shared, thread-safe, type-erased cost model.
///
/// The optimizer core and the serving engine hold cost models through this
/// alias so that one model instance can back many concurrent sessions and
/// move freely across worker threads. [`CostModel`] is object-safe by
/// design — every concrete model converts with `Arc::new(model)` (plus the
/// implicit unsizing coercion at the call site).
pub type SharedCostModel = Arc<dyn CostModel + Send + Sync>;

/// What the cost model sees of a child plan when costing a join: its table
/// set, cached cost vector, and physical properties.
///
/// This is all the information the recursive cost formulas may consume —
/// the paper's Lemma 4 requires that combining two sub-plans costs `O(1)`,
/// which holds because the cost is computed "from the cached cost of the
/// sub-plans using recursive cost formulas".
#[derive(Clone, Copy, Debug)]
pub struct PlanInput {
    /// Tables joined by the child plan.
    pub tables: TableSet,
    /// Cached cost vector of the child plan.
    pub cost: CostVector,
    /// Physical properties of the child plan's output.
    pub props: PhysicalProps,
}

/// A multi-objective cost model: enumerates operator alternatives and costs
/// them with PONO-compliant recursive formulas.
pub trait CostModel {
    /// The metric layout of the produced cost vectors.
    fn metrics(&self) -> &MetricSet;

    /// A stable identity of this model's *cost semantics*.
    ///
    /// Two model instances that can cost the same plan differently must
    /// return different identities; instances that are behaviorally
    /// identical should return the same one (so warm state transfers
    /// between them). Serving layers embed the identity in the query
    /// fingerprint and in frontier snapshots, guaranteeing that cached or
    /// persisted warm frontiers are never resumed under a model that
    /// would have costed them differently. Hash every parameter the cost
    /// formulas consume — the metric layout alone is not enough once a
    /// model is tunable.
    fn identity(&self) -> u64;

    /// Number of cost metrics (the paper's `l`).
    fn dim(&self) -> usize {
        self.metrics().dim()
    }

    /// All scan alternatives for the query table at `position`:
    /// `(operator, cost, output properties)` triples.
    ///
    /// Multiple alternatives per table (e.g. sampled scans at different
    /// rates) are what make single-table Pareto sets non-trivial.
    fn scan_alternatives(
        &self,
        spec: &QuerySpec,
        position: usize,
    ) -> Vec<(Operator, CostVector, PhysicalProps)>;

    /// All join alternatives combining `left ⋈ right`:
    /// `(operator, cost, output properties)` triples.
    ///
    /// Implementations must only use the children's [`PlanInput`] data and
    /// per-table-set statistics from `spec`, keeping each alternative O(1)
    /// to cost.
    fn join_alternatives(
        &self,
        spec: &QuerySpec,
        left: &PlanInput,
        right: &PlanInput,
    ) -> Vec<(Operator, CostVector, PhysicalProps)>;
}

/// Resolves a cost-model [identity](CostModel::identity) back to a live
/// model.
///
/// Cost models are code, not data: a serialized session request (the
/// `moqo-wire` codec) or a persisted frontier snapshot carries only the
/// model's identity hash, and the receiving side must map it back to an
/// executable model. Serving deployments implement this with a model
/// registry (`moqo_engine::ModelRegistry`); a single default model is
/// itself a resolver for exactly its own identity.
pub trait ModelResolver {
    /// The registered model with this identity, if any.
    fn resolve_model(&self, identity: u64) -> Option<SharedCostModel>;
}

/// A lone [`SharedCostModel`] resolves exactly its own identity — the
/// degenerate single-model deployment.
impl ModelResolver for SharedCostModel {
    fn resolve_model(&self, identity: u64) -> Option<SharedCostModel> {
        (self.identity() == identity).then(|| self.clone())
    }
}

/// Delegating impls so references and smart pointers to a model are
/// themselves models: generic helpers taking `&M` keep working when the
/// caller holds an `Arc<ConcreteModel>` or a [`SharedCostModel`].
macro_rules! delegate_cost_model {
    ($($ty:ty),*) => {$(
        impl<M: CostModel + ?Sized> CostModel for $ty {
            fn metrics(&self) -> &MetricSet {
                (**self).metrics()
            }
            fn identity(&self) -> u64 {
                (**self).identity()
            }
            fn dim(&self) -> usize {
                (**self).dim()
            }
            fn scan_alternatives(
                &self,
                spec: &QuerySpec,
                position: usize,
            ) -> Vec<(Operator, CostVector, PhysicalProps)> {
                (**self).scan_alternatives(spec, position)
            }
            fn join_alternatives(
                &self,
                spec: &QuerySpec,
                left: &PlanInput,
                right: &PlanInput,
            ) -> Vec<(Operator, CostVector, PhysicalProps)> {
                (**self).join_alternatives(spec, left, right)
            }
        }
    )*};
}

delegate_cost_model!(&M, Box<M>, Arc<M>);
