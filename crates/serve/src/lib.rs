//! moqo-serve — the sharded, admission-controlled serving front.
//!
//! `moqo-engine` turned the paper's single-user loop (Trummer & Koch,
//! SIGMOD 2015, Figure 1) into a multi-session manager; this crate turns
//! that manager into a *service* — still speaking the
//! [session protocol](moqo_core::protocol), so the same
//! [`SessionRequest`] / [`SessionCommand`] / [`SessionEvent`] types that
//! drive a bare `moqo_core::Session` drive the whole front:
//!
//! * [`ShardedEngine`] — N independent [`moqo_engine::SessionManager`]
//!   shards behind a [`QueryFingerprint`]-hash router. Repeats and
//!   same-shape queries land on the shard whose `FrontierCache` /
//!   `PlanCache` is already warm; cold queries may divert to the
//!   least-loaded shard when their home is overloaded. Fingerprints
//!   embed the effective cost-model identity, so per-session model
//!   overrides route (and warm) independently.
//! * [`AdmissionController`] — bounded intake with pluggable overload
//!   policy: [`Reject`](AdmissionPolicy::Reject) (pure backpressure),
//!   [`Queue`](AdmissionPolicy::Queue) (bounded FIFO, never unbounded
//!   growth), or [`Degrade`](AdmissionPolicy::Degrade) (admit at a
//!   coarser target resolution — IAMA's resolution ladder doubling as a
//!   load-shedding knob). Decisions surface as the protocol's
//!   [`AdmissionResponse`].
//! * [`MoqoServer`] — the non-blocking client surface: `submit` takes a
//!   [`SessionRequest`] and returns a [`Ticket`] plus the admission
//!   response immediately; delta-streamed [`SessionEvent`]s arrive over
//!   per-ticket channels (`poll` to drain into the reassembled
//!   [`SessionView`], `recv` to block on *your own* channel). No caller
//!   ever parks on the engine's internal condvar, and the full frontier
//!   ships at most once per stream.
//! * [`SnapshotStore`] — versioned snapshot/restore of parked frontiers
//!   (one file per fingerprint via
//!   [`moqo_core::IamaOptimizer::export_frontier`], with per-fingerprint
//!   dirty tracking so unchanged frontiers skip the write), so a
//!   restarted server's first invocation of a known query still
//!   generates zero plans.
//! * [`NetServer`] / [`NetClient`] — the same protocol over real TCP
//!   (`moqo-wire` framing): one framed duplex stream per ticket on a
//!   small I/O thread pool, typed admission/error round-trips, cost
//!   models resolved by identity against a [`ModelRegistry`], and
//!   client-side [`SessionView`] reassembly that is bit-exact with the
//!   server's.
//!
//! ```
//! use moqo_cost::ResolutionSchedule;
//! use moqo_costmodel::StandardCostModel;
//! use moqo_query::testkit;
//! use moqo_serve::{MoqoServer, ServeConfig, TicketStatus};
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! let server = MoqoServer::new(
//!     Arc::new(StandardCostModel::paper_metrics()),
//!     ResolutionSchedule::linear(2, 1.1, 0.4),
//!     ServeConfig::default(),
//! );
//! let (ticket, response) = server
//!     .submit(Arc::new(testkit::chain_query(3, 50_000)))
//!     .unwrap();
//! assert!(response.is_admitted());
//! assert!(server.wait_idle(Duration::from_secs(30)));
//! match server.poll(ticket) {
//!     Some(TicketStatus::Active { view, .. }) => assert!(!view.frontier.is_empty()),
//!     other => panic!("expected an active ticket, got {other:?}"),
//! }
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod api;
pub mod net;
pub mod persist;
pub mod shard;

pub use admission::{
    Admission, AdmissionConfig, AdmissionController, AdmissionPolicy, AdmissionStats,
};
pub use api::{MoqoServer, ServeConfig, ServerEventHook, ServerStats, Ticket, TicketStatus};
pub use net::{NetClient, NetConfig, NetServer, NetStats};
pub use persist::{RestoreReport, SaveReport, SnapshotStore, FRONTIER_EXT};
pub use shard::{GlobalSessionId, RouteDecision, ShardConfig, ShardStats, ShardedEngine};

// Re-exported so serve users can speak the engine vocabulary without a
// direct moqo-engine dependency.
pub use moqo_engine::{EngineConfig, ModelRegistry, QueryFingerprint, SessionStatus};

// The wire layer the network front speaks (handshake, frames, envelopes).
pub use moqo_wire::NetError;

// The session protocol — the one vocabulary all three layers speak.
pub use moqo_core::protocol::{
    AdmissionResponse, FrontierDelta, ProtocolError, RejectReason, SessionCommand, SessionEvent,
    SessionOutcome, SessionRequest, SessionView,
};
