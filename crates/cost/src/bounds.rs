//! User cost bounds.
//!
//! The paper models bounds as a cost vector `b`; a plan `p` *respects* the
//! bounds when `c(p) ⪯ b` and *exceeds* them otherwise (Section 3). An
//! unbounded metric is represented by `+∞`, matching the evaluation setup
//! where "the cost bounds are initially fixed to ∞".

use crate::vector::CostVector;
use std::fmt;

/// Upper cost bounds `b` restricting the area of interest in cost space.
#[derive(Clone, Copy, PartialEq)]
pub struct Bounds {
    limits: CostVector,
}

impl Bounds {
    /// Bounds from explicit per-metric limits (use `f64::INFINITY` for
    /// unconstrained metrics).
    #[inline]
    pub fn new(limits: CostVector) -> Self {
        Self { limits }
    }

    /// Completely unconstrained bounds for `dim` metrics.
    #[inline]
    pub fn unbounded(dim: usize) -> Self {
        Self {
            limits: CostVector::from_fn(dim, |_| f64::INFINITY),
        }
    }

    /// Bounds from a slice of limits.
    #[inline]
    pub fn from_slice(limits: &[f64]) -> Self {
        Self {
            limits: CostVector::new(limits),
        }
    }

    /// Number of metrics.
    #[inline]
    pub fn dim(&self) -> usize {
        self.limits.dim()
    }

    /// The underlying limit vector.
    #[inline]
    pub fn limits(&self) -> &CostVector {
        &self.limits
    }

    /// True if a plan with cost `c` respects these bounds (`c ⪯ b`).
    #[inline]
    pub fn respects(&self, c: &CostVector) -> bool {
        c.dominates(&self.limits)
    }

    /// True if a plan with cost `c` exceeds these bounds.
    #[inline]
    pub fn exceeds(&self, c: &CostVector) -> bool {
        !self.respects(c)
    }

    /// Lane variant of [`Bounds::respects`] over struct-of-arrays cost
    /// storage: the hit mask of rows `start .. start + n` (at most
    /// [`crate::lanes::BLOCK`]) of the per-metric columns `lanes` whose
    /// cost respects these bounds. Bit-exact with the scalar test; see
    /// [`crate::lanes`].
    #[inline]
    pub fn respects_lanes(&self, lanes: &[&[f64]], start: usize, n: usize) -> u64 {
        crate::lanes::respects_lanes(lanes, self.limits.as_slice(), start, n)
    }

    /// True if no metric is constrained.
    #[inline]
    pub fn is_unbounded(&self) -> bool {
        self.limits.as_slice().iter().all(|v| v.is_infinite())
    }

    /// True if `self` is at least as permissive as `other` on every metric
    /// (`other.limits ⪯ self.limits`): every plan respecting `other` also
    /// respects `self`.
    #[inline]
    pub fn contains(&self, other: &Bounds) -> bool {
        other.limits.dominates(&self.limits)
    }

    /// Returns a copy with the limit for `metric` replaced by `limit`.
    #[inline]
    #[must_use]
    pub fn with_limit(&self, metric: usize, limit: f64) -> Self {
        assert!(metric < self.dim(), "metric index out of range");
        Self {
            limits: CostVector::from_fn(self.dim(), |i| {
                if i == metric {
                    limit
                } else {
                    self.limits[i]
                }
            }),
        }
    }

    /// Component-wise intersection (tightest of both bounds per metric).
    #[inline]
    #[must_use]
    pub fn intersect(&self, other: &Bounds) -> Self {
        Self {
            limits: self.limits.min(&other.limits),
        }
    }
}

impl fmt::Debug for Bounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bounds{:?}", self.limits)
    }
}

impl fmt::Display for Bounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.limits.as_slice().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if v.is_infinite() {
                write!(f, "∞")?;
            } else {
                write!(f, "{v:.3}")?;
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_accepts_everything_finite() {
        let b = Bounds::unbounded(3);
        assert!(b.is_unbounded());
        assert!(b.respects(&CostVector::new(&[1e300, 0.0, 42.0])));
    }

    #[test]
    fn respects_and_exceeds_are_complements() {
        let b = Bounds::from_slice(&[10.0, 5.0]);
        let inside = CostVector::new(&[10.0, 5.0]);
        let outside = CostVector::new(&[10.0, 5.1]);
        assert!(b.respects(&inside));
        assert!(!b.exceeds(&inside));
        assert!(b.exceeds(&outside));
        assert!(!b.respects(&outside));
    }

    #[test]
    fn with_limit_replaces_single_metric() {
        let b = Bounds::unbounded(2).with_limit(1, 7.0);
        assert!(b.respects(&CostVector::new(&[1e9, 7.0])));
        assert!(b.exceeds(&CostVector::new(&[0.0, 7.5])));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn with_limit_rejects_bad_metric() {
        let _ = Bounds::unbounded(2).with_limit(2, 1.0);
    }

    #[test]
    fn containment() {
        let loose = Bounds::from_slice(&[10.0, 10.0]);
        let tight = Bounds::from_slice(&[5.0, 10.0]);
        assert!(loose.contains(&tight));
        assert!(!tight.contains(&loose));
        assert!(Bounds::unbounded(2).contains(&tight));
        assert!(loose.contains(&loose));
    }

    #[test]
    fn intersect_takes_tightest_limits() {
        let a = Bounds::from_slice(&[10.0, 3.0]);
        let b = Bounds::from_slice(&[4.0, 8.0]);
        let i = a.intersect(&b);
        assert_eq!(i.limits().as_slice(), &[4.0, 3.0]);
        assert!(a.contains(&i) && b.contains(&i));
    }

    #[test]
    fn display_renders_infinity() {
        let b = Bounds::unbounded(2).with_limit(0, 2.0);
        assert_eq!(format!("{b}"), "[2.000, ∞]");
    }
}
