//! The catalog: an immutable collection of tables.

use crate::table::{Table, TableId};

/// An immutable catalog of base tables.
///
/// Built once via [`crate::CatalogBuilder`] and then shared read-only by the
/// optimizer — statistics never change during an interactive optimization
/// session.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    tables: Vec<Table>,
}

impl Catalog {
    /// Creates a catalog from a table list (use [`crate::CatalogBuilder`]
    /// for ergonomic construction).
    ///
    /// # Panics
    /// Panics if two tables share a name.
    pub fn new(tables: Vec<Table>) -> Self {
        for (i, a) in tables.iter().enumerate() {
            for b in tables.iter().skip(i + 1) {
                assert_ne!(a.name, b.name, "duplicate table name {:?}", a.name);
            }
        }
        Self { tables }
    }

    /// Number of tables.
    #[inline]
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True if the catalog holds no tables.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// The table with the given id.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    #[inline]
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.index()]
    }

    /// Looks up a table by name.
    pub fn table_by_name(&self, name: &str) -> Option<(TableId, &Table)> {
        self.tables
            .iter()
            .enumerate()
            .find(|(_, t)| t.name == name)
            .map(|(i, t)| (TableId(i as u32), t))
    }

    /// Iterates over `(id, table)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TableId, &Table)> {
        self.tables
            .iter()
            .enumerate()
            .map(|(i, t)| (TableId(i as u32), t))
    }

    /// The cardinality of the largest table — the paper's parameter `m`
    /// used in the size bounds of Section 5.2.
    pub fn max_cardinality(&self) -> u64 {
        self.tables.iter().map(|t| t.cardinality).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Catalog {
        Catalog::new(vec![
            Table::new("region", 5, 64),
            Table::new("nation", 25, 64),
            Table::new("orders", 1_500_000, 120),
        ])
    }

    #[test]
    fn lookup_by_id_and_name() {
        let c = sample();
        assert_eq!(c.len(), 3);
        assert_eq!(c.table(TableId(1)).name, "nation");
        let (id, t) = c.table_by_name("orders").unwrap();
        assert_eq!(id, TableId(2));
        assert_eq!(t.cardinality, 1_500_000);
        assert!(c.table_by_name("lineitem").is_none());
    }

    #[test]
    fn max_cardinality_is_paper_parameter_m() {
        assert_eq!(sample().max_cardinality(), 1_500_000);
        assert_eq!(Catalog::default().max_cardinality(), 0);
    }

    #[test]
    #[should_panic(expected = "duplicate table name")]
    fn rejects_duplicate_names() {
        Catalog::new(vec![Table::new("t", 1, 1), Table::new("t", 2, 2)]);
    }

    #[test]
    fn iter_yields_ids_in_order() {
        let c = sample();
        let ids: Vec<u32> = c.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
