//! Tests for the buffer-memory metric.

use crate::metrics::{Metric, MetricSet};
use crate::model::{CostModel, PlanInput};
use crate::standard::{StandardCostModel, StandardCostModelConfig};
use moqo_plan::{JoinAlgo, Operator};
use moqo_query::{testkit, TableSet};

fn model() -> StandardCostModel {
    StandardCostModel::new(
        MetricSet::resources(),
        StandardCostModelConfig {
            eval_spin: 0,
            ..StandardCostModelConfig::default()
        },
    )
}

#[test]
fn scans_reserve_a_page_buffer() {
    let spec = testkit::chain_query(2, 100_000);
    let m = model();
    let metrics = m.metrics();
    for (_, cost, _) in m.scan_alternatives(&spec, 0) {
        assert_eq!(metrics.get(&cost, Metric::Memory), Some(8_192.0));
    }
}

#[test]
fn hash_join_memory_scales_with_build_side() {
    let small = testkit::chain_query(2, 50_000);
    let large = testkit::chain_query(2, 500_000);
    let m = model();
    let metrics = m.metrics();
    let mem_of = |spec: &moqo_query::QuerySpec| {
        let l = m.scan_alternatives(spec, 0).remove(0);
        let r = m.scan_alternatives(spec, 1).remove(0);
        let li = PlanInput {
            tables: TableSet::singleton(0),
            cost: l.1,
            props: l.2,
        };
        let ri = PlanInput {
            tables: TableSet::singleton(1),
            cost: r.1,
            props: r.2,
        };
        let alts = m.join_alternatives(spec, &li, &ri);
        let hash = alts
            .iter()
            .find(|(op, _, _)| {
                matches!(
                    op,
                    Operator::Join {
                        algo: JoinAlgo::Hash,
                        dop: 1
                    }
                )
            })
            .unwrap();
        metrics.get(&hash.1, Metric::Memory).unwrap()
    };
    assert!(
        mem_of(&large) > mem_of(&small) * 5.0,
        "hash build memory must grow with the build side"
    );
}

#[test]
fn memory_is_monotone_and_parallel_children_add_up() {
    let spec = testkit::chain_query(2, 200_000);
    let m = model();
    let metrics = m.metrics();
    let l = m.scan_alternatives(&spec, 0).remove(0);
    let r = m.scan_alternatives(&spec, 1).remove(0);
    let li = PlanInput {
        tables: TableSet::singleton(0),
        cost: l.1,
        props: l.2,
    };
    let ri = PlanInput {
        tables: TableSet::singleton(1),
        cost: r.1,
        props: r.2,
    };
    let alts = m.join_alternatives(&spec, &li, &ri);
    let mem_pos = metrics.position(Metric::Memory).unwrap();
    for (op, cost, _) in &alts {
        // Monotone cost aggregation holds for memory.
        assert!(cost[mem_pos] >= li.cost[mem_pos] - 1e-9);
        assert!(cost[mem_pos] >= ri.cost[mem_pos] - 1e-9);
        // A parallel nested-loop join holds both child buffers at once.
        if let Operator::Join {
            algo: JoinAlgo::NestedLoop,
            dop,
        } = op
        {
            let expected_children = if *dop > 1 {
                li.cost[mem_pos] + ri.cost[mem_pos]
            } else {
                li.cost[mem_pos].max(ri.cost[mem_pos])
            };
            assert!(cost[mem_pos] >= expected_children - 1e-9);
        }
    }
}

#[test]
fn six_metric_optimization_end_to_end() {
    use moqo_cost::{Bounds, ResolutionSchedule};
    let spec = testkit::chain_query(3, 100_000);
    let m = StandardCostModel::new(
        MetricSet::all(),
        StandardCostModelConfig {
            dops: vec![1, 4],
            sampling_rates_pm: vec![500],
            eval_spin: 0,
            ..StandardCostModelConfig::default()
        },
    );
    // The cost model produces valid six-dimensional vectors usable by the
    // scan/join enumeration (the optimizer integration is exercised in
    // the `interactive` integration test).
    let alts = m.scan_alternatives(&spec, 0);
    assert!(alts.iter().all(|(_, c, _)| c.dim() == 6 && c.is_finite()));
    let _ = (
        Bounds::unbounded(6),
        ResolutionSchedule::linear(2, 1.1, 0.4),
    );
}
