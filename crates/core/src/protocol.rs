//! The session protocol — one typed vocabulary for all three serving
//! layers.
//!
//! The paper's whole contribution is an *interaction loop* (Algorithm 1):
//! optimizer invocations alternate with user events while the Pareto
//! frontier refines on screen. Every layer of this workspace runs that
//! loop — [`crate::Session`] directly, `moqo-engine`'s `SessionManager`
//! across a worker pool, `moqo-serve`'s `MoqoServer` behind tickets — and
//! this module defines the **single protocol** they all speak:
//!
//! * [`SessionRequest`] — a typed builder describing how a session should
//!   open: the query, optional initial [`Bounds`], an optional
//!   [`ResolutionSchedule`] override, an optional per-session
//!   [`SharedCostModel`] override, an optional [`Preference`] that
//!   auto-selects a plan once the target resolution is reached, and the
//!   refinement budget.
//! * [`SessionCommand`] — the inputs of Algorithm 1's lines 17–25 as one
//!   enum: `Refine`, `SetBounds`, `SetPreference`, `SelectPlan`,
//!   `Cancel`.
//! * [`SessionEvent`] — the one streamed output type. Instead of
//!   re-shipping the full frontier after every invocation, an event
//!   carries a [`FrontierDelta`] (points added/removed since the previous
//!   event on the same stream) that reassembles — exactly, order and
//!   cost bits included — to the full [`FrontierSnapshot`].
//! * [`SessionView`] — the client-side reassembler: fold events into it
//!   and read back the same state a server-side status query would
//!   return.
//! * [`AdmissionResponse`] — what a serving layer answers at submission
//!   time: admitted, admitted under a degraded ladder, queued, or
//!   rejected.
//! * [`ProtocolError`] — every way a request or command can be malformed,
//!   as data instead of a panic, so a bad client request can never crash
//!   a shard worker.

use crate::frontier::{FrontierPoint, FrontierSnapshot};
use crate::preference::Preference;
use crate::report::InvocationReport;
use moqo_cost::{Bounds, ResolutionSchedule};
use moqo_costmodel::SharedCostModel;
use moqo_plan::PlanId;
use moqo_query::QuerySpec;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Why a request, command, or event could not be honored.
///
/// Protocol errors are *client* faults (malformed weights, wrong
/// dimensions, messages to finished sessions); they are returned as
/// values so a serving layer can answer them over the wire instead of
/// panicking inside a shard worker.
#[derive(Clone, Debug, PartialEq)]
pub enum ProtocolError {
    /// A weight vector's length does not match the cost-model dimension.
    WeightDimensionMismatch {
        /// The cost model's metric count.
        expected: usize,
        /// The supplied weight count.
        got: usize,
    },
    /// A bounds vector's dimension does not match the cost-model
    /// dimension.
    BoundsDimensionMismatch {
        /// The cost model's metric count.
        expected: usize,
        /// The supplied bounds dimension.
        got: usize,
    },
    /// A lexicographic preference with an empty priority order.
    EmptyPreferenceOrder,
    /// A preference carries a non-finite weight or tolerance (NaN or
    /// infinite values would poison every score comparison).
    NonFinitePreference,
    /// A preference references a metric index outside the model.
    MetricOutOfRange {
        /// The offending metric index.
        metric: usize,
        /// The cost model's metric count.
        dim: usize,
    },
    /// A `SelectPlan` command references a plan the session has never
    /// generated.
    UnknownPlan {
        /// The unknown plan id.
        plan: PlanId,
    },
    /// The session already finished (a plan was selected or it was
    /// cancelled); no further commands are accepted.
    SessionFinished,
    /// The addressed session does not exist (or was evicted from the
    /// bounded retirement history).
    UnknownSession,
    /// A [`SessionEvent`] arrived out of order on a delta stream: its
    /// epoch is not the successor of the view's epoch and it does not
    /// carry a reset delta.
    EpochGap {
        /// The epoch the view last applied.
        have: u64,
        /// The epoch of the rejected event.
        got: u64,
    },
    /// A wire request referenced a per-session cost model by an identity
    /// the server's model registry does not know. Cost models are code,
    /// not data: the wire codec ships only
    /// [`CostModel::identity`](moqo_costmodel::CostModel::identity), and
    /// an unresolvable identity is answered with this typed error instead
    /// of silently optimizing under the wrong cost semantics.
    UnknownCostModel {
        /// The unresolvable model identity.
        identity: u64,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::WeightDimensionMismatch { expected, got } => {
                write!(
                    f,
                    "preference has {got} weights, cost model has {expected} metrics"
                )
            }
            ProtocolError::BoundsDimensionMismatch { expected, got } => {
                write!(
                    f,
                    "bounds have dimension {got}, cost model has {expected} metrics"
                )
            }
            ProtocolError::EmptyPreferenceOrder => {
                write!(f, "lexicographic preference order must be non-empty")
            }
            ProtocolError::NonFinitePreference => {
                write!(f, "preference weights and tolerance must be finite")
            }
            ProtocolError::MetricOutOfRange { metric, dim } => {
                write!(
                    f,
                    "preference references metric {metric}, cost model has {dim}"
                )
            }
            ProtocolError::UnknownPlan { plan } => {
                write!(f, "plan {plan:?} was never generated by this session")
            }
            ProtocolError::SessionFinished => write!(f, "session already finished"),
            ProtocolError::UnknownSession => write!(f, "unknown session"),
            ProtocolError::EpochGap { have, got } => {
                write!(f, "event epoch {got} does not follow view epoch {have}")
            }
            ProtocolError::UnknownCostModel { identity } => {
                write!(f, "no registered cost model has identity {identity:#018x}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// How a session should open, expressed once for every layer.
///
/// Build one with [`SessionRequest::new`] and the `with_*` methods, then
/// hand it to [`crate::Session::open`], `SessionManager::open`,
/// `ShardedEngine::submit`, or `MoqoServer::submit` — the same request
/// type drives all of them.
///
/// Everything except the query is optional; a layer fills the gaps from
/// its deployment defaults. The cost-model override is what gives one
/// `SessionManager` *per-session cost models*: the session's
/// fingerprint embeds the model's [identity](moqo_costmodel::CostModel::identity),
/// so warm-frontier caches and snapshot stores can never leak state
/// across models.
#[derive(Clone)]
pub struct SessionRequest {
    /// The query to optimize.
    pub spec: Arc<QuerySpec>,
    /// Initial cost bounds; `None` means unbounded.
    pub bounds: Option<Bounds>,
    /// Resolution-ladder override (cold starts only — a warm resume keeps
    /// the ladder its parked frontier was refined under).
    pub schedule: Option<ResolutionSchedule>,
    /// Per-session cost model replacing the deployment-wide one.
    pub cost_model: Option<SharedCostModel>,
    /// Auto-select a plan under this preference once the target
    /// resolution is reached, instead of requiring a
    /// [`SessionCommand::SelectPlan`] round-trip.
    pub preference: Option<Preference>,
    /// Refinement invocations the session may run without input before
    /// parking; `None` derives one full ladder.
    pub auto_ticks: Option<usize>,
}

impl fmt::Debug for SessionRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionRequest")
            .field("spec", &self.spec.name)
            .field("bounds", &self.bounds.is_some())
            .field("schedule", &self.schedule.is_some())
            .field("cost_model", &self.cost_model.is_some())
            .field("preference", &self.preference)
            .field("auto_ticks", &self.auto_ticks)
            .finish()
    }
}

impl SessionRequest {
    /// A request with every layer default in place.
    pub fn new(spec: Arc<QuerySpec>) -> Self {
        Self {
            spec,
            bounds: None,
            schedule: None,
            cost_model: None,
            preference: None,
            auto_ticks: None,
        }
    }

    /// Sets the initial cost bounds.
    pub fn with_bounds(mut self, bounds: Bounds) -> Self {
        self.bounds = Some(bounds);
        self
    }

    /// Overrides the resolution ladder (cold starts only).
    pub fn with_schedule(mut self, schedule: ResolutionSchedule) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Overrides the cost model for this session.
    pub fn with_cost_model(mut self, model: SharedCostModel) -> Self {
        self.cost_model = Some(model);
        self
    }

    /// Auto-selects a plan under `preference` once the target resolution
    /// is reached.
    pub fn with_preference(mut self, preference: Preference) -> Self {
        self.preference = Some(preference);
        self
    }

    /// Sets the refinement budget (invocations without input).
    pub fn with_auto_ticks(mut self, ticks: usize) -> Self {
        self.auto_ticks = Some(ticks);
        self
    }

    /// The cost model this request runs under, given the layer default.
    pub fn effective_model(&self, default: &SharedCostModel) -> SharedCostModel {
        self.cost_model.clone().unwrap_or_else(|| default.clone())
    }

    /// Checks every dimensioned field against the effective cost model.
    ///
    /// Layers call this once at admission; afterwards no command derived
    /// from the request can fault inside a worker.
    pub fn validate(&self, model_dim: usize) -> Result<(), ProtocolError> {
        if let Some(b) = &self.bounds {
            if b.dim() != model_dim {
                return Err(ProtocolError::BoundsDimensionMismatch {
                    expected: model_dim,
                    got: b.dim(),
                });
            }
        }
        if let Some(p) = &self.preference {
            p.validate(model_dim)?;
        }
        Ok(())
    }
}

impl From<Arc<QuerySpec>> for SessionRequest {
    fn from(spec: Arc<QuerySpec>) -> Self {
        SessionRequest::new(spec)
    }
}

/// User (or client) input arriving between optimizer invocations —
/// Algorithm 1 lines 17–25, spoken identically by all layers.
#[derive(Clone, Debug, PartialEq)]
pub enum SessionCommand {
    /// No input: run one invocation and refine the resolution by one
    /// level.
    Refine,
    /// Drag the cost bounds: the focus changes, the resolution resets to
    /// 0, and one invocation runs at the new focus.
    SetBounds(Bounds),
    /// Install (or clear) the auto-select preference, then run one
    /// invocation; if the ladder is already saturated the preference
    /// fires immediately.
    SetPreference(Option<Preference>),
    /// Click a visualized tradeoff: optimization ends and the chosen plan
    /// is returned for execution.
    SelectPlan(PlanId),
    /// End the session without a selection (the frontier parks for future
    /// warm starts at serving layers).
    Cancel,
}

/// How a session ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionOutcome {
    /// A plan was chosen for execution.
    Selected {
        /// The chosen plan.
        plan: PlanId,
        /// True if the request's [`Preference`] chose it automatically at
        /// the target resolution, false for an explicit
        /// [`SessionCommand::SelectPlan`].
        by_preference: bool,
    },
    /// The session was cancelled or retired without a selection.
    Retired,
}

impl SessionOutcome {
    /// The selected plan, if one was chosen.
    pub fn selected(&self) -> Option<PlanId> {
        match self {
            SessionOutcome::Selected { plan, .. } => Some(*plan),
            SessionOutcome::Retired => None,
        }
    }
}

/// The change of a visualized frontier between two consecutive events of
/// one stream.
///
/// Deltas exist so a slice-paced stream does not re-ship the full
/// frontier after every invocation: during pure refinement the result set
/// only grows, so a delta is just the appended points. The construction
/// in [`FrontierDelta::between`] guarantees **exact** reassembly — order
/// and cost bits included — falling back to a `reset` carrying the full
/// snapshot whenever the change cannot be expressed as
/// "remove these, append those".
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FrontierDelta {
    /// True if the receiver must discard its snapshot before applying
    /// (stream start, refocus, or an inexpressible reordering).
    pub reset: bool,
    /// Plans removed from the snapshot (empty when `reset`).
    pub removed: Vec<PlanId>,
    /// Points appended to the snapshot (the full frontier when `reset`).
    pub added: Vec<FrontierPoint>,
}

impl FrontierDelta {
    /// A reset delta carrying the full snapshot.
    pub fn full(snapshot: &FrontierSnapshot) -> Self {
        Self {
            reset: true,
            removed: Vec::new(),
            added: snapshot.points.clone(),
        }
    }

    /// The delta from `old` to `new`, such that applying it to `old`
    /// reproduces `new` exactly (same order, same bits).
    pub fn between(old: &FrontierSnapshot, new: &FrontierSnapshot) -> Self {
        // Index the new snapshot by plan id; duplicate ids (impossible for
        // well-formed result sets, but never trust it) force a reset.
        let mut by_plan: HashMap<PlanId, &FrontierPoint> = HashMap::with_capacity(new.points.len());
        for p in &new.points {
            if by_plan.insert(p.plan, p).is_some() {
                return Self::full(new);
            }
        }
        // Survivors: old points present in new with identical cost bits,
        // in old order. The delta is expressible iff they form a prefix
        // of the new snapshot in the same order.
        let mut removed = Vec::new();
        let mut survivors = 0usize;
        for p in &old.points {
            match by_plan.get(&p.plan) {
                Some(n) if p.bits_eq(n) => match new.points.get(survivors) {
                    Some(expect) if p.bits_eq(expect) => survivors += 1,
                    _ => return Self::full(new),
                },
                _ => removed.push(p.plan),
            }
        }
        Self {
            reset: false,
            removed,
            added: new.points[survivors..].to_vec(),
        }
    }

    /// Composes `next` onto `self`: applying the result to a snapshot
    /// equals applying `self` then `next`. This is how slice-paced
    /// streams aggregate per-invocation deltas into one published event
    /// without recomputing a full-frontier diff.
    pub fn then(mut self, next: &FrontierDelta) -> FrontierDelta {
        if next.reset {
            return next.clone();
        }
        if !next.removed.is_empty() {
            // Points this delta appended and the next one removed cancel;
            // removals of base points accumulate.
            self.added.retain(|p| !next.removed.contains(&p.plan));
            for plan in &next.removed {
                if !self.removed.contains(plan) {
                    self.removed.push(*plan);
                }
            }
        }
        self.added.extend(next.added.iter().copied());
        self
    }

    /// Applies the delta to a snapshot in place.
    pub fn apply(&self, snapshot: &mut FrontierSnapshot) {
        if self.reset {
            snapshot.points.clear();
        } else if !self.removed.is_empty() {
            snapshot.points.retain(|p| !self.removed.contains(&p.plan));
        }
        snapshot.points.extend(self.added.iter().copied());
    }

    /// Number of points the delta ships (the stream-economy figure:
    /// compare against the full frontier size).
    pub fn shipped_points(&self) -> usize {
        self.added.len()
    }

    /// True if the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        !self.reset && self.removed.is_empty() && self.added.is_empty()
    }
}

/// One streamed session update — what [`crate::Session::apply`] returns,
/// what `SessionManager::watch` channels deliver per slice, and what
/// `MoqoServer::recv` hands to ticket holders.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionEvent {
    /// Monotone emission counter within the emitting stream; deltas apply
    /// in epoch order.
    pub epoch: u64,
    /// Frontier change since the previous event on this stream
    /// (`delta.reset` on stream priming and refocusing).
    pub delta: FrontierDelta,
    /// Resolution level the next invocation will use.
    pub resolution: usize,
    /// The session's current cost bounds.
    pub bounds: Bounds,
    /// Invocations run so far in this session.
    pub invocations: u64,
    /// Report of the most recent invocation covered by this event, if one
    /// ran.
    pub report: Option<InvocationReport>,
    /// Report of the session's *first* invocation; present on the event
    /// that covers it (warm-start evidence: `plans_generated == 0`).
    pub first_report: Option<InvocationReport>,
    /// Terminal state, present once on the stream's final event.
    pub outcome: Option<SessionOutcome>,
    /// Number of *extra* source events merged into this one by
    /// [`coalesce`](SessionEvent::coalesce) — `0` for an event straight
    /// off a session stream. A receiver at epoch `k` accepts a
    /// coalesced event at epoch `k + 1 + coalesced`: the event covers
    /// that whole epoch range, so the gap is accounted for, not lost.
    pub coalesced: u64,
}

impl SessionEvent {
    /// True if this is the stream's final event.
    pub fn is_final(&self) -> bool {
        self.outcome.is_some()
    }

    /// Merges `next` (the later event) onto `self`: folding the result
    /// into a [`SessionView`] leaves the view **bits-equal** to folding
    /// `self` then `next`. This is the serving front's backpressure
    /// valve — N pending events for a slow reader collapse into one
    /// frame instead of buffering N.
    ///
    /// Scalar state (epoch, resolution, bounds, invocations) comes from
    /// `next`; deltas compose via [`FrontierDelta::then`]; `report`
    /// keeps the latest observation while `first_report` keeps the
    /// earliest; [`coalesced`](SessionEvent::coalesced) accounts for
    /// the covered epoch range so the receiver's gap check still holds.
    pub fn coalesce(self, next: &SessionEvent) -> SessionEvent {
        SessionEvent {
            epoch: next.epoch,
            delta: self.delta.then(&next.delta),
            resolution: next.resolution,
            bounds: next.bounds,
            invocations: next.invocations,
            report: next.report.clone().or(self.report),
            first_report: self.first_report.or_else(|| next.first_report.clone()),
            outcome: next.outcome.or(self.outcome),
            coalesced: self.coalesced + 1 + next.coalesced,
        }
    }
}

/// Client-side reassembly of a [`SessionEvent`] stream: fold events in
/// with [`SessionView::fold`] and read the same state a server-side
/// status query would return — including the **exact** full
/// [`FrontierSnapshot`], rebuilt from deltas.
#[derive(Clone, Debug, Default)]
pub struct SessionView {
    /// Epoch of the last applied event.
    pub epoch: u64,
    /// The reassembled frontier.
    pub frontier: FrontierSnapshot,
    /// Resolution level the next invocation will use.
    pub resolution: usize,
    /// Current cost bounds (`None` until the first event arrives).
    pub bounds: Option<Bounds>,
    /// Invocations run so far.
    pub invocations: u64,
    /// Report of the session's first invocation, once observed.
    pub first_report: Option<InvocationReport>,
    /// Report of the most recent invocation, once observed.
    pub last_report: Option<InvocationReport>,
    /// Terminal state, once observed.
    pub outcome: Option<SessionOutcome>,
}

impl SessionView {
    /// Applies one event. Events must arrive in epoch order; a gap
    /// without a reset delta is rejected (the view would silently
    /// diverge from the server otherwise) — except the gap a
    /// [coalesced](SessionEvent::coalesce) event declares, which is
    /// covered by its merged delta: an event at epoch
    /// `self.epoch + 1 + coalesced` is contiguous. This also covers a
    /// fresh view joining mid-stream: it must start from a reset-delta
    /// event (every stream primes with one), not a live delta.
    pub fn fold(&mut self, event: &SessionEvent) -> Result<(), ProtocolError> {
        if !event.delta.reset && event.epoch != self.epoch + 1 + event.coalesced {
            return Err(ProtocolError::EpochGap {
                have: self.epoch,
                got: event.epoch,
            });
        }
        event.delta.apply(&mut self.frontier);
        self.epoch = event.epoch;
        self.resolution = event.resolution;
        self.bounds = Some(event.bounds);
        self.invocations = event.invocations;
        if let Some(r) = &event.report {
            self.last_report = Some(r.clone());
        }
        if self.first_report.is_none() {
            if let Some(r) = &event.first_report {
                self.first_report = Some(r.clone());
            }
        }
        if let Some(o) = &event.outcome {
            self.outcome = Some(*o);
        }
        Ok(())
    }

    /// True once the stream delivered its final event.
    pub fn is_finished(&self) -> bool {
        self.outcome.is_some()
    }

    /// The selected plan, if the session ended with one.
    pub fn selected(&self) -> Option<PlanId> {
        self.outcome.and_then(|o| o.selected())
    }
}

/// Why a submission was turned away.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// Live sessions at (or above) the admission bound and the policy
    /// sheds load.
    Overloaded {
        /// Live sessions observed at decision time.
        live: usize,
    },
    /// The bounded pending queue is full.
    QueueFull {
        /// The configured queue depth.
        depth: usize,
    },
}

/// A serving layer's protocol-level answer to a [`SessionRequest`].
///
/// Layers without admission control (the core [`crate::Session`], a bare
/// `SessionManager`) always answer [`AdmissionResponse::Admitted`]; the
/// admission-controlled front answers all four.
#[derive(Clone, Debug, PartialEq)]
pub enum AdmissionResponse {
    /// Admitted at full resolution.
    Admitted,
    /// Admitted, but under a coarser resolution ladder (the overload
    /// degrade policy).
    Degraded {
        /// The ladder the session actually runs.
        schedule: ResolutionSchedule,
    },
    /// Parked in the bounded pending queue; admits as capacity frees.
    Queued {
        /// 0-based position in the pending queue at enqueue time.
        position: usize,
    },
    /// Turned away.
    Rejected(RejectReason),
}

impl AdmissionResponse {
    /// True if the session is live (admitted now, full or degraded).
    pub fn is_admitted(&self) -> bool {
        matches!(
            self,
            AdmissionResponse::Admitted | AdmissionResponse::Degraded { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_cost::CostVector;
    use proptest::prelude::*;

    fn pt(plan: u32, cost: &[f64]) -> FrontierPoint {
        FrontierPoint {
            plan: PlanId(plan),
            cost: CostVector::new(cost),
        }
    }

    fn snap(points: &[(u32, [f64; 2])]) -> FrontierSnapshot {
        FrontierSnapshot::new(points.iter().map(|(p, c)| pt(*p, c)).collect())
    }

    fn assert_exact(a: &FrontierSnapshot, b: &FrontierSnapshot) {
        assert!(a.bits_eq(b), "{a:?} != {b:?}");
    }

    #[test]
    fn append_only_refinement_ships_only_new_points() {
        let old = snap(&[(0, [1.0, 9.0]), (1, [4.0, 4.0])]);
        let new = snap(&[(0, [1.0, 9.0]), (1, [4.0, 4.0]), (2, [9.0, 1.0])]);
        let d = FrontierDelta::between(&old, &new);
        assert!(!d.reset);
        assert!(d.removed.is_empty());
        assert_eq!(d.shipped_points(), 1);
        let mut rebuilt = old.clone();
        d.apply(&mut rebuilt);
        assert_exact(&rebuilt, &new);
    }

    #[test]
    fn removals_and_appends_reassemble_exactly() {
        let old = snap(&[(0, [1.0, 9.0]), (1, [4.0, 4.0]), (2, [9.0, 1.0])]);
        let new = snap(&[(0, [1.0, 9.0]), (2, [9.0, 1.0]), (7, [2.0, 2.0])]);
        // Old order 0,2 survives as a prefix of new? new = [0, 2, 7]:
        // survivors in old order are 0,2 — a prefix. Expressible.
        let d = FrontierDelta::between(&old, &new);
        assert!(!d.reset);
        assert_eq!(d.removed, vec![PlanId(1)]);
        assert_eq!(d.shipped_points(), 1);
        let mut rebuilt = old.clone();
        d.apply(&mut rebuilt);
        assert_exact(&rebuilt, &new);
    }

    #[test]
    fn reorderings_fall_back_to_a_reset_but_stay_exact() {
        let old = snap(&[(0, [1.0, 9.0]), (1, [4.0, 4.0])]);
        let new = snap(&[(1, [4.0, 4.0]), (0, [1.0, 9.0])]);
        let d = FrontierDelta::between(&old, &new);
        assert!(d.reset);
        let mut rebuilt = old.clone();
        d.apply(&mut rebuilt);
        assert_exact(&rebuilt, &new);
    }

    #[test]
    fn cost_changes_are_not_silently_kept() {
        let old = snap(&[(0, [1.0, 9.0])]);
        let new = snap(&[(0, [1.5, 9.0])]);
        let d = FrontierDelta::between(&old, &new);
        let mut rebuilt = old.clone();
        d.apply(&mut rebuilt);
        assert_exact(&rebuilt, &new);
    }

    #[test]
    fn view_rejects_epoch_gaps_without_reset() {
        let mut view = SessionView::default();
        let base = SessionEvent {
            epoch: 1,
            delta: FrontierDelta::full(&snap(&[(0, [1.0, 2.0])])),
            resolution: 1,
            bounds: Bounds::unbounded(2),
            invocations: 1,
            report: None,
            first_report: None,
            outcome: None,
            coalesced: 0,
        };
        view.fold(&base).unwrap();
        let gap = SessionEvent {
            epoch: 3,
            delta: FrontierDelta::default(),
            ..base.clone()
        };
        assert_eq!(
            view.fold(&gap),
            Err(ProtocolError::EpochGap { have: 1, got: 3 })
        );
        // A reset delta re-synchronizes regardless of epoch.
        let resync = SessionEvent {
            epoch: 9,
            delta: FrontierDelta::full(&snap(&[(5, [3.0, 3.0])])),
            ..base
        };
        view.fold(&resync).unwrap();
        assert_eq!(view.epoch, 9);
        assert_eq!(view.frontier.points[0].plan, PlanId(5));
    }

    #[test]
    fn coalesced_events_cover_their_epoch_gap_exactly() {
        let prime = SessionEvent {
            epoch: 1,
            delta: FrontierDelta::full(&snap(&[(0, [1.0, 2.0])])),
            resolution: 1,
            bounds: Bounds::unbounded(2),
            invocations: 1,
            report: None,
            first_report: None,
            outcome: None,
            coalesced: 0,
        };
        let e2 = SessionEvent {
            epoch: 2,
            delta: FrontierDelta {
                reset: false,
                removed: vec![],
                added: vec![pt(1, &[4.0, 1.0])],
            },
            invocations: 2,
            ..prime.clone()
        };
        let e3 = SessionEvent {
            epoch: 3,
            delta: FrontierDelta {
                reset: false,
                removed: vec![PlanId(0)],
                added: vec![pt(2, &[0.5, 0.5])],
            },
            invocations: 3,
            ..prime.clone()
        };
        // One at a time.
        let mut slow = SessionView::default();
        for e in [&prime, &e2, &e3] {
            slow.fold(e).unwrap();
        }
        // Coalesced: the merged event declares the gap it covers, so
        // the fold accepts it; a raw gap of the same size is rejected.
        let merged = e2.clone().coalesce(&e3);
        assert_eq!(merged.coalesced, 1);
        let mut fast = SessionView::default();
        fast.fold(&prime).unwrap();
        let raw_gap = SessionEvent {
            coalesced: 0,
            ..merged.clone()
        };
        assert_eq!(
            fast.fold(&raw_gap),
            Err(ProtocolError::EpochGap { have: 1, got: 3 })
        );
        fast.fold(&merged).unwrap();
        assert_eq!(fast.epoch, slow.epoch);
        assert_eq!(fast.invocations, slow.invocations);
        assert!(fast.frontier.bits_eq(&slow.frontier));
    }

    #[test]
    fn request_validation_catches_malformed_dimensions() {
        let spec = Arc::new(moqo_query::testkit::chain_query(2, 10_000));
        let bad_bounds = SessionRequest::new(spec.clone()).with_bounds(Bounds::unbounded(2));
        assert_eq!(
            bad_bounds.validate(3),
            Err(ProtocolError::BoundsDimensionMismatch {
                expected: 3,
                got: 2
            })
        );
        let bad_pref = SessionRequest::new(spec.clone())
            .with_preference(Preference::WeightedSum(vec![1.0, 1.0]));
        assert_eq!(
            bad_pref.validate(3),
            Err(ProtocolError::WeightDimensionMismatch {
                expected: 3,
                got: 2
            })
        );
        let ok = SessionRequest::new(spec)
            .with_bounds(Bounds::unbounded(3))
            .with_preference(Preference::Chebyshev(vec![1.0; 3]));
        assert!(ok.validate(3).is_ok());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Any chain of snapshots — growth, shrinkage, reorder, cost
        /// drift — reassembles exactly through deltas.
        #[test]
        fn delta_streams_reassemble_exactly(
            chain in proptest::collection::vec(
                proptest::collection::vec((0u32..24, 0u64..4, 0u64..4), 0..16),
                1..8,
            ),
        ) {
            let snapshots: Vec<FrontierSnapshot> = chain
                .iter()
                .map(|pts| {
                    // Dedup plan ids within one snapshot (well-formed
                    // result sets have unique plans).
                    let mut seen = std::collections::HashSet::new();
                    FrontierSnapshot::new(
                        pts.iter()
                            .filter(|(p, _, _)| seen.insert(*p))
                            .map(|(p, a, b)| pt(*p, &[*a as f64, *b as f64]))
                            .collect(),
                    )
                })
                .collect();
            // Stream: prime with a full delta, then pairwise deltas.
            let mut view = FrontierSnapshot::default();
            FrontierDelta::full(&snapshots[0]).apply(&mut view);
            assert_exact(&view, &snapshots[0]);
            for w in snapshots.windows(2) {
                let d = FrontierDelta::between(&w[0], &w[1]);
                d.apply(&mut view);
                assert_exact(&view, &w[1]);
            }
            // Composition (the slice-aggregation path): folding every
            // pairwise delta into one composed delta and applying it
            // once must land on the same final snapshot.
            let mut composed = FrontierDelta::full(&snapshots[0]);
            for w in snapshots.windows(2) {
                composed = composed.then(&FrontierDelta::between(&w[0], &w[1]));
            }
            let mut one_shot = FrontierSnapshot::default();
            composed.apply(&mut one_shot);
            assert_exact(&one_shot, snapshots.last().unwrap());
        }
    }
}
