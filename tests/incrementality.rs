//! Integration tests for the incremental invariants (Lemmas 5–7) and the
//! amortized behaviour of Theorem 5 across realistic invocation series.

use moqo::core::{IamaConfig, IamaOptimizer};
use moqo::cost::{Bounds, ResolutionSchedule};
use moqo::costmodel::{CostModel, MetricSet, StandardCostModel, StandardCostModelConfig};
use moqo::index::IndexKind;
use moqo::query::testkit;
use std::sync::Arc;

fn model() -> Arc<StandardCostModel> {
    Arc::new(StandardCostModel::new(
        MetricSet::paper(),
        StandardCostModelConfig {
            dops: vec![1, 2, 4],
            sampling_rates_pm: vec![100, 500],
            eval_spin: 0,
            ..StandardCostModelConfig::default()
        },
    ))
}

#[test]
fn lemmas_hold_on_full_tpch_workload() {
    let model = model();
    let schedule = ResolutionSchedule::linear(6, 1.02, 0.4);
    for spec in moqo::tpch::all_join_blocks(0.01) {
        let mut opt = IamaOptimizer::with_config(
            Arc::new(spec.clone()),
            model.clone(),
            schedule.clone(),
            IamaConfig::tracked(),
        );
        let b = Bounds::unbounded(model.dim());
        for r in 0..=schedule.r_max() {
            opt.optimize(&b, r);
        }
        let stats = opt.stats();
        assert!(stats.max_plan_generations() <= 1, "{}: Lemma 5", spec.name);
        assert!(stats.max_pair_generations() <= 1, "{}: Lemma 6", spec.name);
        assert!(
            stats.max_candidate_retrievals() as usize <= schedule.r_max() + 1,
            "{}: Lemma 7 ({} > rM+1)",
            spec.name,
            stats.max_candidate_retrievals()
        );
    }
}

#[test]
fn lemmas_hold_under_chaotic_bound_changes() {
    // Bounds loosen and tighten arbitrarily — the no-regeneration
    // invariants must survive any event sequence.
    let model = model();
    let schedule = ResolutionSchedule::linear(4, 1.05, 0.5);
    let spec = testkit::chain_query(4, 200_000);
    let dim = model.dim();
    let mut opt = IamaOptimizer::with_config(
        Arc::new(spec.clone()),
        model.clone(),
        schedule.clone(),
        IamaConfig::tracked(),
    );
    let unb = Bounds::unbounded(dim);
    opt.optimize(&unb, 0);
    let t_min = opt
        .frontier(&unb, 0)
        .min_by_metric(0)
        .map(|p| p.cost[0])
        .unwrap();
    let scenarios = [
        (Bounds::unbounded(dim).with_limit(0, t_min * 3.0), 1),
        (Bounds::unbounded(dim).with_limit(0, t_min * 1.2), 0),
        (unb, 2),
        (Bounds::unbounded(dim).with_limit(1, 2.0), 0),
        (Bounds::unbounded(dim).with_limit(0, t_min * 10.0), 3),
        (unb, 4),
        (unb, 4),
    ];
    for (bounds, r) in scenarios {
        opt.optimize(&bounds, r);
    }
    let stats = opt.stats();
    assert!(
        stats.max_plan_generations() <= 1,
        "Lemma 5 under bound churn"
    );
    assert!(
        stats.max_pair_generations() <= 1,
        "Lemma 6 under bound churn"
    );
    assert!(
        stats.max_candidate_retrievals() as usize <= schedule.r_max() + 1,
        "Lemma 7 under bound churn"
    );
}

#[test]
fn lemmas_hold_in_strict_paper_mode() {
    // The pseudo-code-exact configuration (no eager requeue, no
    // shadowing) must satisfy the very bounds the paper proves; Lemma 7's
    // rM + 1 bound is tight in this mode because every dominated plan is
    // re-examined once per level.
    let model = model();
    let schedule = ResolutionSchedule::linear(4, 1.05, 0.5);
    let spec = testkit::chain_query(4, 150_000);
    let config = IamaConfig {
        eager_level_skip: false,
        shadow_dominated: false,
        track_invariants: true,
        ..IamaConfig::default()
    };
    let mut opt = IamaOptimizer::with_config(
        Arc::new(spec.clone()),
        model.clone(),
        schedule.clone(),
        config,
    );
    let b = Bounds::unbounded(model.dim());
    for r in 0..=schedule.r_max() {
        opt.optimize(&b, r);
    }
    let stats = opt.stats();
    assert!(stats.max_plan_generations() <= 1);
    assert!(stats.max_pair_generations() <= 1);
    assert!(stats.max_candidate_retrievals() as usize <= schedule.r_max() + 1);
    // In strict mode some plan is typically re-examined at several
    // levels; the eager default cuts this (compare the two modes).
    let mut eager = IamaOptimizer::with_config(
        Arc::new(spec.clone()),
        model.clone(),
        schedule.clone(),
        IamaConfig::tracked(),
    );
    for r in 0..=schedule.r_max() {
        eager.optimize(&b, r);
    }
    assert!(
        eager.stats().candidate_retrievals <= stats.candidate_retrievals,
        "eager requeue must not increase candidate churn"
    );
}

#[test]
fn steady_state_invocations_are_free_of_plan_work() {
    // Theorem 5's intuition: once everything has been generated, further
    // invocations only pay the table-set iteration overhead.
    let model = model();
    let schedule = ResolutionSchedule::linear(5, 1.02, 0.5);
    let spec = testkit::chain_query(5, 150_000);
    let b = Bounds::unbounded(model.dim());
    let mut opt = IamaOptimizer::new(Arc::new(spec.clone()), model.clone(), schedule.clone());
    for r in 0..=schedule.r_max() {
        opt.optimize(&b, r);
    }
    for _ in 0..5 {
        let rep = opt.optimize(&b, schedule.r_max());
        assert_eq!(rep.plans_generated, 0);
        assert_eq!(rep.pairs_generated, 0);
        assert_eq!(rep.candidates_retrieved, 0);
        assert_eq!(rep.result_insertions, 0);
    }
}

#[test]
fn index_kinds_produce_equivalent_frontiers() {
    // The result *set* is insertion-order dependent (both index kinds
    // visit entries in different orders), so exact equality is too
    // strong; but both runs must produce alpha^n-approximate Pareto sets,
    // hence mutually cover within the guarantee.
    let model = model();
    let schedule = ResolutionSchedule::linear(4, 1.05, 0.5);
    let spec = testkit::random_query(5, 42);
    let b = Bounds::unbounded(model.dim());
    let mut frontiers = Vec::new();
    for kind in [IndexKind::CellGrid, IndexKind::Linear, IndexKind::KdTree] {
        let mut opt = IamaOptimizer::with_config(
            Arc::new(spec.clone()),
            model.clone(),
            schedule.clone(),
            IamaConfig {
                index_kind: kind,
                ..IamaConfig::default()
            },
        );
        for r in 0..=schedule.r_max() {
            opt.optimize(&b, r);
        }
        frontiers.push(opt.frontier(&b, schedule.r_max()).costs());
    }
    let guarantee = schedule.guarantee(schedule.r_max(), spec.n_tables());
    for i in 0..frontiers.len() {
        for j in 0..frontiers.len() {
            if i == j {
                continue;
            }
            let f = moqo::cost::coverage_factor(&frontiers[i], &frontiers[j]);
            assert!(
                f <= guarantee + 1e-9,
                "index kinds {i}/{j} diverge beyond the guarantee: {f} vs {guarantee}"
            );
        }
    }
}

#[test]
fn delta_filtering_does_not_change_results() {
    let model = model();
    let schedule = ResolutionSchedule::linear(4, 1.05, 0.5);
    let spec = testkit::star_query(4, 300_000);
    let b = Bounds::unbounded(model.dim());
    let mut frontiers = Vec::new();
    for use_delta in [true, false] {
        let mut opt = IamaOptimizer::with_config(
            Arc::new(spec.clone()),
            model.clone(),
            schedule.clone(),
            IamaConfig {
                use_delta,
                ..IamaConfig::default()
            },
        );
        for r in 0..=schedule.r_max() {
            opt.optimize(&b, r);
        }
        let mut costs: Vec<Vec<u64>> = opt
            .frontier(&b, schedule.r_max())
            .costs()
            .iter()
            .map(|c| c.as_slice().iter().map(|v| v.to_bits()).collect())
            .collect();
        costs.sort();
        frontiers.push(costs);
    }
    assert_eq!(
        frontiers[0], frontiers[1],
        "delta filtering changed results"
    );
}

#[test]
fn tightening_bounds_only_reuses_plans() {
    // Example 3's flow: tighten bounds — no new plan should be generated
    // for the *smaller* search space beyond what candidates provide, and
    // the frontier shrinks to the bounded region.
    let model = model();
    let schedule = ResolutionSchedule::linear(4, 1.05, 0.5);
    let spec = testkit::chain_query(4, 200_000);
    let dim = model.dim();
    let unb = Bounds::unbounded(dim);
    let mut opt = IamaOptimizer::new(Arc::new(spec.clone()), model.clone(), schedule.clone());
    for r in 0..=schedule.r_max() {
        opt.optimize(&unb, r);
    }
    let plans_before = opt.stats().plans_generated;
    let full_frontier = opt.frontier(&unb, schedule.r_max());
    let t_med = {
        let mut ts: Vec<f64> = full_frontier.costs().iter().map(|c| c[0]).collect();
        ts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        ts[ts.len() / 2]
    };
    let tight = Bounds::unbounded(dim).with_limit(0, t_med);
    for r in 0..=schedule.r_max() {
        opt.optimize(&tight, r);
    }
    // Everything within the tight bounds was already generated: zero new
    // plans.
    assert_eq!(
        opt.stats().plans_generated,
        plans_before,
        "tightening bounds regenerated plans"
    );
    let bounded = opt.frontier(&tight, schedule.r_max());
    assert!(bounded.len() <= full_frontier.len());
    assert!(bounded.points.iter().all(|p| tight.respects(&p.cost)));
}

#[test]
fn amortized_work_is_bounded_over_many_invocations() {
    // Theorem 5: total retrievals/generations stay bounded no matter how
    // many invocations run; repeat the full ladder many times.
    let model = model();
    let schedule = ResolutionSchedule::linear(3, 1.05, 0.5);
    let spec = testkit::chain_query(4, 150_000);
    let b = Bounds::unbounded(model.dim());
    let mut opt = IamaOptimizer::new(Arc::new(spec.clone()), model.clone(), schedule.clone());
    let mut totals = Vec::new();
    for _round in 0..10 {
        for r in 0..=schedule.r_max() {
            opt.optimize(&b, r);
        }
        totals.push((
            opt.stats().plans_generated,
            opt.stats().pairs_generated,
            opt.stats().candidate_retrievals,
        ));
    }
    // After the first full ladder, all counters must be frozen.
    assert_eq!(totals[0], totals[9], "work kept accumulating: {totals:?}");
}
