//! Multi-metric cost models.
//!
//! The paper deliberately reuses cost models from prior work ("the focus of
//! this paper is on optimization and not on costing"). This crate provides
//! that substrate: a [`CostModel`] trait consumed by every optimizer in the
//! workspace, and [`StandardCostModel`], a textbook implementation over the
//! operators of `moqo-plan` supporting the paper's three evaluation metrics
//! — execution time, number of reserved cores, and result precision
//! (encoded as *error* = 1 − precision so that lower is always better) —
//! plus monetary fees and energy for the cloud scenarios of Examples 1/2.
//!
//! Every aggregation function used here satisfies the Principle of
//! Near-Optimality (Definition 1) and monotone cost aggregation
//! (Section 5.1); the property tests in [`metrics`] verify this, including
//! for the probabilistic-sum error combinator that lies outside the basic
//! sum/max/min class (the paper notes PONO was separately shown for result
//! precision).

#![warn(missing_docs)]

pub mod metrics;
pub mod model;
pub mod standard;

pub use metrics::{Metric, MetricSet};
pub use model::{CostModel, ModelResolver, PlanInput, SharedCostModel};
pub use standard::{StandardCostModel, StandardCostModelConfig};

#[cfg(test)]
mod tests_memory;
