//! Table sets as bitsets, with the subset and split enumerations that
//! drive bottom-up dynamic programming over join orders.
//!
//! Positions refer to the query's table list (0-based), not catalog ids, so
//! a `u64` backing store supports queries of up to 64 tables — far beyond
//! the 8-table maximum of TPC-H.

use std::fmt;

/// A set of query-table positions, packed into a `u64`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableSet(u64);

impl TableSet {
    /// The empty set.
    pub const EMPTY: TableSet = TableSet(0);

    /// The singleton set `{pos}`.
    ///
    /// # Panics
    /// Panics if `pos >= 64`.
    #[inline]
    pub fn singleton(pos: usize) -> Self {
        assert!(pos < 64, "table position {pos} out of range");
        TableSet(1 << pos)
    }

    /// The full set `{0, …, n-1}`.
    ///
    /// # Panics
    /// Panics if `n > 64`.
    #[inline]
    pub fn full(n: usize) -> Self {
        assert!(n <= 64, "at most 64 tables supported");
        if n == 64 {
            TableSet(u64::MAX)
        } else {
            TableSet((1u64 << n) - 1)
        }
    }

    /// Builds a set from an iterator of positions.
    pub fn from_positions(positions: impl IntoIterator<Item = usize>) -> Self {
        positions
            .into_iter()
            .fold(TableSet::EMPTY, |s, p| s.union(TableSet::singleton(p)))
    }

    /// The raw bit pattern.
    #[inline]
    pub fn bits(self) -> u64 {
        self.0
    }

    /// A set from a raw bit pattern.
    #[inline]
    pub fn from_bits(bits: u64) -> Self {
        TableSet(bits)
    }

    /// Number of tables in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True if the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True if `pos` is in the set.
    #[inline]
    pub fn contains(self, pos: usize) -> bool {
        pos < 64 && (self.0 >> pos) & 1 == 1
    }

    /// True if every table of `other` is in `self`.
    #[inline]
    pub fn is_superset_of(self, other: TableSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// True if the two sets share no table.
    #[inline]
    pub fn is_disjoint(self, other: TableSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Set union.
    #[inline]
    #[must_use]
    pub fn union(self, other: TableSet) -> TableSet {
        TableSet(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    #[must_use]
    pub fn intersect(self, other: TableSet) -> TableSet {
        TableSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    #[inline]
    #[must_use]
    pub fn difference(self, other: TableSet) -> TableSet {
        TableSet(self.0 & !other.0)
    }

    /// Iterates over the positions in the set, ascending.
    #[inline]
    pub fn iter(self) -> impl Iterator<Item = usize> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let pos = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(pos)
            }
        })
    }

    /// The position of the single element of a singleton set.
    ///
    /// # Panics
    /// Panics if the set does not contain exactly one table.
    #[inline]
    pub fn single(self) -> usize {
        assert_eq!(self.len(), 1, "expected singleton, got {self:?}");
        self.0.trailing_zeros() as usize
    }

    /// Enumerates all non-empty subsets of `self` (including `self`).
    ///
    /// Uses the standard `(s - 1) & q` descent, visiting subsets in
    /// decreasing bit-pattern order.
    #[inline]
    pub fn subsets(self) -> SubsetIter {
        SubsetIter {
            universe: self.0,
            next: self.0,
            done: self.0 == 0,
        }
    }

    /// Enumerates unordered splits of `self` into two non-empty disjoint
    /// halves `(q1, q2)` with `q1 ∪ q2 = self`.
    ///
    /// Each unordered pair is produced exactly once: the half containing
    /// the set's lowest table is always `q1`. The optimizer emits both join
    /// orders `q1 ⋈ q2` and `q2 ⋈ q1` itself where relevant.
    #[inline]
    pub fn splits(self) -> SplitIter {
        SplitIter::new(self)
    }
}

/// Enumerates all `k`-element subsets of `{0, …, n-1}` in ascending
/// bit-pattern order (Gosper's hack).
///
/// This drives the outer loop of the DP's plan-generation phase, which
/// iterates "over table sets of increasing cardinality" (Algorithm 2).
pub fn k_subsets(n: usize, k: usize) -> impl Iterator<Item = TableSet> {
    assert!(n <= 64);
    let mut cur: u64 = if k == 0 || k > n { 0 } else { (1u64 << k) - 1 };
    let limit: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let mut done = cur == 0;
    std::iter::from_fn(move || {
        if done {
            return None;
        }
        let out = TableSet(cur);
        // Gosper's hack: next bit pattern with the same popcount.
        let c = cur & cur.wrapping_neg();
        let r = cur.wrapping_add(c);
        if r > limit || r == 0 {
            done = true;
        } else {
            cur = (((r ^ cur) >> 2) / c) | r;
            if cur > limit {
                done = true;
            }
        }
        Some(out)
    })
}

impl fmt::Debug for TableSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TableSet{{")?;
        for (i, pos) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{pos}")?;
        }
        write!(f, "}}")
    }
}

/// Iterator over non-empty subsets of a set. See [`TableSet::subsets`].
pub struct SubsetIter {
    universe: u64,
    next: u64,
    done: bool,
}

impl Iterator for SubsetIter {
    type Item = TableSet;

    #[inline]
    fn next(&mut self) -> Option<TableSet> {
        if self.done {
            return None;
        }
        let cur = self.next;
        if cur == 0 {
            self.done = true;
            return None;
        }
        self.next = (cur - 1) & self.universe;
        if self.next == 0 {
            self.done = true;
        }
        Some(TableSet(cur))
    }
}

/// Iterator over unordered two-way splits of a set. See [`TableSet::splits`].
pub struct SplitIter {
    universe: u64,
    anchor: u64,
    /// Bits that may vary between the two halves (universe minus anchor).
    free: u64,
    /// Current subset of `free` assigned to the anchor half.
    cursor: u64,
    done: bool,
}

impl SplitIter {
    fn new(set: TableSet) -> Self {
        if set.len() < 2 {
            return SplitIter {
                universe: set.0,
                anchor: 0,
                free: 0,
                cursor: 0,
                done: true,
            };
        }
        let anchor = set.0 & set.0.wrapping_neg(); // lowest bit
        let free = set.0 & !anchor;
        SplitIter {
            universe: set.0,
            anchor,
            free,
            // Start from the largest proper subset of `free` so that q2 is
            // non-empty; descend to the empty subset (q1 = {anchor}).
            cursor: (free - 1) & free,
            done: false,
        }
    }
}

impl Iterator for SplitIter {
    type Item = (TableSet, TableSet);

    #[inline]
    fn next(&mut self) -> Option<(TableSet, TableSet)> {
        if self.done {
            return None;
        }
        let q1 = TableSet(self.anchor | self.cursor);
        let q2 = TableSet(self.universe & !q1.0);
        debug_assert!(!q2.is_empty());
        if self.cursor == 0 {
            self.done = true;
        } else {
            self.cursor = (self.cursor - 1) & self.free;
        }
        Some((q1, q2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_membership() {
        let s = TableSet::from_positions([0, 2, 5]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(0) && s.contains(2) && s.contains(5));
        assert!(!s.contains(1));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 2, 5]);
    }

    #[test]
    fn full_and_empty() {
        assert_eq!(TableSet::full(4).len(), 4);
        assert_eq!(TableSet::full(64).len(), 64);
        assert!(TableSet::EMPTY.is_empty());
        assert_eq!(TableSet::full(0), TableSet::EMPTY);
    }

    #[test]
    fn algebra() {
        let a = TableSet::from_positions([0, 1]);
        let b = TableSet::from_positions([1, 2]);
        assert_eq!(a.union(b), TableSet::from_positions([0, 1, 2]));
        assert_eq!(a.intersect(b), TableSet::singleton(1));
        assert_eq!(a.difference(b), TableSet::singleton(0));
        assert!(a.union(b).is_superset_of(a));
        assert!(!a.is_disjoint(b));
        assert!(a.difference(b).is_disjoint(b));
    }

    #[test]
    fn singleton_extraction() {
        assert_eq!(TableSet::singleton(7).single(), 7);
    }

    #[test]
    #[should_panic(expected = "expected singleton")]
    fn single_rejects_non_singletons() {
        TableSet::from_positions([1, 2]).single();
    }

    #[test]
    fn subsets_count_is_2k_minus_1() {
        let s = TableSet::from_positions([1, 3, 4]);
        let subs: Vec<_> = s.subsets().collect();
        assert_eq!(subs.len(), 7);
        assert!(subs.contains(&s));
        assert!(subs.contains(&TableSet::singleton(3)));
        for sub in subs {
            assert!(s.is_superset_of(sub));
            assert!(!sub.is_empty());
        }
    }

    #[test]
    fn subsets_of_empty_set_is_empty() {
        assert_eq!(TableSet::EMPTY.subsets().count(), 0);
    }

    #[test]
    fn splits_enumerate_each_unordered_pair_once() {
        let s = TableSet::full(4);
        let splits: Vec<_> = s.splits().collect();
        // 2^(k-1) - 1 unordered splits for k tables.
        assert_eq!(splits.len(), 7);
        let mut seen = std::collections::HashSet::new();
        for (q1, q2) in splits {
            assert!(!q1.is_empty() && !q2.is_empty());
            assert!(q1.is_disjoint(q2));
            assert_eq!(q1.union(q2), s);
            // q1 always holds the lowest table, so the pair is canonical.
            assert!(q1.contains(0));
            assert!(seen.insert((q1, q2)), "duplicate split {q1:?} {q2:?}");
        }
    }

    #[test]
    fn splits_of_small_sets() {
        assert_eq!(TableSet::EMPTY.splits().count(), 0);
        assert_eq!(TableSet::singleton(3).splits().count(), 0);
        let pair = TableSet::from_positions([2, 6]);
        let splits: Vec<_> = pair.splits().collect();
        assert_eq!(splits.len(), 1);
        assert_eq!(splits[0], (TableSet::singleton(2), TableSet::singleton(6)));
    }

    #[test]
    fn k_subsets_enumerates_combinations() {
        let subs: Vec<_> = k_subsets(4, 2).collect();
        assert_eq!(subs.len(), 6); // C(4,2)
        for s in &subs {
            assert_eq!(s.len(), 2);
            assert!(TableSet::full(4).is_superset_of(*s));
        }
        // Distinct.
        let set: std::collections::HashSet<_> = subs.iter().collect();
        assert_eq!(set.len(), 6);
        // Edge cases.
        assert_eq!(k_subsets(4, 0).count(), 0);
        assert_eq!(k_subsets(4, 5).count(), 0);
        assert_eq!(k_subsets(4, 4).count(), 1);
        assert_eq!(k_subsets(1, 1).count(), 1);
        // Total over all k = 2^n - 1.
        let total: usize = (1..=8).map(|k| k_subsets(8, k).count()).sum();
        assert_eq!(total, 255);
    }

    #[test]
    fn debug_format() {
        assert_eq!(
            format!("{:?}", TableSet::from_positions([0, 3])),
            "TableSet{0,3}"
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn table_set() -> impl Strategy<Value = TableSet> {
        (0u64..(1 << 12)).prop_map(TableSet::from_bits)
    }

    proptest! {
        #[test]
        fn iter_round_trips(s in table_set()) {
            let rebuilt = TableSet::from_positions(s.iter());
            prop_assert_eq!(rebuilt, s);
        }

        #[test]
        fn subsets_are_exactly_the_powerset(s in table_set()) {
            let count = s.subsets().count();
            let expected = if s.is_empty() { 0 } else { (1usize << s.len()) - 1 };
            prop_assert_eq!(count, expected);
            for sub in s.subsets() {
                prop_assert!(s.is_superset_of(sub));
            }
        }

        #[test]
        fn splits_partition_the_set(s in table_set()) {
            let expected = if s.len() < 2 { 0 } else { (1usize << (s.len() - 1)) - 1 };
            prop_assert_eq!(s.splits().count(), expected);
            for (q1, q2) in s.splits() {
                prop_assert!(q1.is_disjoint(q2));
                prop_assert_eq!(q1.union(q2), s);
                prop_assert!(!q1.is_empty() && !q2.is_empty());
            }
        }

        #[test]
        fn difference_and_union_are_consistent(a in table_set(), b in table_set()) {
            let u = a.union(b);
            prop_assert_eq!(u.difference(b).union(b.intersect(u)).union(b), u);
            prop_assert!(a.difference(b).is_disjoint(b));
            prop_assert!(u.is_superset_of(a) && u.is_superset_of(b));
        }
    }
}
