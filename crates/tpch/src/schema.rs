//! The TPC-H schema with scale-factor-dependent statistics.

use moqo_catalog::{Catalog, CatalogBuilder, Column, ColumnRole, TableId};
use std::sync::Arc;

/// The default scale factor (SF 1, ~1 GB).
pub const SF_DEFAULT: f64 = 1.0;

/// The eight TPC-H base tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum TpchTable {
    Region,
    Nation,
    Supplier,
    Customer,
    Part,
    PartSupp,
    Orders,
    Lineitem,
}

impl TpchTable {
    /// All tables, in catalog order.
    pub const ALL: [TpchTable; 8] = [
        TpchTable::Region,
        TpchTable::Nation,
        TpchTable::Supplier,
        TpchTable::Customer,
        TpchTable::Part,
        TpchTable::PartSupp,
        TpchTable::Orders,
        TpchTable::Lineitem,
    ];

    /// The table's lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            TpchTable::Region => "region",
            TpchTable::Nation => "nation",
            TpchTable::Supplier => "supplier",
            TpchTable::Customer => "customer",
            TpchTable::Part => "part",
            TpchTable::PartSupp => "partsupp",
            TpchTable::Orders => "orders",
            TpchTable::Lineitem => "lineitem",
        }
    }

    /// Cardinality at scale factor `sf` per the TPC-H specification.
    /// `region` and `nation` are fixed-size; `lineitem` uses the standard
    /// ~4 rows per order approximation.
    pub fn cardinality(self, sf: f64) -> u64 {
        let scaled = |base: f64| ((base * sf).round() as u64).max(1);
        match self {
            TpchTable::Region => 5,
            TpchTable::Nation => 25,
            TpchTable::Supplier => scaled(10_000.0),
            TpchTable::Customer => scaled(150_000.0),
            TpchTable::Part => scaled(200_000.0),
            TpchTable::PartSupp => scaled(800_000.0),
            TpchTable::Orders => scaled(1_500_000.0),
            TpchTable::Lineitem => scaled(6_000_000.0),
        }
    }

    /// Approximate average row width in bytes.
    pub fn row_width(self) -> u32 {
        match self {
            TpchTable::Region => 120,
            TpchTable::Nation => 128,
            TpchTable::Supplier => 160,
            TpchTable::Customer => 180,
            TpchTable::Part => 156,
            TpchTable::PartSupp => 145,
            TpchTable::Orders => 120,
            TpchTable::Lineitem => 130,
        }
    }

    /// The catalog id assigned by [`tpch_catalog`] (position in
    /// [`TpchTable::ALL`]).
    pub fn id(self) -> TableId {
        TableId(TpchTable::ALL.iter().position(|t| *t == self).unwrap() as u32)
    }
}

/// Builds the TPC-H catalog at scale factor `sf`.
pub fn tpch_catalog(sf: f64) -> Arc<Catalog> {
    assert!(sf > 0.0, "scale factor must be positive");
    let mut b = CatalogBuilder::new();
    for t in TpchTable::ALL {
        let card = t.cardinality(sf);
        let cols = match t {
            TpchTable::Region => vec![
                Column::key("r_regionkey", 5),
                Column::attribute("r_name", 5),
            ],
            TpchTable::Nation => vec![
                Column::key("n_nationkey", 25),
                Column::new("n_regionkey", 5, ColumnRole::ForeignKey),
                Column::attribute("n_name", 25),
            ],
            TpchTable::Supplier => vec![
                Column::key("s_suppkey", card),
                Column::new("s_nationkey", 25, ColumnRole::ForeignKey),
            ],
            TpchTable::Customer => vec![
                Column::key("c_custkey", card),
                Column::new("c_nationkey", 25, ColumnRole::ForeignKey),
                Column::attribute("c_mktsegment", 5),
            ],
            TpchTable::Part => vec![
                Column::key("p_partkey", card),
                Column::attribute("p_brand", 25),
                Column::attribute("p_type", 150),
                Column::attribute("p_size", 50),
            ],
            TpchTable::PartSupp => vec![
                Column::new("ps_partkey", card / 4, ColumnRole::ForeignKey),
                Column::new("ps_suppkey", card / 80, ColumnRole::ForeignKey),
            ],
            TpchTable::Orders => vec![
                Column::key("o_orderkey", card),
                Column::new("o_custkey", card / 10, ColumnRole::ForeignKey),
                Column::attribute("o_orderdate", 2_400),
                Column::attribute("o_orderpriority", 5),
            ],
            TpchTable::Lineitem => vec![
                Column::new("l_orderkey", card / 4, ColumnRole::ForeignKey),
                Column::new("l_partkey", card / 30, ColumnRole::ForeignKey),
                Column::new("l_suppkey", card / 600, ColumnRole::ForeignKey),
                Column::attribute("l_shipdate", 2_500),
                Column::attribute("l_shipmode", 7),
            ],
        };
        b.add_table(t.name(), card, t.row_width(), cols);
    }
    Arc::new(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinalities_at_sf1_match_spec() {
        assert_eq!(TpchTable::Region.cardinality(1.0), 5);
        assert_eq!(TpchTable::Nation.cardinality(1.0), 25);
        assert_eq!(TpchTable::Supplier.cardinality(1.0), 10_000);
        assert_eq!(TpchTable::Customer.cardinality(1.0), 150_000);
        assert_eq!(TpchTable::Part.cardinality(1.0), 200_000);
        assert_eq!(TpchTable::PartSupp.cardinality(1.0), 800_000);
        assert_eq!(TpchTable::Orders.cardinality(1.0), 1_500_000);
        assert_eq!(TpchTable::Lineitem.cardinality(1.0), 6_000_000);
    }

    #[test]
    fn fixed_tables_do_not_scale() {
        assert_eq!(TpchTable::Region.cardinality(10.0), 5);
        assert_eq!(TpchTable::Nation.cardinality(0.01), 25);
        assert_eq!(TpchTable::Orders.cardinality(0.1), 150_000);
    }

    #[test]
    fn catalog_contains_all_tables_in_order() {
        let c = tpch_catalog(1.0);
        assert_eq!(c.len(), 8);
        for t in TpchTable::ALL {
            let (id, table) = c.table_by_name(t.name()).unwrap();
            assert_eq!(id, t.id());
            assert_eq!(table.cardinality, t.cardinality(1.0));
        }
        assert_eq!(c.max_cardinality(), 6_000_000);
    }

    #[test]
    fn small_scale_factors_keep_tables_non_empty() {
        let c = tpch_catalog(0.001);
        for (_, t) in c.iter() {
            assert!(t.cardinality >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_non_positive_sf() {
        tpch_catalog(0.0);
    }
}
