//! Integration tests for the formal guarantees (Theorems 1 and 2):
//! after an invocation series at resolution `rM`, IAMA's frontier is an
//! `alpha_rM^n`-approximate (bounded) Pareto plan set with respect to
//! exhaustive ground truth.

use moqo::baselines::{exhaustive_pareto, one_shot};
use moqo::core::{IamaConfig, IamaOptimizer};
use moqo::cost::{coverage_factor, covers_bounded, Bounds, ResolutionSchedule};
use moqo::costmodel::{CostModel, MetricSet, StandardCostModel, StandardCostModelConfig};
use moqo::query::{testkit, QuerySpec};
use std::sync::Arc;

/// A reduced operator space keeps exhaustive DP tractable.
fn small_model() -> StandardCostModel {
    StandardCostModel::new(
        MetricSet::paper(),
        StandardCostModelConfig {
            dops: vec![1, 4],
            sampling_rates_pm: vec![100, 500],
            eval_spin: 0,
            ..StandardCostModelConfig::default()
        },
    )
}

fn run_iama_series(
    spec: &QuerySpec,
    model: &StandardCostModel,
    schedule: &ResolutionSchedule,
    config: IamaConfig,
) -> Vec<moqo::cost::CostVector> {
    let mut opt = IamaOptimizer::with_config(
        Arc::new(spec.clone()),
        Arc::new(model.clone()),
        schedule.clone(),
        config,
    );
    let b = Bounds::unbounded(model.dim());
    for r in 0..=schedule.r_max() {
        opt.optimize(&b, r);
    }
    opt.frontier(&b, schedule.r_max()).costs()
}

#[test]
fn theorem2_on_tpch_small_blocks() {
    let model = small_model();
    let schedule = ResolutionSchedule::linear(4, 1.05, 0.5);
    let b = Bounds::unbounded(model.dim());
    for spec in moqo::tpch::all_join_blocks(0.001) {
        if spec.n_tables() > 4 {
            continue; // exhaustive DP explodes beyond this
        }
        let exact = exhaustive_pareto(&spec, &model, &b);
        let frontier = run_iama_series(&spec, &model, &schedule, IamaConfig::default());
        let factor = coverage_factor(&frontier, &exact.pareto_costs());
        let guarantee = schedule.guarantee(schedule.r_max(), spec.n_tables());
        assert!(
            factor <= guarantee + 1e-9,
            "{}: measured {factor} > guarantee {guarantee}",
            spec.name
        );
    }
}

#[test]
fn theorem2_holds_without_shadowing_and_without_delta() {
    // The guarantee must hold in strict paper mode too (no shadowing, no
    // eager level skip) and with delta filtering disabled.
    let model = small_model();
    let schedule = ResolutionSchedule::linear(3, 1.08, 0.6);
    let spec = testkit::chain_query(4, 120_000);
    let exact = exhaustive_pareto(&spec, &model, &Bounds::unbounded(model.dim()));
    let guarantee = schedule.guarantee(schedule.r_max(), spec.n_tables());
    for config in [
        IamaConfig {
            shadow_dominated: false,
            eager_level_skip: false,
            ..IamaConfig::default()
        },
        IamaConfig {
            use_delta: false,
            ..IamaConfig::default()
        },
        IamaConfig {
            shadow_dominated: false,
            ..IamaConfig::default()
        },
    ] {
        let frontier = run_iama_series(&spec, &model, &schedule, config.clone());
        let factor = coverage_factor(&frontier, &exact.pareto_costs());
        assert!(
            factor <= guarantee + 1e-9,
            "config {config:?}: {factor} > {guarantee}"
        );
    }
}

#[test]
fn theorem2_on_random_queries() {
    let model = small_model();
    let schedule = ResolutionSchedule::linear(3, 1.1, 0.4);
    for seed in 0..8 {
        let spec = testkit::random_query(4, seed);
        let exact = exhaustive_pareto(&spec, &model, &Bounds::unbounded(model.dim()));
        let frontier = run_iama_series(&spec, &model, &schedule, IamaConfig::default());
        let factor = coverage_factor(&frontier, &exact.pareto_costs());
        let guarantee = schedule.guarantee(schedule.r_max(), spec.n_tables());
        assert!(
            factor <= guarantee + 1e-9,
            "seed {seed}: {factor} > {guarantee}"
        );
    }
}

#[test]
fn bounded_guarantee_after_bound_changes() {
    // Theorem 1/2's b-bounded variant: after tightening and re-loosening
    // bounds, the frontier at the finest resolution still covers the
    // bounded slice of the exact Pareto set.
    let model = small_model();
    let schedule = ResolutionSchedule::linear(4, 1.05, 0.5);
    let spec = testkit::chain_query(3, 150_000);
    let dim = model.dim();
    let unb = Bounds::unbounded(dim);
    let exact = exhaustive_pareto(&spec, &model, &unb);
    let exact_costs = exact.pareto_costs();

    let mut opt = IamaOptimizer::new(
        Arc::new(spec.clone()),
        Arc::new(model.clone()),
        schedule.clone(),
    );
    // Tight phase.
    opt.optimize(&unb, 0);
    let t_min = opt
        .frontier(&unb, 0)
        .min_by_metric(0)
        .map(|p| p.cost[0])
        .unwrap();
    let tight = Bounds::unbounded(dim).with_limit(0, t_min * 2.0);
    for r in 0..=schedule.r_max() {
        opt.optimize(&tight, r);
    }
    let alpha = schedule.guarantee(schedule.r_max(), spec.n_tables());
    let frontier_tight = opt.frontier(&tight, schedule.r_max()).costs();
    assert!(
        covers_bounded(&frontier_tight, &exact_costs, alpha, &tight),
        "tight-bound frontier misses covered region"
    );
    // Loosen again: candidates stored as out-of-bounds must resurface.
    for r in 0..=schedule.r_max() {
        opt.optimize(&unb, r);
    }
    let frontier_unb = opt.frontier(&unb, schedule.r_max()).costs();
    let factor = coverage_factor(&frontier_unb, &exact_costs);
    assert!(
        factor <= alpha + 1e-9,
        "after re-loosening: {factor} > {alpha}"
    );
}

#[test]
fn one_shot_and_iama_agree_at_target_precision() {
    // Both must produce frontiers that mutually cover within the combined
    // guarantee at the target factor.
    let model = small_model();
    let schedule = ResolutionSchedule::linear(4, 1.05, 0.5);
    let spec = testkit::star_query(4, 200_000);
    let b = Bounds::unbounded(model.dim());
    let shot = one_shot(&spec, &model, &schedule, &b);
    let iama = run_iama_series(&spec, &model, &schedule, IamaConfig::default());
    let guarantee = schedule.guarantee(schedule.r_max(), spec.n_tables());
    // IAMA covers the one-shot frontier within its guarantee and vice
    // versa (both cover the true Pareto set within the same factor).
    assert!(coverage_factor(&iama, &shot.pareto_costs()) <= guarantee + 1e-9);
    assert!(coverage_factor(&shot.frontier_costs(), &iama) <= guarantee + 1e-9);
}

#[test]
fn frontier_plans_are_real_plans_with_consistent_costs() {
    // Every frontier plan must be a complete, well-formed plan tree whose
    // re-derived cost matches the cached cost.
    let model = small_model();
    let schedule = ResolutionSchedule::linear(2, 1.1, 0.4);
    let spec = testkit::chain_query(4, 80_000);
    let b = Bounds::unbounded(model.dim());
    let mut opt = IamaOptimizer::new(
        Arc::new(spec.clone()),
        Arc::new(model.clone()),
        schedule.clone(),
    );
    for r in 0..=schedule.r_max() {
        opt.optimize(&b, r);
    }
    let frontier = opt.frontier(&b, schedule.r_max());
    assert!(!frontier.is_empty());
    let arena = opt.arena();
    for p in &frontier.points {
        let node = arena.node(p.plan);
        assert_eq!(node.tables, spec.all_tables());
        assert_eq!(node.cost.as_slice(), p.cost.as_slice());
        // Tree is well-formed: every leaf is a scan, every inner node a join.
        fn check(arena: &moqo::plan::PlanArena, id: moqo::plan::PlanId) {
            let n = arena.node(id);
            match n.children {
                None => assert!(n.op.is_scan()),
                Some((l, r)) => {
                    assert!(n.op.is_join());
                    check(arena, l);
                    check(arena, r);
                }
            }
        }
        check(arena, p.plan);
    }
}
