//! Scale experiment: one node holding thousands of **idle** interactive
//! sessions (`repro net-scale`).
//!
//! The latency experiments (`repro serve`, `repro net`) measure the
//! interactive SLO for one session at a time; this one measures the
//! *capacity* claim behind the readiness-driven front: a single
//! event-loop thread plus a fixed decode pool holds N connected,
//! admitted, idle sessions without a per-connection thread and with
//! bounded per-connection memory. The report samples `/proc/self/status`
//! (so the figures are userspace RSS and real thread counts, client and
//! server side combined — both live in this process) and the server's
//! [`NetStats`](moqo_serve::NetStats) backpressure counters before and
//! while holding the fleet.
//!
//! Sequence: raise `RLIMIT_NOFILE`, bind one [`NetServer`], connect and
//! submit N sessions over a handful of repeated query templates, drain
//! every client to its first frontier, hold the fleet idle, then drop all
//! clients at once (the disconnect-park path) and time the drain and the
//! event-driven shutdown.

use moqo_core::protocol::SessionRequest;
use moqo_cost::ResolutionSchedule;
use moqo_costmodel::StandardCostModel;
use moqo_engine::{EngineConfig, ModelRegistry};
use moqo_query::{testkit, QuerySpec};
use moqo_serve::{
    AdmissionConfig, MoqoServer, NetClient, NetConfig, NetServer, ServeConfig, ShardConfig,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::harness::{Experiment, ExperimentReport, Trial};
use crate::stats::{Samples, Summary};

const IDLE: Duration = Duration::from_secs(600);

/// Reads `VmRSS` (kB) and `Threads` for this process. Returns zeros on
/// non-Linux /proc layouts so the experiment still runs (memory columns
/// just read 0).
pub fn proc_status() -> (u64, u64) {
    let text = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    let field = |key: &str| {
        text.lines()
            .find(|l| l.starts_with(key))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    (field("VmRSS:"), field("Threads:"))
}

/// The small template set the fleet cycles over: enough shapes to spread
/// across shards, few enough that repeats dominate and the warm cache
/// carries most of the plan work.
pub fn net_scale_templates() -> Vec<Arc<QuerySpec>> {
    vec![
        Arc::new(testkit::chain_query(2, 40_000)),
        Arc::new(testkit::chain_query(3, 45_000)),
        Arc::new(testkit::star_query(3, 60_000)),
        Arc::new(testkit::chain_query(2, 55_000)),
    ]
}

/// Runs the hold sequence at `requested` connections (clamped by the fd
/// limit) and records every capacity figure into `trial`.
fn run_hold(requested: usize, fast: bool, trial: &mut Trial) {
    let nofile_soft = moqo_poll::raise_nofile_limit(requested as u64 * 2 + 512).unwrap_or(1024);
    let usable = (nofile_soft.saturating_sub(256) / 2) as usize;
    let connections = requested.min(usable).max(1);

    let model: moqo_costmodel::SharedCostModel = Arc::new(StandardCostModel::paper_metrics());
    let server = Arc::new(MoqoServer::new(
        model.clone(),
        ResolutionSchedule::linear(1, 1.1, 0.5),
        ServeConfig {
            shard: ShardConfig {
                shards: 2,
                engine: EngineConfig {
                    workers: 2,
                    ..EngineConfig::default()
                },
                rebalance_headroom: 8,
            },
            admission: AdmissionConfig {
                max_live: connections + 16,
                ..AdmissionConfig::default()
            },
            retired_tickets: connections + 16,
        },
    ));
    let registry = Arc::new(ModelRegistry::with_default(model));
    let net = NetServer::bind(server, registry, NetConfig::default()).expect("bind 127.0.0.1:0");
    let addr = net.local_addr();
    let templates = net_scale_templates();

    // Pre-warm: one sequential session per template parks its frontier,
    // so the fleet's first repeat of each template starts at zero plans
    // (the rest run concurrently and cannot all share one parked state).
    for spec in &templates {
        let mut client = NetClient::connect(addr).expect("connect over loopback");
        client
            .submit(SessionRequest::new(spec.clone()), IDLE)
            .expect("admitted");
        while client.view().frontier.is_empty() {
            client.recv(IDLE).expect("healthy stream");
        }
        client
            .command(moqo_core::SessionCommand::Cancel)
            .expect("send");
        client.wait_finished(IDLE).expect("terminal event");
    }

    let (rss_before_kb, threads_before) = proc_status();

    // Connect and submit the whole fleet; each session runs its (tiny)
    // resolution ladder and then sits idle awaiting commands.
    let mut clients: Vec<NetClient> = Vec::with_capacity(connections);
    let mut connect_us = Samples::with_capacity(connections);
    let mut admit_us = Samples::with_capacity(connections);
    for i in 0..connections {
        let t0 = Instant::now();
        let mut client = NetClient::connect(addr).expect("connect over loopback");
        connect_us.push(t0.elapsed().as_secs_f64() * 1e6);
        let spec = templates[i % templates.len()].clone();
        let t1 = Instant::now();
        client
            .submit(SessionRequest::new(spec), IDLE)
            .expect("admitted");
        admit_us.push(t1.elapsed().as_secs_f64() * 1e6);
        clients.push(client);
    }
    assert!(
        net.moqo().wait_idle(IDLE),
        "engine did not go idle under the held fleet"
    );

    // Drain every client to its first frontier and first report: this
    // proves end-to-end delivery for all N streams, not just admission.
    let mut zero_plan_starts = 0u64;
    for client in &mut clients {
        while client.view().frontier.is_empty() || client.view().first_report.is_none() {
            client.recv(IDLE).expect("healthy stream");
        }
        if client
            .view()
            .first_report
            .as_ref()
            .is_some_and(|r| r.plans_generated == 0)
        {
            zero_plan_starts += 1;
        }
    }

    // Quiesce every stream exactly: the engine is idle, so the server's
    // view epoch per ticket is final — recv until the client has caught
    // up. Without this, frames still in flight would turn the bulk drop
    // below into TCP resets (counted as faults) instead of orderly EOFs.
    for client in &mut clients {
        let ticket = moqo_serve::Ticket::from_u64(client.server_ticket().expect("admitted"));
        let target = match net.moqo().poll(ticket) {
            Some(moqo_serve::TicketStatus::Active { view, .. }) => view.epoch,
            other => panic!("held session not active: {other:?}"),
        };
        while client.view().epoch < target {
            client.recv(IDLE).expect("healthy stream");
        }
    }

    let (rss_held_kb, threads_held) = proc_status();
    let held = net.stats();

    // Hold the fleet idle: nothing polls, nothing spins — the loop thread
    // blocks in the reactor the whole time.
    let hold_ms: u64 = if fast { 150 } else { 500 };
    std::thread::sleep(Duration::from_millis(hold_ms));
    let after_hold = net.stats();

    // Drop all N clients at once: every live session takes the
    // disconnect-park path and the fleet drains to zero.
    let t_drain = Instant::now();
    drop(clients);
    let drain_deadline = Instant::now() + IDLE;
    while net.stats().live != 0 {
        assert!(Instant::now() < drain_deadline, "fleet did not drain");
        std::thread::sleep(Duration::from_millis(2));
    }
    let drain_ms = t_drain.elapsed().as_secs_f64() * 1e3;
    let end = net.stats();

    let t_stop = Instant::now();
    net.shutdown();
    let shutdown_ms = t_stop.elapsed().as_secs_f64() * 1e3;

    trial.int("connections", connections as u64);
    trial.int("requested", requested as u64);
    trial.int("nofile_soft", nofile_soft);
    trial.int("templates", templates.len() as u64);
    trial.summary_us("connect_", Summary::of_or_zero(&connect_us));
    trial.summary_us("admit_", Summary::of_or_zero(&admit_us));
    trial.int("zero_plan_starts", zero_plan_starts);
    trial.int("rss_before_kb", rss_before_kb);
    trial.int("rss_held_kb", rss_held_kb);
    // Process-wide userspace growth per held connection.
    trial.num_lower(
        "kb_per_conn",
        rss_held_kb.saturating_sub(rss_before_kb) as f64 / connections as f64,
    );
    trial.int("threads_before", threads_before);
    trial.int("threads_held", threads_held);
    trial.int("live_held", held.live);
    trial.int("live_after_hold", after_hold.live);
    trial.int("hold_ms", hold_ms);
    trial.int_lower("faulted", end.faulted);
    trial.int_lower("stalled", end.stalled);
    trial.int("coalesced_events", end.coalesced_events);
    trial.int("outbound_high_water", end.outbound_high_water);
    trial.int("frames_in", end.frames_in);
    trial.int("frames_out", end.frames_out);
    trial.int("accepted", end.accepted);
    trial.int("disconnect_parked", end.disconnect_parked);
    trial.num_lower("drain_ms", drain_ms);
    trial.num_lower("shutdown_ms", shutdown_ms);
}

/// Runs the experiment at `requested` connections, clamped to what the
/// file-descriptor limit allows (each held connection costs two fds in
/// this single-process harness: the client socket and the server socket).
pub fn net_scale_experiment(requested: usize, fast: bool) -> ExperimentReport {
    Experiment::new("net-scale", fast, || ())
        .title(format!(
            "net-scale: holding {requested} idle sessions on one event loop"
        ))
        .variant("capacity", "hold", move |_, t| run_hold(requested, fast, t))
        .conclusion(
            "N connections, zero new threads, bounded per-connection memory; \
             the bulk disconnect parks every session warm.",
        )
        .run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holds_an_idle_fleet_without_per_connection_threads() {
        let n = 192u64;
        let report = net_scale_experiment(n as usize, true);
        let counter = |key: &str| report.metric("hold", key).unwrap().as_u64().unwrap();
        assert_eq!(counter("connections"), n, "fd limit clamped the smoke run");
        assert_eq!(counter("live_held"), n);
        assert_eq!(counter("live_after_hold"), n, "sessions died while idle");
        assert_eq!(counter("faulted"), 0);
        assert_eq!(counter("stalled"), 0);
        // The capacity claim: N connections, zero new threads.
        assert_eq!(counter("threads_held"), counter("threads_before"));
        // Every session delivered its first frontier; repeats of the
        // four templates must hit the warm cache at least sometimes.
        assert!(counter("zero_plan_starts") > 0);
        assert_eq!(counter("disconnect_parked"), n);
        let shutdown_ms = report
            .metric("hold", "shutdown_ms")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(shutdown_ms < 1000.0);
    }
}
