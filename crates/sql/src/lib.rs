//! Minimal SQL front-end for the optimizer.
//!
//! Section 4.3 of the paper: "complex SQL statements containing nested
//! queries can be decomposed into simple select-project-join query blocks
//! that can be optimized by our algorithm" (following Selinger et al.).
//! This crate provides that pipeline for a pragmatic SQL subset:
//!
//! ```sql
//! SELECT c.name, o.total
//! FROM customer c, orders o, lineitem l
//! WHERE c.custkey = o.custkey
//!   AND o.orderkey = l.orderkey
//!   AND c.segment = 'BUILDING'
//!   AND o.total > 1000
//!   AND o.orderkey IN (SELECT l2.orderkey FROM lineitem l2
//!                      WHERE l2.qty > 300)
//! ```
//!
//! * [`lexer`] tokenizes the statement;
//! * [`parser`] builds the [`ast`] (joins via comma-separated `FROM` plus
//!   `WHERE` equi-join predicates, local filters, `IN`/`EXISTS`
//!   sub-queries);
//! * [`mod@decompose`] flattens the statement into one [`QuerySpec`] per
//!   query block, estimating join selectivities from catalog column
//!   statistics (`1 / max(ndv)`) and filter selectivities with the
//!   classic System-R heuristics (equality `1/ndv`, range `1/3`).
//!
//! [`QuerySpec`]: moqo_query::QuerySpec

#![warn(missing_docs)]

pub mod ast;
pub mod decompose;
pub mod lexer;
pub mod parser;

pub use ast::{Comparison, Condition, SelectStatement, TableRef};
pub use decompose::{decompose, DecomposeError};
pub use parser::{parse_select, ParseError};

use moqo_catalog::Catalog;
use moqo_query::QuerySpec;
use std::sync::Arc;

/// Convenience: parse a SQL string and decompose it into optimizable
/// query blocks against `catalog`. The first block is the outermost
/// query; sub-query blocks follow in discovery order.
pub fn plan_blocks(sql: &str, catalog: &Arc<Catalog>) -> Result<Vec<QuerySpec>, SqlError> {
    let stmt = parse_select(sql)?;
    Ok(decompose(&stmt, catalog)?)
}

/// Any front-end error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SqlError {
    /// Tokenizing/parsing failed.
    Parse(ParseError),
    /// Name resolution or statistics lookup failed.
    Decompose(DecomposeError),
}

impl From<ParseError> for SqlError {
    fn from(e: ParseError) -> Self {
        SqlError::Parse(e)
    }
}

impl From<DecomposeError> for SqlError {
    fn from(e: DecomposeError) -> Self {
        SqlError::Decompose(e)
    }
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqlError::Parse(e) => write!(f, "parse error: {e}"),
            SqlError::Decompose(e) => write!(f, "decompose error: {e}"),
        }
    }
}

impl std::error::Error for SqlError {}

#[cfg(test)]
mod proptests;
