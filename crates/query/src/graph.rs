//! Join graphs: tables, join edges, selectivities, and local predicates.

use crate::tableset::TableSet;
use moqo_catalog::TableId;

/// An equi-join edge between two query-table positions with an estimated
/// selectivity.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JoinEdge {
    /// Position of the first table in the query's table list.
    pub left: usize,
    /// Position of the second table.
    pub right: usize,
    /// Join selectivity in `(0, 1]`: the join of relations with
    /// cardinalities `|L|` and `|R|` has roughly `sel * |L| * |R|` rows.
    pub selectivity: f64,
}

impl JoinEdge {
    /// Creates an edge; positions are normalized so `left < right`.
    ///
    /// # Panics
    /// Panics if `left == right` or if the selectivity lies outside `(0, 1]`.
    pub fn new(left: usize, right: usize, selectivity: f64) -> Self {
        assert_ne!(left, right, "self-join edges need distinct positions");
        assert!(
            selectivity > 0.0 && selectivity <= 1.0,
            "selectivity {selectivity} outside (0, 1]"
        );
        Self {
            left: left.min(right),
            right: left.max(right),
            selectivity,
        }
    }

    /// True if the edge connects a table in `a` with a table in `b`.
    #[inline]
    pub fn connects(&self, a: TableSet, b: TableSet) -> bool {
        (a.contains(self.left) && b.contains(self.right))
            || (a.contains(self.right) && b.contains(self.left))
    }

    /// True if both endpoints lie inside `set`.
    #[inline]
    pub fn within(&self, set: TableSet) -> bool {
        set.contains(self.left) && set.contains(self.right)
    }
}

/// A query's join graph: the table list (referencing catalog tables),
/// join edges, and per-table local-filter selectivities.
///
/// Local predicates are assumed to be pushed below the joins ("applied as
/// early as possible in the join tree", Section 4.3), so they scale the
/// effective base-table cardinalities.
#[derive(Clone, Debug)]
pub struct JoinGraph {
    /// Catalog table backing each query-table position. The same catalog
    /// table may appear at several positions (self-joins).
    pub tables: Vec<TableId>,
    /// Join edges with selectivities.
    pub edges: Vec<JoinEdge>,
    /// Local-filter selectivity per table position, in `(0, 1]`.
    pub filters: Vec<f64>,
}

impl JoinGraph {
    /// Creates a graph over `tables` with no edges and no filters.
    pub fn new(tables: Vec<TableId>) -> Self {
        let n = tables.len();
        assert!(n <= 64, "at most 64 tables per query block");
        Self {
            tables,
            edges: Vec::new(),
            filters: vec![1.0; n],
        }
    }

    /// Number of tables (the paper's `n`).
    #[inline]
    pub fn n_tables(&self) -> usize {
        self.tables.len()
    }

    /// The set of all table positions.
    #[inline]
    pub fn all_tables(&self) -> TableSet {
        TableSet::full(self.n_tables())
    }

    /// Adds a join edge.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn add_edge(&mut self, left: usize, right: usize, selectivity: f64) -> &mut Self {
        assert!(left < self.n_tables() && right < self.n_tables());
        self.edges.push(JoinEdge::new(left, right, selectivity));
        self
    }

    /// Sets the local-filter selectivity for a table position.
    pub fn set_filter(&mut self, pos: usize, selectivity: f64) -> &mut Self {
        assert!(pos < self.n_tables());
        assert!(selectivity > 0.0 && selectivity <= 1.0);
        self.filters[pos] = selectivity;
        self
    }

    /// True if some join edge connects the two (disjoint) sets — joining
    /// them is not a cross product.
    pub fn connected(&self, a: TableSet, b: TableSet) -> bool {
        self.edges.iter().any(|e| e.connects(a, b))
    }

    /// Product of the selectivities of all edges connecting `a` and `b`.
    /// Returns `1.0` if no edge connects them (cross product).
    pub fn join_selectivity(&self, a: TableSet, b: TableSet) -> f64 {
        self.edges
            .iter()
            .filter(|e| e.connects(a, b))
            .map(|e| e.selectivity)
            .product()
    }

    /// True if the sub-graph induced by `set` is connected (via join
    /// edges). Singletons are connected; the empty set is not.
    pub fn is_connected_set(&self, set: TableSet) -> bool {
        if set.is_empty() {
            return false;
        }
        if set.len() == 1 {
            return true;
        }
        // Flood fill from the lowest table.
        let mut reached = TableSet::singleton(set.iter().next().unwrap());
        loop {
            let mut grew = false;
            for e in &self.edges {
                if !e.within(set) {
                    continue;
                }
                let l_in = reached.contains(e.left);
                let r_in = reached.contains(e.right);
                if l_in != r_in {
                    reached =
                        reached.union(TableSet::singleton(if l_in { e.right } else { e.left }));
                    grew = true;
                }
            }
            if reached == set {
                return true;
            }
            if !grew {
                return false;
            }
        }
    }

    /// True if the whole graph is connected.
    pub fn is_connected(&self) -> bool {
        self.is_connected_set(self.all_tables())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain3() -> JoinGraph {
        // t0 - t1 - t2
        let mut g = JoinGraph::new(vec![TableId(0), TableId(1), TableId(2)]);
        g.add_edge(0, 1, 0.1).add_edge(1, 2, 0.01);
        g
    }

    #[test]
    fn edge_normalization_and_validation() {
        let e = JoinEdge::new(3, 1, 0.5);
        assert_eq!((e.left, e.right), (1, 3));
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn edge_rejects_zero_selectivity() {
        JoinEdge::new(0, 1, 0.0);
    }

    #[test]
    #[should_panic(expected = "distinct positions")]
    fn edge_rejects_self_loop() {
        JoinEdge::new(2, 2, 0.5);
    }

    #[test]
    fn connectivity_between_sets() {
        let g = chain3();
        let s0 = TableSet::singleton(0);
        let s1 = TableSet::singleton(1);
        let s2 = TableSet::singleton(2);
        assert!(g.connected(s0, s1));
        assert!(g.connected(s1, s2));
        assert!(!g.connected(s0, s2)); // no direct edge: cross product
        assert!(g.connected(s0.union(s1), s2));
    }

    #[test]
    fn join_selectivity_multiplies_connecting_edges() {
        let mut g = chain3();
        g.add_edge(0, 2, 0.5); // close the triangle
        let s01 = TableSet::from_positions([0, 1]);
        let s2 = TableSet::singleton(2);
        // Edges (1,2) and (0,2) both connect.
        assert!((g.join_selectivity(s01, s2) - 0.01 * 0.5).abs() < 1e-15);
        // Cross product has selectivity 1.
        let g2 = JoinGraph::new(vec![TableId(0), TableId(1)]);
        assert_eq!(
            g2.join_selectivity(TableSet::singleton(0), TableSet::singleton(1)),
            1.0
        );
    }

    #[test]
    fn connected_set_detection() {
        let g = chain3();
        assert!(g.is_connected());
        assert!(g.is_connected_set(TableSet::from_positions([0, 1])));
        assert!(!g.is_connected_set(TableSet::from_positions([0, 2])));
        assert!(g.is_connected_set(TableSet::singleton(2)));
        assert!(!g.is_connected_set(TableSet::EMPTY));
    }

    #[test]
    fn filters_default_to_one() {
        let mut g = chain3();
        assert_eq!(g.filters, vec![1.0; 3]);
        g.set_filter(1, 0.25);
        assert_eq!(g.filters[1], 0.25);
    }

    #[test]
    fn disconnected_graph() {
        let g = JoinGraph::new(vec![TableId(0), TableId(1)]);
        assert!(!g.is_connected());
    }
}
