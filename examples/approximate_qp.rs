//! Example 2 from the paper: approximate query processing — sampling
//! reduces execution time at the cost of result precision. The user
//! hand-tunes a frequently executed query by inspecting the time/error
//! tradeoff curve at increasing precision.
//!
//! ```text
//! cargo run --release --example approximate_qp
//! ```

use moqo::core::{Session, SessionCommand};
use moqo::prelude::*;
use moqo::viz::TextTable;
use std::sync::Arc;

fn main() {
    // TPC-H Q3 (customer ⋈ orders ⋈ lineitem) at scale factor 1:
    // lineitem has 6M rows, so sampled scans matter.
    let spec = Arc::new(moqo::tpch::query_block("q03", 1.0).expect("q03 exists"));
    let model = Arc::new(StandardCostModel::paper_metrics());
    let schedule = ResolutionSchedule::linear(10, 1.01, 0.2);
    let optimizer = IamaOptimizer::new(spec.clone(), model.clone(), schedule);
    let mut session = Session::new(optimizer);

    // Let the approximation refine for a few iterations, printing how the
    // visible time/error tradeoffs evolve.
    println!(
        "refining the time/error tradeoff curve for {}:\n",
        spec.name
    );
    for step in 0..6 {
        let event = session.apply(SessionCommand::Refine).expect("live session");
        let report = event.report.expect("Refine runs an invocation");
        let frontier = session.frontier();
        // Per iteration: the cheapest-time plan for a few error classes
        // (the "curve" a UI would draw).
        let mut per_error: Vec<(f64, f64)> = Vec::new();
        for p in frontier.pareto_points() {
            per_error.push((p.cost[2], p.cost[0]));
        }
        per_error.sort_by(|a, b| a.partial_cmp(b).unwrap());
        per_error.dedup_by(|a, b| (a.0 - b.0).abs() < 1e-9);
        println!(
            "iteration {step}: resolution {}, {} tradeoffs, {:.1} ms ({} frontier points shipped as a delta)",
            report.resolution,
            frontier.len(),
            report.seconds() * 1e3,
            event.delta.shipped_points(),
        );
        if step == 5 {
            let mut t = TextTable::new(vec!["max error", "best time"]);
            for (err, time) in per_error.iter().take(10) {
                t.row(vec![format!("{err:.3}"), format!("{time:.1}")]);
            }
            println!("\nfinal curve (error -> best achievable time):");
            println!("{}", t.render());
        }
    }

    // The user decides 10 % error is acceptable and picks the fastest
    // plan within that tolerance.
    let bounds = session.bounds();
    let frontier = session
        .optimizer()
        .frontier(bounds, session.resolution().saturating_sub(1));
    let choice = frontier
        .points
        .iter()
        .filter(|p| p.cost[2] <= 0.10)
        .min_by(|a, b| a.cost[0].partial_cmp(&b.cost[0]).unwrap())
        .expect("a plan within 10% error exists");
    println!(
        "chosen plan (error <= 10%): time={:.1}, cores={:.0}, error={:.3}",
        choice.cost[0], choice.cost[1], choice.cost[2]
    );
    println!(
        "{}",
        moqo::plan::explain(session.optimizer().arena(), choice.plan)
    );
    let fin = session
        .apply(SessionCommand::SelectPlan(choice.plan))
        .expect("live session");
    let plan = fin.outcome.expect("terminal event").selected().unwrap();
    println!("plan {plan:?} selected for execution.");
}
