//! The fleet router: health probes, death detection, and warm-state
//! rebalancing over the shared placement table.

use crate::client::SharedPlacement;
use moqo_engine::QueryFingerprint;
use moqo_serve::NetClient;
use moqo_wire::{check_hello, client_hello, NetError, HELLO_LEN};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One node's probe outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeHealth {
    /// The probed node.
    pub id: String,
    /// True when the node accepted a connection and answered the
    /// `MOQOWIRE` handshake within the probe timeout.
    pub alive: bool,
}

/// What a planned [`FleetRouter::rebalance`] did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Rebalance {
    /// The frontier was pulled off the old home, pushed to (and
    /// validated by) the new home, and the key pinned there.
    Moved {
        /// Node the warm state left.
        from: String,
        /// Node that now owns the key.
        to: String,
        /// Size of the shipped `export_frontier` blob.
        bytes: usize,
    },
    /// The old home had nothing parked for the key; the pin was still
    /// set (the new home starts cold, or adopts from the shared store on
    /// first pull).
    ColdMove {
        /// Node that now owns the key.
        to: String,
    },
}

/// What one [`FleetRouter::watch_tick`] beat observed and repaired.
#[derive(Clone, Debug, Default)]
pub struct WatchTick {
    /// Probe outcome for every node that was live going into the tick.
    pub health: Vec<NodeHealth>,
    /// Nodes that failed their probe this tick (newly marked dead).
    pub died: Vec<String>,
    /// Watched keys whose home died this tick; rendezvous hashing moved
    /// each to a surviving node.
    pub orphaned: usize,
    /// Orphaned keys re-parked **warm** on their new homes (the new home
    /// pulled the dead node's last persisted state from the shared
    /// store).
    pub adopted_warm: usize,
    /// Orphaned keys with nothing persisted anywhere: their new homes
    /// start cold.
    pub adopted_cold: usize,
    /// Keys shipped warm from the most- to the least-loaded live node
    /// because the ownership spread exceeded the tick's headroom.
    pub rebalanced: usize,
}

/// The thin router process: it owns mutations of the [`SharedPlacement`]
/// (marking dead nodes, pinning rebalanced keys) and ships warm state
/// between nodes over their control endpoints. It holds **no** optimizer
/// state itself — every frontier it moves is self-validating
/// `export_frontier` bytes that the receiving node re-validates at
/// admission.
pub struct FleetRouter {
    placement: SharedPlacement,
    /// Per-node connect budget of a health probe.
    pub probe_timeout: Duration,
    /// Per-request budget of control pulls/pushes during rebalance.
    pub control_timeout: Duration,
}

impl FleetRouter {
    /// A router over the fleet's shared placement.
    pub fn new(placement: SharedPlacement) -> Self {
        Self {
            placement,
            probe_timeout: Duration::from_millis(500),
            control_timeout: Duration::from_secs(60),
        }
    }

    /// The shared placement table.
    pub fn placement(&self) -> &SharedPlacement {
        &self.placement
    }

    /// Probes `addr`: TCP connect within the timeout plus a full
    /// `MOQOWIRE` hello exchange — a port that accepts but speaks
    /// something else is as dead as a refused connection.
    fn probe_addr(&self, addr: &str) -> bool {
        let Some(sock_addr) = addr.to_socket_addrs().ok().and_then(|mut a| a.next()) else {
            return false;
        };
        let Ok(mut stream) = TcpStream::connect_timeout(&sock_addr, self.probe_timeout) else {
            return false;
        };
        let _ = stream.set_read_timeout(Some(self.probe_timeout));
        let _ = stream.set_write_timeout(Some(self.probe_timeout));
        if stream.write_all(&client_hello()).is_err() {
            return false;
        }
        let mut hello = [0u8; HELLO_LEN];
        if stream.read_exact(&mut hello).is_err() {
            return false;
        }
        check_hello(&hello).is_ok()
    }

    /// Probes every non-dead node and marks the unreachable ones dead in
    /// the shared placement — after this returns, every key a dead node
    /// owned resolves to its surviving runner-up. Returns each probed
    /// node's health.
    pub fn probe(&self) -> Vec<NodeHealth> {
        let targets: Vec<(String, String)> = {
            let placement = self.placement.read().expect("placement poisoned");
            placement
                .live_nodes()
                .map(|n| (n.id.clone(), n.addr.clone()))
                .collect()
        };
        let mut health = Vec::with_capacity(targets.len());
        for (id, addr) in targets {
            let alive = self.probe_addr(&addr);
            if !alive {
                self.placement
                    .write()
                    .expect("placement poisoned")
                    .mark_dead(&id);
            }
            health.push(NodeHealth { id, alive });
        }
        health
    }

    /// Planned hand-off: pulls the warm frontier for `fp` off its
    /// current home, pushes it to node `to` (which re-validates it like
    /// a snapshot restore), and pins the key there. The pulled bytes
    /// stay parked on the old home too — placement decides who serves,
    /// duplicates are harmless.
    pub fn rebalance(&self, fp: QueryFingerprint, to: &str) -> Result<Rebalance, NetError> {
        let (from, from_addr, to_addr) = {
            let placement = self.placement.read().expect("placement poisoned");
            let target = placement
                .node(to)
                .filter(|n| !n.dead)
                .ok_or(NetError::Disconnected)?;
            match placement.home_of(fp) {
                Some(home) if home.id != target.id => {
                    (home.id.clone(), home.addr.clone(), target.addr.clone())
                }
                // Already home (or no home at all): nothing to ship.
                _ => (String::new(), String::new(), target.addr.clone()),
            }
        };
        let blob = if from.is_empty() {
            None
        } else {
            let mut control = NetClient::connect(&from_addr)?;
            control.pull_frontier(fp.as_u64(), self.control_timeout)?
        };
        let result = match blob {
            Some(blob) => {
                let bytes = blob.len();
                let mut control = NetClient::connect(&to_addr)?;
                let admitted = control.push_frontier(blob, self.control_timeout)?;
                if admitted != Some(fp.as_u64()) {
                    // The new home refused the bytes (or decoded them to
                    // a different fingerprint): do NOT pin — routing to
                    // a cold node on purpose needs a validated frontier.
                    return Err(NetError::UnexpectedFrame("push refused by the new home"));
                }
                Rebalance::Moved {
                    from,
                    to: to.to_string(),
                    bytes,
                }
            }
            None => Rebalance::ColdMove { to: to.to_string() },
        };
        self.placement
            .write()
            .expect("placement poisoned")
            .set_override(fp, to);
        Ok(result)
    }

    /// One beat of the liveness loop (`repro fleet-router --watch`):
    /// probe every live node, adopt the watched keys a newly-dead node
    /// orphaned, and — when the ownership spread of `keys` across live
    /// nodes exceeds `headroom` — ship one key warm from the
    /// most-loaded to the least-loaded node (one move per tick, so a
    /// skewed fleet converges gently instead of thundering).
    /// `usize::MAX` disables rebalancing.
    ///
    /// A tick against a healthy, balanced fleet does nothing but the
    /// probes; the loop is safe to run forever at any cadence.
    pub fn watch_tick(&self, keys: &[QueryFingerprint], headroom: usize) -> WatchTick {
        let home_of = |fp: QueryFingerprint| -> Option<String> {
            self.placement
                .read()
                .expect("placement poisoned")
                .home_of(fp)
                .map(|n| n.id.clone())
        };
        let homes_before: Vec<Option<String>> = keys.iter().map(|fp| home_of(*fp)).collect();
        let health = self.probe();
        let died: Vec<String> = health
            .iter()
            .filter(|h| !h.alive)
            .map(|h| h.id.clone())
            .collect();

        let mut tick = WatchTick {
            health,
            died,
            ..WatchTick::default()
        };
        if !tick.died.is_empty() {
            for (fp, before) in keys.iter().zip(&homes_before) {
                let orphaned = before.as_ref().is_some_and(|id| tick.died.contains(id));
                if !orphaned {
                    continue;
                }
                tick.orphaned += 1;
                // Adopt lazily: the new home re-parks the key from the
                // shared store on this pull (or reports a cold start). A
                // pull error leaves the key for the next tick.
                match self.adopt(*fp) {
                    Ok(Some(_)) => tick.adopted_warm += 1,
                    Ok(None) => tick.adopted_cold += 1,
                    Err(_) => {}
                }
            }
        }

        if headroom != usize::MAX {
            // Ownership census of the watched keys over live nodes.
            let mut owned: BTreeMap<String, Vec<QueryFingerprint>> = {
                let placement = self.placement.read().expect("placement poisoned");
                placement
                    .live_nodes()
                    .map(|n| (n.id.clone(), Vec::new()))
                    .collect()
            };
            for fp in keys {
                if let Some(id) = home_of(*fp) {
                    if let Some(list) = owned.get_mut(&id) {
                        list.push(*fp);
                    }
                }
            }
            let most = owned.iter().max_by_key(|(_, v)| v.len());
            let least = owned.iter().min_by_key(|(_, v)| v.len());
            if let (Some((from, from_keys)), Some((to, to_keys))) = (most, least) {
                if from != to && from_keys.len() - to_keys.len() > headroom {
                    if let Some(fp) = from_keys.first() {
                        if self.rebalance(*fp, to).is_ok() {
                            tick.rebalanced += 1;
                        }
                    }
                }
            }
        }
        tick
    }

    /// Adopt-after-death: asks `fp`'s **current** home to pull the
    /// frontier up — from its own cache or, for a key just inherited
    /// from a dead node, from the shared snapshot store (re-parking it).
    /// Returns the blob when the new home is warm, `None` when the key
    /// starts cold (nothing ever persisted).
    pub fn adopt(&self, fp: QueryFingerprint) -> Result<Option<Vec<u8>>, NetError> {
        let addr = {
            let placement = self.placement.read().expect("placement poisoned");
            match placement.home_of(fp) {
                Some(n) => n.addr.clone(),
                None => return Err(NetError::Disconnected),
            }
        };
        let mut control = NetClient::connect(&addr)?;
        control.pull_frontier(fp.as_u64(), self.control_timeout)
    }
}
