//! Sweep the whole TPC-H workload: optimize every join block with IAMA
//! and print per-query statistics — a compact view of what the paper's
//! evaluation section measures.
//!
//! ```text
//! cargo run --release --example tpch_workload [-- <scale factor>]
//! ```

use moqo::prelude::*;
use moqo::viz::TextTable;
use std::sync::Arc;

fn main() {
    let sf: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    let model = Arc::new(StandardCostModel::paper_metrics());
    let schedule = ResolutionSchedule::linear(9, 1.01, 0.3);
    let bounds = Bounds::unbounded(model.dim());

    let mut table = TextTable::new(vec![
        "query",
        "tables",
        "invocations",
        "plans",
        "pairs",
        "frontier",
        "pareto",
        "total ms",
        "max inv ms",
    ]);
    for spec in moqo::tpch::all_join_blocks(sf) {
        let mut opt = IamaOptimizer::new(Arc::new(spec.clone()), model.clone(), schedule.clone());
        let mut total = 0.0;
        let mut max_inv = 0.0f64;
        for r in 0..=schedule.r_max() {
            let rep = opt.optimize(&bounds, r);
            total += rep.seconds();
            max_inv = max_inv.max(rep.seconds());
        }
        let frontier = opt.frontier(&bounds, schedule.r_max());
        let stats = opt.stats();
        table.row(vec![
            spec.name.clone(),
            spec.n_tables().to_string(),
            stats.invocations.to_string(),
            stats.plans_generated.to_string(),
            stats.pairs_generated.to_string(),
            frontier.len().to_string(),
            frontier.pareto_points().len().to_string(),
            format!("{:.1}", total * 1e3),
            format!("{:.1}", max_inv * 1e3),
        ]);
    }
    println!("TPC-H workload at scale factor {sf}:\n");
    println!("{}", table.render());
}
