//! Figure 5 regression bench: the *worst-case single invocation*.
//!
//! Criterion times closures, so we isolate the invocation that dominates
//! each algorithm's maximum: for the memoryless baseline that is its
//! final (finest) from-scratch run — "the invocation with maximal
//! execution time is usually the last one" — which equals the one-shot
//! run; for IAMA it is the most expensive single incremental step, which
//! we time by running the full series and benching the dominant level on
//! a pre-warmed optimizer clone.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moqo_baselines::one_shot;
use moqo_bench::{bench_model, iama_series, ExperimentSetup};
use moqo_core::IamaOptimizer;
use moqo_cost::Bounds;
use moqo_costmodel::CostModel;
use moqo_tpch::query_block;
use std::sync::Arc;

const BLOCKS: &[(&str, usize)] = &[("q03", 3), ("q05", 6)];
const SF: f64 = 0.1;
const LEVELS: usize = 10;

fn bench_fig5(c: &mut Criterion) {
    let model = bench_model();
    let setup = ExperimentSetup::fig4();
    let schedule = setup.schedule(LEVELS);
    let bounds = Bounds::unbounded(model.dim());
    let mut group = c.benchmark_group("fig5_max");
    group.sample_size(10);
    for &(name, tables) in BLOCKS {
        let spec = query_block(name, SF).expect("block");
        // Find IAMA's worst level once.
        let reports = iama_series(&spec, &model, &schedule);
        let worst_level = reports
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.seconds().partial_cmp(&b.1.seconds()).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0);
        group.bench_with_input(
            BenchmarkId::new("iama_worst_invocation", tables),
            &spec,
            |b, spec| {
                b.iter_with_setup(
                    || {
                        // Warm an optimizer up to (but excluding) the worst level.
                        let mut opt = IamaOptimizer::new(
                            Arc::new(spec.clone()),
                            Arc::new(model.clone()),
                            schedule.clone(),
                        );
                        for r in 0..worst_level {
                            opt.optimize(&bounds, r);
                        }
                        opt
                    },
                    |mut opt| opt.optimize(&bounds, worst_level),
                )
            },
        );
        // Memoryless max == its finest from-scratch run == one-shot.
        group.bench_with_input(
            BenchmarkId::new("memoryless_worst_invocation", tables),
            &spec,
            |b, spec| b.iter(|| one_shot(spec, &model, &schedule, &bounds)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
