//! Resolution-level schedules.
//!
//! IAMA refines the frontier over a fixed ladder of resolution levels
//! `r ∈ {0, …, rM}`. Each level maps to a pruning precision factor
//! `alpha_r` with `alpha_r > 1` and `alpha_r > alpha_{r+1}` — coarser
//! levels prune more aggressively. The paper's evaluation (Section 6.1)
//! uses the linear schedule
//!
//! ```text
//! alpha_r = alpha_T + alpha_S * (rM - r) / rM
//! ```
//!
//! so that the finest level `rM` prunes with exactly the target precision
//! `alpha_T`. By Theorem 2 an optimizer invocation at level `r` yields an
//! `alpha_r^n`-approximate Pareto set for an `n`-table query.

/// A schedule of precision factors over resolution levels `0..=r_max`.
#[derive(Clone, Debug, PartialEq)]
pub struct ResolutionSchedule {
    factors: Vec<f64>,
}

impl ResolutionSchedule {
    /// The paper's linear schedule: `alpha_r = alpha_t + alpha_s * (rM - r)/rM`.
    ///
    /// `r_max` is the highest resolution level (`rM`); the schedule has
    /// `r_max + 1` levels. With `r_max == 0` there is a single level with
    /// factor `alpha_t + alpha_s` — matching the paper's "1 resolution
    /// level" configuration degenerating to a one-shot run at that factor.
    ///
    /// # Panics
    /// Panics unless `alpha_t > 1` and `alpha_s >= 0`.
    pub fn linear(r_max: usize, alpha_t: f64, alpha_s: f64) -> Self {
        assert!(alpha_t > 1.0, "target precision alpha_T must exceed 1");
        assert!(
            alpha_s >= 0.0,
            "precision step alpha_S must be non-negative"
        );
        let rm = r_max as f64;
        let factors = (0..=r_max)
            .map(|r| {
                if r_max == 0 {
                    alpha_t + alpha_s
                } else {
                    alpha_t + alpha_s * (rm - r as f64) / rm
                }
            })
            .collect();
        Self { factors }
    }

    /// A geometric schedule: the precision *margins* `alpha_r - 1` decay
    /// geometrically from `alpha_0 - 1` down to `alpha_t - 1`.
    ///
    /// The paper's evaluation uses the linear ladder and notes that the
    /// worst-case invocation-time ratio "could be extended by a more
    /// optimized sequence of precision factors" (Section 6.2). A geometric
    /// ladder spaces the *work* between levels more evenly: the number of
    /// plans in an `alpha`-net grows roughly like `(1/(alpha-1))^(l-1)`,
    /// so equal multiplicative steps in the margin produce comparable
    /// per-level plan deltas instead of backloading everything into the
    /// finest levels.
    ///
    /// # Panics
    /// Panics unless `alpha_0 > alpha_t > 1`.
    pub fn geometric(r_max: usize, alpha_t: f64, alpha_0: f64) -> Self {
        assert!(alpha_t > 1.0, "target precision alpha_T must exceed 1");
        assert!(alpha_0 > alpha_t, "initial factor must exceed the target");
        if r_max == 0 {
            return Self {
                factors: vec![alpha_0],
            };
        }
        let m0 = alpha_0 - 1.0;
        let mt = alpha_t - 1.0;
        let ratio = (mt / m0).powf(1.0 / r_max as f64);
        let factors = (0..=r_max)
            .map(|r| 1.0 + m0 * ratio.powi(r as i32))
            .collect();
        Self { factors }
    }

    /// A schedule from explicit factors (must be strictly decreasing and
    /// all greater than one).
    ///
    /// # Panics
    /// Panics if the factor sequence is empty, contains a factor `<= 1`, or
    /// is not strictly decreasing.
    pub fn from_factors(factors: Vec<f64>) -> Self {
        assert!(!factors.is_empty(), "schedule needs at least one level");
        for w in factors.windows(2) {
            assert!(w[0] > w[1], "factors must strictly decrease per level");
        }
        assert!(
            *factors.last().unwrap() > 1.0,
            "all precision factors must exceed 1"
        );
        Self { factors }
    }

    /// The highest resolution level `rM`.
    #[inline]
    pub fn r_max(&self) -> usize {
        self.factors.len() - 1
    }

    /// Number of levels (`rM + 1`).
    #[inline]
    pub fn levels(&self) -> usize {
        self.factors.len()
    }

    /// The pruning precision factor `alpha_r` for level `r`.
    ///
    /// # Panics
    /// Panics if `r > rM`.
    #[inline]
    pub fn factor(&self, r: usize) -> f64 {
        self.factors[r]
    }

    /// The finest (target) factor `alpha_{rM}`.
    #[inline]
    pub fn target_factor(&self) -> f64 {
        *self.factors.last().unwrap()
    }

    /// The formal approximation guarantee after an invocation at level `r`
    /// for an `n`-table query: `alpha_r^n` (Theorem 2).
    #[inline]
    pub fn guarantee(&self, r: usize, n_tables: usize) -> f64 {
        self.factor(r).powi(n_tables as i32)
    }

    /// Iterates over `(level, factor)` pairs from coarsest to finest.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.factors.iter().copied().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_schedule_endpoints() {
        let s = ResolutionSchedule::linear(20, 1.01, 0.05);
        assert_eq!(s.levels(), 21);
        assert_eq!(s.r_max(), 20);
        assert!((s.factor(0) - 1.06).abs() < 1e-12);
        assert!((s.target_factor() - 1.01).abs() < 1e-12);
    }

    #[test]
    fn linear_schedule_is_strictly_decreasing() {
        let s = ResolutionSchedule::linear(5, 1.005, 0.5);
        for r in 0..s.r_max() {
            assert!(s.factor(r) > s.factor(r + 1));
        }
        assert!(s.target_factor() > 1.0);
    }

    #[test]
    fn single_level_schedule() {
        let s = ResolutionSchedule::linear(0, 1.01, 0.05);
        assert_eq!(s.levels(), 1);
        assert!((s.factor(0) - 1.06).abs() < 1e-12);
    }

    #[test]
    fn paper_guarantee_example() {
        // Section 6.2: alpha_T = 1.01 with at most 8 tables gives about an
        // 8% worst-case deviation (1.01^8 ≈ 1.083).
        let s = ResolutionSchedule::linear(20, 1.01, 0.05);
        let g = s.guarantee(s.r_max(), 8);
        assert!((g - 1.01f64.powi(8)).abs() < 1e-12);
        assert!(g > 1.08 && g < 1.09);
    }

    #[test]
    fn geometric_schedule_endpoints_and_monotonicity() {
        let s = ResolutionSchedule::geometric(10, 1.005, 1.5);
        assert_eq!(s.levels(), 11);
        assert!((s.factor(0) - 1.5).abs() < 1e-12);
        assert!((s.target_factor() - 1.005).abs() < 1e-9);
        for r in 0..s.r_max() {
            assert!(s.factor(r) > s.factor(r + 1));
        }
        // Margins decay geometrically: constant ratio between steps.
        let ratios: Vec<f64> = (0..s.r_max())
            .map(|r| (s.factor(r + 1) - 1.0) / (s.factor(r) - 1.0))
            .collect();
        for w in ratios.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-9, "ratios {ratios:?}");
        }
    }

    #[test]
    fn geometric_single_level() {
        let s = ResolutionSchedule::geometric(0, 1.01, 1.5);
        assert_eq!(s.levels(), 1);
        assert_eq!(s.factor(0), 1.5);
    }

    #[test]
    #[should_panic(expected = "must exceed the target")]
    fn geometric_rejects_inverted_factors() {
        ResolutionSchedule::geometric(5, 1.5, 1.01);
    }

    #[test]
    fn from_factors_accepts_valid_ladder() {
        let s = ResolutionSchedule::from_factors(vec![2.0, 1.5, 1.1]);
        assert_eq!(s.r_max(), 2);
        assert_eq!(s.factor(1), 1.5);
    }

    #[test]
    #[should_panic(expected = "strictly decrease")]
    fn from_factors_rejects_non_decreasing() {
        ResolutionSchedule::from_factors(vec![1.5, 1.5]);
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn from_factors_rejects_factor_at_most_one() {
        ResolutionSchedule::from_factors(vec![1.5, 1.0]);
    }

    #[test]
    #[should_panic(expected = "alpha_T must exceed 1")]
    fn linear_rejects_bad_target() {
        ResolutionSchedule::linear(5, 1.0, 0.5);
    }

    #[test]
    fn iter_yields_all_levels() {
        let s = ResolutionSchedule::linear(3, 1.1, 0.3);
        let pairs: Vec<_> = s.iter().collect();
        assert_eq!(pairs.len(), 4);
        assert_eq!(pairs[0].0, 0);
        assert_eq!(pairs[3], (3, s.target_factor()));
    }
}
