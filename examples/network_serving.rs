//! Network serving: the session protocol over real loopback TCP.
//!
//! ```text
//! cargo run --release --example network_serving
//! ```
//!
//! PR 3 made the serving front sharded and admission-controlled; PR 4
//! gave all three in-process layers one typed protocol. This example
//! drives the piece that puts that protocol on the network — a
//! [`NetServer`] wrapping a [`MoqoServer`], spoken to by [`NetClient`]s
//! over framed TCP streams — and asserts, end to end over real sockets:
//!
//! (a) **warm state survives the wire**: a repeat submit of a known query
//!     reaches its first frontier with **zero plans generated** (the
//!     parked frontier resumed, exactly as in-process);
//! (b) **admission decisions round-trip typed**: a `Degraded{schedule}`
//!     and a `Rejected(Overloaded)` arrive at the remote client as the
//!     same [`AdmissionResponse`] values the in-process front returns;
//! (c) **bit-exact reassembly**: the client-side [`SessionView`], folded
//!     from delta-streamed events, is `bits_eq` with the server-side
//!     frontier — order and cost bits included.

use moqo::core::RejectReason;
use moqo::prelude::*;
use moqo::serve::TicketStatus;
use std::sync::Arc;
use std::time::{Duration, Instant};

const IDLE: Duration = Duration::from_secs(120);

fn spec() -> Arc<QuerySpec> {
    Arc::new(moqo::query::testkit::chain_query(4, 75_000))
}

fn schedule() -> ResolutionSchedule {
    ResolutionSchedule::linear(3, 1.05, 0.5)
}

fn serve_config(max_live: usize, policy: AdmissionPolicy) -> ServeConfig {
    ServeConfig {
        shard: ShardConfig {
            shards: 2,
            engine: EngineConfig {
                workers: 2,
                ..EngineConfig::default()
            },
            rebalance_headroom: 8,
        },
        admission: AdmissionConfig { max_live, policy },
        ..ServeConfig::default()
    }
}

/// Drives one full session over TCP: submit, drain the auto-refined
/// ladder, cancel, return the final client view and the server ticket id.
fn run_session(addr: std::net::SocketAddr, spec: Arc<QuerySpec>) -> (moqo::core::SessionView, u64) {
    let mut client = NetClient::connect(addr).expect("connect over loopback");
    let response = client
        .submit(SessionRequest::new(spec), IDLE)
        .expect("well-formed request");
    assert_eq!(
        response,
        AdmissionResponse::Admitted,
        "typed admission must round-trip"
    );
    let deadline = Instant::now() + IDLE;
    while client.view().invocations < schedule().levels() as u64
        || client.view().first_report.is_none()
    {
        assert!(Instant::now() < deadline, "ladder never saturated");
        client.recv(IDLE).expect("healthy event stream");
    }
    assert!(!client.view().frontier.is_empty(), "no frontier streamed");
    client.command(SessionCommand::Cancel).expect("send cancel");
    let view = client.wait_finished(IDLE).expect("terminal event").clone();
    (view, client.server_ticket().expect("admitted ticket"))
}

fn main() {
    let model: SharedCostModel = Arc::new(StandardCostModel::paper_metrics());

    // --- One server, cold then warm, over real loopback TCP. ---
    let server = Arc::new(MoqoServer::new(
        model.clone(),
        schedule(),
        serve_config(64, AdmissionPolicy::Reject),
    ));
    let registry = Arc::new(ModelRegistry::with_default(model.clone()));
    let net = NetServer::bind(server, registry, NetConfig::default()).expect("bind 127.0.0.1:0");
    let addr = net.local_addr();
    println!("net front listening on {addr}");

    // Cold pass: plans are generated from scratch.
    let (cold_view, cold_ticket) = run_session(addr, spec());
    let cold_first = cold_view.first_report.as_ref().expect("first report");
    assert!(
        cold_first.plans_generated > 0,
        "cold start must generate plans"
    );

    // (c) The reassembled client view is bit-exact with the server-side
    // frontier for the same ticket.
    match net
        .moqo()
        .poll(Ticket::from_u64(cold_ticket))
        .expect("closed tickets stay queryable")
    {
        TicketStatus::Active { view, .. } => {
            assert!(
                cold_view.frontier.bits_eq(&view.frontier),
                "client view diverged from the server-side frontier"
            );
            assert_eq!(cold_view.epoch, view.epoch);
            assert_eq!(cold_view.invocations, view.invocations);
            println!(
                "ok: client view bits_eq server view ({} frontier points, {} events)",
                view.frontier.len(),
                view.epoch
            );
        }
        other => panic!("expected queryable ticket, got {other:?}"),
    }

    // (a) Warm repeat over a fresh connection: the cancelled session
    // parked its frontier; the repeat's first invocation generates zero
    // plans — across the wire, same as in-process.
    let (warm_view, _) = run_session(addr, spec());
    let warm_first = warm_view.first_report.as_ref().expect("first report");
    assert_eq!(
        warm_first.plans_generated, 0,
        "warm repeat must resume the parked frontier"
    );
    assert!(
        cold_view.frontier.bits_eq(&warm_view.frontier),
        "warm frontier must match the cold one bit for bit"
    );
    println!(
        "ok: warm repeat over TCP started with 0 plans generated (cold start generated {})",
        cold_first.plans_generated
    );
    let stats = net.stats();
    println!(
        "net stats: {} connections, {} frames in, {} frames out",
        stats.accepted, stats.frames_in, stats.frames_out
    );
    net.shutdown();

    // --- (b) Overload answers round-trip as typed protocol values. ---
    let degrade_ladder = ResolutionSchedule::linear(0, 1.5, 0.5);
    let server = Arc::new(MoqoServer::new(
        model.clone(),
        schedule(),
        serve_config(
            1,
            AdmissionPolicy::Degrade {
                schedule: degrade_ladder.clone(),
                hard_cap: 2,
            },
        ),
    ));
    let registry = Arc::new(ModelRegistry::with_default(model.clone()));
    let net = NetServer::bind(server, registry, NetConfig::default()).expect("bind 127.0.0.1:0");
    let addr = net.local_addr();

    // First client fills the one full-resolution slot (and stays live).
    let mut full = NetClient::connect(addr).expect("connect");
    let response = full
        .submit(SessionRequest::new(spec()), IDLE)
        .expect("admitted");
    assert_eq!(response, AdmissionResponse::Admitted);

    // Second client is admitted under the degraded ladder — the exact
    // schedule arrives typed.
    let mut degraded = NetClient::connect(addr).expect("connect");
    let response = degraded
        .submit(
            SessionRequest::new(Arc::new(moqo::query::testkit::star_query(3, 40_000))),
            IDLE,
        )
        .expect("degraded admission is an Ok response");
    match &response {
        AdmissionResponse::Degraded { schedule } => {
            assert_eq!(schedule, &degrade_ladder, "ladder must round-trip bit-true");
        }
        other => panic!("expected Degraded, got {other:?}"),
    }

    // Third client is over the hard cap: typed rejection.
    let mut rejected = NetClient::connect(addr).expect("connect");
    let response = rejected
        .submit(
            SessionRequest::new(Arc::new(moqo::query::testkit::chain_query(2, 10_000))),
            IDLE,
        )
        .expect("rejection is an Ok response, not a dead socket");
    match response {
        AdmissionResponse::Rejected(RejectReason::Overloaded { live }) => {
            assert_eq!(live, 2, "both live sessions counted at decision time");
        }
        other => panic!("expected Rejected(Overloaded), got {other:?}"),
    }
    println!("ok: Degraded {{schedule}} and Rejected(Overloaded) round-tripped typed");

    // The degraded session still serves a frontier (coarser ladder).
    let deadline = Instant::now() + IDLE;
    while degraded.view().frontier.is_empty() {
        assert!(Instant::now() < deadline, "degraded session never refined");
        degraded.recv(IDLE).expect("healthy stream");
    }
    for client in [&mut full, &mut degraded] {
        client.command(SessionCommand::Cancel).expect("send cancel");
        client.wait_finished(IDLE).expect("terminal event");
    }
    net.shutdown();
    println!("ok: network serving front verified end to end");
}
