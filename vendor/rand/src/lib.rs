//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The workspace builds in environments without a crates.io mirror, so the
//! handful of `rand` features the code base relies on — seedable RNGs,
//! `gen_range` over numeric ranges, and `gen_bool` — are implemented here
//! behind the same paths (`rand::rngs::StdRng`, `rand::{Rng, SeedableRng}`).
//!
//! The generator is a SplitMix64: not cryptographic, but statistically
//! solid for test-data generation and fully deterministic per seed. Streams
//! differ from upstream `rand`; callers only rely on same-seed determinism.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Avoid the all-zero fixed point and decorrelate small seeds.
            Self {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// A range that knows how to sample a uniform value from an RNG.
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is negligible for the test-sized spans used
                // here (span << 2^64).
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u32> = (0..16).map(|_| a.gen_range(0..1000)).collect();
        let vc: Vec<u32> = (0..16).map(|_| c.gen_range(0..1000)).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let f = rng.gen_range(-6.0..-1.0);
            assert!((-6.0..-1.0).contains(&f));
            let i = rng.gen_range(40..240);
            assert!((40..240).contains(&i));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_rough_frequency() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits={hits}");
    }
}
