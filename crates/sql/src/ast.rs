//! Abstract syntax for the supported SQL subset.

/// A column reference `alias.column` (the alias is mandatory in the
/// subset to keep name resolution unambiguous with self-joins).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnRef {
    /// Table alias the column belongs to.
    pub table: String,
    /// Column name.
    pub column: String,
}

/// A table in the `FROM` list, with its alias (defaults to the table
/// name).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableRef {
    /// Catalog table name.
    pub table: String,
    /// Alias used in predicates.
    pub alias: String,
}

/// Comparison operators for filter predicates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Comparison {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A literal value in a predicate.
#[derive(Clone, Debug, PartialEq)]
pub enum Literal {
    /// Numeric literal.
    Number(f64),
    /// String literal.
    String(String),
}

/// One conjunct of the `WHERE` clause.
#[derive(Clone, Debug, PartialEq)]
pub enum Condition {
    /// Equi-join predicate `a.x = b.y` between two different tables.
    Join(ColumnRef, ColumnRef),
    /// Local filter `a.x <op> literal`.
    Filter(ColumnRef, Comparison, Literal),
    /// `a.x IN (SELECT …)` — decomposed into a separate query block.
    InSubquery(ColumnRef, Box<SelectStatement>),
    /// `EXISTS (SELECT …)` — decomposed into a separate query block.
    Exists(Box<SelectStatement>),
}

/// A parsed `SELECT` statement (one query block plus nested blocks).
#[derive(Clone, Debug, PartialEq)]
pub struct SelectStatement {
    /// Projected columns; empty means `SELECT *`.
    pub projections: Vec<ColumnRef>,
    /// `FROM` list.
    pub from: Vec<TableRef>,
    /// `WHERE` conjuncts (empty for no `WHERE` clause).
    pub conditions: Vec<Condition>,
}

impl SelectStatement {
    /// Resolves an alias to its position in the `FROM` list.
    pub fn alias_position(&self, alias: &str) -> Option<usize> {
        self.from
            .iter()
            .position(|t| t.alias.eq_ignore_ascii_case(alias))
    }

    /// The nested sub-query statements, in syntactic order.
    pub fn subqueries(&self) -> Vec<&SelectStatement> {
        self.conditions
            .iter()
            .filter_map(|c| match c {
                Condition::InSubquery(_, s) | Condition::Exists(s) => Some(s.as_ref()),
                _ => None,
            })
            .collect()
    }
}

impl std::fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.table, self.column)
    }
}

impl std::fmt::Display for Comparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Comparison::Eq => "=",
            Comparison::Neq => "<>",
            Comparison::Lt => "<",
            Comparison::Le => "<=",
            Comparison::Gt => ">",
            Comparison::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

impl std::fmt::Display for Literal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Literal::Number(n) => write!(f, "{n}"),
            Literal::String(s) => write!(f, "'{s}'"),
        }
    }
}

impl std::fmt::Display for Condition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Condition::Join(l, r) => write!(f, "{l} = {r}"),
            Condition::Filter(c, op, lit) => write!(f, "{c} {op} {lit}"),
            Condition::InSubquery(c, sub) => write!(f, "{c} IN ({sub})"),
            Condition::Exists(sub) => write!(f, "EXISTS ({sub})"),
        }
    }
}

/// Renders the statement back to parseable SQL (used by the round-trip
/// property tests).
impl std::fmt::Display for SelectStatement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SELECT ")?;
        if self.projections.is_empty() {
            write!(f, "*")?;
        } else {
            for (i, p) in self.projections.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{p}")?;
            }
        }
        write!(f, " FROM ")?;
        for (i, t) in self.from.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", t.table)?;
            if t.alias != t.table {
                write!(f, " {}", t.alias)?;
            }
        }
        if !self.conditions.is_empty() {
            write!(f, " WHERE ")?;
            for (i, c) in self.conditions.iter().enumerate() {
                if i > 0 {
                    write!(f, " AND ")?;
                }
                write!(f, "{c}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alias_resolution_is_case_insensitive() {
        let stmt = SelectStatement {
            projections: vec![],
            from: vec![
                TableRef {
                    table: "orders".into(),
                    alias: "O".into(),
                },
                TableRef {
                    table: "lineitem".into(),
                    alias: "l".into(),
                },
            ],
            conditions: vec![],
        };
        assert_eq!(stmt.alias_position("o"), Some(0));
        assert_eq!(stmt.alias_position("L"), Some(1));
        assert_eq!(stmt.alias_position("x"), None);
    }
}
