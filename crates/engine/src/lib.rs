//! moqo-engine — the concurrent multi-session serving layer.
//!
//! The paper's interaction model (Figure 1 / Algorithm 1) is a *session*:
//! a user watches an anytime Pareto frontier refine between optimizer
//! invocations, drags cost bounds, and eventually clicks a plan. A real
//! deployment serves **many** such sessions at once. This crate provides
//! that layer on top of the owned-state optimizer core:
//!
//! * [`SessionManager`] — owns concurrent interactive sessions keyed by
//!   [`SessionId`], advances them on a worker pool with round-robin,
//!   budgeted time slices (each tick is one incremental `optimize`
//!   invocation), and routes [`UserEvent`]s into the right session.
//! * [`QueryFingerprint`] — canonical identity of a query: join-graph
//!   shape + catalog statistics + metric set, independent of display
//!   names.
//! * [`FrontierCache`] — parked optimizers of finished sessions, keyed by
//!   fingerprint. A repeated query starts from the warm frontier: its
//!   first invocation reports `plans_generated == 0`.
//! * [`PlanCache`] — shared `Arc<EnumerationPlan>`s keyed by [`ShapeKey`],
//!   the shape component of the fingerprint. Structurally *similar*
//!   queries (same join-graph shape, any statistics) walk one precomputed
//!   enumeration plane — the first step of cross-session sharing beyond
//!   exact repeats.
//! * [`SessionConfig`] — per-session overrides: initial bounds, a
//!   resolution-ladder override for cold starts (the degrade-admission
//!   hook of the `moqo-serve` front), and the refinement budget.
//!
//! Serving layers build on three hooks: [`SessionManager::watch`]
//! (per-session status push channels, so no caller parks on the engine's
//! condvar), [`SessionManager::park`] / [`SessionManager::for_each_parked`]
//! (frontier persistence across restarts), and
//! [`SessionManager::live_sessions`] (the load figure admission control
//! and shard routing balance on).
//!
//! ```
//! use moqo_cost::ResolutionSchedule;
//! use moqo_costmodel::StandardCostModel;
//! use moqo_engine::{EngineConfig, SessionManager};
//! use moqo_query::testkit;
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! let manager = SessionManager::new(
//!     Arc::new(StandardCostModel::paper_metrics()),
//!     ResolutionSchedule::linear(3, 1.05, 0.5),
//!     EngineConfig::default(),
//! );
//! let a = manager.submit(Arc::new(testkit::chain_query(2, 10_000)));
//! let b = manager.submit(Arc::new(testkit::chain_query(3, 10_000)));
//! assert!(manager.wait_idle(Duration::from_secs(30)));
//! assert!(!manager.frontier(a).unwrap().is_empty());
//! assert!(!manager.frontier(b).unwrap().is_empty());
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod fingerprint;
pub mod manager;
pub mod plans;

pub use cache::{CacheStats, FrontierCache};
pub use fingerprint::QueryFingerprint;
pub use manager::{EngineConfig, SessionConfig, SessionId, SessionManager, SessionStatus};
pub use plans::{PlanCache, PlanCacheStats};

// Re-exported so engine users can name the shared-plan vocabulary without
// a direct moqo-query dependency.
pub use moqo_query::{EnumerationPlan, ShapeKey};

// Re-exported so engine users can speak the session vocabulary without a
// direct moqo-core dependency.
pub use moqo_core::{StepOutcome, UserEvent};
