//! Physical operators.

/// How a base table is scanned.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ScanMethod {
    /// Read every row.
    Full,
    /// Read a Bernoulli sample of the table.
    ///
    /// The sampling rate is stored in per-mille (`1..=999`) so the variant
    /// stays `Eq + Hash`. Sampling reduces execution time proportionally
    /// but introduces result error (`1 - precision`); the cost model maps
    /// the rate to both metrics. Following the paper's footnote 4, small
    /// tables admit no (or fewer) sampling strategies.
    Sampled {
        /// Sampling rate in per-mille (`500` = 50 %).
        rate_pm: u16,
    },
}

impl ScanMethod {
    /// The fraction of rows read, in `(0, 1]`.
    #[inline]
    pub fn fraction(self) -> f64 {
        match self {
            ScanMethod::Full => 1.0,
            ScanMethod::Sampled { rate_pm } => {
                debug_assert!((1..1000).contains(&rate_pm));
                rate_pm as f64 / 1000.0
            }
        }
    }
}

/// Join algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum JoinAlgo {
    /// Build a hash table on the right (smaller) input, probe with the left.
    Hash,
    /// Sort both inputs on the join key and merge. Produces output sorted
    /// on the join key — an interesting order.
    SortMerge,
    /// Block nested-loop join; cheap for tiny inputs, quadratic otherwise.
    NestedLoop,
}

impl JoinAlgo {
    /// All supported algorithms, in a fixed enumeration order.
    pub const ALL: [JoinAlgo; 3] = [JoinAlgo::Hash, JoinAlgo::SortMerge, JoinAlgo::NestedLoop];
}

/// A physical plan operator.
///
/// Scans carry the *query-table position* they read (index into the join
/// graph's table list), not a catalog id, because the same catalog table
/// can occur at several positions (self-joins).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Operator {
    /// Scan of the base table at a query position.
    Scan {
        /// Query-table position being scanned.
        position: u16,
        /// Scan method (full or sampled).
        method: ScanMethod,
    },
    /// Join of the two child plans.
    Join {
        /// Join algorithm.
        algo: JoinAlgo,
        /// Degree of parallelism (reserved cores for this operator),
        /// `>= 1`.
        dop: u16,
    },
}

impl Operator {
    /// Convenience constructor for a full scan.
    #[inline]
    pub fn full_scan(position: usize) -> Self {
        Operator::Scan {
            position: position as u16,
            method: ScanMethod::Full,
        }
    }

    /// Convenience constructor for a sampled scan.
    #[inline]
    pub fn sampled_scan(position: usize, rate_pm: u16) -> Self {
        assert!((1..1000).contains(&rate_pm), "rate must be 1..=999 ‰");
        Operator::Scan {
            position: position as u16,
            method: ScanMethod::Sampled { rate_pm },
        }
    }

    /// Convenience constructor for a join.
    #[inline]
    pub fn join(algo: JoinAlgo, dop: u16) -> Self {
        assert!(dop >= 1, "degree of parallelism must be at least 1");
        Operator::Join { algo, dop }
    }

    /// True for scan operators.
    #[inline]
    pub fn is_scan(&self) -> bool {
        matches!(self, Operator::Scan { .. })
    }

    /// True for join operators.
    #[inline]
    pub fn is_join(&self) -> bool {
        matches!(self, Operator::Join { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_fractions() {
        assert_eq!(ScanMethod::Full.fraction(), 1.0);
        assert!((ScanMethod::Sampled { rate_pm: 250 }.fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn constructors() {
        assert!(Operator::full_scan(3).is_scan());
        assert!(Operator::join(JoinAlgo::Hash, 4).is_join());
        let s = Operator::sampled_scan(1, 100);
        match s {
            Operator::Scan {
                position,
                method: ScanMethod::Sampled { rate_pm },
            } => {
                assert_eq!(position, 1);
                assert_eq!(rate_pm, 100);
            }
            _ => panic!("wrong operator shape"),
        }
    }

    #[test]
    #[should_panic(expected = "rate must be")]
    fn sampled_scan_rejects_full_rate() {
        Operator::sampled_scan(0, 1000);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn join_rejects_zero_dop() {
        Operator::join(JoinAlgo::Hash, 0);
    }

    #[test]
    fn join_algo_enumeration_is_complete() {
        assert_eq!(JoinAlgo::ALL.len(), 3);
    }
}
