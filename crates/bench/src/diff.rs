//! `repro diff`: compare two `BENCH_*.json` envelopes.
//!
//! The committed `BENCH_*.json` files are the perf trajectory's anchor
//! points; this module is the gate that makes the trajectory
//! actionable. It parses two envelopes (see [`crate::harness`] for the
//! writer), matches variants by `(section, label)` and metrics by key,
//! and turns each numeric delta into a verdict using the envelope's own
//! `directions` map — no per-experiment knowledge needed. A metric
//! regresses when it moves in its worse direction by more than
//! `tolerance` (relative, so `0.5` allows +50 % on a lower-is-better
//! metric). Info-direction metrics and strings/bools are reported but
//! never gate. A variant or metric present in the old file but missing
//! from the new one is *schema drift* and fails the diff; new metrics
//! appearing are fine (the trajectory grows).

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::Path;

use crate::benchjson::Json;
use crate::harness::SCHEMA_VERSION;

/// Outcome of comparing two envelopes.
#[derive(Clone, Debug, Default)]
pub struct DiffOutcome {
    /// Human report lines, one per compared metric.
    pub lines: Vec<String>,
    /// Metrics that moved past tolerance in their worse direction.
    pub regressions: Vec<String>,
    /// Structural mismatches: schema version / experiment / fast-flag
    /// mismatch, or variants/metrics that disappeared.
    pub drift: Vec<String>,
}

impl DiffOutcome {
    /// True when the gate should fail (nonzero exit).
    pub fn failed(&self) -> bool {
        !self.regressions.is_empty() || !self.drift.is_empty()
    }

    /// Renders the full human report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            let _ = writeln!(out, "{line}");
        }
        if !self.drift.is_empty() {
            let _ = writeln!(out, "\nschema drift:");
            for d in &self.drift {
                let _ = writeln!(out, "  {d}");
            }
        }
        if !self.regressions.is_empty() {
            let _ = writeln!(out, "\nregressions:");
            for r in &self.regressions {
                let _ = writeln!(out, "  {r}");
            }
        } else if self.drift.is_empty() {
            let _ = writeln!(out, "\nno regressions");
        }
        out
    }
}

/// Reads and compares two envelope files. `Err` means a file could not
/// be read or parsed at all (usage error, exit 2 at the CLI); a clean
/// parse with structural mismatches comes back as drift in the outcome.
pub fn diff_files(old: &Path, new: &Path, tolerance: f64) -> Result<DiffOutcome, String> {
    let read = |p: &Path| -> Result<Json, String> {
        let text = std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))?;
        Json::parse(&text).map_err(|e| format!("{}: {e}", p.display()))
    };
    Ok(diff_envelopes(&read(old)?, &read(new)?, tolerance))
}

/// Compares two parsed envelopes.
pub fn diff_envelopes(old: &Json, new: &Json, tolerance: f64) -> DiffOutcome {
    let mut out = DiffOutcome::default();
    check_meta(old, new, &mut out);

    // Directions: the new file's map wins (it reflects the current
    // writer); keys only the old file knows keep their old direction.
    let mut directions: HashMap<String, String> = HashMap::new();
    for source in [old, new] {
        if let Some(Json::Obj(fields)) = source.get("directions") {
            for (k, v) in fields {
                if let Some(d) = v.as_str() {
                    directions.insert(k.clone(), d.to_string());
                }
            }
        }
    }

    let old_variants = variant_map(old);
    let new_variants = variant_map(new);
    for (id, old_metrics) in &old_variants {
        let Some(new_metrics) = new_variants.iter().find(|(k, _)| k == id).map(|(_, m)| m) else {
            out.drift
                .push(format!("variant {id} missing from new file"));
            continue;
        };
        for (key, old_value) in old_metrics {
            let Some(new_value) = new_metrics.iter().find(|(k, _)| k == key).map(|(_, v)| v) else {
                out.drift
                    .push(format!("metric {id} {key} missing from new file"));
                continue;
            };
            compare_metric(
                id,
                key,
                old_value,
                new_value,
                directions.get(key).map(String::as_str),
                tolerance,
                &mut out,
            );
        }
    }
    out
}

fn check_meta(old: &Json, new: &Json, out: &mut DiffOutcome) {
    for (field, want_equal) in [
        ("schema_version", true),
        ("experiment", true),
        ("fast", true),
    ] {
        let (o, n) = (old.get(field), new.get(field));
        if o.is_none() || n.is_none() {
            out.drift
                .push(format!("field {field} missing from an envelope"));
            continue;
        }
        if want_equal && o != n {
            out.drift.push(format!(
                "{field} mismatch: {:?} vs {:?}",
                o.unwrap(),
                n.unwrap()
            ));
        }
    }
    if let Some(Json::Int(v)) = old.get("schema_version") {
        if *v != SCHEMA_VERSION {
            out.drift.push(format!(
                "old file has schema_version {v}, expected {SCHEMA_VERSION}"
            ));
        }
    }
}

type MetricList = Vec<(String, Json)>;

fn variant_map(envelope: &Json) -> Vec<(String, MetricList)> {
    let mut map = Vec::new();
    let Some(variants) = envelope.get("variants").and_then(Json::as_arr) else {
        return map;
    };
    for v in variants {
        let section = v.get("section").and_then(Json::as_str).unwrap_or("");
        let label = v.get("label").and_then(Json::as_str).unwrap_or("");
        let id = if section.is_empty() {
            label.to_string()
        } else {
            format!("{section}/{label}")
        };
        let metrics = match v.get("metrics") {
            Some(Json::Obj(fields)) => fields.clone(),
            _ => Vec::new(),
        };
        map.push((id, metrics));
    }
    map
}

fn compare_metric(
    id: &str,
    key: &str,
    old: &Json,
    new: &Json,
    direction: Option<&str>,
    tolerance: f64,
    out: &mut DiffOutcome,
) {
    let (Some(o), Some(n)) = (old.as_f64(), new.as_f64()) else {
        // Strings / bools / nulls: report changes, never gate.
        if old != new {
            out.lines.push(format!("{id} {key}: {old:?} -> {new:?}"));
        }
        return;
    };
    let rel = if o != 0.0 {
        (n - o) / o.abs()
    } else if n == 0.0 {
        0.0
    } else {
        f64::INFINITY
    };
    let gated = matches!(direction, Some("lower") | Some("higher"));
    let worse = match direction {
        Some("lower") => n > o,
        Some("higher") => n < o,
        _ => false,
    };
    // Relative move in the worse direction; `old == 0` moving to
    // nonzero on a gated metric is an unbounded regression (e.g. a
    // warm phase that used to generate zero plans no longer does).
    let regressed = gated
        && worse
        && (o == 0.0 || n == 0.0 || {
            let ratio = match direction {
                Some("lower") => n / o,
                _ => o / n,
            };
            ratio > 1.0 + tolerance
        });
    let verdict = if regressed {
        "  REGRESSION"
    } else if gated && worse {
        "  (within tolerance)"
    } else {
        ""
    };
    let line = format!(
        "{id} {key}: {o} -> {n} ({rel:+.1}%){verdict}",
        rel = rel * 100.0
    );
    if regressed {
        out.regressions.push(line.clone());
    }
    out.lines.push(line);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{Experiment, ExperimentReport};

    fn toy(p50: f64, throughput: f64, warm_plans: u64) -> ExperimentReport {
        Experiment::new("toy", true, || ())
            .variant("phases", "cold", move |_, t| {
                t.num_lower("p50_us", p50);
                t.num_higher("throughput", throughput);
                t.int("sessions", 48);
            })
            .variant("phases", "warm", move |_, t| {
                t.int_lower("plans", warm_plans);
            })
            .run()
    }

    #[test]
    fn identical_envelopes_diff_clean() {
        let e = toy(100.0, 500.0, 0).envelope();
        let outcome = diff_envelopes(&e, &e, 0.25);
        assert!(!outcome.failed(), "{}", outcome.render());
        assert!(outcome.render().contains("no regressions"));
    }

    #[test]
    fn injected_regression_is_caught_and_tolerance_respected() {
        let old = toy(100.0, 500.0, 0).envelope();
        let new = toy(150.0, 500.0, 0).envelope();
        // +50 % on a lower-is-better metric: over a 25 % tolerance...
        let tight = diff_envelopes(&old, &new, 0.25);
        assert!(tight.failed());
        assert!(tight.regressions.iter().any(|r| r.contains("p50_us")));
        // ...but within a 100 % tolerance.
        let loose = diff_envelopes(&old, &new, 1.0);
        assert!(!loose.failed(), "{}", loose.render());
        // Improvements never gate, whatever the tolerance.
        let better = diff_envelopes(&new, &old, 0.0);
        assert!(!better.failed());
    }

    #[test]
    fn higher_is_better_metrics_gate_on_drops() {
        let old = toy(100.0, 500.0, 0).envelope();
        let new = toy(100.0, 100.0, 0).envelope();
        let outcome = diff_envelopes(&old, &new, 0.25);
        assert!(outcome.failed());
        assert!(outcome.regressions.iter().any(|r| r.contains("throughput")));
    }

    #[test]
    fn zero_to_nonzero_on_a_gated_counter_always_regresses() {
        let old = toy(100.0, 500.0, 0).envelope();
        let new = toy(100.0, 500.0, 7).envelope();
        // Even an order-of-magnitude tolerance cannot excuse a warm
        // phase that starts generating plans again.
        let outcome = diff_envelopes(&old, &new, 9.0);
        assert!(outcome.failed());
        assert!(outcome.regressions.iter().any(|r| r.contains("plans")));
    }

    #[test]
    fn info_metrics_never_gate() {
        let old = toy(100.0, 500.0, 0).envelope();
        let mut report = toy(100.0, 500.0, 0);
        for v in &mut report.variants {
            for m in &mut v.metrics {
                if m.key == "sessions" {
                    m.value = crate::harness::Value::Int(9999);
                }
            }
        }
        let outcome = diff_envelopes(&old, &report.envelope(), 0.0);
        assert!(!outcome.failed(), "{}", outcome.render());
    }

    #[test]
    fn missing_variants_and_metrics_are_schema_drift() {
        let old = toy(100.0, 500.0, 0).envelope();
        let trimmed = Experiment::new("toy", true, || ())
            .variant("phases", "cold", |_, t| {
                t.num_lower("p50_us", 100.0);
                t.int("sessions", 48);
            })
            .run()
            .envelope();
        let outcome = diff_envelopes(&old, &trimmed, 9.0);
        assert!(outcome.failed());
        assert!(outcome.drift.iter().any(|d| d.contains("warm")));
        assert!(outcome.drift.iter().any(|d| d.contains("throughput")));
    }

    #[test]
    fn experiment_mismatch_is_drift() {
        let old = toy(100.0, 500.0, 0).envelope();
        let other = Experiment::new("other", true, || ()).run().envelope();
        assert!(diff_envelopes(&old, &other, 9.0).failed());
    }
}
