//! Similar-query warm-start experiment (`repro similarity`).
//!
//! Production traffic is rarely byte-identical, so the exact-fingerprint
//! frontier cache alone under-serves it. This experiment measures the two
//! near-miss tiers built on the paper's per-subset incremental state:
//!
//! * **transplant** — recipients share join subgraphs (query prefixes)
//!   with previously finished *donor* queries; their subsets seed from
//!   harvested sub-frontier blobs;
//! * **rebase** — the same queries resubmitted after a statistics
//!   refresh (cardinalities scaled, shape untouched); the parked donor's
//!   plans re-enter as level-0 candidates under the new stats (the
//!   Lemma 7 path: re-pruning known plans is cheaper than regenerating
//!   them).
//!
//! Four phases over identical recipient shapes — `cold`, `exact-warm`,
//! `transplant`, `rebase` — each recording submit→first-frontier latency
//! and the total plans generated per session (summed over the per-slice
//! invocation reports of its watch stream, so each phase counts only its
//! own work even when optimizer state carries across phases).

use moqo_cost::ResolutionSchedule;
use moqo_costmodel::StandardCostModel;
use moqo_engine::EngineConfig;
use moqo_query::{testkit, QuerySpec};
use moqo_serve::{GlobalSessionId, ShardConfig, ShardedEngine};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::harness::{Experiment, ExperimentReport, Trial};
use crate::stats::{Samples, Summary};

fn engine(fast: bool) -> ShardedEngine {
    ShardedEngine::new(
        Arc::new(StandardCostModel::paper_metrics()),
        ResolutionSchedule::linear(if fast { 2 } else { 4 }, 1.02, 0.4),
        ShardConfig {
            shards: 4,
            engine: EngineConfig {
                workers: 2,
                ..EngineConfig::default()
            },
            rebalance_headroom: 8,
        },
    )
}

/// Donor queries: the smaller members of each overlapping family.
pub fn similarity_donors(fast: bool) -> Vec<Arc<QuerySpec>> {
    let ns: &[usize] = if fast { &[4, 5] } else { &[4, 5, 6] };
    let mut specs = Vec::new();
    for &n in ns {
        specs.push(Arc::new(testkit::chain_query(n, 60_000)));
        specs.push(Arc::new(testkit::star_query(n, 90_000)));
    }
    specs
}

/// Recipient queries: larger members of the same families — every donor
/// is an induced-subgraph prefix of its family's recipients, so donor
/// sub-frontiers transplant, while no recipient fingerprint (or shape)
/// equals a donor's.
pub fn similarity_recipients(fast: bool) -> Vec<Arc<QuerySpec>> {
    let ns: &[usize] = if fast { &[6, 7] } else { &[7, 8, 9] };
    let mut specs = Vec::new();
    for &n in ns {
        specs.push(Arc::new(testkit::chain_query(n, 60_000)));
        specs.push(Arc::new(testkit::star_query(n, 90_000)));
    }
    specs
}

/// Figures extracted from one pass (priming passes discard them).
struct PhaseFigures {
    sessions: usize,
    us: Samples,
    plans_generated: u64,
    zero_plan_starts: u64,
    rebased_sessions: u64,
    transplanted_sessions: u64,
    seeded_subsets: u64,
}

impl PhaseFigures {
    fn record(self, trial: &mut Trial) {
        trial.int("sessions", self.sessions as u64);
        trial.summary_us("", Summary::of_or_zero(&self.us));
        trial.int_lower("plans_generated", self.plans_generated);
        trial.int("zero_plan_starts", self.zero_plan_starts);
        trial.int("rebased_sessions", self.rebased_sessions);
        trial.int("transplanted_sessions", self.transplanted_sessions);
        trial.int("seeded_subsets", self.seeded_subsets);
    }
}

/// Submits `specs`, recording submit→first-frontier latency per session
/// and folding each session's full watch stream to sum the plans its
/// invocations generated within this phase. Sessions are finished at the
/// end of the phase (parking their frontiers and harvesting their
/// sub-frontiers for the next phase, where applicable).
fn run_phase(eng: &ShardedEngine, specs: &[Arc<QuerySpec>]) -> PhaseFigures {
    let mut watchers: Vec<(
        GlobalSessionId,
        Instant,
        std::sync::mpsc::Receiver<moqo_serve::SessionEvent>,
        moqo_serve::SessionView,
    )> = Vec::new();
    for spec in specs {
        let t0 = Instant::now();
        let (gid, _) = eng.submit(spec.clone());
        let rx = eng.watch(gid).expect("fresh session");
        watchers.push((gid, t0, rx, moqo_serve::SessionView::default()));
    }
    let mut latency = vec![None::<Duration>; watchers.len()];
    let mut plans = vec![0u64; watchers.len()];
    let mut zero_plan_starts = 0u64;
    let deadline = Instant::now() + Duration::from_secs(600);
    while latency.iter().any(Option::is_none) {
        assert!(Instant::now() < deadline, "similarity experiment stalled");
        let mut progressed = false;
        for (i, (_, t0, rx, view)) in watchers.iter_mut().enumerate() {
            if latency[i].is_some() {
                continue;
            }
            while let Ok(event) = rx.try_recv() {
                progressed = true;
                if let Some(r) = &event.report {
                    plans[i] += r.plans_generated;
                }
                view.fold(&event).expect("ordered watch stream");
                if !view.frontier.is_empty() && latency[i].is_none() {
                    latency[i] = Some(t0.elapsed());
                    if view
                        .first_report
                        .as_ref()
                        .is_some_and(|r| r.plans_generated == 0)
                    {
                        zero_plan_starts += 1;
                    }
                    break;
                }
            }
        }
        if !progressed {
            std::thread::yield_now();
        }
    }
    assert!(eng.wait_idle(Duration::from_secs(600)));
    // Drain the remainder of each stream: the ladder kept refining after
    // the first frontier, and that work belongs to this phase too.
    let mut rebased_sessions = 0u64;
    let mut transplanted_sessions = 0u64;
    let mut seeded_subsets = 0u64;
    for (i, (gid, _, rx, _)) in watchers.iter().enumerate() {
        while let Ok(event) = rx.try_recv() {
            if let Some(r) = &event.report {
                plans[i] += r.plans_generated;
            }
        }
        let s = eng.status(*gid).expect("session still tracked");
        if s.rebased {
            rebased_sessions += 1;
        }
        if s.seeded_subsets > 0 {
            transplanted_sessions += 1;
            seeded_subsets += u64::from(s.seeded_subsets);
        }
        eng.finish(*gid);
    }
    let us: Samples = latency
        .into_iter()
        .map(|d| d.expect("measured").as_secs_f64() * 1e6)
        .collect();
    PhaseFigures {
        sessions: specs.len(),
        us,
        plans_generated: plans.iter().sum(),
        zero_plan_starts,
        rebased_sessions,
        transplanted_sessions,
        seeded_subsets,
    }
}

/// Shared state across the four variants: the workloads plus the engine
/// of the moment (fresh engines replace it between warm-start tiers).
struct SimilarityState {
    fast: bool,
    donors: Vec<Arc<QuerySpec>>,
    recipients: Vec<Arc<QuerySpec>>,
    engine: ShardedEngine,
}

/// Runs the four phases `cold`, `exact-warm`, `transplant`, `rebase`.
pub fn similarity_experiment(fast: bool) -> ExperimentReport {
    Experiment::new("similarity", fast, move || SimilarityState {
        fast,
        donors: similarity_donors(fast),
        recipients: similarity_recipients(fast),
        engine: engine(fast),
    })
    .title("similar-query warm starts: exact, transplant, and rebase tiers")
    // Phase 1+2: one engine; the recipients run cold, then resubmit as
    // exact repeats against their own parked frontiers.
    .variant("warm-start tiers", "cold", |s, t| {
        run_phase(&s.engine, &s.recipients).record(t);
    })
    .variant("warm-start tiers", "exact-warm", |s, t| {
        run_phase(&s.engine, &s.recipients).record(t);
    })
    // Phase 3: a fresh engine that has only ever seen the *donors* — the
    // recipients' fingerprints all miss, but their shared subsets seed
    // from the harvested donor sub-frontiers.
    .variant("warm-start tiers", "transplant", |s, t| {
        s.engine = engine(s.fast);
        run_phase(&s.engine, &s.donors);
        run_phase(&s.engine, &s.recipients).record(t);
    })
    // Phase 4: a fresh engine primed with the recipients under *stale*
    // statistics, then replayed under a 5% cardinality drift — exact
    // fingerprints miss, the cardinality-blind rebase tier hits.
    .variant("warm-start tiers", "rebase", |s, t| {
        s.engine = engine(s.fast);
        run_phase(&s.engine, &s.recipients);
        let drifted: Vec<Arc<QuerySpec>> = s
            .recipients
            .iter()
            .map(|spec| Arc::new(testkit::drift_cardinalities(spec, 1.05)))
            .collect();
        run_phase(&s.engine, &drifted).record(t);
    })
    .conclusion(
        "exact repeats do zero plan work; transplant and rebase recipients \
         generate measurably fewer plans than their cold twins.",
    )
    .run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transplant_and_rebase_beat_cold() {
        let report = similarity_experiment(true);
        let counter = |label: &str, key: &str| report.metric(label, key).unwrap().as_u64().unwrap();
        assert_eq!(counter("cold", "rebased_sessions"), 0);
        assert_eq!(counter("cold", "transplanted_sessions"), 0);
        assert!(counter("cold", "plans_generated") > 0);
        // Exact repeats do no plan work at all.
        assert_eq!(counter("exact-warm", "plans_generated"), 0);
        assert_eq!(
            counter("exact-warm", "zero_plan_starts"),
            counter("exact-warm", "sessions")
        );
        // Every recipient seeds from donor sub-frontiers and generates
        // measurably fewer plans than its cold twin.
        assert_eq!(
            counter("transplant", "transplanted_sessions"),
            counter("transplant", "sessions")
        );
        assert!(counter("transplant", "seeded_subsets") >= counter("transplant", "sessions"));
        assert!(
            counter("transplant", "plans_generated") < counter("cold", "plans_generated"),
            "transplant must beat cold"
        );
        // Every drifted replay rebases and also beats cold regeneration.
        assert_eq!(
            counter("rebase", "rebased_sessions"),
            counter("rebase", "sessions")
        );
        assert!(
            counter("rebase", "plans_generated") < counter("cold", "plans_generated"),
            "rebase must beat cold"
        );
    }
}
