//! Fingerprint-sharded session placement.
//!
//! One [`SessionManager`] saturates at some number of concurrent sessions:
//! every submission, event, and slice check-in crosses its single state
//! lock, and its `FrontierCache` / `PlanCache` warm exactly the queries it
//! has seen. [`ShardedEngine`] runs N independent managers and routes each
//! submission by its [`QueryFingerprint`] hash, so
//!
//! * lock traffic divides by N — shards never share state;
//! * a *repeated* query deterministically lands on the shard whose
//!   frontier cache already parks its optimizer (a warm hit generates
//!   zero plans on the first invocation);
//! * *structurally similar* queries land on the shard whose plan cache
//!   already holds their enumeration plane (fingerprints embed the shape,
//!   so equal shapes with equal statistics hash together; equal shapes
//!   with different statistics spread, which is what per-shard plan
//!   caches tolerate well — plans are cheap to share, frontiers are not).
//!
//! The router is **warmth-aware and rebalance-aware**: a fingerprint whose
//! home shard parks its frontier always goes home (moving it would forfeit
//! the warm state), while a *cold* fingerprint may be diverted to the
//! least-loaded shard when its home shard is overloaded by more than
//! [`ShardConfig::rebalance_headroom`] sessions. Home placement is a pure
//! function of fingerprint and shard count, so two engines with equal
//! shard counts agree on every home — the property that lets a restarted
//! process re-park restored frontiers where future submissions will look.

use moqo_core::protocol::{ProtocolError, SessionCommand, SessionEvent, SessionRequest};
use moqo_core::{FrontierSnapshot, IamaOptimizer};
use moqo_cost::{Bounds, ResolutionSchedule};
use moqo_costmodel::{CostModel, SharedCostModel};
use moqo_engine::{
    CacheStats, EngineConfig, PlanCacheStats, QueryFingerprint, RebaseKey, SessionId,
    SessionManager, SessionStatus, SubFrontierCache, SubFrontierCacheStats,
};
use moqo_query::QuerySpec;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Tunables of the sharded serving front.
#[derive(Clone, Debug)]
pub struct ShardConfig {
    /// Number of independent [`SessionManager`] shards. At least 1.
    pub shards: usize,
    /// Engine configuration applied to every shard (worker count, cache
    /// capacity, slice budget, ...).
    pub engine: EngineConfig,
    /// How many live sessions a cold submission's home shard may exceed
    /// the least-loaded shard by before the router diverts the submission
    /// there. Warm submissions are never diverted. `0` disables
    /// rebalancing (strict hash placement).
    pub rebalance_headroom: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            engine: EngineConfig::default(),
            rebalance_headroom: 8,
        }
    }
}

/// A session address within a [`ShardedEngine`]: shard plus the shard's
/// local session id.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalSessionId {
    /// The shard owning the session.
    pub shard: usize,
    /// The session id within that shard's manager.
    pub local: SessionId,
}

/// How the router placed a submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteDecision {
    /// Home shard, which already parks a warm frontier for the
    /// fingerprint.
    WarmHome,
    /// A non-home shard parks the warm frontier (a rebalanced session
    /// finished there); the submission follows the warmth.
    WarmRemote {
        /// The fingerprint's hash-home that was bypassed.
        home: usize,
    },
    /// Home shard, which parks no exact frontier but a **rebase donor**:
    /// a frontier of the same shape under drifted catalog cardinalities
    /// (see [`moqo_engine::RebaseKey`]). The session starts from the
    /// donor's plans re-admitted as level-0 candidates.
    RebaseHome,
    /// A non-home shard parks a rebase donor for the fingerprint's shape;
    /// the submission follows it.
    RebaseRemote {
        /// The fingerprint's hash-home that was bypassed.
        home: usize,
    },
    /// Home shard, cold (first sight of the fingerprint, or its frontier
    /// was evicted).
    ColdHome,
    /// Diverted from the overloaded home shard to the least-loaded one.
    Rebalanced {
        /// The home shard the submission was diverted away from.
        from: usize,
    },
}

impl RouteDecision {
    /// True if the decision targets a shard already parking the
    /// fingerprint's frontier.
    pub fn is_warm(self) -> bool {
        matches!(
            self,
            RouteDecision::WarmHome | RouteDecision::WarmRemote { .. }
        )
    }

    /// True if the decision targets a shard parking a rebase donor of the
    /// fingerprint's shape (warm start under drifted statistics).
    pub fn is_rebase(self) -> bool {
        matches!(
            self,
            RouteDecision::RebaseHome | RouteDecision::RebaseRemote { .. }
        )
    }
}

/// Per-shard load and effectiveness snapshot.
#[derive(Clone, Debug)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Admitted, not-yet-finished sessions.
    pub live: usize,
    /// Warm-frontier cache counters.
    pub cache: CacheStats,
    /// Shared enumeration-plan cache counters.
    pub plans: PlanCacheStats,
    /// Submissions routed here warm (frontier already parked).
    pub warm_routed: u64,
    /// Submissions routed here to a rebase donor (same shape, drifted
    /// cardinalities).
    pub rebase_routed: u64,
    /// Submissions routed here cold by hash.
    pub cold_routed: u64,
    /// Cold submissions diverted here from an overloaded home shard.
    pub rebalanced_in: u64,
}

#[derive(Default)]
struct RouteCounters {
    warm: AtomicU64,
    rebase: AtomicU64,
    cold: AtomicU64,
    rebalanced_in: AtomicU64,
}

/// N independent [`SessionManager`]s behind a fingerprint-hash router; see
/// the module docs for the placement policy.
pub struct ShardedEngine {
    shards: Vec<SessionManager>,
    counters: Vec<RouteCounters>,
    model: SharedCostModel,
    schedule: ResolutionSchedule,
    rebalance_headroom: usize,
}

impl ShardedEngine {
    /// Starts `config.shards` managers, each with its own worker pool and
    /// caches.
    pub fn new(model: SharedCostModel, schedule: ResolutionSchedule, config: ShardConfig) -> Self {
        let n = config.shards.max(1);
        // One sub-frontier cache spans all shards: exported sub-frontiers
        // are position- and query-independent immutable blobs, so unlike
        // parked optimizers they are safe (and profitable) to share —
        // a subset harvested on shard 0 seeds a similar query on shard 3.
        let subfrontiers = Arc::new(SubFrontierCache::new(config.engine.subfrontier_capacity));
        let shards = (0..n)
            .map(|_| {
                SessionManager::with_subfrontiers(
                    model.clone(),
                    schedule.clone(),
                    config.engine.clone(),
                    Arc::clone(&subfrontiers),
                )
            })
            .collect();
        Self {
            shards,
            counters: (0..n).map(|_| RouteCounters::default()).collect(),
            model,
            schedule,
            rebalance_headroom: config.rebalance_headroom,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Shared handle to the deployment-wide cost model.
    pub fn model(&self) -> SharedCostModel {
        self.model.clone()
    }

    /// The deployment-wide resolution ladder.
    pub fn schedule(&self) -> &ResolutionSchedule {
        &self.schedule
    }

    /// Canonical fingerprint of a query under this engine's default cost
    /// model — the routing and cache key. Requests with a per-session
    /// model override route under [`ShardedEngine::fingerprint_of`]
    /// instead.
    pub fn fingerprint(&self, spec: &QuerySpec) -> QueryFingerprint {
        QueryFingerprint::of(spec, &self.model)
    }

    /// The fingerprint a request routes and caches under: its query spec
    /// plus its *effective* cost model (the request override if present,
    /// the engine default otherwise).
    pub fn fingerprint_of(&self, request: &SessionRequest) -> QueryFingerprint {
        QueryFingerprint::of(&request.spec, &request.effective_model(&self.model))
    }

    /// The deterministic home shard of a fingerprint: a pure function of
    /// `(fingerprint, shard count)`, identical across engine instances —
    /// restored frontiers parked at home are found by later submissions.
    pub fn home_shard(&self, fp: QueryFingerprint) -> usize {
        (fp.as_u64() % self.shards.len() as u64) as usize
    }

    /// Routes a fingerprint: to parked warmth wherever it lives (home
    /// first), otherwise home — unless home is overloaded and the
    /// fingerprint is cold (nothing warm to forfeit), in which case the
    /// least-loaded shard takes it. Routing without a [`RebaseKey`] skips
    /// the rebase-donor tier; [`ShardedEngine::route_with_rebase`] is the
    /// full policy.
    pub fn route(&self, fp: QueryFingerprint) -> (usize, RouteDecision) {
        self.route_inner(fp, None)
    }

    /// Routes a fingerprint with its cardinality-blind [`RebaseKey`]:
    /// exact warmth wherever it lives (home first), then a **rebase
    /// donor** — a parked frontier of the same shape under drifted
    /// cardinalities — wherever one is parked (home first), then home,
    /// unless home is overloaded, in which case the least-loaded shard
    /// takes the cold submission.
    pub fn route_with_rebase(
        &self,
        fp: QueryFingerprint,
        rebase: RebaseKey,
    ) -> (usize, RouteDecision) {
        self.route_inner(fp, Some(rebase))
    }

    fn route_inner(
        &self,
        fp: QueryFingerprint,
        rebase: Option<RebaseKey>,
    ) -> (usize, RouteDecision) {
        let home = self.home_shard(fp);
        if self.shards[home].has_parked(fp) {
            return (home, RouteDecision::WarmHome);
        }
        // A rebalanced session parks its frontier where it ran; follow it
        // rather than rebuilding from scratch at home.
        if let Some(remote) = self.shards.iter().position(|s| s.has_parked(fp)) {
            return (remote, RouteDecision::WarmRemote { home });
        }
        // No exact frontier anywhere: a shard parking a same-shape
        // frontier under drifted cardinalities still beats a cold start —
        // the manager rebases the donor's plans into the new session.
        if let Some(key) = rebase {
            if self.shards[home].has_rebase_donor(key) {
                return (home, RouteDecision::RebaseHome);
            }
            if let Some(remote) = self.shards.iter().position(|s| s.has_rebase_donor(key)) {
                return (remote, RouteDecision::RebaseRemote { home });
            }
        }
        if self.rebalance_headroom > 0 {
            let home_load = self.shards[home].live_sessions();
            let (coolest, min_load) = self
                .shards
                .iter()
                .enumerate()
                .map(|(i, s)| (i, s.live_sessions()))
                .min_by_key(|&(_, load)| load)
                .expect("at least one shard");
            if coolest != home && home_load >= min_load + self.rebalance_headroom {
                return (coolest, RouteDecision::Rebalanced { from: home });
            }
        }
        (home, RouteDecision::ColdHome)
    }

    /// Admits a session with every default in place.
    pub fn submit(&self, spec: Arc<QuerySpec>) -> (GlobalSessionId, RouteDecision) {
        self.open(SessionRequest::new(spec))
            .expect("a bare request has nothing to validate")
    }

    /// Admits a session from a protocol [`SessionRequest`] (per-session
    /// bounds, schedule, preference, cost model, refinement budget),
    /// routed by its effective fingerprint. Malformed requests are a
    /// typed [`ProtocolError`] at the door.
    pub fn open(
        &self,
        request: SessionRequest,
    ) -> Result<(GlobalSessionId, RouteDecision), ProtocolError> {
        let model = request.effective_model(&self.model);
        request.validate(model.dim())?;
        let fp = self.fingerprint_of(&request);
        let rebase = RebaseKey::of(&request.spec, &model);
        let (shard, decision) = self.route_with_rebase(fp, rebase);
        let counter = &self.counters[shard];
        match decision {
            RouteDecision::WarmHome | RouteDecision::WarmRemote { .. } => {
                counter.warm.fetch_add(1, Ordering::Relaxed)
            }
            RouteDecision::RebaseHome | RouteDecision::RebaseRemote { .. } => {
                counter.rebase.fetch_add(1, Ordering::Relaxed)
            }
            RouteDecision::ColdHome => counter.cold.fetch_add(1, Ordering::Relaxed),
            RouteDecision::Rebalanced { .. } => {
                counter.rebalanced_in.fetch_add(1, Ordering::Relaxed)
            }
        };
        let local = self.shards[shard].open(request)?;
        Ok((GlobalSessionId { shard, local }, decision))
    }

    fn shard(&self, id: GlobalSessionId) -> Option<&SessionManager> {
        self.shards.get(id.shard)
    }

    /// Snapshot of one session's current state.
    pub fn status(&self, id: GlobalSessionId) -> Option<SessionStatus> {
        self.shard(id)?.status(id.local)
    }

    /// The currently visualized frontier of one session.
    pub fn frontier(&self, id: GlobalSessionId) -> Option<FrontierSnapshot> {
        self.shard(id)?.frontier(id.local)
    }

    /// Routes a [`SessionCommand`] to the owning shard's session.
    pub fn command(
        &self,
        id: GlobalSessionId,
        command: SessionCommand,
    ) -> Result<(), ProtocolError> {
        self.shard(id)
            .ok_or(ProtocolError::UnknownSession)?
            .command(id.local, command)
    }

    /// Subscribes to a session's delta-streamed [`SessionEvent`]s (see
    /// [`SessionManager::watch`]).
    pub fn watch(&self, id: GlobalSessionId) -> Option<mpsc::Receiver<SessionEvent>> {
        self.shard(id)?.watch(id.local)
    }

    /// Retires a session, parking its optimizer in its shard's frontier
    /// cache.
    pub fn finish(&self, id: GlobalSessionId) -> Option<SessionStatus> {
        self.shard(id)?.finish(id.local)
    }

    /// Installs a [`moqo_engine::EventHook`]-style callback on every
    /// shard, translating each shard-local session id into the
    /// [`GlobalSessionId`] the serving layers route by. Same contract as
    /// the per-shard hook: invoked under the shard's state lock, so keep
    /// it to leaf-lock work (queue push + doorbell).
    pub fn set_event_hook(&self, hook: Arc<dyn Fn(GlobalSessionId) + Send + Sync>) {
        for (shard, manager) in self.shards.iter().enumerate() {
            let hook = hook.clone();
            manager.set_event_hook(Arc::new(move |local| {
                hook(GlobalSessionId { shard, local });
            }));
        }
    }

    /// Blocks until every shard has drained. Returns `false` on timeout.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        self.shards.iter().all(|s| {
            let left = deadline.saturating_duration_since(Instant::now());
            s.wait_idle(left)
        })
    }

    /// Total live sessions across all shards.
    pub fn live_sessions(&self) -> usize {
        self.shards.iter().map(|s| s.live_sessions()).sum()
    }

    /// Per-shard load and routing statistics.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .zip(&self.counters)
            .enumerate()
            .map(|(i, (s, c))| ShardStats {
                shard: i,
                live: s.live_sessions(),
                cache: s.cache_stats(),
                plans: s.plan_cache_stats(),
                warm_routed: c.warm.load(Ordering::Relaxed),
                rebase_routed: c.rebase.load(Ordering::Relaxed),
                cold_routed: c.cold.load(Ordering::Relaxed),
                rebalanced_in: c.rebalanced_in.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Effectiveness counters of the deployment-wide sub-frontier cache
    /// (one instance shared by every shard).
    pub fn subfrontier_stats(&self) -> SubFrontierCacheStats {
        self.shards[0].subfrontier_stats()
    }

    /// Parks an optimizer in its fingerprint's *home* shard cache — the
    /// restore hook: future submissions of the fingerprint route home and
    /// start warm.
    pub fn park(&self, fp: QueryFingerprint, optimizer: IamaOptimizer) {
        self.shards[self.home_shard(fp)].park(fp, optimizer);
    }

    /// True if some shard parks a warm frontier for `fp`.
    pub fn has_parked(&self, fp: QueryFingerprint) -> bool {
        self.shards.iter().any(|s| s.has_parked(fp))
    }

    /// Visits every parked optimizer of every shard (persistence export).
    /// Each shard's state lock is held while its entries are visited; for
    /// expensive per-entry work prefer [`ShardedEngine::map_parked`].
    pub fn for_each_parked(&self, mut f: impl FnMut(QueryFingerprint, &IamaOptimizer)) {
        for shard in &self.shards {
            shard.for_each_parked(&mut f);
        }
    }

    /// Maps `f` over every parked optimizer of every shard, taking each
    /// shard's state lock **once per entry** instead of across the whole
    /// pass — a long serialization sweep interleaves with submissions
    /// and worker check-ins rather than stalling them. Entries taken by
    /// a racing warm submission between the fingerprint snapshot and
    /// their visit are skipped (they are live again, not parked).
    pub fn map_parked<R>(
        &self,
        mut f: impl FnMut(QueryFingerprint, &IamaOptimizer) -> R,
    ) -> Vec<R> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for fp in shard.parked_fingerprints() {
                if let Some(r) = shard.with_parked(fp, |opt| f(fp, opt)) {
                    out.push(r);
                }
            }
        }
        out
    }

    /// Serializes one parked optimizer (whichever shard holds it) as
    /// self-validating `export_frontier` bytes; `None` when no shard
    /// parks `fp`. The warm-state hand-off hook behind the network
    /// front's frontier-pull endpoint.
    pub fn export_parked(&self, fp: QueryFingerprint) -> Option<Vec<u8>> {
        self.shards.iter().find_map(|s| s.export_parked(fp))
    }

    /// Unbounded initial bounds under the engine's cost model.
    pub fn unbounded(&self) -> Bounds {
        Bounds::unbounded(self.model.dim())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_costmodel::StandardCostModel;
    use moqo_query::testkit;

    const IDLE: Duration = Duration::from_secs(60);

    fn engine(shards: usize) -> ShardedEngine {
        ShardedEngine::new(
            Arc::new(StandardCostModel::paper_metrics()),
            ResolutionSchedule::linear(2, 1.1, 0.4),
            ShardConfig {
                shards,
                engine: EngineConfig {
                    workers: 2,
                    ..EngineConfig::default()
                },
                rebalance_headroom: 8,
            },
        )
    }

    #[test]
    fn home_shard_is_deterministic_across_instances() {
        // Satellite requirement: equal shard counts ⇒ identical mapping,
        // across engine instances.
        let a = engine(4);
        let b = engine(4);
        for n in 2..=9 {
            let spec = testkit::chain_query(n, 10_000 * n as u64);
            let fp = a.fingerprint(&spec);
            assert_eq!(a.home_shard(fp), b.home_shard(fp), "n={n}");
            assert_eq!(fp.as_u64() % 4, a.home_shard(fp) as u64);
        }
    }

    #[test]
    fn repeated_fingerprint_routes_to_its_warm_shard() {
        let e = engine(4);
        let spec = Arc::new(testkit::chain_query(3, 120_000));
        let (gid, d1) = e.submit(spec.clone());
        assert_eq!(d1, RouteDecision::ColdHome);
        assert!(e.wait_idle(IDLE));
        e.finish(gid).unwrap();
        // The repeat goes home and starts warm, regardless of load.
        let (gid2, d2) = e.submit(spec);
        assert_eq!(d2, RouteDecision::WarmHome);
        assert_eq!(gid2.shard, gid.shard);
        assert!(e.wait_idle(IDLE));
        let s = e.status(gid2).unwrap();
        assert!(s.warm_start);
        assert_eq!(s.first_report.unwrap().plans_generated, 0);
        let stats = e.shard_stats();
        assert_eq!(stats.iter().map(|s| s.warm_routed).sum::<u64>(), 1);
    }

    #[test]
    fn overloaded_home_diverts_cold_queries_only() {
        // headroom 3: pile sessions onto one shard's hash bucket until a
        // cold stranger diverts, then verify a warm repeat does not.
        let e = ShardedEngine::new(
            Arc::new(StandardCostModel::paper_metrics()),
            ResolutionSchedule::linear(2, 1.1, 0.4),
            ShardConfig {
                shards: 2,
                engine: EngineConfig {
                    workers: 1,
                    // Park nothing automatically: sessions stay live until
                    // finished, keeping the load imbalance visible.
                    ..EngineConfig::default()
                },
                rebalance_headroom: 3,
            },
        );
        // Find specs hashing to shard 0 until we exceed the headroom.
        let mut loaded = 0usize;
        let mut card = 10_000u64;
        while loaded < 3 {
            card += 17;
            let spec = Arc::new(testkit::chain_query(3, card));
            if e.home_shard(e.fingerprint(&spec)) == 0 {
                let (gid, _) = e.submit(spec);
                assert_eq!(gid.shard, 0);
                loaded += 1;
            }
        }
        // A cold spec homing to shard 0 now diverts to shard 1.
        let mut diverted = None;
        while diverted.is_none() {
            card += 17;
            let spec = Arc::new(testkit::chain_query(3, card));
            let fp = e.fingerprint(&spec);
            if e.home_shard(fp) == 0 {
                let (gid, d) = e.submit(spec.clone());
                assert_eq!(d, RouteDecision::Rebalanced { from: 0 });
                assert_eq!(gid.shard, 1);
                diverted = Some((spec, gid));
            }
        }
        assert!(e.wait_idle(IDLE));
        // The diverted session finishes and parks its frontier on shard 1
        // (where it ran). A repeat of the fingerprint must follow that
        // warmth instead of rebuilding cold at its hash-home.
        let (spec, gid) = diverted.unwrap();
        let fp = e.fingerprint(&spec);
        e.finish(gid).unwrap();
        assert!(e.shards[1].has_parked(fp));
        let (gid2, d2) = e.submit(spec);
        assert_eq!(d2, RouteDecision::WarmRemote { home: 0 });
        assert!(d2.is_warm());
        assert_eq!(gid2.shard, 1);
        assert!(e.wait_idle(IDLE));
        let s = e.status(gid2).unwrap();
        assert!(s.warm_start);
        assert_eq!(s.first_report.unwrap().plans_generated, 0);
    }

    #[test]
    fn drifted_statistics_route_to_the_rebase_donor_shard() {
        let e = engine(4);
        let spec = Arc::new(testkit::chain_query(4, 90_000));
        let (gid, d) = e.submit(spec.clone());
        assert_eq!(d, RouteDecision::ColdHome);
        assert!(e.wait_idle(IDLE));
        e.finish(gid).unwrap();

        // A stats-refresh twin: exact fingerprint misses (it may even home
        // on a different shard), but the router finds the parked donor by
        // its cardinality-blind key and sends the session there.
        let drifted = Arc::new(testkit::drift_cardinalities(&spec, 1.08));
        let (gid2, d2) = e.submit(drifted);
        assert!(d2.is_rebase(), "expected a rebase route, got {d2:?}");
        assert_eq!(gid2.shard, gid.shard, "must follow the donor's shard");
        assert!(e.wait_idle(IDLE));
        let s = e.status(gid2).unwrap();
        assert!(s.rebased, "routed to the donor but did not rebase: {s:?}");
        assert!(!s.frontier.is_empty());
        let stats = e.shard_stats();
        assert_eq!(stats.iter().map(|s| s.rebase_routed).sum::<u64>(), 1);
        // The donor is still parked for exact repeats of its own stats.
        assert!(e.has_parked(e.fingerprint(&testkit::chain_query(4, 90_000))));
    }

    #[test]
    fn sub_frontiers_cross_shard_boundaries() {
        // The sub-frontier cache is deployment-wide: a donor finishing on
        // one shard seeds a similar query that hashes to another. With 8
        // shards the two chain fingerprints land apart with near
        // certainty; the assert tolerates a collision by checking seeding
        // regardless of placement.
        let e = engine(8);
        let small = Arc::new(testkit::chain_query(5, 60_000));
        let big = Arc::new(testkit::chain_query(7, 60_000));
        let (gid, _) = e.submit(small);
        assert!(e.wait_idle(IDLE));
        e.finish(gid).unwrap();
        assert!(e.subfrontier_stats().entries > 0);

        let (gid2, d) = e.submit(big);
        assert!(!d.is_warm() && !d.is_rebase(), "different query shape");
        assert!(e.wait_idle(IDLE));
        let s = e.status(gid2).unwrap();
        assert!(
            s.seeded_subsets > 0,
            "shared subchains must transplant across shards: {s:?}"
        );
        assert!(e.subfrontier_stats().hits > 0);
    }
}
