//! One serving node of a fleet: a [`NetServer`] plus its snapshot store
//! and a periodic persistence sweeper.

use moqo_cost::ResolutionSchedule;
use moqo_costmodel::SharedCostModel;
use moqo_serve::{ModelRegistry, MoqoServer, NetConfig, NetServer, ServeConfig, SnapshotStore};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How one [`FleetNode`] starts.
#[derive(Clone, Debug)]
pub struct FleetNodeConfig {
    /// Stable node name (what the [`Placement`](crate::Placement)
    /// hashes; survives address changes).
    pub id: String,
    /// Bind address; port 0 picks a free port (read the actual one from
    /// [`FleetNode::addr`]).
    pub addr: String,
    /// The **shared** snapshot directory all fleet nodes persist to and
    /// adopt from; `None` runs without durability (no store fallback on
    /// frontier pulls, nothing survives a kill).
    pub store_dir: Option<PathBuf>,
    /// Restore every snapshot in the store at start. On a shared
    /// directory this over-parks (a node restores keys it does not own),
    /// which is harmless — placement decides who *serves* a key — but
    /// fleets that prefer lazy adoption via `PullFrontier` turn it off.
    pub restore_on_start: bool,
    /// Persistence sweep cadence; `None` saves only at [`FleetNode::stop`].
    pub sweep: Option<Duration>,
    /// The node-wide resolution ladder.
    pub schedule: ResolutionSchedule,
    /// Shards, admission, channels — the in-process serving config.
    pub serve: ServeConfig,
    /// I/O threads and socket timeouts of the TCP front.
    pub net: NetConfig,
}

impl FleetNodeConfig {
    /// A loopback node named `id` with default serving knobs, no store.
    pub fn loopback(id: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            addr: "127.0.0.1:0".to_string(),
            store_dir: None,
            restore_on_start: true,
            sweep: None,
            schedule: ResolutionSchedule::linear(2, 1.1, 0.4),
            serve: ServeConfig::default(),
            net: NetConfig::default(),
        }
    }

    /// Persist to (and adopt from) `dir`.
    pub fn with_store(mut self, dir: impl Into<PathBuf>) -> Self {
        self.store_dir = Some(dir.into());
        self
    }

    /// Sweep parked frontiers to the store every `every`.
    pub fn with_sweep(mut self, every: Duration) -> Self {
        self.sweep = Some(every);
        self
    }
}

/// One running node: the in-process server, its TCP front, its snapshot
/// store, and (optionally) a persistence sweeper thread.
pub struct FleetNode {
    id: String,
    net: NetServer,
    store: Option<Arc<SnapshotStore>>,
    sweeper_stop: Arc<AtomicBool>,
    sweeper: Option<JoinHandle<()>>,
}

impl FleetNode {
    /// Binds and starts the node; restores the store first when
    /// configured.
    pub fn start(model: SharedCostModel, config: FleetNodeConfig) -> std::io::Result<FleetNode> {
        let server = Arc::new(MoqoServer::new(
            model.clone(),
            config.schedule.clone(),
            config.serve.clone(),
        ));
        let registry = Arc::new(ModelRegistry::with_default(model));
        let store = config
            .store_dir
            .map(|dir| Arc::new(SnapshotStore::new(dir)));
        if let Some(store) = &store {
            if config.restore_on_start {
                let _ = store.restore(server.engine());
            }
        }
        let net_config = NetConfig {
            addr: config.addr,
            ..config.net
        };
        let net = match &store {
            Some(store) => NetServer::bind_with_store(server, registry, net_config, store.clone())?,
            None => NetServer::bind(server, registry, net_config)?,
        };
        let sweeper_stop = Arc::new(AtomicBool::new(false));
        let sweeper = match (&store, config.sweep) {
            (Some(store), Some(every)) => {
                let store = store.clone();
                let server = net.moqo().clone();
                let stop = sweeper_stop.clone();
                Some(
                    std::thread::Builder::new()
                        .name(format!("moqo-fleet-sweep-{}", config.id))
                        .spawn(move || {
                            // Sleep in short slices so stop/kill joins
                            // promptly even with a long sweep cadence.
                            let slice = Duration::from_millis(10);
                            'sweeps: loop {
                                let mut slept = Duration::ZERO;
                                while slept < every {
                                    if stop.load(Ordering::Relaxed) {
                                        break 'sweeps;
                                    }
                                    std::thread::sleep(slice.min(every - slept));
                                    slept += slice;
                                }
                                let _ = store.save(server.engine());
                            }
                        })?,
                )
            }
            _ => None,
        };
        Ok(FleetNode {
            id: config.id,
            net,
            store,
            sweeper_stop,
            sweeper,
        })
    }

    /// The node's stable name.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The actually bound `host:port` (resolves port 0).
    pub fn addr(&self) -> String {
        self.net.local_addr().to_string()
    }

    /// The TCP front (stats, and the in-process server behind it).
    pub fn net(&self) -> &NetServer {
        &self.net
    }

    /// The node's snapshot store, when configured.
    pub fn store(&self) -> Option<&Arc<SnapshotStore>> {
        self.store.as_ref()
    }

    fn join_sweeper(&mut self) {
        self.sweeper_stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.sweeper.take() {
            let _ = handle.join();
        }
    }

    /// Graceful shutdown: final persistence sweep (parked state reaches
    /// the store), then the TCP front drains and joins.
    pub fn stop(mut self) {
        self.join_sweeper();
        if let Some(store) = &self.store {
            let _ = store.save(self.net.moqo().engine());
        }
        // net's Drop shuts the front down.
    }

    /// Crash semantics: the front goes down *without* a final sweep —
    /// anything parked since the last periodic sweep is lost, exactly
    /// like a killed process. What the sweeper already persisted stays
    /// in the shared store for the next home to adopt.
    pub fn kill(mut self) {
        self.join_sweeper();
        self.store = None;
        // net's Drop closes sockets and joins the I/O threads.
    }
}

impl Drop for FleetNode {
    fn drop(&mut self) {
        self.join_sweeper();
    }
}
