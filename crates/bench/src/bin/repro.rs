//! Regenerates the paper's figures as terminal tables and plots.
//!
//! ```text
//! cargo run --release -p moqo-bench --bin repro -- <experiment> [--sf <f>] [--fast]
//! ```
//!
//! Experiments: `fig1`, `fig2a`, `fig2b`, `fig3`, `fig4`, `fig5`,
//! `lemmas`, `quality`, `ablation-index`, `ablation-delta`,
//! `ablation-shadow`, `bounds`, `space`, `amortized`, `schedules`,
//! `enumeration`, `pruning`, `serve`, `net`, `net-scale`, `similarity`,
//! `fleet`, `fleet-router`, or `all`.
//! `--fast` shrinks the scale factor and level counts for a quick smoke
//! run; `--stats` appends the enumeration-plane counter table (splits
//! visited/skipped, pairs skipped, scratch high-water) regardless of the
//! chosen experiment. `net-scale` takes `--connections <n>` (default
//! 10000; 512 with `--fast`); `fleet-router` takes `--watch <ms>`
//! (default 500) and `--ticks <n>` (default: run until SIGTERM).
//!
//! The `enumeration`, `pruning`, `serve`, `net`, `net-scale`,
//! `similarity`, and `fleet` experiments additionally drop
//! machine-readable `BENCH_<name>.json` files into the working directory
//! (schemas in `docs/benchmarks.md`).
//!
//! `repro fleet` spawns real serving processes by re-executing this
//! binary in a hidden child mode which serves one fleet node until its
//! stdin closes:
//!
//! ```text
//! repro fleet-node --id <id> --store <dir>
//! ```

use moqo_baselines::one_shot;
use moqo_bench::*;
use moqo_core::{IamaConfig, IamaOptimizer, Session, SessionCommand};
use moqo_cost::{Bounds, ResolutionSchedule};
use moqo_costmodel::{CostModel, StandardCostModel};
use moqo_tpch::query_block;
use moqo_viz::{render_scatter, ScatterOptions, TextTable};
use std::env;
use std::sync::Arc;
use std::time::Duration;

struct Cli {
    experiment: String,
    sf: f64,
    fast: bool,
    stats: bool,
    /// `net-scale`: connections to hold (default 10000, or 512 with
    /// `--fast`).
    connections: Option<usize>,
    /// `fleet-router`: watch-loop cadence in milliseconds.
    watch_ms: u64,
    /// `fleet-router`: beats to run before tearing down (`None` = run
    /// until SIGTERM).
    ticks: Option<u64>,
}

const EXPERIMENTS: &[&str] = &[
    "fig1",
    "fig2a",
    "fig2b",
    "fig3",
    "fig4",
    "fig5",
    "lemmas",
    "quality",
    "ablation-index",
    "ablation-delta",
    "ablation-shadow",
    "bounds",
    "space",
    "amortized",
    "schedules",
    "enumeration",
    "pruning",
    "serve",
    "net",
    "net-scale",
    "similarity",
    "fleet",
    "fleet-router",
    "all",
];

fn usage() -> String {
    format!(
        "usage: repro [<experiment>] [--sf <positive number>] [--fast] [--stats]\n\
         \x20            [--connections <n>] [--watch <ms>] [--ticks <n>]\n\
         experiments: {}\n\
         net-scale holds --connections idle sessions (default 10000; 512 with --fast).\n\
         fleet-router runs a liveness loop every --watch ms (default 500) until\n\
         SIGTERM, or for --ticks beats (with one induced node kill) when bounded.",
        EXPERIMENTS.join(", ")
    )
}

/// Prints the problem plus usage to stderr and exits nonzero.
fn cli_error(msg: &str) -> ! {
    eprintln!("error: {msg}\n{}", usage());
    std::process::exit(2);
}

fn parse_cli() -> Cli {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut experiment = String::from("all");
    let mut sf = 1.0;
    let mut fast = false;
    let mut stats = false;
    let mut connections = None;
    let mut watch_ms = 500;
    let mut ticks = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            "--sf" => {
                i += 1;
                sf = match args.get(i).map(|s| s.parse::<f64>()) {
                    Some(Ok(v)) if v > 0.0 && v.is_finite() => v,
                    Some(_) => {
                        cli_error(&format!("--sf needs a positive number, got {:?}", args[i]))
                    }
                    None => cli_error("--sf needs a value"),
                };
            }
            "--fast" => fast = true,
            "--stats" => stats = true,
            "--connections" => {
                i += 1;
                connections = match args.get(i).map(|s| s.parse::<usize>()) {
                    Some(Ok(v)) if v > 0 => Some(v),
                    Some(_) => cli_error(&format!(
                        "--connections needs a positive count, got {:?}",
                        args[i]
                    )),
                    None => cli_error("--connections needs a value"),
                };
            }
            "--watch" => {
                i += 1;
                watch_ms = match args.get(i).map(|s| s.parse::<u64>()) {
                    Some(Ok(v)) if v > 0 => v,
                    Some(_) => cli_error(&format!(
                        "--watch needs a positive millisecond count, got {:?}",
                        args[i]
                    )),
                    None => cli_error("--watch needs a value"),
                };
            }
            "--ticks" => {
                i += 1;
                ticks = match args.get(i).map(|s| s.parse::<u64>()) {
                    Some(Ok(v)) if v > 0 => Some(v),
                    Some(_) => cli_error(&format!(
                        "--ticks needs a positive count, got {:?}",
                        args[i]
                    )),
                    None => cli_error("--ticks needs a value"),
                };
            }
            other if !other.starts_with('-') => {
                if !EXPERIMENTS.contains(&other) {
                    cli_error(&format!("unknown experiment {other:?}"));
                }
                experiment = other.to_string();
            }
            other => cli_error(&format!("unknown flag {other:?}")),
        }
        i += 1;
    }
    Cli {
        experiment,
        sf,
        fast,
        stats,
        connections,
        watch_ms,
        ticks,
    }
}

/// The hidden `fleet-node` child mode: parses `--id`/`--store` and
/// serves one fleet node until stdin closes (never returns).
fn fleet_node_main(args: &[String]) -> ! {
    let mut id: Option<&str> = None;
    let mut store: Option<&str> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--id" => {
                i += 1;
                id = args.get(i).map(String::as_str);
            }
            "--store" => {
                i += 1;
                store = args.get(i).map(String::as_str);
            }
            other => cli_error(&format!("unknown fleet-node flag {other:?}")),
        }
        i += 1;
    }
    match (id, store) {
        (Some(id), Some(store)) => fleet_node_serve(id, std::path::Path::new(store)),
        _ => cli_error("fleet-node needs --id <id> --store <dir>"),
    }
}

fn main() {
    // `repro fleet` re-executes this binary as its node processes; the
    // child mode must win before normal CLI parsing.
    let raw: Vec<String> = env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("fleet-node") {
        fleet_node_main(&raw[1..]);
    }
    let cli = parse_cli();
    let model = bench_model();
    let run = |name: &str| cli.experiment == name || cli.experiment == "all";

    if run("fig1") {
        fig1(&model, cli.sf);
    }
    if run("fig2a") {
        fig2a(&model, cli.sf);
    }
    if run("fig2b") {
        fig2b(&model, cli.sf);
    }
    if run("fig3") {
        figure_times(
            "Figure 3 (avg time/invocation, alpha_T=1.01, alpha_S=0.05)",
            {
                let mut s = ExperimentSetup::fig3();
                s.sf = cli.sf;
                if cli.fast {
                    s.level_counts = vec![1, 5];
                }
                s
            },
            &model,
            false,
        );
    }
    if run("fig4") {
        figure_times(
            "Figure 4 (avg time/invocation, alpha_T=1.005, alpha_S=0.5)",
            {
                let mut s = ExperimentSetup::fig4();
                s.sf = cli.sf;
                if cli.fast {
                    s.level_counts = vec![1, 5];
                }
                s
            },
            &model,
            false,
        );
    }
    if run("fig5") {
        figure_times(
            "Figure 5 (MAX time/invocation, alpha_T=1.005, 20 levels)",
            {
                let mut s = ExperimentSetup::fig4();
                s.sf = cli.sf;
                s.level_counts = if cli.fast { vec![5] } else { vec![20] };
                s
            },
            &model,
            true,
        );
    }
    if run("lemmas") {
        lemmas(&model, cli.sf, cli.fast);
    }
    if run("quality") {
        quality(cli.sf);
    }
    if run("ablation-index") {
        ablations_index(&model, cli.sf);
    }
    if run("ablation-delta") {
        ablations_delta(&model, cli.sf);
    }
    if run("ablation-shadow") {
        ablation_shadow_exp(&model, cli.sf);
    }
    if run("bounds") {
        bounds_exp(&model, cli.sf);
    }
    if run("space") {
        space_exp(&model, cli.sf, cli.fast);
    }
    if run("amortized") {
        amortized_exp(&model, cli.sf);
    }
    if run("schedules") {
        schedules_exp(&model, cli.sf);
    }
    if run("enumeration") || cli.stats {
        enumeration_exp(cli.sf, cli.fast);
    }
    if run("pruning") {
        pruning_exp(cli.fast);
    }
    if run("serve") {
        serve_exp(cli.fast);
    }
    if run("net") {
        net_exp(cli.fast);
    }
    if run("net-scale") {
        let connections = cli
            .connections
            .unwrap_or(if cli.fast { 512 } else { 10_000 });
        net_scale_exp(connections, cli.fast);
    }
    if run("similarity") {
        similarity_exp(cli.fast);
    }
    if run("fleet") {
        fleet_exp(cli.fast);
    }
    if run("fleet-router") {
        // Under `all` the loop must terminate: bound it like `--ticks 5`.
        let ticks = match (cli.experiment.as_str(), cli.ticks) {
            ("all", None) => Some(5),
            (_, t) => t,
        };
        fleet_router_exp(Duration::from_millis(cli.watch_ms), ticks, cli.fast);
    }
}

/// Fleet router: the daemonizable liveness loop over real node
/// processes — probe, adopt after death, level skewed ownership — every
/// `--watch` ms until SIGTERM (or for `--ticks` beats, with one induced
/// SIGKILL so the repair paths demonstrably fire).
fn fleet_router_exp(every: Duration, ticks: Option<u64>, fast: bool) {
    println!("=== Fleet router: liveness watch loop over 3 real node processes ===\n");
    let exe = env::current_exe().expect("own executable path");
    let report = fleet_router_watch(&exe, every, ticks, fast);
    println!(
        "\n{} beats: {} death(s) found, {} orphaned key(s), {} adopted warm,\n\
         \x20        {} leveling move(s).\n",
        report.ticks, report.deaths, report.orphaned, report.adopted_warm, report.rebalanced
    );
}

/// Net scale: one node holding thousands of idle interactive sessions
/// on the readiness-driven front — fixed thread count, bounded memory.
fn net_scale_exp(connections: usize, fast: bool) {
    println!("=== Net scale: holding {connections} idle sessions on one node ===\n");
    let r = net_scale_experiment(connections, fast);
    if r.connections < r.requested {
        println!(
            "(file-descriptor limit {} clamped the fleet to {} connections)\n",
            r.nofile_soft, r.connections
        );
    }
    let mut t = TextTable::new(vec!["figure", "value"]);
    let rows: Vec<(&str, String)> = vec![
        ("connections held", r.connections.to_string()),
        ("query templates", r.templates.to_string()),
        (
            "connect+hello mean/p50/max",
            format!(
                "{:.1} / {:.1} / {:.1} us",
                r.connect_mean_us, r.connect_p50_us, r.connect_max_us
            ),
        ),
        (
            "submit->admission mean/p50/max",
            format!(
                "{:.1} / {:.1} / {:.1} us",
                r.admit_mean_us, r.admit_p50_us, r.admit_max_us
            ),
        ),
        ("zero-plan starts", r.zero_plan_starts.to_string()),
        (
            "RSS before -> held",
            format!("{} kB -> {} kB", r.rss_before_kb, r.rss_held_kb),
        ),
        ("userspace kB/conn", format!("{:.2}", r.kb_per_conn)),
        (
            "threads before -> held",
            format!("{} -> {}", r.threads_before, r.threads_held),
        ),
        (
            "live held / after hold",
            format!(
                "{} / {} ({} ms idle)",
                r.live_held, r.live_after_hold, r.hold_ms
            ),
        ),
        (
            "faulted / stalled",
            format!("{} / {}", r.faulted, r.stalled),
        ),
        (
            "coalesced / outbound HW",
            format!("{} / {} B", r.coalesced_events, r.outbound_high_water),
        ),
        (
            "frames in / out",
            format!("{} / {}", r.frames_in, r.frames_out),
        ),
        ("disconnect-parked", r.disconnect_parked.to_string()),
        ("drain all", format!("{:.1} ms", r.drain_ms)),
        ("shutdown", format!("{:.2} ms", r.shutdown_ms)),
    ];
    for (k, v) in rows {
        t.row(vec![k.to_string(), v]);
    }
    println!("{}", t.render());
    println!(
        "One event-loop thread plus a fixed decode pool serves the whole\n\
         \x20        fleet: the thread count while holding {} connections equals the\n\
         \x20        count before the first connect, and memory grows only by the\n\
         \x20        per-connection userspace figure above (client state included —\n\
         \x20        both ends live in this process).\n",
        r.connections
    );
    let json = Json::Obj(vec![
        ("experiment", Json::Str("net_scale".into())),
        ("fast", Json::Bool(fast)),
        ("requested", Json::Int(r.requested as u64)),
        ("connections", Json::Int(r.connections as u64)),
        ("nofile_soft", Json::Int(r.nofile_soft)),
        ("templates", Json::Int(r.templates as u64)),
        ("connect_mean_us", Json::Num(r.connect_mean_us)),
        ("connect_p50_us", Json::Num(r.connect_p50_us)),
        ("connect_max_us", Json::Num(r.connect_max_us)),
        ("admit_mean_us", Json::Num(r.admit_mean_us)),
        ("admit_p50_us", Json::Num(r.admit_p50_us)),
        ("admit_max_us", Json::Num(r.admit_max_us)),
        ("zero_plan_starts", Json::Int(r.zero_plan_starts as u64)),
        ("rss_before_kb", Json::Int(r.rss_before_kb)),
        ("rss_held_kb", Json::Int(r.rss_held_kb)),
        ("kb_per_conn", Json::Num(r.kb_per_conn)),
        ("threads_before", Json::Int(r.threads_before)),
        ("threads_held", Json::Int(r.threads_held)),
        ("live_held", Json::Int(r.live_held)),
        ("live_after_hold", Json::Int(r.live_after_hold)),
        ("hold_ms", Json::Int(r.hold_ms)),
        ("faulted", Json::Int(r.faulted)),
        ("stalled", Json::Int(r.stalled)),
        ("coalesced_events", Json::Int(r.coalesced_events)),
        ("outbound_high_water", Json::Int(r.outbound_high_water)),
        ("frames_in", Json::Int(r.frames_in)),
        ("frames_out", Json::Int(r.frames_out)),
        ("accepted", Json::Int(r.accepted)),
        ("disconnect_parked", Json::Int(r.disconnect_parked)),
        ("drain_ms", Json::Num(r.drain_ms)),
        ("shutdown_ms", Json::Num(r.shutdown_ms)),
    ]);
    write_bench_json("BENCH_net_scale.json", &json);
}

/// Fleet: the kill-and-repeat experiment over real node processes —
/// placement-routed sessions, a SIGKILLed home, store adoption, and
/// warm repeats that survive it all (every step asserted in the driver).
fn fleet_exp(fast: bool) {
    println!("=== Fleet: kill-and-repeat over 3 real node processes ===\n");
    let exe = env::current_exe().expect("own executable path");
    let report = fleet_experiment(&exe, fast);
    let mut t = TextTable::new(vec![
        "pass",
        "sessions",
        "mean first-frontier",
        "p50",
        "max",
        "0-plan starts",
    ]);
    for r in &report.phases {
        t.row(vec![
            r.label.to_string(),
            r.sessions.to_string(),
            format!("{:.1} us", r.mean_us),
            format!("{:.1} us", r.p50_us),
            format!("{:.1} us", r.max_us),
            r.zero_plan_starts.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "{} was SIGKILLed after the warm pass: {} of the workload's keys\n         lost their home, all {} were adopted warm from the shared\n         snapshot store by their new homes, and the post-kill repeats\n         still all started at zero plans. Client view bits_eq across\n         the hand-off: {}. Routes per node: {:?}.\n",
        report.killed, report.orphaned, report.adopted_warm, report.view_bits_eq, report.routes
    );
    let json = Json::Obj(vec![
        ("experiment", Json::Str("fleet".into())),
        ("fast", Json::Bool(fast)),
        ("nodes", Json::Int(report.nodes as u64)),
        ("killed_node", Json::Str(report.killed.clone())),
        ("orphaned_keys", Json::Int(report.orphaned as u64)),
        ("adopted_warm", Json::Int(report.adopted_warm as u64)),
        ("view_bits_eq", Json::Bool(report.view_bits_eq)),
        (
            "routes",
            Json::Arr(
                report
                    .routes
                    .iter()
                    .map(|(id, n)| {
                        Json::Obj(vec![
                            ("node", Json::Str(id.clone())),
                            ("sessions", Json::Int(*n)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "phases",
            Json::Arr(
                report
                    .phases
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("label", Json::Str(r.label.into())),
                            ("sessions", Json::Int(r.sessions as u64)),
                            ("mean_us", Json::Num(r.mean_us)),
                            ("p50_us", Json::Num(r.p50_us)),
                            ("max_us", Json::Num(r.max_us)),
                            ("zero_plan_starts", Json::Int(r.zero_plan_starts as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    write_bench_json("BENCH_fleet.json", &json);
}

/// Warm-state sharing across *similar* (not identical) queries: plans
/// generated and submit→first-frontier latency for cold, exact-warm,
/// sub-frontier-transplant, and stats-drift-rebase sessions.
fn similarity_exp(fast: bool) {
    println!("=== Similar queries: sub-frontier transplant and stats-drift rebase ===\n");
    let reports = similarity_experiment(fast);
    let mut t = TextTable::new(vec![
        "pass",
        "sessions",
        "plans generated",
        "mean first-frontier",
        "p50",
        "max",
        "0-plan starts",
        "rebased",
        "seeded (subsets)",
    ]);
    for r in &reports {
        t.row(vec![
            r.label.to_string(),
            r.sessions.to_string(),
            r.plans_generated.to_string(),
            format!("{:.1} us", r.mean_us),
            format!("{:.1} us", r.p50_us),
            format!("{:.1} us", r.max_us),
            r.zero_plan_starts.to_string(),
            r.rebased_sessions.to_string(),
            format!("{} ({})", r.transplanted_sessions, r.seeded_subsets),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Same queries, four histories. Exact repeats do zero plan work;\n         transplanted sessions seed every shared subset from donor\n         sub-frontiers and generate measurably fewer plans than cold;\n         drifted replays rebase the parked frontier under the new stats\n         (Lemma 7: re-pruning known plans beats regenerating them).\n"
    );
    let json = Json::Obj(vec![
        ("experiment", Json::Str("similarity".into())),
        ("fast", Json::Bool(fast)),
        (
            "phases",
            Json::Arr(
                reports
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("label", Json::Str(r.label.into())),
                            ("sessions", Json::Int(r.sessions as u64)),
                            ("plans_generated", Json::Int(r.plans_generated)),
                            ("mean_us", Json::Num(r.mean_us)),
                            ("p50_us", Json::Num(r.p50_us)),
                            ("max_us", Json::Num(r.max_us)),
                            ("zero_plan_starts", Json::Int(r.zero_plan_starts as u64)),
                            ("rebased_sessions", Json::Int(r.rebased_sessions as u64)),
                            (
                                "transplanted_sessions",
                                Json::Int(r.transplanted_sessions as u64),
                            ),
                            ("seeded_subsets", Json::Int(r.seeded_subsets)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    write_bench_json("BENCH_similarity.json", &json);
}

/// Network front: the serving SLO as a remote TCP client observes it —
/// handshake + framed submit + admission + delta-streamed events — cold
/// versus warm over one loopback server.
fn net_exp(fast: bool) {
    println!("=== Network front: submit -> first-frontier over loopback TCP ===\n");
    let reports = net_serving_experiment(fast);
    let mut t = TextTable::new(vec![
        "pass",
        "sessions",
        "mean first-frontier",
        "p50",
        "max",
        "0-plan starts",
    ]);
    for r in &reports {
        t.row(vec![
            r.label.to_string(),
            r.sessions.to_string(),
            format!("{:.1} us", r.mean_us),
            format!("{:.1} us", r.p50_us),
            format!("{:.1} us", r.max_us),
            r.zero_plan_starts.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Every session crosses a real socket: MOQOWIRE handshake, framed\n         submit, typed admission, delta-streamed events. The warm pass\n         resumes parked frontiers — zero plan generation before the first\n         tradeoffs appear — so a repeat pays only transport pacing\n         (compare `repro serve` for the in-process figure), never plan\n         regeneration.\n"
    );
    let json = Json::Obj(vec![
        ("experiment", Json::Str("net".into())),
        ("fast", Json::Bool(fast)),
        (
            "phases",
            Json::Arr(
                reports
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("label", Json::Str(r.label.into())),
                            ("sessions", Json::Int(r.sessions as u64)),
                            ("mean_us", Json::Num(r.mean_us)),
                            ("p50_us", Json::Num(r.p50_us)),
                            ("max_us", Json::Num(r.max_us)),
                            ("zero_plan_starts", Json::Int(r.zero_plan_starts as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    write_bench_json("BENCH_net.json", &json);
}

/// Serving front: submit→first-frontier latency and warm-hit economy of
/// the sharded engine under a skewed fingerprint workload.
fn serve_exp(fast: bool) {
    println!("=== Serving front: submit -> first-frontier latency, 4 shards ===\n");
    let reports = serving_experiment(fast);
    let mut t = TextTable::new(vec![
        "pass",
        "sessions",
        "distinct fps",
        "mean first-frontier",
        "p50",
        "max",
        "warm routed",
        "0-plan starts",
    ]);
    for r in &reports {
        t.row(vec![
            r.label.to_string(),
            r.sessions.to_string(),
            r.distinct.to_string(),
            format!("{:.1} us", r.mean_us),
            format!("{:.1} us", r.p50_us),
            format!("{:.1} us", r.max_us),
            r.warm_routed.to_string(),
            r.zero_plan_starts.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "The warm pass resumes parked frontiers on their home shards: its\n         first copy of every repeated fingerprint starts with zero plan\n         generation, so first tradeoffs appear in cache-lookup time.\n"
    );
    let json = Json::Obj(vec![
        ("experiment", Json::Str("serve".into())),
        ("fast", Json::Bool(fast)),
        (
            "phases",
            Json::Arr(
                reports
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("label", Json::Str(r.label.into())),
                            ("sessions", Json::Int(r.sessions as u64)),
                            ("distinct_fingerprints", Json::Int(r.distinct as u64)),
                            ("mean_us", Json::Num(r.mean_us)),
                            ("p50_us", Json::Num(r.p50_us)),
                            ("max_us", Json::Num(r.max_us)),
                            ("warm_routed", Json::Int(r.warm_routed)),
                            ("zero_plan_starts", Json::Int(r.zero_plan_starts as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    write_bench_json("BENCH_serve.json", &json);
}

/// Enumeration-plane effectiveness: split visits of the dense path versus
/// the exhaustive (per-invocation re-enumeration) path, plus the
/// steady-state skip counters (`--stats` appends this to any experiment).
fn enumeration_exp(sf: f64, fast: bool) {
    use moqo_costmodel::{MetricSet, StandardCostModelConfig};
    use moqo_query::testkit;
    println!("=== Enumeration plane: precomputed splits vs exhaustive re-enumeration ===\n");
    // A lean model keeps the refinement ladders fast; the counters being
    // reported are model-independent structure metrics.
    let model = StandardCostModel::new(
        MetricSet::paper(),
        StandardCostModelConfig {
            dops: vec![1, 4],
            sampling_rates_pm: vec![100, 500],
            eval_spin: 0,
            ..StandardCostModelConfig::default()
        },
    );
    let schedule = ResolutionSchedule::linear(if fast { 2 } else { 4 }, 1.05, 0.5);
    let n = if fast { 8 } else { 10 };
    let mut specs = vec![
        testkit::chain_query(n, 100_000),
        testkit::cycle_query(n, 100_000),
        testkit::star_query(if fast { 6 } else { 8 }, 100_000),
        testkit::clique_query(if fast { 5 } else { 7 }, 1000),
    ];
    for name in ["q03", "q05", "q09"] {
        if let Some(spec) = query_block(name, sf) {
            specs.push(spec);
        }
    }
    let reports = enumeration_effectiveness(&model, &schedule, &specs);
    let mut t = TextTable::new(vec![
        "query",
        "tables",
        "exhaustive splits/inv",
        "plan splits",
        "ladder visited",
        "steady visited",
        "steady skipped",
        "pairs skipped",
        "scratch HW",
    ]);
    for r in &reports {
        t.row(vec![
            r.query.clone(),
            r.n_tables.to_string(),
            r.exhaustive_splits_per_invocation.to_string(),
            r.plan_splits.to_string(),
            r.ladder_splits_visited.to_string(),
            r.steady_splits_visited.to_string(),
            r.steady_splits_skipped.to_string(),
            r.pairs_skipped.to_string(),
            r.scratch_high_water.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "A repeated invocation visits 0 splits: the watermark rectangles\n         settle the whole plan, versus the exhaustive path re-walking\n         every split of every subset each invocation.\n"
    );
    let json = Json::Obj(vec![
        ("experiment", Json::Str("enumeration".into())),
        ("fast", Json::Bool(fast)),
        ("sf", Json::Num(sf)),
        (
            "queries",
            Json::Arr(
                reports
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("query", Json::Str(r.query.clone())),
                            ("tables", Json::Int(r.n_tables as u64)),
                            (
                                "exhaustive_splits_per_invocation",
                                Json::Int(r.exhaustive_splits_per_invocation),
                            ),
                            ("plan_subsets", Json::Int(r.plan_subsets as u64)),
                            ("plan_splits", Json::Int(r.plan_splits as u64)),
                            ("ladder_splits_visited", Json::Int(r.ladder_splits_visited)),
                            ("steady_splits_visited", Json::Int(r.steady_splits_visited)),
                            ("steady_splits_skipped", Json::Int(r.steady_splits_skipped)),
                            ("pairs_skipped", Json::Int(r.pairs_skipped)),
                            ("scratch_high_water", Json::Int(r.scratch_high_water as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    write_bench_json("BENCH_enumeration.json", &json);
}

/// Pruning hot path: scalar visitor vs batched SoA lane kernels, plus
/// the prune-path share of end-to-end invocation time.
fn pruning_exp(fast: bool) {
    println!("=== Pruning kernels: scalar visitor vs batched SoA lanes ===\n");
    let kernel = kernel_measurements(fast);
    let mut t = TextTable::new(vec![
        "dim",
        "cell size",
        "entries",
        "scalar ns/scan",
        "batch ns/scan",
        "scalar Mcmp/s",
        "batch Mcmp/s",
        "speedup",
    ]);
    for m in &kernel {
        t.row(vec![
            m.dim.to_string(),
            m.cell_size.to_string(),
            m.entries.to_string(),
            format!("{:.0}", m.scalar_ns),
            format!("{:.0}", m.batch_ns),
            format!("{:.1}", m.scalar_comparisons_per_sec / 1e6),
            format!("{:.1}", m.batch_comparisons_per_sec / 1e6),
            format!("{:.2}x", m.speedup),
        ]);
    }
    println!("{}", t.render());
    println!("Prune-path share of full refinement ladders (time_pruning on):\n");
    let share = prune_share_rows(fast);
    let mut t = TextTable::new(vec![
        "query",
        "kernels",
        "total (s)",
        "prune (s)",
        "share",
        "comparisons",
        "Mcmp/s",
    ]);
    for r in &share {
        t.row(vec![
            r.query.clone(),
            if r.batch_kernels { "batched" } else { "scalar" }.to_string(),
            format!("{:.4}", r.total_seconds),
            format!("{:.4}", r.prune_seconds),
            format!("{:.1}%", r.prune_share * 100.0),
            r.prune_comparisons.to_string(),
            format!("{:.1}", r.comparisons_per_sec / 1e6),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Both modes produced bit-identical frontiers (asserted per run):\n         the kernels change time, never bytes.\n"
    );
    let json = Json::Obj(vec![
        ("experiment", Json::Str("pruning".into())),
        ("fast", Json::Bool(fast)),
        (
            "kernel",
            Json::Arr(
                kernel
                    .iter()
                    .map(|m| {
                        Json::Obj(vec![
                            ("dim", Json::Int(m.dim as u64)),
                            ("cell_size", Json::Int(m.cell_size as u64)),
                            ("cells", Json::Int(m.cells as u64)),
                            ("entries", Json::Int(m.entries as u64)),
                            ("scalar_ns_median", Json::Num(m.scalar_ns)),
                            ("batch_ns_median", Json::Num(m.batch_ns)),
                            (
                                "scalar_comparisons_per_sec",
                                Json::Num(m.scalar_comparisons_per_sec),
                            ),
                            (
                                "batch_comparisons_per_sec",
                                Json::Num(m.batch_comparisons_per_sec),
                            ),
                            ("speedup", Json::Num(m.speedup)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "prune_share",
            Json::Arr(
                share
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("query", Json::Str(r.query.clone())),
                            ("batch_kernels", Json::Bool(r.batch_kernels)),
                            ("total_seconds", Json::Num(r.total_seconds)),
                            ("prune_seconds", Json::Num(r.prune_seconds)),
                            ("prune_share", Json::Num(r.prune_share)),
                            ("prune_comparisons", Json::Int(r.prune_comparisons)),
                            ("comparisons_per_sec", Json::Num(r.comparisons_per_sec)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    write_bench_json("BENCH_pruning.json", &json);
}

/// Writes one experiment's machine-readable output, reporting rather
/// than aborting on filesystem trouble (read-only checkouts).
fn write_bench_json(name: &str, json: &Json) {
    match json.write_file(std::path::Path::new(name)) {
        Ok(()) => println!("wrote {name}\n"),
        Err(e) => eprintln!("could not write {name}: {e}\n"),
    }
}

/// Future-work experiment: linear vs geometric precision ladders.
fn schedules_exp(model: &StandardCostModel, sf: f64) {
    println!("=== Schedule shapes: linear vs geometric precision ladders ===\n");
    let mut t = TextTable::new(vec![
        "query",
        "schedule",
        "avg s/inv",
        "MAX s/inv",
        "total s",
    ]);
    for name in ["q05", "q08"] {
        let spec = query_block(name, sf).expect("block");
        for (label, avg, max, total) in schedule_comparison(&spec, model, 20, 1.005, 0.5) {
            t.row(vec![
                name.to_string(),
                label.to_string(),
                format!("{avg:.4}"),
                format!("{max:.4}"),
                format!("{total:.4}"),
            ]);
        }
    }
    println!("{}", t.render());
    println!(
        "On the calibrated (cost-saturating) substrate the two ladders\n         perform within a few percent; the geometric ladder's advantage\n         grows on denser cost spaces where the finest levels dominate\n         (set `quantize_grid: None` in the model to observe it).\n"
    );
}

/// Theorem 5: amortized invocation time vs single-objective DP.
fn amortized_exp(model: &StandardCostModel, sf: f64) {
    println!("=== Theorem 5: amortized invocation time over long series ===\n");
    let schedule = ExperimentSetup::fig4().schedule(10);
    let mut t = TextTable::new(vec![
        "query",
        "amortized s/inv (50 rounds)",
        "first-ladder s/inv",
        "single-objective DP (s)",
    ]);
    for name in ["q03", "q05", "q09"] {
        let spec = query_block(name, sf).expect("block");
        let (amortized, first, single) = amortized_time(&spec, model, &schedule, 50);
        t.row(vec![
            name.to_string(),
            format!("{amortized:.5}"),
            format!("{first:.5}"),
            format!("{single:.5}"),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Amortized time collapses far below the first ladder; the remaining\n         steady-state cost per invocation is the O(3^n) table-set sweep.\n"
    );
}

/// Theorem 3: accumulated space after a full invocation series.
fn space_exp(model: &StandardCostModel, sf: f64, fast: bool) {
    println!("=== Theorem 3: accumulated space consumption on TPC-H ===\n");
    let schedule = ExperimentSetup::fig4().schedule(if fast { 5 } else { 20 });
    let mut t = TextTable::new(vec![
        "query",
        "tables",
        "plans (arena)",
        "result entries",
        "candidate entries",
        "frontier",
    ]);
    for r in space_consumption(model, &schedule, sf) {
        t.row(vec![
            r.query,
            r.n_tables.to_string(),
            r.plans.to_string(),
            r.result_entries.to_string(),
            r.candidate_entries.to_string(),
            r.frontier.to_string(),
        ]);
    }
    println!("{}", t.render());
}

/// Figure 1: the interactive refinement loop with a bound change.
fn fig1(model: &StandardCostModel, sf: f64) {
    println!("=== Figure 1: interactive anytime optimization (q05) ===\n");
    let spec = query_block("q05", sf).expect("q05");
    let schedule = ResolutionSchedule::linear(8, 1.01, 0.3);
    let opt = IamaOptimizer::new(Arc::new(spec.clone()), Arc::new(model.clone()), schedule);
    let mut session = Session::new(opt);
    let opts = |bounds| ScatterOptions {
        width: 64,
        height: 16,
        x_metric: 0,
        y_metric: 2,
        x_label: "time".into(),
        y_label: "error".into(),
        bounds,
    };
    // (a) first coarse approximation.
    session.apply(SessionCommand::Refine).expect("live session");
    {
        let frontier = session.frontier();
        println!("(a) first approximation ({} plans):", frontier.len());
        println!("{}", render_scatter(&frontier.costs(), &opts(None)));
    }
    // (b) refined without user interaction.
    for _ in 0..3 {
        session.apply(SessionCommand::Refine).expect("live session");
    }
    {
        let frontier = session.frontier();
        println!("(b) refined approximation ({} plans):", frontier.len());
        println!("{}", render_scatter(&frontier.costs(), &opts(None)));
    }
    // (c) the user drags the time bound.
    let dim = model.dim();
    let t_mid = {
        let f = session
            .optimizer()
            .frontier(session.bounds(), session.resolution());
        let costs = f.costs();
        let mut ts: Vec<f64> = costs.iter().map(|c| c[0]).collect();
        ts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        ts.get(ts.len() / 2).copied().unwrap_or(f64::INFINITY)
    };
    let new_bounds = Bounds::unbounded(dim).with_limit(0, t_mid);
    session
        .apply(SessionCommand::SetBounds(new_bounds))
        .expect("live session");
    session.apply(SessionCommand::Refine).expect("live session");
    {
        let frontier = session.frontier();
        println!(
            "(c) after dragging the time bound to {t_mid:.2} ({} plans):",
            frontier.len()
        );
        println!(
            "{}",
            render_scatter(&frontier.costs(), &opts(Some(new_bounds)))
        );
    }
}

/// Figure 2a: anytime vs one-shot result quality over time.
fn fig2a(model: &StandardCostModel, sf: f64) {
    println!("=== Figure 2a: anytime vs one-shot quality over time (q05) ===\n");
    let spec = query_block("q05", sf).expect("q05");
    let schedule = ExperimentSetup::fig4().schedule(20);
    let (curve, oneshot_secs) = anytime_quality(&spec, model, &schedule);
    let mut t = TextTable::new(vec![
        "invocation",
        "cum. seconds",
        "coverage vs final",
        "frontier size",
    ]);
    for p in &curve {
        t.row(vec![
            p.invocation.to_string(),
            format!("{:.4}", p.cumulative_seconds),
            format!("{:.4}", p.coverage_vs_final),
            p.frontier_size.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "one-shot: first (and only) result after {oneshot_secs:.4}s\n\
         IAMA: first result after {:.4}s, {} refinements before the one-shot finishes\n",
        curve.first().map(|p| p.cumulative_seconds).unwrap_or(0.0),
        curve
            .iter()
            .filter(|p| p.cumulative_seconds < oneshot_secs)
            .count()
    );
}

/// Figure 2b: incremental vs memoryless per-invocation time.
fn fig2b(model: &StandardCostModel, sf: f64) {
    println!("=== Figure 2b: incremental vs memoryless run time per invocation (q05) ===\n");
    let spec = query_block("q05", sf).expect("q05");
    let schedule = ExperimentSetup::fig4().schedule(20);
    let rows = incremental_vs_memoryless(&spec, model, &schedule);
    let mut t = TextTable::new(vec!["invocation", "incremental (s)", "memoryless (s)"]);
    for (i, a, m) in rows {
        t.row(vec![i.to_string(), format!("{a:.4}"), format!("{m:.4}")]);
    }
    println!("{}", t.render());
}

/// Figures 3-5: per-invocation time tables grouped by table count.
fn figure_times(title: &str, setup: ExperimentSetup, model: &StandardCostModel, use_max: bool) {
    println!("=== {title} (sf={}) ===\n", setup.sf);
    let rows = figure_invocation_times(&setup, model);
    for &levels in &setup.level_counts {
        println!("With {levels} resolution level(s):");
        let mut t = TextTable::new(vec![
            "tables",
            "queries",
            "IAMA (s)",
            "memoryless (s)",
            "one-shot (s)",
            "speedup vs 1-shot",
        ]);
        for row in rows.iter().filter(|r| r.levels == levels) {
            let (iama, mem) = if use_max {
                (row.iama_max, row.memoryless_max)
            } else {
                (row.iama_avg, row.memoryless_avg)
            };
            t.row(vec![
                row.n_tables.to_string(),
                row.queries.to_string(),
                format!("{iama:.4}"),
                format!("{mem:.4}"),
                format!("{:.4}", row.oneshot),
                format!("{:.1}x", row.oneshot / iama.max(1e-9)),
            ]);
        }
        println!("{}", t.render());
    }
}

/// Lemma 5-7 invariant verification across the TPC-H workload.
fn lemmas(model: &StandardCostModel, sf: f64, fast: bool) {
    println!("=== Lemmas 5-7: incremental invariants on TPC-H ===\n");
    let schedule = ExperimentSetup::fig4().schedule(if fast { 5 } else { 20 });
    let reports = verify_invariants(model, &schedule, sf);
    let mut t = TextTable::new(vec![
        "query",
        "max plan gens (<=1)",
        "max pair gens (<=1)",
        "max cand retrievals",
        "bound rM+1",
    ]);
    let mut ok = true;
    for r in &reports {
        ok &= r.max_plan_generations <= 1
            && r.max_pair_generations <= 1
            && r.max_candidate_retrievals <= r.retrieval_bound;
        t.row(vec![
            r.query.clone(),
            r.max_plan_generations.to_string(),
            r.max_pair_generations.to_string(),
            r.max_candidate_retrievals.to_string(),
            r.retrieval_bound.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("all invariants hold: {ok}\n");
}

/// Theorem 2 in practice: measured vs guaranteed approximation factors.
fn quality(sf: f64) {
    println!("=== Theorem 2: measured vs guaranteed approximation factor ===\n");
    let model = bench_model_small();
    let schedule = ResolutionSchedule::linear(4, 1.05, 0.5);
    let reports = verify_quality(&model, &schedule, sf * 0.01, 4);
    let mut t = TextTable::new(vec![
        "query",
        "tables",
        "measured",
        "guarantee a^n",
        "exhaustive size",
        "IAMA size",
    ]);
    for r in &reports {
        t.row(vec![
            r.query.clone(),
            r.n_tables.to_string(),
            format!("{:.4}", r.measured_factor),
            format!("{:.4}", r.guarantee),
            r.exhaustive_size.to_string(),
            r.iama_size.to_string(),
        ]);
    }
    println!("{}", t.render());
}

/// Ablation: cell grid vs linear index.
fn ablations_index(model: &StandardCostModel, sf: f64) {
    println!("=== Ablation: cell-grid index vs flat index ===\n");
    let schedule = ExperimentSetup::fig4().schedule(20);
    let mut t = TextTable::new(vec!["query", "cell grid (s)", "linear (s)"]);
    for name in ["q03", "q05", "q09"] {
        let spec = query_block(name, sf).expect("block");
        let (grid, linear) = ablation_index(&spec, model, &schedule);
        t.row(vec![
            name.to_string(),
            format!("{grid:.4}"),
            format!("{linear:.4}"),
        ]);
    }
    println!("{}", t.render());
}

/// Ablation: delta-set filtering on/off.
fn ablations_delta(model: &StandardCostModel, sf: f64) {
    println!("=== Ablation: delta-set filtering in Fresh ===\n");
    let schedule = ExperimentSetup::fig4().schedule(20);
    let mut t = TextTable::new(vec![
        "query",
        "with delta (s)",
        "without (s)",
        "settled pairs skipped",
    ]);
    for name in ["q03", "q05", "q09"] {
        let spec = query_block(name, sf).expect("block");
        let (with_d, without_d, settled) = ablation_delta(&spec, model, &schedule);
        t.row(vec![
            name.to_string(),
            format!("{with_d:.4}"),
            format!("{without_d:.4}"),
            settled.to_string(),
        ]);
    }
    println!("{}", t.render());
}

/// Ablation: result-plan shadowing on/off.
fn ablation_shadow_exp(model: &StandardCostModel, sf: f64) {
    println!("=== Ablation: shadowing of dominated result plans ===\n");
    let schedule = ExperimentSetup::fig4().schedule(10);
    let mut t = TextTable::new(vec![
        "query",
        "shadowed (s)",
        "paper-exact (s)",
        "plans shadowed",
        "plans exact",
    ]);
    for name in ["q03", "q05", "q09"] {
        let spec = query_block(name, sf).expect("block");
        let on = iama_series_with_config(&spec, model, &schedule, IamaConfig::default());
        let off = iama_series_with_config(
            &spec,
            model,
            &schedule,
            IamaConfig {
                shadow_dominated: false,
                ..IamaConfig::default()
            },
        );
        let secs =
            |rs: &[moqo_core::InvocationReport]| -> f64 { rs.iter().map(|r| r.seconds()).sum() };
        let plans = |rs: &[moqo_core::InvocationReport]| -> u64 {
            rs.iter().map(|r| r.plans_generated).sum()
        };
        t.row(vec![
            name.to_string(),
            format!("{:.4}", secs(&on)),
            format!("{:.4}", secs(&off)),
            plans(&on).to_string(),
            plans(&off).to_string(),
        ]);
    }
    println!("{}", t.render());
}

/// Bound-tightening scenario (Example 3).
fn bounds_exp(model: &StandardCostModel, sf: f64) {
    println!("=== Bounds scenario: user tightens the time bound mid-session (q05) ===\n");
    let spec = query_block("q05", sf).expect("q05");
    let schedule = ExperimentSetup::fig4().schedule(10);
    let rows = bounds_scenario(&spec, model, &schedule);
    let mut t = TextTable::new(vec!["step", "resolution", "seconds", "frontier size"]);
    for (i, r, secs, size) in rows {
        t.row(vec![
            i.to_string(),
            r.to_string(),
            format!("{secs:.4}"),
            size.to_string(),
        ]);
    }
    println!("{}", t.render());
    // Sanity: contrast with a cold optimizer for the bounded phase.
    let b = Bounds::unbounded(model.dim());
    let shot = one_shot(&spec, model, &schedule, &b);
    println!(
        "(for scale: a cold one-shot run at target precision takes {:.4}s)\n",
        shot.duration.as_secs_f64()
    );
}
