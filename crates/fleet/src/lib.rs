//! moqo-fleet — cross-process shard placement with warm-state hand-off.
//!
//! `moqo-serve` made one process a multi-session service; this crate
//! assembles N such processes into a **fleet**. The paper's economics
//! (Trummer & Koch, SIGMOD 2015: anytime frontiers amortized across
//! repeats at "millions of users" scale) only hold if warm state
//! survives process boundaries, and every ingredient already exists —
//! `MOQOWIRE` framing, self-validating `export_frontier` bytes, the
//! [`SnapshotStore`](moqo_serve::SnapshotStore) — so the fleet layer is
//! deliberately thin:
//!
//! * [`Placement`] — a deterministic rendezvous-hash table mapping
//!   [`QueryFingerprint`](moqo_engine::QueryFingerprint) /
//!   [`RebaseKey`](moqo_engine::RebaseKey) routing keys to named nodes,
//!   plus an explicit override map for planned hand-offs. Node death
//!   moves *only* the dead node's keys; every surviving node keeps its
//!   warm frontiers hot.
//! * [`FleetNode`] — one serving node: a
//!   [`NetServer`](moqo_serve::NetServer) over a shared snapshot
//!   directory, with a periodic persistence sweeper and crash
//!   ([`kill`](FleetNode::kill)) vs. graceful ([`stop`](FleetNode::stop))
//!   semantics.
//! * [`FleetClient`] — the client library: fingerprints each request,
//!   routes it to its home node via the shared placement, and fails over
//!   (marking unreachable nodes dead) when the home vanishes.
//! * [`FleetRouter`] — the control-plane process: health probes over the
//!   `MOQOWIRE` handshake, death detection, and warm-state rebalancing —
//!   `PullFrontier` off the old home, `PushFrontier` onto the new one
//!   (validated there exactly like a snapshot restore, never trusted),
//!   then a placement pin. After an *unplanned* death the new home
//!   re-parks the key from the shared store on first demand
//!   ([`FleetRouter::adopt`]), so a warm repeat still generates zero
//!   plans after its home node was killed. The daemonizable liveness
//!   beat [`FleetRouter::watch_tick`] composes all three — probe,
//!   adopt every orphaned key, and one gentle load-leveling move per
//!   tick — and `repro fleet-router --watch <ms>` runs it as a loop
//!   over real node processes until SIGTERM.
//!
//! End to end (asserted by `examples/fleet_serving.rs` and `repro
//! fleet`): kill a node, probe, and the repeat of a query it served
//! starts warm on the surviving home — zero plans generated, client-side
//! view `bits_eq` with the serving node's.

#![warn(missing_docs)]

pub mod client;
pub mod node;
pub mod placement;
pub mod router;

pub use client::{share, FleetClient, FleetSession, SharedPlacement};
pub use node::{FleetNode, FleetNodeConfig};
pub use placement::{NodeEntry, Placement, PlacementKey};
pub use router::{FleetRouter, NodeHealth, Rebalance, WatchTick};
