//! Scale experiment: one node holding thousands of **idle** interactive
//! sessions (`repro net-scale`).
//!
//! The latency experiments (`repro serve`, `repro net`) measure the
//! interactive SLO for one session at a time; this one measures the
//! *capacity* claim behind the readiness-driven front: a single
//! event-loop thread plus a fixed decode pool holds N connected,
//! admitted, idle sessions without a per-connection thread and with
//! bounded per-connection memory. The report samples `/proc/self/status`
//! (so the figures are userspace RSS and real thread counts, client and
//! server side combined — both live in this process) and the server's
//! [`NetStats`](moqo_serve::NetStats) backpressure counters before and
//! while holding the fleet.
//!
//! Sequence: raise `RLIMIT_NOFILE`, bind one [`NetServer`], connect and
//! submit N sessions over a handful of repeated query templates, drain
//! every client to its first frontier, hold the fleet idle, then drop all
//! clients at once (the disconnect-park path) and time the drain and the
//! event-driven shutdown.

use moqo_core::protocol::SessionRequest;
use moqo_cost::ResolutionSchedule;
use moqo_costmodel::StandardCostModel;
use moqo_engine::{EngineConfig, ModelRegistry};
use moqo_query::{testkit, QuerySpec};
use moqo_serve::{
    AdmissionConfig, MoqoServer, NetClient, NetConfig, NetServer, ServeConfig, ShardConfig,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

const IDLE: Duration = Duration::from_secs(600);

/// What one `net-scale` run measured. All memory figures are kibibytes
/// straight from `VmRSS`; they cover the whole process (server *and* the
/// N clients), so `kb_per_conn` is an upper bound on the server's own
/// per-connection footprint.
#[derive(Clone, Debug)]
pub struct NetScaleReport {
    /// Connections actually held (may be clamped below `requested` by the
    /// file-descriptor hard limit).
    pub connections: usize,
    /// Connections asked for on the command line.
    pub requested: usize,
    /// Soft `RLIMIT_NOFILE` after raising it.
    pub nofile_soft: u64,
    /// Distinct query templates cycled over the fleet.
    pub templates: usize,
    /// Mean TCP connect + handshake latency (microseconds).
    pub connect_mean_us: f64,
    /// Median connect + handshake latency.
    pub connect_p50_us: f64,
    /// Worst connect + handshake latency.
    pub connect_max_us: f64,
    /// Mean framed submit → admission frame latency (microseconds).
    pub admit_mean_us: f64,
    /// Median submit → admission latency.
    pub admit_p50_us: f64,
    /// Worst submit → admission latency.
    pub admit_max_us: f64,
    /// Sessions whose first invocation generated zero plans (warm starts
    /// on repeated templates).
    pub zero_plan_starts: usize,
    /// `VmRSS` (kB) after the server started, before any connection.
    pub rss_before_kb: u64,
    /// `VmRSS` (kB) while holding the full idle fleet.
    pub rss_held_kb: u64,
    /// `(rss_held_kb - rss_before_kb) / connections` — process-wide
    /// userspace growth per held connection.
    pub kb_per_conn: f64,
    /// OS threads after the server started, before any connection.
    pub threads_before: u64,
    /// OS threads while holding the full idle fleet — equal to
    /// `threads_before`: connections never spawn threads.
    pub threads_held: u64,
    /// `NetStats::live` while holding (should equal `connections`).
    pub live_held: u64,
    /// `NetStats::live` after the idle hold (still the full fleet).
    pub live_after_hold: u64,
    /// How long the fleet was held idle (milliseconds).
    pub hold_ms: u64,
    /// Faulted connections over the whole run (should stay 0).
    pub faulted: u64,
    /// Stall-expired connections (should stay 0: every client drained).
    pub stalled: u64,
    /// Events merged by the outbound coalescing valve.
    pub coalesced_events: u64,
    /// Largest pending outbound queue (bytes) any connection reached.
    pub outbound_high_water: u64,
    /// Total frames decoded off clients.
    pub frames_in: u64,
    /// Total frames written to clients.
    pub frames_out: u64,
    /// Connections accepted.
    pub accepted: u64,
    /// Sessions parked warm when their clients vanished.
    pub disconnect_parked: u64,
    /// Dropping all N clients → `live == 0` (milliseconds).
    pub drain_ms: f64,
    /// `NetServer::shutdown` wall time (milliseconds).
    pub shutdown_ms: f64,
}

/// Reads `VmRSS` (kB) and `Threads` for this process. Returns zeros on
/// non-Linux /proc layouts so the experiment still runs (memory columns
/// just read 0).
pub fn proc_status() -> (u64, u64) {
    let text = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    let field = |key: &str| {
        text.lines()
            .find(|l| l.starts_with(key))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    (field("VmRSS:"), field("Threads:"))
}

/// The small template set the fleet cycles over: enough shapes to spread
/// across shards, few enough that repeats dominate and the warm cache
/// carries most of the plan work.
pub fn net_scale_templates() -> Vec<Arc<QuerySpec>> {
    vec![
        Arc::new(testkit::chain_query(2, 40_000)),
        Arc::new(testkit::chain_query(3, 45_000)),
        Arc::new(testkit::star_query(3, 60_000)),
        Arc::new(testkit::chain_query(2, 55_000)),
    ]
}

fn sorted_stats(mut us: Vec<f64>) -> (f64, f64, f64) {
    us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = us.iter().sum::<f64>() / us.len().max(1) as f64;
    let p50 = us.get(us.len() / 2).copied().unwrap_or(0.0);
    let max = us.last().copied().unwrap_or(0.0);
    (mean, p50, max)
}

/// Runs the experiment at `requested` connections, clamped to what the
/// file-descriptor limit allows (each held connection costs two fds in
/// this single-process harness: the client socket and the server socket).
pub fn net_scale_experiment(requested: usize, fast: bool) -> NetScaleReport {
    let nofile_soft = moqo_poll::raise_nofile_limit(requested as u64 * 2 + 512).unwrap_or(1024);
    let usable = (nofile_soft.saturating_sub(256) / 2) as usize;
    let connections = requested.min(usable).max(1);

    let model: moqo_costmodel::SharedCostModel = Arc::new(StandardCostModel::paper_metrics());
    let server = Arc::new(MoqoServer::new(
        model.clone(),
        ResolutionSchedule::linear(1, 1.1, 0.5),
        ServeConfig {
            shard: ShardConfig {
                shards: 2,
                engine: EngineConfig {
                    workers: 2,
                    ..EngineConfig::default()
                },
                rebalance_headroom: 8,
            },
            admission: AdmissionConfig {
                max_live: connections + 16,
                ..AdmissionConfig::default()
            },
            retired_tickets: connections + 16,
        },
    ));
    let registry = Arc::new(ModelRegistry::with_default(model));
    let net = NetServer::bind(server, registry, NetConfig::default()).expect("bind 127.0.0.1:0");
    let addr = net.local_addr();
    let templates = net_scale_templates();

    // Pre-warm: one sequential session per template parks its frontier,
    // so the fleet's first repeat of each template starts at zero plans
    // (the rest run concurrently and cannot all share one parked state).
    for spec in &templates {
        let mut client = NetClient::connect(addr).expect("connect over loopback");
        client
            .submit(SessionRequest::new(spec.clone()), IDLE)
            .expect("admitted");
        while client.view().frontier.is_empty() {
            client.recv(IDLE).expect("healthy stream");
        }
        client
            .command(moqo_core::SessionCommand::Cancel)
            .expect("send");
        client.wait_finished(IDLE).expect("terminal event");
    }

    let (rss_before_kb, threads_before) = proc_status();

    // Connect and submit the whole fleet; each session runs its (tiny)
    // resolution ladder and then sits idle awaiting commands.
    let mut clients: Vec<NetClient> = Vec::with_capacity(connections);
    let mut connect_us: Vec<f64> = Vec::with_capacity(connections);
    let mut admit_us: Vec<f64> = Vec::with_capacity(connections);
    for i in 0..connections {
        let t0 = Instant::now();
        let mut client = NetClient::connect(addr).expect("connect over loopback");
        connect_us.push(t0.elapsed().as_secs_f64() * 1e6);
        let spec = templates[i % templates.len()].clone();
        let t1 = Instant::now();
        client
            .submit(SessionRequest::new(spec), IDLE)
            .expect("admitted");
        admit_us.push(t1.elapsed().as_secs_f64() * 1e6);
        clients.push(client);
    }
    assert!(
        net.moqo().wait_idle(IDLE),
        "engine did not go idle under the held fleet"
    );

    // Drain every client to its first frontier and first report: this
    // proves end-to-end delivery for all N streams, not just admission.
    let mut zero_plan_starts = 0usize;
    for client in &mut clients {
        while client.view().frontier.is_empty() || client.view().first_report.is_none() {
            client.recv(IDLE).expect("healthy stream");
        }
        if client
            .view()
            .first_report
            .as_ref()
            .is_some_and(|r| r.plans_generated == 0)
        {
            zero_plan_starts += 1;
        }
    }

    // Quiesce every stream exactly: the engine is idle, so the server's
    // view epoch per ticket is final — recv until the client has caught
    // up. Without this, frames still in flight would turn the bulk drop
    // below into TCP resets (counted as faults) instead of orderly EOFs.
    for client in &mut clients {
        let ticket = moqo_serve::Ticket::from_u64(client.server_ticket().expect("admitted"));
        let target = match net.moqo().poll(ticket) {
            Some(moqo_serve::TicketStatus::Active { view, .. }) => view.epoch,
            other => panic!("held session not active: {other:?}"),
        };
        while client.view().epoch < target {
            client.recv(IDLE).expect("healthy stream");
        }
    }

    let (rss_held_kb, threads_held) = proc_status();
    let held = net.stats();

    // Hold the fleet idle: nothing polls, nothing spins — the loop thread
    // blocks in the reactor the whole time.
    let hold_ms: u64 = if fast { 150 } else { 500 };
    std::thread::sleep(Duration::from_millis(hold_ms));
    let after_hold = net.stats();

    // Drop all N clients at once: every live session takes the
    // disconnect-park path and the fleet drains to zero.
    let t_drain = Instant::now();
    drop(clients);
    let drain_deadline = Instant::now() + IDLE;
    while net.stats().live != 0 {
        assert!(Instant::now() < drain_deadline, "fleet did not drain");
        std::thread::sleep(Duration::from_millis(2));
    }
    let drain_ms = t_drain.elapsed().as_secs_f64() * 1e3;
    let end = net.stats();

    let t_stop = Instant::now();
    net.shutdown();
    let shutdown_ms = t_stop.elapsed().as_secs_f64() * 1e3;

    let (connect_mean_us, connect_p50_us, connect_max_us) = sorted_stats(connect_us);
    let (admit_mean_us, admit_p50_us, admit_max_us) = sorted_stats(admit_us);
    NetScaleReport {
        connections,
        requested,
        nofile_soft,
        templates: templates.len(),
        connect_mean_us,
        connect_p50_us,
        connect_max_us,
        admit_mean_us,
        admit_p50_us,
        admit_max_us,
        zero_plan_starts,
        rss_before_kb,
        rss_held_kb,
        kb_per_conn: rss_held_kb.saturating_sub(rss_before_kb) as f64 / connections as f64,
        threads_before,
        threads_held,
        live_held: held.live,
        live_after_hold: after_hold.live,
        hold_ms,
        faulted: end.faulted,
        stalled: end.stalled,
        coalesced_events: end.coalesced_events,
        outbound_high_water: end.outbound_high_water,
        frames_in: end.frames_in,
        frames_out: end.frames_out,
        accepted: end.accepted,
        disconnect_parked: end.disconnect_parked,
        drain_ms,
        shutdown_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holds_an_idle_fleet_without_per_connection_threads() {
        let n = 192;
        let report = net_scale_experiment(n, true);
        assert_eq!(report.connections, n, "fd limit clamped the smoke run");
        assert_eq!(report.live_held, n as u64);
        assert_eq!(report.live_after_hold, n as u64, "sessions died while idle");
        assert_eq!(report.faulted, 0);
        assert_eq!(report.stalled, 0);
        // The capacity claim: N connections, zero new threads.
        assert_eq!(report.threads_held, report.threads_before);
        // Every session delivered its first frontier; repeats of the
        // four templates must hit the warm cache at least sometimes.
        assert!(report.zero_plan_starts > 0);
        assert_eq!(report.disconnect_parked, n as u64);
        assert!(report.shutdown_ms < 1000.0);
    }
}
