//! Physical properties — interesting tuple orders.
//!
//! Section 4.3: dynamic-programming optimizers distinguish plans that
//! produce different interesting tuple orders; cost-based pruning is
//! restricted to plans producing *similar* orders, generalized here to the
//! multi-objective case. We model an order as the join-graph edge whose key
//! the output is sorted on (an opaque [`OrderKey`]).

/// Identifies a sort key (an edge of the join graph, by index).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OrderKey(pub u16);

/// Physical properties of a plan's output.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct PhysicalProps {
    /// The sort order of the output, if any.
    pub order: Option<OrderKey>,
}

impl PhysicalProps {
    /// Unordered output (hash joins, plain scans).
    pub const NONE: PhysicalProps = PhysicalProps { order: None };

    /// Output sorted on `key`.
    #[inline]
    pub fn sorted(key: OrderKey) -> Self {
        PhysicalProps { order: Some(key) }
    }

    /// True if a plan with properties `self` can replace a plan with
    /// properties `other` without losing an order that downstream
    /// operators might exploit.
    ///
    /// A sorted output satisfies both the same-order requirement and the
    /// no-order requirement; an unsorted output only satisfies the latter.
    /// Pruning may therefore only discard a plan in favour of one whose
    /// properties *satisfy* the discarded plan's properties.
    #[inline]
    pub fn satisfies(&self, other: &PhysicalProps) -> bool {
        match other.order {
            None => true,
            Some(key) => self.order == Some(key),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn satisfaction_rules() {
        let none = PhysicalProps::NONE;
        let a = PhysicalProps::sorted(OrderKey(0));
        let b = PhysicalProps::sorted(OrderKey(1));
        // Anything satisfies "no required order".
        assert!(none.satisfies(&none));
        assert!(a.satisfies(&none));
        // Only the same order satisfies a sorted requirement.
        assert!(a.satisfies(&a));
        assert!(!b.satisfies(&a));
        assert!(!none.satisfies(&a));
    }

    #[test]
    fn satisfies_is_reflexive_and_transitive() {
        let props = [
            PhysicalProps::NONE,
            PhysicalProps::sorted(OrderKey(0)),
            PhysicalProps::sorted(OrderKey(3)),
        ];
        for p in &props {
            assert!(p.satisfies(p));
        }
        for a in &props {
            for b in &props {
                for c in &props {
                    if a.satisfies(b) && b.satisfies(c) {
                        assert!(a.satisfies(c));
                    }
                }
            }
        }
    }
}
