//! SQL front-end demo: parse a nested SQL statement, decompose it into
//! query blocks (Section 4.3 of the paper), and optimize each block with
//! IAMA, selecting a plan per block with a programmatic preference.
//!
//! ```text
//! cargo run --release --example sql_frontend
//! ```

use moqo::core::Preference;
use moqo::prelude::*;
use std::sync::Arc;

fn main() {
    let catalog = moqo::tpch::tpch_catalog(0.1);

    // A nested statement in the spirit of TPC-H Q18/Q20: an outer join
    // block plus an IN sub-query block.
    let sql = "SELECT c.c_custkey, o.o_orderkey \
               FROM customer c, orders o, lineitem l \
               WHERE c.c_custkey = o.o_custkey \
                 AND o.o_orderkey = l.l_orderkey \
                 AND c.c_mktsegment = 'AUTOMOBILE' \
                 AND o.o_orderkey IN ( \
                    SELECT ps.ps_partkey FROM partsupp ps, supplier s \
                    WHERE ps.ps_suppkey = s.s_suppkey \
                      AND s.s_nationkey = 7)";
    println!("SQL:\n{sql}\n");

    let blocks = moqo::sql::plan_blocks(sql, &catalog).expect("valid statement");
    println!("decomposed into {} query blocks\n", blocks.len());

    let model = Arc::new(StandardCostModel::paper_metrics());
    // A programmatic consumer can state its preference up front (the
    // prior-work mode the paper contrasts with interactive MOQO): here,
    // minimize time, but never accept more than 2 % result error and
    // break near-ties by core usage.
    let prefer = Preference::Lexicographic {
        order: vec![0, 1],
        tolerance: 0.02,
    };
    let error_budget = Bounds::unbounded(model.dim()).with_limit(2, 0.02);

    for spec in &blocks {
        let schedule = ResolutionSchedule::linear(8, 1.01, 0.3);
        let mut opt = IamaOptimizer::new(Arc::new(spec.clone()), model.clone(), schedule.clone());
        let unbounded = Bounds::unbounded(model.dim());
        for r in 0..=schedule.r_max() {
            opt.optimize(&unbounded, r);
        }
        let frontier = opt.frontier(&unbounded, schedule.r_max());
        let chosen = prefer
            .select(&frontier, &error_budget)
            .expect("well-formed preference")
            .expect("a plan within the error budget");
        println!(
            "block {:<4} ({} tables): {} tradeoffs, picked time={:.2} cores={:.0} error={:.3}",
            spec.name,
            spec.n_tables(),
            frontier.len(),
            chosen.cost[0],
            chosen.cost[1],
            chosen.cost[2],
        );
        println!("{}", moqo::plan::explain(opt.arena(), chosen.plan));
    }
}
