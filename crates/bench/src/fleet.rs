//! Fleet experiment: the kill-and-repeat story over **real processes**
//! (`repro fleet`).
//!
//! The fleet integration tests and `examples/fleet_serving.rs` run their
//! nodes in-process (deterministic, CI-cheap); this experiment spawns N
//! actual `repro fleet-node` child processes over loopback TCP and
//! SIGKILLs one of them mid-experiment, so process isolation is real:
//! the dead node's in-memory warm state is genuinely gone, and the only
//! path back to zero-plan repeats is the fleet machinery — placement
//! rebalance, router adoption, and the shared `SnapshotStore` directory.
//!
//! Phases reported (submit→first-frontier, socket to socket):
//!
//! 1. **cold** — every fingerprint is new; sessions park on their
//!    placement homes and the sweepers persist them to the shared store.
//! 2. **warm** — exact repeats; every session resumes its parked
//!    frontier (zero plans generated).
//! 3. **post-kill warm** — the home node of the first workload key is
//!    SIGKILLed, the router probes and marks it dead, orphaned keys are
//!    adopted from the shared store by their new homes, and the repeats
//!    **still** all start at zero plans. The driver also re-runs the
//!    orphaned key to ladder saturation and checks the client-side
//!    [`SessionView`](moqo_core::protocol::SessionView) `bits_eq`
//!    against the frontier the serving node parked.

use moqo_core::protocol::{SessionCommand, SessionRequest};
use moqo_core::IamaOptimizer;
use moqo_costmodel::{SharedCostModel, StandardCostModel};
use moqo_engine::QueryFingerprint;
use moqo_fleet::{share, FleetClient, FleetNode, FleetNodeConfig, FleetRouter, Placement};
use moqo_query::{testkit, QuerySpec};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

const IDLE: Duration = Duration::from_secs(600);

/// Sweep cadence of spawned nodes: short, so the cold pass reaches the
/// shared store quickly and the kill loses at most a beat of state.
const SWEEP: Duration = Duration::from_millis(25);

/// Latency and warm-start figures for one pass of the fleet workload.
#[derive(Clone, Debug)]
pub struct FleetPhaseReport {
    /// `"cold"`, `"warm"`, or `"post-kill warm"`.
    pub label: &'static str,
    /// Sessions driven (one placement-routed connection each).
    pub sessions: usize,
    /// Mean submit→first-frontier latency (microseconds).
    pub mean_us: f64,
    /// Median latency (microseconds).
    pub p50_us: f64,
    /// Worst latency (microseconds).
    pub max_us: f64,
    /// Sessions whose first invocation generated zero plans.
    pub zero_plan_starts: usize,
}

/// What the whole kill-and-repeat run observed.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// Node processes spawned.
    pub nodes: usize,
    /// Id of the SIGKILLed node.
    pub killed: String,
    /// Workload keys whose home was the killed node.
    pub orphaned: usize,
    /// Orphaned keys the router warmed on their new homes from the
    /// shared store (asserted equal to `orphaned`).
    pub adopted_warm: usize,
    /// Whether the client-side view of the post-kill repeat was
    /// `bits_eq` with the frontier its serving node parked.
    pub view_bits_eq: bool,
    /// Per-node session route counts at the end of the run.
    pub routes: Vec<(String, u64)>,
    /// The cold / warm / post-kill passes.
    pub phases: Vec<FleetPhaseReport>,
}

/// Distinct chain and star fingerprints, repeated verbatim by the warm
/// passes (mirrors `net_workload`, smaller: each session crosses a
/// process boundary).
pub fn fleet_workload(fast: bool) -> Vec<Arc<QuerySpec>> {
    let mut specs: Vec<Arc<QuerySpec>> = Vec::new();
    let top = if fast { 3 } else { 4 };
    for n in 2..=top {
        specs.push(Arc::new(testkit::chain_query(n, 55_000)));
        specs.push(Arc::new(testkit::star_query(n, 85_000)));
    }
    specs
}

/// The child half of `repro fleet`: serves one fleet node until stdin
/// reaches EOF (which the parent's exit guarantees), then stops
/// gracefully. Announces `LISTENING <addr>` on stdout so the parent can
/// build the placement. Never returns.
pub fn fleet_node_serve(id: &str, store: &Path) -> ! {
    let model: SharedCostModel = Arc::new(StandardCostModel::paper_metrics());
    let node = FleetNode::start(
        model,
        FleetNodeConfig::loopback(id)
            .with_store(store)
            .with_sweep(SWEEP),
    )
    .expect("bind loopback");
    println!("LISTENING {}", node.addr());
    let _ = std::io::stdout().flush();
    // Park until the parent closes our stdin; a SIGKILL from the parent
    // (the experiment's whole point) never reaches this line.
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
    node.stop();
    std::process::exit(0)
}

/// Spawns one `repro fleet-node` child and reads its announced address.
fn spawn_node(exe: &Path, id: &str, store: &Path) -> (Child, String) {
    let mut child = Command::new(exe)
        .arg("fleet-node")
        .arg("--id")
        .arg(id)
        .arg("--store")
        .arg(store)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn fleet node process");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("node announces itself");
    let addr = line
        .trim()
        .strip_prefix("LISTENING ")
        .unwrap_or_else(|| panic!("bad node announcement {line:?}"))
        .to_string();
    (child, addr)
}

/// Drives every spec through its own placement-routed session, recording
/// submit→first-frontier latency; sessions are cancelled afterwards so
/// their frontiers park (and sweep to the store) for the next pass.
fn run_phase(
    client: &FleetClient,
    specs: &[Arc<QuerySpec>],
    label: &'static str,
) -> FleetPhaseReport {
    let mut us: Vec<f64> = Vec::with_capacity(specs.len());
    let mut zero_plan_starts = 0usize;
    for spec in specs {
        let t0 = Instant::now();
        let mut session = client
            .submit(SessionRequest::new(spec.clone()))
            .expect("routed to a live node");
        assert!(session.admission.is_admitted());
        while session.client.view().frontier.is_empty() {
            session.client.recv(IDLE).expect("healthy stream");
        }
        us.push(t0.elapsed().as_secs_f64() * 1e6);
        while session.client.view().first_report.is_none() {
            session.client.recv(IDLE).expect("healthy stream");
        }
        if session
            .client
            .view()
            .first_report
            .as_ref()
            .is_some_and(|r| r.plans_generated == 0)
        {
            zero_plan_starts += 1;
        }
        session
            .client
            .command(SessionCommand::Cancel)
            .expect("send");
        session.client.wait_finished(IDLE).expect("terminal event");
    }
    us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    FleetPhaseReport {
        label,
        sessions: specs.len(),
        mean_us: us.iter().sum::<f64>() / us.len() as f64,
        p50_us: us[us.len() / 2],
        max_us: us.last().copied().unwrap_or(0.0),
        zero_plan_starts,
    }
}

/// Runs one key to ladder saturation on its (post-kill) home and checks
/// the client-side view `bits_eq` the frontier the node parked: the pull
/// endpoint hands back the parked `export_frontier` bytes, and the
/// re-imported optimizer's target-resolution frontier must be
/// bit-identical to what the deltas reassembled client-side.
fn view_matches_served_frontier(
    client: &FleetClient,
    model: &SharedCostModel,
    spec: Arc<QuerySpec>,
    fp: QueryFingerprint,
) -> bool {
    let mut session = client
        .submit(SessionRequest::new(spec))
        .expect("routed to a live node");
    assert!(session.admission.is_admitted());
    // Saturate the ladder: once the *next* resolution equals the one the
    // last invocation ran at, that invocation ran at the target r_max —
    // so the last event's frontier is the r_max frontier.
    loop {
        let view = session.client.view();
        if view
            .last_report
            .as_ref()
            .is_some_and(|r| r.resolution == view.resolution)
        {
            break;
        }
        session.client.recv(IDLE).expect("healthy stream");
    }
    session
        .client
        .command(SessionCommand::Cancel)
        .expect("send");
    session.client.wait_finished(IDLE).expect("terminal event");
    let bounds = session.client.view().bounds.expect("bounds seen");
    let blob = client
        .pull_frontier(fp)
        .expect("control pull answered")
        .expect("the serving node parked the session");
    let opt = IamaOptimizer::import_frontier(model.clone(), &blob).expect("self-validating bytes");
    let served = opt.frontier(&bounds, opt.schedule().r_max());
    served.bits_eq(&session.client.view().frontier)
}

/// What a bounded `repro fleet-router --watch` run observed in total.
#[derive(Clone, Debug, Default)]
pub struct WatchReport {
    /// Liveness-loop beats executed.
    pub ticks: u64,
    /// Nodes found dead across the run.
    pub deaths: usize,
    /// Keys orphaned by those deaths.
    pub orphaned: usize,
    /// Orphaned keys re-parked warm from the shared store.
    pub adopted_warm: usize,
    /// Keys shipped warm between nodes by load leveling.
    pub rebalanced: usize,
}

/// The daemonizable liveness loop behind `repro fleet-router --watch
/// <ms>`: spawns 3 real `repro fleet-node` processes over a shared
/// snapshot directory, parks the workload on them, then runs
/// [`FleetRouter::watch_tick`] every `every` — probe, adopt orphans
/// after a death, level skewed ownership — printing one line per beat.
///
/// With `ticks: None` the loop runs until the process dies (SIGTERM is
/// the intended stop; the node children notice the closed stdin pipes
/// and drain gracefully). A bounded run (`ticks: Some(n)`, the `--ticks`
/// flag) additionally SIGKILLs one node after the second beat so the
/// death-detection and store-adoption paths demonstrably fire, then
/// tears the fleet down and reports totals.
pub fn fleet_router_watch(
    exe: &Path,
    every: Duration,
    ticks: Option<u64>,
    fast: bool,
) -> WatchReport {
    let model: SharedCostModel = Arc::new(StandardCostModel::paper_metrics());
    let dir = std::env::temp_dir().join(format!("moqo-fleet-watch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let n = 3;
    let mut children: HashMap<String, Child> = HashMap::new();
    let mut placement = Placement::new();
    for i in 0..n {
        let id = format!("node-{i}");
        let (child, addr) = spawn_node(exe, &id, &dir);
        placement.add_node(&id, addr);
        children.insert(id, child);
    }
    let placement = share(placement);
    let client = FleetClient::new(placement.clone(), model.clone());
    let router = FleetRouter::new(placement.clone());

    // Park the workload and wait for the sweepers to persist it — the
    // state a mid-loop death must not destroy.
    let specs = fleet_workload(fast);
    let fps: Vec<QueryFingerprint> = specs
        .iter()
        .map(|s| client.fingerprint(&SessionRequest::new(s.clone())))
        .collect();
    run_phase(&client, &specs, "park");
    let deadline = Instant::now() + IDLE;
    for fp in &fps {
        let file = dir.join(format!("{:016x}.frontier", fp.as_u64()));
        while !file.exists() {
            assert!(Instant::now() < deadline, "sweep never persisted {file:?}");
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    println!(
        "watching {} keys on {} nodes every {:?} ({})",
        fps.len(),
        n,
        every,
        match ticks {
            Some(t) => format!("{t} ticks, one induced kill"),
            None => "until SIGTERM".to_string(),
        }
    );

    let mut report = WatchReport::default();
    loop {
        std::thread::sleep(every);
        if ticks.is_some() && report.ticks == 2 {
            // Bounded demo runs induce the failure they exist to repair:
            // SIGKILL the current home of the first workload key.
            let victim = placement
                .read()
                .unwrap()
                .home_of(fps[0])
                .expect("live fleet")
                .id
                .clone();
            if let Some(mut corpse) = children.remove(&victim) {
                corpse.kill().expect("SIGKILL");
                corpse.wait().expect("reap");
                println!("tick {}: SIGKILLed {victim}", report.ticks);
            }
        }
        let tick = router.watch_tick(&fps, 2);
        report.ticks += 1;
        report.deaths += tick.died.len();
        report.orphaned += tick.orphaned;
        report.adopted_warm += tick.adopted_warm;
        report.rebalanced += tick.rebalanced;
        println!(
            "tick {}: {} alive, died {:?}, orphaned {}, adopted warm {}, \
             adopted cold {}, rebalanced {}",
            report.ticks,
            tick.health.iter().filter(|h| h.alive).count(),
            tick.died,
            tick.orphaned,
            tick.adopted_warm,
            tick.adopted_cold,
            tick.rebalanced,
        );
        if ticks.is_some_and(|t| report.ticks >= t) {
            break;
        }
    }

    for (_, mut child) in children {
        drop(child.stdin.take());
        let _ = child.wait();
    }
    let _ = std::fs::remove_dir_all(&dir);
    report
}

/// Spawns `nodes` real `repro fleet-node` processes over one shared
/// snapshot directory, runs the cold and warm passes, SIGKILLs the home
/// of the first workload key, and proves the post-kill repeats still all
/// start at zero plans — asserting every step. `exe` is the `repro`
/// binary itself (`std::env::current_exe()` in the CLI,
/// `env!("CARGO_BIN_EXE_repro")` in tests).
pub fn fleet_experiment(exe: &Path, fast: bool) -> FleetReport {
    let model: SharedCostModel = Arc::new(StandardCostModel::paper_metrics());
    let dir = std::env::temp_dir().join(format!("moqo-fleet-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let n = 3;
    let mut children: HashMap<String, Child> = HashMap::new();
    let mut placement = Placement::new();
    for i in 0..n {
        let id = format!("node-{i}");
        let (child, addr) = spawn_node(exe, &id, &dir);
        placement.add_node(&id, addr);
        children.insert(id, child);
    }
    let placement = share(placement);
    let client = FleetClient::new(placement.clone(), model.clone());
    let router = FleetRouter::new(placement.clone());

    let specs = fleet_workload(fast);
    let fps: Vec<QueryFingerprint> = specs
        .iter()
        .map(|s| client.fingerprint(&SessionRequest::new(s.clone())))
        .collect();
    let homes: Vec<String> = fps
        .iter()
        .map(|fp| {
            placement
                .read()
                .unwrap()
                .home_of(*fp)
                .expect("live fleet")
                .id
                .clone()
        })
        .collect();

    let cold = run_phase(&client, &specs, "cold");
    let warm = run_phase(&client, &specs, "warm");
    assert_eq!(cold.zero_plan_starts, 0, "first sight cannot be warm");
    assert_eq!(
        warm.zero_plan_starts, warm.sessions,
        "every warm repeat must resume its parked frontier"
    );

    // Wait until every fingerprint's sweep reached the shared store —
    // the state the kill must not be able to destroy.
    let deadline = Instant::now() + IDLE;
    for fp in &fps {
        let file = dir.join(format!("{:016x}.frontier", fp.as_u64()));
        while !file.exists() {
            assert!(Instant::now() < deadline, "sweep never persisted {file:?}");
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    // SIGKILL the home of the first key: its in-memory frontiers are
    // gone for real; only the shared store survives.
    let victim = homes[0].clone();
    let mut corpse = children.remove(&victim).expect("victim is running");
    corpse.kill().expect("SIGKILL");
    corpse.wait().expect("reap");

    let health = router.probe();
    assert!(
        health.iter().any(|h| h.id == victim && !h.alive),
        "the probe must find the body: {health:?}"
    );
    let orphans: Vec<QueryFingerprint> = fps
        .iter()
        .zip(&homes)
        .filter(|(_, home)| **home == victim)
        .map(|(fp, _)| *fp)
        .collect();
    let mut adopted_warm = 0usize;
    for fp in &orphans {
        let new_home = placement
            .read()
            .unwrap()
            .home_of(*fp)
            .expect("survivors left")
            .id
            .clone();
        assert_ne!(new_home, victim, "a dead node must not own keys");
        if router.adopt(*fp).expect("pull answered").is_some() {
            adopted_warm += 1;
        }
    }
    assert_eq!(
        adopted_warm,
        orphans.len(),
        "every orphaned key must adopt from the shared store"
    );

    // The acceptance assertion: repeats after the kill are still all
    // zero-plan starts — survivors kept their keys warm, orphans were
    // re-parked from the store by their new homes.
    let post = run_phase(&client, &specs, "post-kill warm");
    assert_eq!(
        post.zero_plan_starts, post.sessions,
        "a warm repeat must survive its home node's death"
    );
    let view_bits_eq = view_matches_served_frontier(&client, &model, specs[0].clone(), fps[0]);
    assert!(
        view_bits_eq,
        "client view diverged from the serving node across the hand-off"
    );

    let routes: Vec<(String, u64)> = placement
        .read()
        .unwrap()
        .route_counts()
        .iter()
        .map(|(id, n)| (id.clone(), *n))
        .collect();
    // Graceful teardown: closing stdin is the stop signal.
    for (_, mut child) in children {
        drop(child.stdin.take());
        let _ = child.wait();
    }
    let _ = std::fs::remove_dir_all(&dir);
    FleetReport {
        nodes: n,
        killed: victim,
        orphaned: orphans.len(),
        adopted_warm,
        view_bits_eq,
        routes,
        phases: vec![cold, warm, post],
    }
}
