//! Sharded serving demo: ~64 sessions across 4 shards, admission-controlled,
//! with a kill/restore cycle over the persistent warm state.
//!
//! ```text
//! cargo run --release --example sharded_serving
//! ```
//!
//! The demo exercises the three serving-front guarantees end to end:
//!
//! (a) **warm-shard routing** — a repeated fingerprint routes to the shard
//!     whose frontier cache parks its optimizer and reports a cache hit
//!     (first invocation generates zero plans);
//! (b) **backpressure** — submissions beyond the admission bound are
//!     degraded (coarser resolution ladder) or rejected, never queued
//!     without bound;
//! (c) **persistence** — after snapshot → kill → restore, the first
//!     invocation of a known query still generates zero fresh plans
//!     (asserted via `OptimizerStats`/`InvocationReport`).

use moqo::prelude::*;
use moqo::serve::TicketStatus;
use moqo::viz::TextTable;
use std::sync::Arc;
use std::time::Duration;

const IDLE: Duration = Duration::from_secs(300);

fn server(snapshot_tag: &str) -> (MoqoServer, SnapshotStore) {
    let model = Arc::new(StandardCostModel::paper_metrics());
    let schedule = ResolutionSchedule::linear(4, 1.02, 0.4);
    let config = ServeConfig {
        shard: ShardConfig {
            shards: 4,
            engine: EngineConfig {
                workers: 2,
                ..EngineConfig::default()
            },
            rebalance_headroom: 8,
        },
        admission: AdmissionConfig {
            max_live: 48,
            policy: AdmissionPolicy::Degrade {
                // Load shedding via the resolution ladder: overload
                // sessions run 2 coarse levels instead of 5 fine ones.
                schedule: ResolutionSchedule::linear(1, 1.25, 0.5),
                hard_cap: 60,
            },
        },
        ..ServeConfig::default()
    };
    let store = SnapshotStore::new(std::env::temp_dir().join(snapshot_tag));
    (MoqoServer::new(model, schedule, config), store)
}

/// A skewed template workload: a few hot query shapes dominate, the tail
/// is ad hoc — the distribution shard-local caches thrive on.
fn workload() -> Vec<Arc<QuerySpec>> {
    let mut templates: Vec<Arc<QuerySpec>> = Vec::new();
    for name in ["q03", "q05", "q07", "q09"] {
        templates.push(Arc::new(
            moqo::tpch::query_block(name, 0.01).expect("tpch block"),
        ));
    }
    for n in 2..=5 {
        templates.push(Arc::new(moqo::query::testkit::chain_query(n, 60_000)));
        templates.push(Arc::new(moqo::query::testkit::star_query(n, 90_000)));
    }
    for seed in [3, 7, 11, 13] {
        templates.push(Arc::new(moqo::query::testkit::random_query(4, seed)));
    }
    // Zipf-ish skew: template k is submitted ~16/(k+1) times, 64 total.
    let mut specs = Vec::new();
    let mut k = 0usize;
    while specs.len() < 64 {
        let copies = (16 / (k + 1)).max(1);
        for _ in 0..copies {
            if specs.len() < 64 {
                specs.push(templates[k % templates.len()].clone());
            }
        }
        k += 1;
    }
    specs
}

fn main() {
    let snapshot_tag = format!("moqo-sharded-serving-{}", std::process::id());
    let (srv, store) = server(&snapshot_tag);
    let specs = workload();
    println!(
        "submitting {} sessions (skewed over {} distinct fingerprints) to 4 shards...",
        specs.len(),
        {
            let mut fps: Vec<u64> = specs
                .iter()
                .map(|s| srv.engine().fingerprint(s).as_u64())
                .collect();
            fps.sort_unstable();
            fps.dedup();
            fps.len()
        }
    );

    // --- Phase 1: burst admission. Beyond max_live=48 the degrade policy
    // kicks in; beyond hard_cap=60 submissions are rejected outright. ---
    // Admission decisions are protocol-level responses, visible at
    // submission time without a poll round-trip.
    let mut tickets: Vec<Ticket> = Vec::new();
    let (mut full, mut degraded, mut rejected) = (0, 0, 0);
    for spec in &specs {
        let (t, response) = srv
            .submit(SessionRequest::new(spec.clone()))
            .expect("well-formed request");
        tickets.push(t);
        match response {
            AdmissionResponse::Admitted => full += 1,
            AdmissionResponse::Degraded { .. } => degraded += 1,
            AdmissionResponse::Rejected(_) => rejected += 1,
            AdmissionResponse::Queued { .. } => unreachable!("degrade policy never queues"),
        }
    }
    println!(
        "admission under burst: {full} full-resolution, {degraded} degraded, {rejected} rejected"
    );
    // (b) backpressure: the overload was shed, not buffered.
    assert_eq!(full, 48, "admission bound not enforced");
    assert_eq!(degraded, 12, "degrade window not applied");
    assert_eq!(rejected, 4, "hard cap not enforced");
    assert_eq!(srv.stats().pending, 0, "nothing may queue unboundedly");

    assert!(srv.wait_idle(IDLE), "shards did not drain");
    let mut table = TextTable::new(vec![
        "shard",
        "live",
        "warm routed",
        "cold routed",
        "rebalanced in",
        "plan-cache hits",
    ]);
    for s in srv.stats().shards {
        table.row(vec![
            s.shard.to_string(),
            s.live.to_string(),
            s.warm_routed.to_string(),
            s.cold_routed.to_string(),
            s.rebalanced_in.to_string(),
            s.plans.hits.to_string(),
        ]);
    }
    println!("{}", table.render());

    // --- Phase 2: retire everything; frontiers park per shard. ---
    for &t in &tickets {
        let _ = srv.finish(t);
    }
    assert_eq!(srv.stats().live, 0);

    // (a) warm-shard routing: a repeat of a hot template routes to the
    // shard holding its parked frontier and generates zero plans.
    let hot = specs[0].clone();
    let fp = srv.engine().fingerprint(&hot);
    let home = srv.engine().home_shard(fp);
    let (t, response) = srv.submit(hot.clone()).expect("well-formed request");
    assert!(response.is_admitted());
    assert!(srv.wait_idle(IDLE));
    match srv.poll(t).expect("known ticket") {
        TicketStatus::Active {
            session,
            route,
            warm_start,
            view,
            ..
        } => {
            assert!(route.is_warm(), "expected warm routing, got {route:?}");
            assert!(warm_start, "session missed its shard's cache");
            let first = view.first_report.as_ref().expect("ran");
            assert_eq!(first.plans_generated, 0, "warm start rebuilt plans");
            println!(
                "warm repeat of '{}': shard {} (home {}), route {:?}, \
                 first invocation generated {} plans, frontier {}",
                hot.name,
                session.shard,
                home,
                route,
                first.plans_generated,
                view.frontier.len()
            );
        }
        other => panic!("expected active warm repeat, got {other:?}"),
    }
    srv.finish(t).expect("retire warm repeat");

    // --- Phase 3: snapshot, kill, restore. ---
    let saved = store.save(srv.engine()).expect("snapshot");
    println!(
        "snapshot: {} frontier file(s), {} bytes -> {}",
        saved.written,
        saved.bytes,
        store.dir().display()
    );
    assert!(saved.written > 0);
    drop(srv); // kill: worker pools join, every in-memory frontier is gone

    let (srv2, _) = server(&snapshot_tag);
    let restored = store.restore(srv2.engine()).expect("restore");
    println!("restarted server: {restored}");
    assert_eq!(restored.restored, saved.written);
    assert!(restored.skipped.is_empty());

    // (c) persistence: the restarted server's first invocation of a known
    // query generates zero fresh plans.
    let (t, _) = srv2.submit(hot.clone()).expect("well-formed request");
    assert!(srv2.wait_idle(IDLE));
    match srv2.poll(t).expect("known ticket") {
        TicketStatus::Active {
            route,
            warm_start,
            view,
            ..
        } => {
            assert!(route.is_warm(), "restored frontier not found by router");
            assert!(warm_start);
            let first = view.first_report.as_ref().expect("ran");
            assert_eq!(
                first.plans_generated, 0,
                "restored frontier regenerated plans"
            );
            println!(
                "post-restore repeat of '{}': route {:?}, first invocation generated {} plans \
                 ({} tradeoffs served from disk-persisted state)",
                hot.name,
                route,
                first.plans_generated,
                view.frontier.len()
            );
        }
        other => panic!("expected active post-restore repeat, got {other:?}"),
    }

    let _ = std::fs::remove_dir_all(store.dir());
    println!("ok: warm routing, bounded admission, and restart persistence all verified");
}
