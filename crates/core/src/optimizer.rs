//! The incremental optimizer — Algorithms 2 and 3 of the paper.

use crate::config::IamaConfig;
use crate::frontier::{FrontierPoint, FrontierSnapshot};
use crate::report::InvocationReport;
use crate::stats::OptimizerStats;
use moqo_cost::{Bounds, CostVector, ResolutionSchedule};
use moqo_costmodel::{PlanInput, SharedCostModel};
use moqo_index::{DynIndex, Entry, FxHashMap, PairSet, PlanIndex};
use moqo_plan::{PhysicalProps, PlanArena, PlanId};
use moqo_query::{k_subsets, QuerySpec, TableSet};
use std::sync::Arc;
use std::time::Instant;

/// A collected result entry enriched with its physical properties, the
/// unit of work inside `Fresh`.
#[derive(Clone, Copy)]
struct ResEntry {
    plan: PlanId,
    cost: CostVector,
    props: PhysicalProps,
    invocation: u32,
    level: u8,
}

/// The Incremental Anytime MOQO optimizer (IAMA).
///
/// Holds all state that persists across invocations for one query: the
/// plan arena, the result and candidate plan sets (indexed by table set,
/// cost, and resolution), and the `IsFresh` pair set. Invoke
/// [`IamaOptimizer::optimize`] with bounds and a resolution level
/// (Algorithm 2), or [`IamaOptimizer::run_invocation`] to let the
/// optimizer advance the resolution the way Algorithm 1's main loop does.
///
/// The optimizer *owns* its query and cost model behind `Arc`s, so a
/// session can be stored in a service map, handed between worker threads,
/// or parked in a frontier cache and revived later — nothing borrows from
/// a caller's stack frame.
///
/// ```
/// use moqo_core::IamaOptimizer;
/// use moqo_cost::{Bounds, ResolutionSchedule};
/// use moqo_costmodel::{CostModel, StandardCostModel};
/// use moqo_query::testkit;
/// use std::sync::Arc;
///
/// let spec = Arc::new(testkit::chain_query(3, 50_000));
/// let model = Arc::new(StandardCostModel::paper_metrics());
/// let bounds = Bounds::unbounded(model.dim());
/// let schedule = ResolutionSchedule::linear(3, 1.05, 0.5);
/// let mut opt = IamaOptimizer::new(spec, model, schedule);
///
/// // Anytime refinement: coarse to fine.
/// for r in 0..=opt.schedule().r_max() {
///     let report = opt.optimize(&bounds, r);
///     assert!(report.frontier_size > 0);
/// }
/// // Incrementality: a repeated invocation does no plan work.
/// let again = opt.optimize(&bounds, opt.schedule().r_max());
/// assert_eq!(again.plans_generated, 0);
/// ```
pub struct IamaOptimizer {
    spec: Arc<QuerySpec>,
    model: SharedCostModel,
    schedule: ResolutionSchedule,
    config: IamaConfig,
    arena: PlanArena,
    res: FxHashMap<TableSet, DynIndex<PlanId>>,
    /// Result plans still eligible for sub-plan combination: the result
    /// set minus plans shadowed by a plainly dominating, order-compatible
    /// alternative (see [`IamaConfig::shadow_dominated`]). Mirrors `res`
    /// exactly when shadowing is disabled.
    res_active: FxHashMap<TableSet, Vec<ResEntry>>,
    cand: FxHashMap<TableSet, DynIndex<PlanId>>,
    pairs: PairSet,
    /// Invocation at which each table set last received a result plan —
    /// the auxiliary index the paper mentions for evaluating `ΔS`
    /// efficiently (Section 4.2): a split whose operands both received
    /// nothing this invocation has an empty Δ cross product and is skipped
    /// without touching the plan sets.
    last_res_insert: FxHashMap<TableSet, u32>,
    /// Tag for entries inserted during the current (or next) invocation.
    invocation: u32,
    /// Bounds and resolution of the most recent invocation.
    last_ctx: Option<(Bounds, usize)>,
    scans_done: bool,
    stats: OptimizerStats,
}

impl IamaOptimizer {
    /// Creates an optimizer with the default configuration.
    pub fn new(spec: Arc<QuerySpec>, model: SharedCostModel, schedule: ResolutionSchedule) -> Self {
        Self::with_config(spec, model, schedule, IamaConfig::default())
    }

    /// Creates an optimizer with an explicit configuration.
    pub fn with_config(
        spec: Arc<QuerySpec>,
        model: SharedCostModel,
        schedule: ResolutionSchedule,
        config: IamaConfig,
    ) -> Self {
        assert!(spec.n_tables() >= 1, "query must join at least one table");
        Self {
            spec,
            model,
            schedule,
            config,
            arena: PlanArena::new(),
            res: FxHashMap::default(),
            res_active: FxHashMap::default(),
            cand: FxHashMap::default(),
            pairs: PairSet::new(),
            last_res_insert: FxHashMap::default(),
            invocation: 0,
            last_ctx: None,
            scans_done: false,
            stats: OptimizerStats::default(),
        }
    }

    /// The resolution schedule in use.
    pub fn schedule(&self) -> &ResolutionSchedule {
        &self.schedule
    }

    /// The query being optimized.
    pub fn spec(&self) -> &QuerySpec {
        &self.spec
    }

    /// Shared handle to the query being optimized.
    pub fn spec_arc(&self) -> Arc<QuerySpec> {
        Arc::clone(&self.spec)
    }

    /// Shared handle to the cost model.
    pub fn model(&self) -> SharedCostModel {
        Arc::clone(&self.model)
    }

    /// Number of cost metrics of the underlying model.
    pub fn model_dim(&self) -> usize {
        self.model.dim()
    }

    /// The plan arena (for `explain`-style rendering of frontier plans).
    pub fn arena(&self) -> &PlanArena {
        &self.arena
    }

    /// Cumulative instrumentation counters.
    pub fn stats(&self) -> &OptimizerStats {
        &self.stats
    }

    /// Number of completed invocations.
    pub fn invocations(&self) -> u32 {
        self.stats.invocations
    }

    /// Resolution level the next [`IamaOptimizer::run_invocation`] will
    /// use for the given bounds (Algorithm 1's update rule).
    pub fn next_resolution(&self, bounds: &Bounds) -> usize {
        match &self.last_ctx {
            Some((lb, lr)) if lb == bounds => (lr + 1).min(self.schedule.r_max()),
            _ => 0,
        }
    }

    /// Runs one invocation, advancing the resolution like Algorithm 1's
    /// main loop: level 0 for new bounds, otherwise one level finer than
    /// the previous invocation (saturating at `rM`).
    pub fn run_invocation(&mut self, bounds: Bounds) -> InvocationReport {
        let r = self.next_resolution(&bounds);
        self.optimize(&bounds, r)
    }

    /// One invocation of the `Optimize` procedure (Algorithm 2) with
    /// explicit bounds and resolution.
    ///
    /// Afterwards, for every table subset `q` with `|q| = k`, the result
    /// set `Res^q[0..b, 0..r]` contains an `alpha_r^k`-approximate
    /// `b`-bounded Pareto plan set (Theorem 2).
    pub fn optimize(&mut self, bounds: &Bounds, r: usize) -> InvocationReport {
        assert!(
            r <= self.schedule.r_max(),
            "resolution {r} exceeds rM={}",
            self.schedule.r_max()
        );
        assert_eq!(
            bounds.dim(),
            self.model.dim(),
            "bounds dimension must match the cost model"
        );
        let start = Instant::now();
        let plans0 = self.stats.plans_generated;
        let cands0 = self.stats.candidate_retrievals;
        let pairs0 = self.stats.pairs_generated;
        let res0 = self.stats.result_insertions;
        let cins0 = self.stats.candidate_insertions;

        // Scan plans are generated once per query, before the main loop
        // (Algorithm 1 lines 7-10); lazily on the first invocation here.
        if !self.scans_done {
            self.init_scans(bounds, r);
            self.scans_done = true;
        }

        // Δ-set filtering is sound when every plan now in
        // `Res[0..b, 0..r]` that was inserted *before* this invocation was
        // already pair-combined: bounds at most as permissive as last time
        // and resolution not coarser (see Section 4.2's discussion of
        // invocation series).
        let use_delta = self.config.use_delta
            && match &self.last_ctx {
                None => true, // first invocation: all plans are fresh anyway
                Some((lb, lr)) => lb.contains(bounds) && r >= *lr,
            };

        // Phase 1 (Algorithm 2 lines 6-12): reconsider candidate plans.
        let cand_keys: Vec<TableSet> = self.cand.keys().copied().collect();
        for q in cand_keys {
            let drained = match self.cand.get_mut(&q) {
                Some(idx) => idx.drain(bounds, r as u8),
                None => continue,
            };
            for e in drained {
                self.stats.candidate_retrievals += 1;
                if self.config.track_invariants {
                    *self
                        .stats
                        .candidate_retrieval_counts
                        .entry(e.item.0)
                        .or_insert(0) += 1;
                }
                self.prune(q, e.item, bounds, r);
            }
        }

        // Phase 2 (lines 13-22): generate plans from fresh combinations,
        // by table sets of increasing cardinality, over all ordered splits.
        let n = self.spec.n_tables();
        for k in 2..=n {
            for q in k_subsets(n, k) {
                for (q1, q2) in q.splits() {
                    // The paper enumerates ordered splits (q1 ⊂ Q, q2 = Q \ q1);
                    // our split iterator is unordered, so emit both directions.
                    for (a, b) in [(q1, q2), (q2, q1)] {
                        if !self.config.allow_cross_products && self.spec.is_cross_product(a, b) {
                            continue;
                        }
                        self.combine_fresh(q, a, b, bounds, r, use_delta);
                    }
                }
            }
        }

        self.stats.invocations += 1;
        if use_delta {
            self.stats.delta_invocations += 1;
        }
        let report = InvocationReport {
            invocation: self.invocation,
            resolution: r,
            alpha: self.schedule.factor(r),
            duration: start.elapsed(),
            frontier_size: self.frontier(bounds, r).len(),
            plans_generated: self.stats.plans_generated - plans0,
            candidates_retrieved: self.stats.candidate_retrievals - cands0,
            pairs_generated: self.stats.pairs_generated - pairs0,
            result_insertions: self.stats.result_insertions - res0,
            candidate_insertions: self.stats.candidate_insertions - cins0,
            used_delta: use_delta,
        };
        self.invocation += 1;
        self.last_ctx = Some((*bounds, r));
        report
    }

    /// The completed-plan tradeoffs `Res^Q[0..b, 0..r]` that `Visualize`
    /// would render (Algorithm 1 line 16).
    pub fn frontier(&self, bounds: &Bounds, r: usize) -> FrontierSnapshot {
        let full = self.spec.all_tables();
        let mut points = Vec::new();
        if let Some(idx) = self.res.get(&full) {
            idx.scan(bounds, r as u8, &mut |e| {
                points.push(FrontierPoint {
                    plan: e.item,
                    cost: e.cost,
                });
                false
            });
        }
        FrontierSnapshot::new(points)
    }

    /// Total result-set entries across all table sets (diagnostics).
    pub fn result_set_size(&self) -> usize {
        self.res.values().map(|i| i.len()).sum()
    }

    /// Total candidate-set entries across all table sets (diagnostics).
    pub fn candidate_set_size(&self) -> usize {
        self.cand.values().map(|i| i.len()).sum()
    }

    /// Generates and prunes all scan plans (Algorithm 1 lines 7-10).
    fn init_scans(&mut self, bounds: &Bounds, r: usize) {
        for pos in 0..self.spec.n_tables() {
            let q = TableSet::singleton(pos);
            for (op, cost, props) in self.model.scan_alternatives(&self.spec, pos) {
                let pid = self.arena.push_scan(op, pos, cost, props);
                self.stats.plans_generated += 1;
                if self.config.track_invariants {
                    *self
                        .stats
                        .plan_generations
                        .entry((op, u32::MAX, u32::MAX))
                        .or_insert(0) += 1;
                }
                self.prune(q, pid, bounds, r);
            }
        }
    }

    /// `Fresh` (Algorithm 3 lines 26-39) followed by pruning of each fresh
    /// plan, for the ordered split `(q1, q2)` of `q`.
    fn combine_fresh(
        &mut self,
        q: TableSet,
        q1: TableSet,
        q2: TableSet,
        bounds: &Bounds,
        r: usize,
        use_delta: bool,
    ) {
        let cur = self.invocation;
        if use_delta {
            // Empty-Δ short-circuit via the last-insertion index: if
            // neither operand set received a result plan this invocation,
            // every cross product involving a Δ set is empty (the paper's
            // empty-operand check), so skip without touching the sets.
            let d1 = self.last_res_insert.get(&q1) == Some(&cur);
            let d2 = self.last_res_insert.get(&q2) == Some(&cur);
            if !d1 && !d2 {
                return;
            }
        }
        let p1s = match self.collect_res(q1, bounds, r) {
            Some(v) => v,
            None => return,
        };
        let p2s = match self.collect_res(q2, bounds, r) {
            Some(v) => v,
            None => return,
        };
        for e1 in &p1s {
            for e2 in &p2s {
                if use_delta && e1.invocation != cur && e2.invocation != cur {
                    continue;
                }
                if !self.pairs.mark(e1.plan.0, e2.plan.0) {
                    self.stats.stale_pairs_skipped += 1;
                    continue;
                }
                self.stats.pairs_generated += 1;
                if self.config.track_invariants {
                    *self
                        .stats
                        .pair_generations
                        .entry((e1.plan.0, e2.plan.0))
                        .or_insert(0) += 1;
                }
                let left = PlanInput {
                    tables: q1,
                    cost: e1.cost,
                    props: e1.props,
                };
                let right = PlanInput {
                    tables: q2,
                    cost: e2.cost,
                    props: e2.props,
                };
                for (op, cost, props) in self.model.join_alternatives(&self.spec, &left, &right) {
                    let pid = self.arena.push_join(op, e1.plan, e2.plan, cost, props);
                    self.stats.plans_generated += 1;
                    if self.config.track_invariants {
                        *self
                            .stats
                            .plan_generations
                            .entry((op, e1.plan.0, e2.plan.0))
                            .or_insert(0) += 1;
                    }
                    self.prune(q, pid, bounds, r);
                }
            }
        }
    }

    /// Collects the combinable subset of `Res^q[0..b, 0..r]`; `None` when
    /// absent or empty. Reads the active list (shadowed plans excluded).
    fn collect_res(&self, q: TableSet, bounds: &Bounds, r: usize) -> Option<Vec<ResEntry>> {
        let active = self.res_active.get(&q)?;
        let out: Vec<ResEntry> = active
            .iter()
            .filter(|e| e.level as usize <= r && bounds.respects(&e.cost))
            .copied()
            .collect();
        if out.is_empty() {
            None
        } else {
            Some(out)
        }
    }

    /// `Prune` (Algorithm 3 lines 5-22): route a plan into the result set,
    /// the candidate set, or (at maximal resolution) discard it.
    fn prune(&mut self, q: TableSet, plan: PlanId, bounds: &Bounds, r: usize) {
        let (cost, props) = {
            let node = self.arena.node(plan);
            (node.cost, node.props)
        };
        let alpha = self.schedule.factor(r);

        // Line 7: is there an alternative result plan (within bounds, at
        // resolution <= r, with compatible physical properties) that
        // approximately dominates the new plan? Any such plan has cost
        // dominated by `alpha * c(p)`, so the range query is narrowed to
        // the intersection of the user bounds with that region — this is
        // where the multi-dimensional cost index pays off (Section 4.1).
        // While scanning, remember the *best* (smallest) domination factor
        // so eager re-indexing can skip resolution levels at which the
        // same witness would dominate again.
        let mut comparisons = 0u64;
        let mut best_factor = f64::INFINITY;
        if let Some(idx) = self.res.get(&q) {
            let dom_region = bounds.intersect(&Bounds::new(cost.scaled(alpha)));
            let arena = &self.arena;
            let eager = self.config.eager_level_skip;
            let target = self.schedule.target_factor();
            idx.scan(&dom_region, r as u8, &mut |e| {
                comparisons += 1;
                if arena.node(e.item).props.satisfies(&props) {
                    let f = e.cost.domination_factor(&cost);
                    if f < best_factor {
                        best_factor = f;
                    }
                    // Early exits: without eager re-indexing the first
                    // witness decides; with it, a witness within the
                    // *target* factor means the plan is discarded at every
                    // remaining level, so the exact minimum is irrelevant.
                    if best_factor <= if eager { target } else { alpha } {
                        return true;
                    }
                }
                false
            });
        }
        self.stats.prune_comparisons += comparisons;
        let dominated = best_factor <= alpha;

        if dominated {
            // Keep as candidate for finer resolutions (lines 9-12). With
            // eager re-indexing, jump straight to the first level whose
            // precision factor drops below the witness's domination
            // factor; the plan provably stays dominated by the same
            // witness at every level in between.
            let next_level = if self.config.eager_level_skip {
                ((r + 1)..=self.schedule.r_max()).find(|&r2| self.schedule.factor(r2) < best_factor)
            } else if r < self.schedule.r_max() {
                Some(r + 1)
            } else {
                None
            };
            match next_level {
                Some(level) => self.insert_candidate(q, plan, cost, level as u8),
                None => self.stats.candidates_discarded += 1,
            }
        } else if bounds.exceeds(&cost) {
            // Keep as candidate for different bounds (lines 13-16).
            self.insert_candidate(q, plan, cost, r as u8);
        } else {
            // Immediately relevant (lines 17-20).
            self.insert_result(q, plan, cost, r as u8);
        }
    }

    fn insert_result(&mut self, q: TableSet, plan: PlanId, cost: CostVector, level: u8) {
        let dim = self.model.dim();
        let kind = self.config.index_kind;
        self.res
            .entry(q)
            .or_insert_with(|| DynIndex::new(kind, dim))
            .insert(Entry::new(plan, cost, level, self.invocation));
        let props = self.arena.node(plan).props;
        let active = self.res_active.entry(q).or_default();
        if self.config.shadow_dominated {
            // Shadow plainly dominated, order-substitutable plans: they
            // stop combining but stay in the index as pruning witnesses.
            active.retain(|e| !(props.satisfies(&e.props) && cost.dominates(&e.cost)));
        }
        active.push(ResEntry {
            plan,
            cost,
            props,
            invocation: self.invocation,
            level,
        });
        self.last_res_insert.insert(q, self.invocation);
        self.stats.result_insertions += 1;
    }

    fn insert_candidate(&mut self, q: TableSet, plan: PlanId, cost: CostVector, level: u8) {
        let dim = self.model.dim();
        let kind = self.config.index_kind;
        self.cand
            .entry(q)
            .or_insert_with(|| DynIndex::new(kind, dim))
            .insert(Entry::new(plan, cost, level, self.invocation));
        self.stats.candidate_insertions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_cost::coverage_factor;
    use moqo_costmodel::StandardCostModel;
    use moqo_query::testkit;

    fn schedule() -> ResolutionSchedule {
        ResolutionSchedule::linear(4, 1.05, 0.5)
    }

    #[test]
    fn single_invocation_produces_a_frontier() {
        let spec = Arc::new(testkit::chain_query(3, 100_000));
        let model = Arc::new(StandardCostModel::paper_metrics());
        let mut opt = IamaOptimizer::new(spec.clone(), model.clone(), schedule());
        let b = Bounds::unbounded(3);
        let report = opt.optimize(&b, 0);
        assert!(report.frontier_size > 0, "no complete plans found");
        assert!(report.plans_generated > 0);
        assert_eq!(report.resolution, 0);
        let frontier = opt.frontier(&b, 0);
        assert_eq!(frontier.len(), report.frontier_size);
        // Every frontier plan joins all tables.
        for p in &frontier.points {
            assert_eq!(opt.arena().tables(p.plan), spec.all_tables());
        }
    }

    #[test]
    fn refining_resolution_grows_the_frontier() {
        let spec = Arc::new(testkit::chain_query(3, 500_000));
        let model = Arc::new(StandardCostModel::paper_metrics());
        let mut opt = IamaOptimizer::new(spec.clone(), model.clone(), schedule());
        let b = Bounds::unbounded(3);
        let mut sizes = Vec::new();
        for r in 0..=opt.schedule().r_max() {
            opt.optimize(&b, r);
            sizes.push(opt.frontier(&b, r).len());
        }
        assert!(
            sizes.last().unwrap() >= sizes.first().unwrap(),
            "finer resolution should not shrink the frontier: {sizes:?}"
        );
    }

    #[test]
    fn run_invocation_follows_main_loop_resolution_rule() {
        let spec = Arc::new(testkit::chain_query(2, 100_000));
        let model = Arc::new(StandardCostModel::paper_metrics());
        let mut opt = IamaOptimizer::new(
            spec.clone(),
            model.clone(),
            ResolutionSchedule::linear(2, 1.05, 0.5),
        );
        let b = Bounds::unbounded(3);
        assert_eq!(opt.run_invocation(b).resolution, 0);
        assert_eq!(opt.run_invocation(b).resolution, 1);
        assert_eq!(opt.run_invocation(b).resolution, 2);
        // Saturates at rM.
        assert_eq!(opt.run_invocation(b).resolution, 2);
        // Bound change resets to 0.
        let tight = b.with_limit(0, 1e9);
        assert_eq!(opt.run_invocation(tight).resolution, 0);
    }

    #[test]
    fn incremental_invariants_hold_over_a_series() {
        let spec = Arc::new(testkit::chain_query(4, 200_000));
        let model = Arc::new(StandardCostModel::paper_metrics());
        let sched = schedule();
        let r_max = sched.r_max();
        let mut opt =
            IamaOptimizer::with_config(spec.clone(), model.clone(), sched, IamaConfig::tracked());
        let b = Bounds::unbounded(3);
        for r in 0..=r_max {
            opt.optimize(&b, r);
        }
        let stats = opt.stats();
        // Lemma 5: each plan generated at most once.
        assert!(
            stats.max_plan_generations() <= 1,
            "a plan was generated twice"
        );
        // Lemma 6: each ordered pair combined at most once.
        assert!(
            stats.max_pair_generations() <= 1,
            "a sub-plan pair was combined twice"
        );
        // Lemma 7: each plan retrieved at most rM + 1 times as candidate.
        assert!(
            stats.max_candidate_retrievals() as usize <= r_max + 1,
            "candidate retrieved too often: {}",
            stats.max_candidate_retrievals()
        );
    }

    #[test]
    fn repeated_invocations_at_max_resolution_do_no_work() {
        let spec = Arc::new(testkit::chain_query(3, 100_000));
        let model = Arc::new(StandardCostModel::paper_metrics());
        let mut opt = IamaOptimizer::new(spec.clone(), model.clone(), schedule());
        let b = Bounds::unbounded(3);
        for r in 0..=opt.schedule().r_max() {
            opt.optimize(&b, r);
        }
        let report = opt.optimize(&b, opt.schedule().r_max());
        assert_eq!(
            report.plans_generated, 0,
            "steady state must generate nothing"
        );
        assert_eq!(report.pairs_generated, 0);
        assert_eq!(report.candidates_retrieved, 0);
    }

    #[test]
    fn frontier_respects_bounds() {
        let spec = Arc::new(testkit::chain_query(3, 200_000));
        let model = Arc::new(StandardCostModel::paper_metrics());
        let mut opt = IamaOptimizer::new(spec.clone(), model.clone(), schedule());
        let unb = Bounds::unbounded(3);
        let r_max = opt.schedule().r_max();
        for r in 0..=r_max {
            opt.optimize(&unb, r);
        }
        let full = opt.frontier(&unb, r_max);
        assert!(!full.is_empty());
        // Constrain time to the median frontier time: fewer plans visible,
        // all within bounds.
        let mut times: Vec<f64> = full.points.iter().map(|p| p.cost[0]).collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = times[times.len() / 2];
        let bounded = Bounds::unbounded(3).with_limit(0, median);
        let shown = opt.frontier(&bounded, r_max);
        assert!(shown.len() <= full.len());
        assert!(shown.points.iter().all(|p| bounded.respects(&p.cost)));
    }

    #[test]
    fn bound_change_reuses_candidates_not_regeneration() {
        let spec = Arc::new(testkit::chain_query(3, 200_000));
        let model = Arc::new(StandardCostModel::paper_metrics());
        let mut opt = IamaOptimizer::with_config(
            spec.clone(),
            model.clone(),
            schedule(),
            IamaConfig::tracked(),
        );
        // Start with tight time bounds.
        let r_max = opt.schedule().r_max();
        let unb = Bounds::unbounded(3);
        opt.optimize(&unb, 0);
        let t_min = opt
            .frontier(&unb, 0)
            .min_by_metric(0)
            .map(|p| p.cost[0])
            .unwrap();
        let tight = Bounds::unbounded(3).with_limit(0, t_min * 1.5);
        for r in 0..=r_max {
            opt.optimize(&tight, r);
        }
        let plans_before = opt.stats().plans_generated;
        // Loosen the bounds: candidates stored as out-of-bounds re-enter.
        for r in 0..=r_max {
            opt.optimize(&unb, r);
        }
        let stats = opt.stats();
        assert!(
            stats.max_plan_generations() <= 1,
            "bound change caused plan regeneration"
        );
        assert!(stats.max_pair_generations() <= 1);
        // New plans may be generated (pairs that were never within tight
        // bounds), but the frontier must now be at least as large.
        assert!(stats.plans_generated >= plans_before);
        assert!(!opt.frontier(&unb, r_max).is_empty());
    }

    #[test]
    fn final_result_is_within_alpha_n_of_level_specific_runs() {
        // Coverage sanity: running all levels and querying at rM covers
        // the coarse frontier within the coarse factor.
        let spec = Arc::new(testkit::chain_query(3, 100_000));
        let model = Arc::new(StandardCostModel::paper_metrics());
        let sched = schedule();
        let r_max = sched.r_max();
        let mut opt = IamaOptimizer::new(spec.clone(), model.clone(), sched);
        let b = Bounds::unbounded(3);
        let mut coarse_costs = Vec::new();
        for r in 0..=r_max {
            opt.optimize(&b, r);
            if r == 0 {
                coarse_costs = opt.frontier(&b, 0).costs();
            }
        }
        let fine = opt.frontier(&b, r_max).costs();
        // The fine frontier must cover the coarse one at factor 1 (coarse
        // plans remain result plans — nothing is ever discarded).
        assert!(coverage_factor(&fine, &coarse_costs) <= 1.0 + 1e-9);
    }

    #[test]
    fn single_table_query_works() {
        let spec = Arc::new(testkit::chain_query(1, 100_000));
        let model = Arc::new(StandardCostModel::paper_metrics());
        let mut opt = IamaOptimizer::new(spec.clone(), model.clone(), schedule());
        let b = Bounds::unbounded(3);
        let report = opt.optimize(&b, 0);
        assert!(report.frontier_size >= 1);
        assert_eq!(report.pairs_generated, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds rM")]
    fn rejects_out_of_schedule_resolution() {
        let spec = Arc::new(testkit::chain_query(2, 1000));
        let model = Arc::new(StandardCostModel::paper_metrics());
        let mut opt = IamaOptimizer::new(
            spec.clone(),
            model.clone(),
            ResolutionSchedule::linear(1, 1.1, 0.5),
        );
        opt.optimize(&Bounds::unbounded(3), 5);
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn rejects_mismatched_bounds_dimension() {
        let spec = Arc::new(testkit::chain_query(2, 1000));
        let model = Arc::new(StandardCostModel::paper_metrics());
        let mut opt = IamaOptimizer::new(spec.clone(), model.clone(), schedule());
        opt.optimize(&Bounds::unbounded(2), 0);
    }
}
