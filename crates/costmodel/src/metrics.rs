//! Metric definitions and PONO-compliant per-metric aggregation.

use moqo_cost::CostVector;

/// A plan cost metric with fixed aggregation semantics.
///
/// The units are abstract "work units" for time-like metrics; only relative
/// comparisons matter to the optimizer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Execution time. Children combine with `+` (sequential) or `max`
    /// (parallel) depending on the operator; the operator term is added.
    Time,
    /// Peak number of reserved cores. Children combine with `max` (for
    /// sequential execution) or `+` (for concurrently running children);
    /// the operator term is max-ed in.
    Cores,
    /// Result error, `1 − precision ∈ [0, 1)`. Children combine with the
    /// probabilistic sum `e1 + e2 − e1·e2` (precisions multiply); join
    /// operators add no error of their own.
    Error,
    /// Monetary execution fees (e.g. core-seconds billed in a cloud).
    /// Children combine with `+`; the operator term is added.
    Fees,
    /// Energy consumption. Children combine with `+`; the operator term is
    /// added (footnote 2 of the paper).
    Energy,
    /// Peak buffer memory reservation in bytes (the paper lists "buffer
    /// space" among the supported resource metrics). Children combine
    /// with `max` (sequential pipeline stages release their buffers) or
    /// `+` (concurrent children hold buffers simultaneously); the
    /// operator term is max-ed in.
    Memory,
}

impl Metric {
    /// Short lower-case name for reports and CSV headers.
    pub fn name(self) -> &'static str {
        match self {
            Metric::Time => "time",
            Metric::Cores => "cores",
            Metric::Error => "error",
            Metric::Fees => "fees",
            Metric::Energy => "energy",
            Metric::Memory => "memory",
        }
    }
}

/// Probabilistic sum: the error of a plan whose two inputs have independent
/// errors `a` and `b` (precisions multiply: `1-e = (1-a)(1-b)`).
///
/// PONO holds: if `a* ≤ α·a` and `b* ≤ α·b` with `α ≥ 1`, then
/// `prob_sum(a*, b*) ≤ α · prob_sum(a, b)` (verified by property test).
#[inline]
pub fn prob_sum(a: f64, b: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&a) && (0.0..=1.0).contains(&b));
    a + b - a * b
}

/// An ordered set of metrics defining the cost-vector layout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricSet {
    metrics: Vec<Metric>,
}

impl MetricSet {
    /// Creates a metric set.
    ///
    /// # Panics
    /// Panics if empty, longer than [`moqo_cost::MAX_DIM`], or containing
    /// duplicates.
    pub fn new(metrics: Vec<Metric>) -> Self {
        assert!(!metrics.is_empty(), "need at least one metric");
        assert!(metrics.len() <= moqo_cost::MAX_DIM);
        for (i, a) in metrics.iter().enumerate() {
            for b in metrics.iter().skip(i + 1) {
                assert_ne!(a, b, "duplicate metric {a:?}");
            }
        }
        Self { metrics }
    }

    /// The paper's evaluation metrics: time, reserved cores, result error.
    pub fn paper() -> Self {
        Self::new(vec![Metric::Time, Metric::Cores, Metric::Error])
    }

    /// Example 1's cloud metrics: time and monetary fees.
    pub fn cloud() -> Self {
        Self::new(vec![Metric::Time, Metric::Fees])
    }

    /// Time + energy (green computing scenario).
    pub fn energy() -> Self {
        Self::new(vec![Metric::Time, Metric::Energy])
    }

    /// All six supported metrics.
    pub fn all() -> Self {
        Self::new(vec![
            Metric::Time,
            Metric::Cores,
            Metric::Error,
            Metric::Fees,
            Metric::Energy,
            Metric::Memory,
        ])
    }

    /// Resource-focused metrics: time, cores, and buffer memory.
    pub fn resources() -> Self {
        Self::new(vec![Metric::Time, Metric::Cores, Metric::Memory])
    }

    /// Number of metrics (the paper's `l`).
    #[inline]
    pub fn dim(&self) -> usize {
        self.metrics.len()
    }

    /// The metric at vector position `i`.
    #[inline]
    pub fn metric(&self, i: usize) -> Metric {
        self.metrics[i]
    }

    /// Position of `metric` in the vector layout, if present.
    pub fn position(&self, metric: Metric) -> Option<usize> {
        self.metrics.iter().position(|m| *m == metric)
    }

    /// Iterates over the metrics in vector order.
    pub fn iter(&self) -> impl Iterator<Item = Metric> + '_ {
        self.metrics.iter().copied()
    }

    /// Extracts the value of `metric` from a cost vector laid out by this
    /// set, if present.
    pub fn get(&self, cost: &CostVector, metric: Metric) -> Option<f64> {
        self.position(metric).map(|i| cost[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert_eq!(MetricSet::paper().dim(), 3);
        assert_eq!(MetricSet::cloud().dim(), 2);
        assert_eq!(MetricSet::all().dim(), 6);
        assert_eq!(MetricSet::resources().dim(), 3);
        assert_eq!(MetricSet::paper().metric(0), Metric::Time);
    }

    #[test]
    fn positions_and_get() {
        let s = MetricSet::paper();
        assert_eq!(s.position(Metric::Cores), Some(1));
        assert_eq!(s.position(Metric::Fees), None);
        let c = CostVector::new(&[1.0, 4.0, 0.25]);
        assert_eq!(s.get(&c, Metric::Error), Some(0.25));
        assert_eq!(s.get(&c, Metric::Energy), None);
    }

    #[test]
    #[should_panic(expected = "duplicate metric")]
    fn rejects_duplicates() {
        MetricSet::new(vec![Metric::Time, Metric::Time]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_empty() {
        MetricSet::new(vec![]);
    }

    #[test]
    fn prob_sum_basics() {
        assert_eq!(prob_sum(0.0, 0.0), 0.0);
        assert_eq!(prob_sum(0.5, 0.0), 0.5);
        assert!((prob_sum(0.5, 0.5) - 0.75).abs() < 1e-12);
        assert_eq!(prob_sum(1.0, 0.3), 1.0);
    }

    #[test]
    fn metric_names() {
        assert_eq!(Metric::Time.name(), "time");
        assert_eq!(Metric::Error.name(), "error");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// PONO for the probabilistic-sum error combinator: inflating each
        /// child error by at most alpha inflates the combined error by at
        /// most alpha. (The cross term only helps: alpha²·ab ≥ alpha·ab.)
        #[test]
        fn prob_sum_satisfies_pono(
            a in 0.0f64..1.0,
            b in 0.0f64..1.0,
            alpha in 1.0f64..3.0,
            fa in 0.0f64..1.0,
            fb in 0.0f64..1.0,
        ) {
            let aa = (a * (1.0 + fa * (alpha - 1.0))).min(1.0);
            let bb = (b * (1.0 + fb * (alpha - 1.0))).min(1.0);
            let base = prob_sum(a, b);
            let inflated = prob_sum(aa, bb);
            prop_assert!(inflated <= alpha * base + 1e-12,
                "prob_sum PONO violated: {inflated} > {alpha} * {base}");
        }

        /// Monotone cost aggregation: combined error bounds each child.
        #[test]
        fn prob_sum_is_monotone(a in 0.0f64..1.0, b in 0.0f64..1.0) {
            let c = prob_sum(a, b);
            prop_assert!(c >= a - 1e-15 && c >= b - 1e-15);
            prop_assert!(c <= 1.0 + 1e-15);
        }

        /// Probabilistic sum is commutative and associative.
        #[test]
        fn prob_sum_algebra(a in 0.0f64..1.0, b in 0.0f64..1.0, c in 0.0f64..1.0) {
            prop_assert!((prob_sum(a, b) - prob_sum(b, a)).abs() < 1e-12);
            let l = prob_sum(prob_sum(a, b), c);
            let r = prob_sum(a, prob_sum(b, c));
            prop_assert!((l - r).abs() < 1e-9);
        }
    }
}
