//! Base tables and their statistics.

use crate::column::{Column, ColumnId};

/// Identifies a table within a [`crate::Catalog`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

impl TableId {
    /// The table's position in the catalog's table list.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A base table with the statistics the optimizer consumes.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table name (unique within the catalog).
    pub name: String,
    /// Estimated number of rows.
    pub cardinality: u64,
    /// Average row width in bytes (drives IO cost and memory footprints).
    pub row_width: u32,
    /// Columns, in declaration order.
    pub columns: Vec<Column>,
}

impl Table {
    /// Creates a table with the given statistics and no columns yet.
    pub fn new(name: impl Into<String>, cardinality: u64, row_width: u32) -> Self {
        Self {
            name: name.into(),
            cardinality,
            row_width,
            columns: Vec::new(),
        }
    }

    /// Estimated size of the table in bytes.
    #[inline]
    pub fn byte_size(&self) -> u64 {
        self.cardinality * self.row_width as u64
    }

    /// Looks up a column by name, returning its id within this table.
    pub fn column_by_name(&self, name: &str) -> Option<(ColumnId, &Column)> {
        self.columns
            .iter()
            .enumerate()
            .find(|(_, c)| c.name == name)
            .map(|(i, c)| (ColumnId(i as u32), c))
    }

    /// True if the table is "small" relative to `threshold` rows.
    ///
    /// The paper's footnote 4 notes that small tables admit fewer sampling
    /// strategies; the cost model uses this predicate to decide which scan
    /// variants a table supports.
    #[inline]
    pub fn is_small(&self, threshold: u64) -> bool {
        self.cardinality < threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnRole;

    #[test]
    fn table_statistics() {
        let t = Table::new("orders", 1_500_000, 120);
        assert_eq!(t.byte_size(), 180_000_000);
        assert!(t.is_small(2_000_000));
        assert!(!t.is_small(1_000_000));
    }

    #[test]
    fn column_lookup() {
        let mut t = Table::new("nation", 25, 32);
        t.columns.push(Column::key("n_nationkey", 25));
        t.columns
            .push(Column::new("n_regionkey", 5, ColumnRole::ForeignKey));
        let (id, col) = t.column_by_name("n_regionkey").unwrap();
        assert_eq!(id, ColumnId(1));
        assert_eq!(col.distinct_values, 5);
        assert!(t.column_by_name("missing").is_none());
    }
}
