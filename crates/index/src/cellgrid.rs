//! Logarithmically partitioned cell grid.
//!
//! The paper suggests (Section 5.3, footnote 3) partitioning the cost space
//! into cells with *logarithmic* boundaries — the region a result plan
//! approximately dominates is its cost vector scaled by a constant factor,
//! so log-partitioning distributes plans more uniformly over cells.
//!
//! A cost vector `c` maps to the cell coordinate `floor(log2(1 + c_i))`
//! per metric. For a range query `[0, b]` the bound's coordinates split
//! the cells into three classes:
//!
//! * coordinate `< coord(b_i)` on every metric → the whole cell lies
//!   inside the range: its entries are accepted without per-entry checks;
//! * coordinate `> coord(b_i)` on some metric → the whole cell lies
//!   outside: rejected in `O(1)`;
//! * otherwise the cell straddles the boundary and entries are checked
//!   individually.
//!
//! Cells are kept in a hash map per resolution level, so insertion is
//! `O(1)` and queries only touch non-empty cells.

use crate::entry::Entry;
use crate::fxhash::FxHashMap;
use crate::PlanIndex;
use moqo_cost::{Bounds, CostVector, MAX_DIM};

/// Cell coordinates: one log-bucket index per metric.
type CellKey = [u8; MAX_DIM];

const COORD_INF: u8 = u8::MAX;

#[inline]
fn coord(v: f64) -> u8 {
    if v.is_infinite() {
        return COORD_INF;
    }
    debug_assert!(v >= 0.0);
    // floor(log2(1 + v)) via the exponent of 1 + v.
    let x = 1.0 + v;
    (x.log2().floor() as i64).clamp(0, (COORD_INF - 1) as i64) as u8
}

#[inline]
fn cell_key(c: &CostVector) -> CellKey {
    let mut key = [0u8; MAX_DIM];
    for (i, slot) in key.iter_mut().enumerate().take(c.dim()) {
        *slot = coord(c[i]);
    }
    key
}

/// Relationship of a cell to a query range.
#[derive(PartialEq, Eq, Debug, Clone, Copy)]
enum CellClass {
    Inside,
    Straddles,
    Outside,
}

#[inline]
fn classify(cell: &CellKey, bound: &CellKey, dim: usize) -> CellClass {
    let mut straddles = false;
    for i in 0..dim {
        if cell[i] > bound[i] {
            return CellClass::Outside;
        }
        if cell[i] == bound[i] && bound[i] != COORD_INF {
            straddles = true;
        }
    }
    if straddles {
        CellClass::Straddles
    } else {
        CellClass::Inside
    }
}

/// A [`PlanIndex`] backed by a logarithmic cell grid per resolution level.
#[derive(Clone, Debug)]
pub struct CellGrid<T: Copy> {
    dim: usize,
    levels: Vec<FxHashMap<CellKey, Vec<Entry<T>>>>,
    len: usize,
}

impl<T: Copy> CellGrid<T> {
    /// Creates an empty grid for `dim` metrics.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0 && dim <= MAX_DIM);
        Self {
            dim,
            levels: Vec::new(),
            len: 0,
        }
    }

    /// Number of non-empty cells (diagnostics / ablation reporting).
    pub fn cell_count(&self) -> usize {
        self.levels.iter().map(|l| l.len()).sum()
    }
}

impl<T: Copy> PlanIndex<T> for CellGrid<T> {
    fn insert(&mut self, entry: Entry<T>) {
        debug_assert_eq!(entry.cost.dim(), self.dim);
        let level = entry.level as usize;
        if self.levels.len() <= level {
            self.levels.resize_with(level + 1, FxHashMap::default);
        }
        let key = cell_key(&entry.cost);
        self.levels[level].entry(key).or_default().push(entry);
        self.len += 1;
    }

    fn scan(
        &self,
        bounds: &Bounds,
        max_level: u8,
        visitor: &mut dyn FnMut(&Entry<T>) -> bool,
    ) -> bool {
        let bound_key = cell_key(bounds.limits());
        for level in self.levels.iter().take(max_level as usize + 1) {
            for (key, cell) in level {
                match classify(key, &bound_key, self.dim) {
                    CellClass::Outside => continue,
                    CellClass::Inside => {
                        for e in cell {
                            if visitor(e) {
                                return true;
                            }
                        }
                    }
                    CellClass::Straddles => {
                        for e in cell {
                            if bounds.respects(&e.cost) && visitor(e) {
                                return true;
                            }
                        }
                    }
                }
            }
        }
        false
    }

    fn drain(&mut self, bounds: &Bounds, max_level: u8) -> Vec<Entry<T>> {
        let bound_key = cell_key(bounds.limits());
        let mut out = Vec::new();
        for level in self.levels.iter_mut().take(max_level as usize + 1) {
            level.retain(|key, cell| match classify(key, &bound_key, self.dim) {
                CellClass::Outside => true,
                CellClass::Inside => {
                    out.append(cell);
                    false
                }
                CellClass::Straddles => {
                    let mut i = 0;
                    while i < cell.len() {
                        if bounds.respects(&cell[i].cost) {
                            out.push(cell.swap_remove(i));
                        } else {
                            i += 1;
                        }
                    }
                    !cell.is_empty()
                }
            });
        }
        self.len -= out.len();
        out
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coord_is_logarithmic() {
        assert_eq!(coord(0.0), 0);
        assert_eq!(coord(0.9), 0);
        assert_eq!(coord(1.0), 1);
        assert_eq!(coord(2.9), 1);
        assert_eq!(coord(3.0), 2);
        assert_eq!(coord(7.1), 3);
        assert_eq!(coord(f64::INFINITY), COORD_INF);
        // Huge but finite values clamp below the infinity sentinel.
        assert_eq!(coord(f64::MAX), COORD_INF - 1);
    }

    #[test]
    fn classify_cells() {
        // dim 2, bound at coords [3, COORD_INF] (second metric unbounded).
        let bound = {
            let mut k = [0u8; MAX_DIM];
            k[0] = 3;
            k[1] = COORD_INF;
            k
        };
        let mk = |a: u8, b: u8| {
            let mut k = [0u8; MAX_DIM];
            k[0] = a;
            k[1] = b;
            k
        };
        assert_eq!(classify(&mk(2, 5), &bound, 2), CellClass::Inside);
        assert_eq!(classify(&mk(3, 5), &bound, 2), CellClass::Straddles);
        assert_eq!(classify(&mk(4, 0), &bound, 2), CellClass::Outside);
        // Unbounded metric never causes straddling.
        assert_eq!(
            classify(&mk(0, COORD_INF - 1), &bound, 2),
            CellClass::Inside
        );
    }

    #[test]
    fn insert_scan_drain_roundtrip() {
        let mut grid: CellGrid<u32> = CellGrid::new(2);
        for i in 0..20u32 {
            let c = CostVector::new(&[i as f64, (20 - i) as f64]);
            grid.insert(Entry::new(i, c, (i % 3) as u8, 0));
        }
        assert_eq!(PlanIndex::len(&grid), 20);
        assert!(grid.cell_count() > 1);

        // Unbounded query at max level sees everything.
        assert_eq!(grid.collect(&Bounds::unbounded(2), 2).len(), 20);
        // Level filter.
        let lvl0: Vec<u32> = grid
            .collect(&Bounds::unbounded(2), 0)
            .iter()
            .map(|e| e.item)
            .collect();
        assert!(lvl0.iter().all(|i| i % 3 == 0));

        // Bounds filter agrees with a manual check.
        let b = Bounds::from_slice(&[10.0, 15.0]);
        let got: std::collections::HashSet<u32> =
            grid.collect(&b, 2).iter().map(|e| e.item).collect();
        let expected: std::collections::HashSet<u32> = (0..20u32)
            .filter(|&i| (i as f64) <= 10.0 && ((20 - i) as f64) <= 15.0)
            .collect();
        assert_eq!(got, expected);

        // Drain removes exactly the matching entries.
        let drained = grid.drain(&b, 2);
        assert_eq!(drained.len(), expected.len());
        assert_eq!(PlanIndex::len(&grid), 20 - expected.len());
        assert!(grid.collect(&b, 2).is_empty());
    }

    #[test]
    fn scan_early_exit_counts_once() {
        let mut grid: CellGrid<u32> = CellGrid::new(1);
        for i in 0..50u32 {
            grid.insert(Entry::new(i, CostVector::new(&[i as f64]), 0, 0));
        }
        let mut seen = 0;
        let stopped = grid.scan(&Bounds::unbounded(1), 0, &mut |_| {
            seen += 1;
            true
        });
        assert!(stopped);
        assert_eq!(seen, 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::linear::LinearIndex;
    use proptest::prelude::*;

    proptest! {
        /// The cell grid agrees with the linear index on arbitrary
        /// workloads (same query results, same drain behaviour).
        #[test]
        fn grid_equivalent_to_linear(
            entries in proptest::collection::vec(
                ((0.0f64..1e5), (0.0f64..1e5), 0u8..4), 0..80),
            qb in (0.0f64..1.2e5, 0.0f64..1.2e5),
            qr in 0u8..4,
            unbounded in any::<bool>(),
        ) {
            let mut grid: CellGrid<u32> = CellGrid::new(2);
            let mut lin: LinearIndex<u32> = LinearIndex::new();
            for (i, (a, b, lvl)) in entries.iter().enumerate() {
                let e = Entry::new(i as u32, CostVector::new(&[*a, *b]), *lvl, 0);
                grid.insert(e);
                lin.insert(e);
            }
            let bounds = if unbounded {
                Bounds::unbounded(2)
            } else {
                Bounds::from_slice(&[qb.0, qb.1])
            };
            let norm = |mut v: Vec<Entry<u32>>| {
                v.sort_by_key(|e| e.item);
                v.iter().map(|e| e.item).collect::<Vec<_>>()
            };
            prop_assert_eq!(
                norm(grid.collect(&bounds, qr)),
                norm(lin.collect(&bounds, qr))
            );
            // Drain agreement and post-state agreement.
            let dg = norm(grid.drain(&bounds, qr));
            let dl = norm(lin.drain(&bounds, qr));
            prop_assert_eq!(dg, dl);
            prop_assert_eq!(PlanIndex::len(&grid), PlanIndex::len(&lin));
            let all = Bounds::unbounded(2);
            prop_assert_eq!(
                norm(grid.collect(&all, 4)),
                norm(lin.collect(&all, 4))
            );
        }
    }
}
