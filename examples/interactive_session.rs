//! A full scripted interactive session (the paper's Figure 1 workflow),
//! spoken in the session protocol: coarse frontier quickly → refinement
//! without input → the user drags a bound → focused refinement → plan
//! selection — with every update arriving as a delta-streamed
//! [`moqo::core::SessionEvent`] folded into a client-side
//! [`moqo::core::SessionView`], exactly as a remote UI would consume it.
//!
//! ```text
//! cargo run --release --example interactive_session
//! ```

use moqo::core::{Session, SessionCommand, SessionView};
use moqo::prelude::*;
use moqo::viz::{render_scatter, ScatterOptions};
use std::sync::Arc;

fn main() {
    let spec = Arc::new(moqo::tpch::query_block("q09", 0.1).expect("q09 exists"));
    let model: SharedCostModel = Arc::new(StandardCostModel::paper_metrics());
    let schedule = ResolutionSchedule::linear(12, 1.01, 0.3);
    let request = SessionRequest::new(spec);
    let mut session = Session::open(request, model.clone(), schedule).expect("valid request");
    // The client folds every event into its own view; the assertions at
    // the bottom prove the deltas reassembled the frontier exactly.
    let mut view = SessionView::default();
    let mut shipped = 0usize;

    let plot = |frontier: &moqo::core::FrontierSnapshot, bounds: Option<Bounds>| {
        let opts = ScatterOptions {
            width: 56,
            height: 14,
            x_metric: 0,
            y_metric: 1,
            x_label: "time".into(),
            y_label: "cores".into(),
            bounds,
        };
        render_scatter(&frontier.costs(), &opts)
    };

    // Step 1: the first invocation returns a coarse frontier quickly.
    let first = session.apply(SessionCommand::Refine).expect("live session");
    shipped += first.delta.shipped_points();
    let report = first.report.clone().expect("Refine runs an invocation");
    view.fold(&first).expect("ordered stream");
    println!(
        "first approximation after {:.1} ms ({} plans, all shipped as the first delta):",
        report.seconds() * 1e3,
        view.frontier.len()
    );
    println!("{}", plot(&view.frontier, None));

    // Steps 2-4: refinement without user input.
    for _ in 0..3 {
        let ev = session.apply(SessionCommand::Refine).expect("live session");
        shipped += ev.delta.shipped_points();
        view.fold(&ev).expect("ordered stream");
    }
    println!("after three refinements ({} plans):", view.frontier.len());
    println!("{}", plot(&view.frontier, None));

    // Step 5: the user reserves at most 4 cores. One command both
    // refocuses the session (resolution resets to 0) and runs the first
    // focused invocation.
    let bounds = Bounds::unbounded(model.dim()).with_limit(1, 4.0);
    println!("user drags the cores bound to 4: {bounds}");
    let refocus = session
        .apply(SessionCommand::SetBounds(bounds))
        .expect("live session");
    shipped += refocus.delta.shipped_points();
    view.fold(&refocus).expect("ordered stream");

    // Steps 6-8: focused refinement under the new bounds (the resolution
    // climbs again; candidate plans are reused, nothing is regenerated).
    for _ in 0..3 {
        let ev = session.apply(SessionCommand::Refine).expect("live session");
        shipped += ev.delta.shipped_points();
        let report = ev.report.clone().expect("invocation ran");
        view.fold(&ev).expect("ordered stream");
        println!(
            "  focused invocation at resolution {}: {} plans, {:.1} ms, delta shipped {} points",
            report.resolution,
            view.frontier.len(),
            report.seconds() * 1e3,
            ev.delta.shipped_points(),
        );
    }
    println!(
        "\nfrontier within the core budget ({} plans):",
        view.frontier.len()
    );
    println!("{}", plot(&view.frontier, Some(bounds)));

    // The reassembled view must agree with the session, bit for bit —
    // the protocol's delta-stream guarantee.
    assert!(
        view.frontier.bits_eq(session.frontier()),
        "delta stream diverged from the session"
    );

    // Step 9: the user clicks the plan with the best time within budget.
    let choice = *view.frontier.min_by_metric(0).expect("non-empty frontier");
    let fin = session
        .apply(SessionCommand::SelectPlan(choice.plan))
        .expect("live session");
    view.fold(&fin).expect("ordered stream");
    let plan = view.selected().expect("selection is terminal");
    assert_eq!(plan, choice.plan);
    println!(
        "selected plan {plan:?}: time={:.1}, cores={:.0}, error={:.3}",
        choice.cost[0], choice.cost[1], choice.cost[2]
    );
    println!("{}", moqo::plan::explain(session.optimizer().arena(), plan));

    // Incrementality receipt: nothing was ever generated twice — and the
    // delta stream shipped each frontier point exactly once per focus.
    let stats = session.optimizer().stats();
    println!(
        "session totals: {} invocations, {} plans generated, {} pairs combined, \
         {} frontier points shipped over {} events",
        stats.invocations, stats.plans_generated, stats.pairs_generated, shipped, view.epoch,
    );
}
