//! Property tests for the wire codec: encode→decode round-trips for
//! arbitrary protocol values, and decode-totality (typed errors, never a
//! panic) on arbitrary, truncated, and bit-flipped byte strings — the
//! wire-side mirror of the snapshot importer's corruption tests.

use moqo_core::wire::{WireDecode, WireEncode, WireReader, WireWriter};
use moqo_core::{
    AdmissionResponse, FrontierDelta, FrontierPoint, FrontierSnapshot, InvocationReport,
    Preference, ProtocolError, RejectReason, SessionCommand, SessionEvent, SessionOutcome,
    SessionRequest,
};
use moqo_cost::{Bounds, CostVector, ResolutionSchedule};
use moqo_costmodel::{SharedCostModel, StandardCostModel};
use moqo_plan::PlanId;
use moqo_query::testkit;
use moqo_wire::{ClientMessage, ServerMessage};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const DIM: usize = 3;

fn model() -> SharedCostModel {
    Arc::new(StandardCostModel::paper_metrics())
}

// ---------------------------------------------------------------------------
// Strategies. Components are dimension-consistent (DIM) so decoded values
// are exactly what a live session would produce; byte-level hostility is
// exercised separately below.
// ---------------------------------------------------------------------------

fn cost_component() -> BoxedStrategy<f64> {
    prop_oneof![
        (0u64..1_000_000).prop_map(|v| v as f64 / 64.0),
        Just(0.0),
        Just(f64::INFINITY),
    ]
    .boxed()
}

fn cost_vector() -> BoxedStrategy<CostVector> {
    proptest::collection::vec(cost_component(), DIM)
        .prop_map(|v| CostVector::new(&v))
        .boxed()
}

fn bounds() -> BoxedStrategy<Bounds> {
    cost_vector().prop_map(Bounds::new).boxed()
}

fn frontier_point() -> BoxedStrategy<FrontierPoint> {
    (0u32..64, cost_vector())
        .prop_map(|(plan, cost)| FrontierPoint {
            plan: PlanId(plan),
            cost,
        })
        .boxed()
}

fn delta() -> BoxedStrategy<FrontierDelta> {
    (
        any::<bool>(),
        proptest::collection::vec((0u32..64).prop_map(PlanId), 0..6),
        proptest::collection::vec(frontier_point(), 0..8),
    )
        .prop_map(|(reset, removed, added)| FrontierDelta {
            reset,
            removed,
            added,
        })
        .boxed()
}

fn preference() -> BoxedStrategy<Preference> {
    let weights = || proptest::collection::vec((0u64..1000).prop_map(|v| v as f64 / 100.0), DIM);
    prop_oneof![
        weights().prop_map(Preference::WeightedSum),
        weights().prop_map(Preference::Chebyshev),
        (proptest::collection::vec(0usize..DIM, 1..4), 0u64..100u64).prop_map(|(order, tol)| {
            Preference::Lexicographic {
                order,
                tolerance: tol as f64 / 1000.0,
            }
        }),
    ]
    .boxed()
}

fn schedule() -> BoxedStrategy<ResolutionSchedule> {
    // alpha_s stays positive: a constant ladder (alpha_s = 0) is not
    // representable by `from_factors` (strictly decreasing), so neither
    // the snapshot format nor the wire codec round-trips it.
    (0usize..4, 1u64..50, 1u64..80)
        .prop_map(|(r_max, t, s)| {
            ResolutionSchedule::linear(r_max, 1.0 + t as f64 / 100.0, s as f64 / 100.0)
        })
        .boxed()
}

fn report() -> BoxedStrategy<InvocationReport> {
    (
        (0u32..100, 0usize..8, 1u64..300, 0u64..1_000_000),
        (0usize..64, 0u64..1000, 0u64..1000, 0u64..1000),
        (0u64..1000, 0u64..1000, 0u64..1000, 0u64..1000),
        (0u64..1000, any::<bool>()),
    )
        .prop_map(|(a, b, c, d)| InvocationReport {
            invocation: a.0,
            resolution: a.1,
            alpha: 1.0 + a.2 as f64 / 100.0,
            duration: Duration::from_nanos(a.3),
            frontier_size: b.0,
            plans_generated: b.1,
            candidates_retrieved: b.2,
            pairs_generated: b.3,
            result_insertions: c.0,
            candidate_insertions: c.1,
            subsets_visited: c.2,
            splits_visited: c.3,
            splits_skipped: d.0,
            used_delta: d.1,
        })
        .boxed()
}

fn outcome() -> BoxedStrategy<SessionOutcome> {
    prop_oneof![
        (0u32..64, any::<bool>()).prop_map(|(p, by)| SessionOutcome::Selected {
            plan: PlanId(p),
            by_preference: by,
        }),
        Just(SessionOutcome::Retired),
    ]
    .boxed()
}

fn opt<T: Clone + 'static>(inner: BoxedStrategy<T>) -> BoxedStrategy<Option<T>> {
    prop_oneof![Just(None), inner.prop_map(Some)].boxed()
}

fn command() -> BoxedStrategy<SessionCommand> {
    prop_oneof![
        Just(SessionCommand::Refine),
        bounds().prop_map(SessionCommand::SetBounds),
        opt(preference()).prop_map(SessionCommand::SetPreference),
        (0u32..64).prop_map(|p| SessionCommand::SelectPlan(PlanId(p))),
        Just(SessionCommand::Cancel),
    ]
    .boxed()
}

fn event() -> BoxedStrategy<SessionEvent> {
    (
        (0u64..1000, delta(), 0usize..8, bounds(), 0u64..1000),
        (opt(report()), opt(report()), opt(outcome()), 0u64..5),
    )
        .prop_map(|(head, tail)| SessionEvent {
            epoch: head.0,
            delta: head.1,
            resolution: head.2,
            bounds: head.3,
            invocations: head.4,
            report: tail.0,
            first_report: tail.1,
            outcome: tail.2,
            coalesced: tail.3,
        })
        .boxed()
}

fn request() -> BoxedStrategy<SessionRequest> {
    (
        (2usize..5, 1u64..4),
        opt(bounds()),
        opt(schedule()),
        any::<bool>(),
        opt(preference()),
        opt((0usize..16).boxed()),
    )
        .prop_map(|((n, card), b, s, with_model, p, ticks)| {
            let mut req = SessionRequest::new(Arc::new(testkit::chain_query(n, card * 10_000)));
            req.bounds = b;
            req.schedule = s;
            if with_model {
                req.cost_model = Some(model());
            }
            req.preference = p;
            req.auto_ticks = ticks;
            req
        })
        .boxed()
}

fn admission() -> BoxedStrategy<AdmissionResponse> {
    prop_oneof![
        Just(AdmissionResponse::Admitted),
        schedule().prop_map(|s| AdmissionResponse::Degraded { schedule: s }),
        (0usize..32).prop_map(|p| AdmissionResponse::Queued { position: p }),
        (0usize..32)
            .prop_map(|l| AdmissionResponse::Rejected(RejectReason::Overloaded { live: l })),
        (0usize..32)
            .prop_map(|d| AdmissionResponse::Rejected(RejectReason::QueueFull { depth: d })),
    ]
    .boxed()
}

// ---------------------------------------------------------------------------
// Round trips.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn commands_round_trip(cmd in command()) {
        let bytes = cmd.encode_to_vec();
        prop_assert_eq!(SessionCommand::decode_exact(&bytes).unwrap(), cmd);
    }

    #[test]
    fn events_round_trip_bit_exactly(ev in event()) {
        let bytes = ev.encode_to_vec();
        let back = SessionEvent::decode_exact(&bytes).unwrap();
        prop_assert_eq!(&back, &ev);
        // Bit-exactness beyond PartialEq: re-encoding reproduces the
        // exact bytes, cost-vector bit patterns included.
        prop_assert_eq!(back.encode_to_vec(), bytes);
    }

    #[test]
    fn admissions_round_trip(resp in admission()) {
        let bytes = resp.encode_to_vec();
        prop_assert_eq!(AdmissionResponse::decode_exact(&bytes).unwrap(), resp);
    }

    #[test]
    fn requests_round_trip_through_the_registry(req in request()) {
        let mut w = WireWriter::new();
        req.wire_encode(&mut w);
        let bytes = w.into_vec();
        let resolver = model();
        let mut r = WireReader::new(&bytes);
        let back = SessionRequest::wire_decode(&mut r, &resolver).unwrap();
        prop_assert!(r.done());
        // The codec is a pure function of the request: equal bytes are
        // the equality proof (QuerySpec has no PartialEq).
        let mut w2 = WireWriter::new();
        back.wire_encode(&mut w2);
        prop_assert_eq!(w2.into_vec(), bytes);
    }

    #[test]
    fn envelopes_round_trip(ev in event(), cmd in command()) {
        let server = ServerMessage::Event(Box::new(ev));
        prop_assert_eq!(
            ServerMessage::decode(&server.encode()).unwrap(),
            server
        );
        let client = ClientMessage::Command(cmd.clone());
        let resolver = model();
        match ClientMessage::decode(&client.encode(), &resolver).unwrap() {
            ClientMessage::Command(back) => prop_assert_eq!(back, cmd),
            other => prop_assert!(false, "wrong envelope: {other:?}"),
        }
    }

    #[test]
    fn frontier_envelopes_round_trip(
        fp in any::<u64>(),
        blob in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        // The fleet control vocabulary: pull requests, pushes, and the
        // blob answer all round-trip with arbitrary payload bytes — the
        // envelope never interprets the frontier blob itself.
        let resolver = model();
        let pull = ClientMessage::PullFrontier { fingerprint: fp };
        match ClientMessage::decode(&pull.encode(), &resolver).unwrap() {
            ClientMessage::PullFrontier { fingerprint } => prop_assert_eq!(fingerprint, fp),
            other => prop_assert!(false, "wrong envelope: {other:?}"),
        }
        let push = ClientMessage::PushFrontier { frontier: blob.clone() };
        match ClientMessage::decode(&push.encode(), &resolver).unwrap() {
            ClientMessage::PushFrontier { frontier } => prop_assert_eq!(&frontier, &blob),
            other => prop_assert!(false, "wrong envelope: {other:?}"),
        }
        let server = ServerMessage::FrontierBlob { fingerprint: fp, frontier: blob };
        prop_assert_eq!(ServerMessage::decode(&server.encode()).unwrap(), server);
    }
}

// ---------------------------------------------------------------------------
// Decode totality: arbitrary, truncated, and bit-flipped inputs yield
// typed errors, never panics or runaway allocations.
// ---------------------------------------------------------------------------

/// Decodes `bytes` as every protocol type; each must return Ok or a typed
/// error without panicking.
fn decode_all(bytes: &[u8]) {
    let resolver = model();
    let _ = SessionCommand::decode_exact(bytes);
    let _ = SessionEvent::decode_exact(bytes);
    let _ = AdmissionResponse::decode_exact(bytes);
    let _ = ProtocolError::decode_exact(bytes);
    let _ = FrontierDelta::decode_exact(bytes);
    let _ = FrontierSnapshot::decode_exact(bytes);
    let _ = Preference::decode_exact(bytes);
    let _ = InvocationReport::decode_exact(bytes);
    let _ = ResolutionSchedule::decode_exact(bytes);
    let _ = CostVector::decode_exact(bytes);
    let _ = Bounds::decode_exact(bytes);
    let _ = SessionRequest::wire_decode(&mut WireReader::new(bytes), &resolver);
    let _ = ClientMessage::decode(bytes, &resolver);
    let _ = ServerMessage::decode(bytes);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn decoding_arbitrary_bytes_never_panics(
        bytes in proptest::collection::vec((0u32..256).prop_map(|b| b as u8), 0..160),
    ) {
        decode_all(&bytes);
    }

    #[test]
    fn decoding_truncations_never_panics(ev in event(), cmd in command()) {
        for bytes in [ev.encode_to_vec(), cmd.encode_to_vec()] {
            for len in 0..bytes.len() {
                decode_all(&bytes[..len]);
                // A strict prefix can never decode as the same type and
                // pass the trailing-bytes check both.
                prop_assert!(
                    SessionEvent::decode_exact(&bytes[..len]).is_err()
                        || SessionCommand::decode_exact(&bytes[..len]).is_err()
                );
            }
        }
    }

    #[test]
    fn frontier_envelope_truncations_and_flips_never_panic(
        fp in any::<u64>(),
        blob in proptest::collection::vec(any::<u8>(), 0..96),
        flips in proptest::collection::vec((0usize..4096, 0u8..8), 1..12),
    ) {
        let encodings = [
            ClientMessage::PullFrontier { fingerprint: fp }.encode(),
            ClientMessage::PushFrontier { frontier: blob.clone() }.encode(),
            ServerMessage::FrontierBlob { fingerprint: fp, frontier: blob }.encode(),
        ];
        for bytes in &encodings {
            for len in 0..bytes.len() {
                decode_all(&bytes[..len]);
            }
            let mut mutant = bytes.clone();
            for &(pos, bit) in &flips {
                let i = pos % mutant.len();
                mutant[i] ^= 1 << bit;
            }
            decode_all(&mutant);
        }
    }

    #[test]
    fn decoding_bit_flips_never_panics(
        ev in event(),
        req in request(),
        flips in proptest::collection::vec((0usize..4096, 0u8..8), 1..12),
    ) {
        let mut w = WireWriter::new();
        req.wire_encode(&mut w);
        for mut bytes in [ev.encode_to_vec(), w.into_vec()] {
            for &(pos, bit) in &flips {
                let i = pos % bytes.len();
                bytes[i] ^= 1 << bit;
            }
            decode_all(&bytes);
        }
    }
}

/// Exhaustive single-byte corruption of one concrete event — the exact
/// analogue of the snapshot importer's corruption test, at the wire layer.
#[test]
fn single_byte_corruption_never_panics_the_event_decoder() {
    let event = SessionEvent {
        epoch: 5,
        delta: FrontierDelta {
            reset: true,
            removed: vec![],
            added: vec![
                FrontierPoint {
                    plan: PlanId(3),
                    cost: CostVector::new(&[4.0, 1.0, 0.5]),
                },
                FrontierPoint {
                    plan: PlanId(8),
                    cost: CostVector::new(&[2.0, 2.0, f64::INFINITY]),
                },
            ],
        },
        resolution: 2,
        bounds: Bounds::unbounded(3),
        invocations: 7,
        report: None,
        first_report: None,
        outcome: Some(SessionOutcome::Retired),
        coalesced: 0,
    };
    let bytes = event.encode_to_vec();
    for i in 0..bytes.len() {
        let mut mutant = bytes.clone();
        mutant[i] ^= 0xa5;
        let _ = SessionEvent::decode_exact(&mutant);
        let _ = ServerMessage::decode(&mutant);
    }
}
