//! Integration tests of the serving layer: session isolation, command
//! routing over the session protocol, delta-streamed watch channels, and
//! the warm-frontier cache (including per-session cost-model isolation).

use moqo_cost::{Bounds, ResolutionSchedule};
use moqo_costmodel::{CostModel, SharedCostModel, StandardCostModel, StandardCostModelConfig};
use moqo_engine::{
    EngineConfig, ProtocolError, SessionCommand, SessionManager, SessionOutcome, SessionRequest,
    SessionView,
};
use moqo_query::testkit;
use std::sync::Arc;
use std::time::Duration;

const IDLE: Duration = Duration::from_secs(60);

fn schedule() -> ResolutionSchedule {
    ResolutionSchedule::linear(3, 1.05, 0.5)
}

fn manager(workers: usize) -> SessionManager {
    SessionManager::new(
        Arc::new(StandardCostModel::paper_metrics()),
        schedule(),
        EngineConfig {
            workers,
            ..EngineConfig::default()
        },
    )
}

#[test]
fn concurrent_sessions_keep_distinct_frontiers() {
    let m = manager(3);
    // Structurally different queries must end with different frontiers —
    // no state bleeding between concurrently advancing sessions.
    let ids: Vec<_> = [
        Arc::new(testkit::chain_query(2, 50_000)),
        Arc::new(testkit::chain_query(4, 50_000)),
        Arc::new(testkit::star_query(4, 200_000)),
        Arc::new(testkit::clique_query(3, 20_000)),
    ]
    .into_iter()
    .map(|spec| m.submit(spec))
    .collect();
    assert!(m.wait_idle(IDLE), "engine did not drain");
    let statuses: Vec<_> = ids.iter().map(|&id| m.status(id).unwrap()).collect();
    for s in &statuses {
        // Every session ran its full auto ladder and produced plans.
        assert_eq!(s.invocations, schedule().levels() as u64, "{}", s.query);
        assert!(!s.frontier.is_empty(), "{}: empty frontier", s.query);
        assert!(!s.is_finished());
    }
    // Fingerprints (and hence cached state) are all distinct.
    for i in 0..statuses.len() {
        for j in (i + 1)..statuses.len() {
            assert_ne!(statuses[i].fingerprint, statuses[j].fingerprint);
        }
    }
    // Frontier *plan sets* differ: a 2-chain and a 4-chain can't agree.
    let c2 = &statuses[0].frontier;
    let c4 = &statuses[1].frontier;
    assert_ne!(
        (c2.len(), c2.costs().first().map(|c| c[0].to_bits())),
        (c4.len(), c4.costs().first().map(|c| c[0].to_bits())),
    );
}

#[test]
fn warm_cache_hit_generates_zero_plans_on_first_invocation() {
    let m = manager(2);
    let spec = Arc::new(testkit::chain_query(3, 100_000));
    let cold = m.submit(spec.clone());
    assert!(m.wait_idle(IDLE));
    let cold_status = m.status(cold).unwrap();
    assert!(!cold_status.warm_start);
    assert!(
        cold_status.first_report.as_ref().unwrap().plans_generated > 0,
        "cold session must actually build plans"
    );
    let cold_frontier_len = cold_status.frontier.len();
    // Retire the session; its optimizer parks in the frontier cache.
    m.finish(cold).unwrap();

    // An *equivalent* query (fresh spec instance, different display name)
    // hits the cache and resumes from the warm frontier.
    let mut again = testkit::chain_query(3, 100_000);
    again.name = "repeat-of-chain-3".into();
    let warm = m.submit(Arc::new(again));
    assert!(m.wait_idle(IDLE));
    let warm_status = m.status(warm).unwrap();
    assert!(warm_status.warm_start, "expected a frontier-cache hit");
    let first = warm_status.first_report.as_ref().unwrap();
    assert_eq!(
        first.plans_generated, 0,
        "warm start must not regenerate plans"
    );
    assert_eq!(first.pairs_generated, 0);
    assert!(
        warm_status.frontier.len() >= cold_frontier_len,
        "warm frontier lost plans"
    );
    let stats = m.cache_stats();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.entries, 0, "hit transfers the optimizer out");
}

#[test]
fn set_bounds_routes_to_the_right_session_only() {
    let m = manager(2);
    let model_dim = StandardCostModel::paper_metrics().dim();
    let a = m.submit(Arc::new(testkit::chain_query(3, 80_000)));
    let b = m.submit(Arc::new(testkit::star_query(3, 80_000)));
    assert!(m.wait_idle(IDLE));
    let a0 = m.status(a).unwrap();
    let b0 = m.status(b).unwrap();
    // Both ladders ran to saturation.
    assert_eq!(a0.resolution, schedule().r_max());
    assert_eq!(b0.resolution, schedule().r_max());

    // Drag a bound on session A only.
    let t_max = a0.frontier.min_by_metric(0).unwrap().cost[0] * 4.0;
    let tight = Bounds::unbounded(model_dim).with_limit(0, t_max);
    m.command(a, SessionCommand::SetBounds(tight)).unwrap();
    assert!(m.wait_idle(IDLE));

    let a1 = m.status(a).unwrap();
    let b1 = m.status(b).unwrap();
    // A refocused: new bounds, more invocations, ladder re-ran from 0.
    assert_eq!(a1.bounds, tight);
    assert!(a1.invocations > a0.invocations);
    assert!(a1.frontier.points.iter().all(|p| tight.respects(&p.cost)));
    // B untouched: same bounds, same invocation count, same frontier.
    assert_eq!(b1.bounds, b0.bounds);
    assert_eq!(b1.invocations, b0.invocations);
    assert_eq!(b1.frontier.len(), b0.frontier.len());
}

#[test]
fn select_plan_finishes_and_recycles_the_session() {
    let m = manager(2);
    let a = m.submit(Arc::new(testkit::chain_query(2, 30_000)));
    assert!(m.wait_idle(IDLE));
    let choice = m.frontier(a).unwrap().min_by_metric(0).unwrap().plan;
    m.command(a, SessionCommand::SelectPlan(choice)).unwrap();
    assert!(m.wait_idle(IDLE));
    let s = m.status(a).unwrap();
    assert!(s.is_finished());
    assert_eq!(s.selected(), Some(choice));
    // The optimizer was parked for reuse.
    assert_eq!(m.cache_stats().entries, 1);
    // Commands to a finished session are a typed protocol error.
    assert_eq!(
        m.command(a, SessionCommand::Refine),
        Err(ProtocolError::SessionFinished)
    );
    // So are commands to sessions that never existed.
    assert_eq!(
        m.command(9999, SessionCommand::Refine),
        Err(ProtocolError::UnknownSession)
    );
}

#[test]
fn malformed_commands_are_rejected_at_the_door() {
    let m = manager(2);
    let a = m.submit(Arc::new(testkit::chain_query(2, 20_000)));
    // Wrong bounds dimension: typed error, and the worker never sees it.
    assert_eq!(
        m.command(a, SessionCommand::SetBounds(Bounds::unbounded(2))),
        Err(ProtocolError::BoundsDimensionMismatch {
            expected: 3,
            got: 2
        })
    );
    // Wrong preference dimension, same story.
    assert_eq!(
        m.command(
            a,
            SessionCommand::SetPreference(Some(moqo_core::Preference::WeightedSum(vec![1.0])))
        ),
        Err(ProtocolError::WeightDimensionMismatch {
            expected: 3,
            got: 1
        })
    );
    // A NaN-weighted preference is caught at the door too (it would
    // otherwise poison score comparisons inside a worker).
    assert_eq!(
        m.command(
            a,
            SessionCommand::SetPreference(Some(moqo_core::Preference::WeightedSum(vec![
                f64::NAN,
                0.0,
                0.0
            ])))
        ),
        Err(ProtocolError::NonFinitePreference)
    );
    // Selecting a plan that was never visualized is a typed error.
    let bogus = moqo_plan::PlanId(u32::MAX);
    assert!(matches!(
        m.command(a, SessionCommand::SelectPlan(bogus)),
        Err(ProtocolError::UnknownPlan { plan }) if plan == bogus
    ));
    assert!(m.wait_idle(IDLE));
    // The session is unharmed and fully refined.
    let s = m.status(a).unwrap();
    assert!(!s.is_finished());
    assert_eq!(s.invocations, schedule().levels() as u64);
    assert!(!s.frontier.is_empty());
}

#[test]
fn eight_plus_concurrent_sessions_drain_on_a_small_pool() {
    let m = manager(3);
    let mut ids = Vec::new();
    for n in 2..=5 {
        ids.push(m.submit(Arc::new(testkit::chain_query(n, 40_000))));
        ids.push(m.submit(Arc::new(testkit::star_query(n, 40_000))));
        ids.push(m.submit(Arc::new(testkit::random_query(n, n as u64))));
    }
    assert!(ids.len() >= 8);
    assert!(m.wait_idle(IDLE), "pool failed to drain 12 sessions");
    for id in ids {
        let s = m.status(id).unwrap();
        assert_eq!(s.invocations, schedule().levels() as u64, "{}", s.query);
        assert!(!s.frontier.is_empty(), "{}", s.query);
    }
}

#[test]
fn per_session_schedule_override_degrades_the_ladder() {
    let m = manager(2);
    // A degraded session runs a one-level ladder at a coarse target while
    // the manager-wide schedule keeps four levels.
    let coarse = ResolutionSchedule::linear(0, 1.5, 0.5);
    let deg = m
        .open(
            SessionRequest::new(Arc::new(testkit::chain_query(3, 60_000)))
                .with_schedule(coarse.clone()),
        )
        .unwrap();
    let full = m.submit(Arc::new(testkit::chain_query(4, 60_000)));
    assert!(m.wait_idle(IDLE));
    let d = m.status(deg).unwrap();
    let f = m.status(full).unwrap();
    assert!(d.schedule_override);
    assert!(!f.schedule_override);
    // The degraded session's refinement budget is its own ladder length.
    assert_eq!(d.invocations, coarse.levels() as u64);
    assert_eq!(f.invocations, schedule().levels() as u64);
    assert!(
        !d.frontier.is_empty(),
        "degraded session still serves plans"
    );
}

#[test]
fn warm_resume_ignores_the_schedule_override() {
    let m = manager(2);
    let spec = Arc::new(testkit::chain_query(3, 90_000));
    let cold = m.submit(spec.clone());
    assert!(m.wait_idle(IDLE));
    m.finish(cold).unwrap();
    // Resubmit with a degrade override: the warm frontier wins.
    let warm = m
        .open(SessionRequest::new(spec).with_schedule(ResolutionSchedule::linear(0, 1.5, 0.5)))
        .unwrap();
    assert!(m.wait_idle(IDLE));
    let s = m.status(warm).unwrap();
    assert!(s.warm_start);
    assert!(!s.schedule_override, "warm resume keeps the parked ladder");
    assert_eq!(
        s.first_report.as_ref().unwrap().plans_generated,
        0,
        "warm start must not regenerate plans"
    );
}

#[test]
fn watch_streams_deltas_that_reassemble_to_the_exact_frontier() {
    let m = manager(2);
    let id = m.submit(Arc::new(testkit::chain_query(3, 70_000)));
    let rx = m.watch(id).expect("live session is watchable");
    // The subscription primes itself with a reset-delta event...
    let first = rx.recv_timeout(IDLE).expect("primed event");
    assert!(first.delta.reset);
    let mut view = SessionView::default();
    view.fold(&first).unwrap();
    // ...and then delivers one event per completed slice until the
    // session parks; fold until the ladder saturates.
    while view.invocations < schedule().levels() as u64 {
        let ev = rx.recv_timeout(IDLE).expect("slice event");
        view.fold(&ev).unwrap();
    }
    assert!(!view.frontier.is_empty());
    // The reassembled frontier is bit-exact against the server's.
    assert!(view.frontier.bits_eq(&m.frontier(id).unwrap()));
    // Warm evidence flowed through the stream, not a status query.
    assert!(view.first_report.is_some());
    // Finishing delivers a final outcome event on the same channel.
    m.finish(id).unwrap();
    let fin = rx.recv_timeout(IDLE).expect("final event");
    assert_eq!(fin.outcome, Some(SessionOutcome::Retired));
    view.fold(&fin).unwrap();
    assert!(view.is_finished());
    // Unknown sessions are not watchable.
    assert!(m.watch(9999).is_none());
}

#[test]
fn park_and_probe_expose_the_cache_to_serving_layers() {
    let m = manager(2);
    let spec = Arc::new(testkit::chain_query(3, 45_000));
    let model = m.model();
    let fp = moqo_engine::QueryFingerprint::of(&spec, &model);
    assert!(!m.has_parked(fp));
    // Build a warm optimizer out-of-band and park it (the restore path).
    let mut opt = moqo_core::IamaOptimizer::new(spec.clone(), m.model(), schedule());
    let b = Bounds::unbounded(m.model().dim());
    for r in 0..=schedule().r_max() {
        opt.optimize(&b, r);
    }
    m.park(fp, opt);
    assert!(m.has_parked(fp));
    let mut seen = 0;
    m.for_each_parked(|pfp, _| {
        assert_eq!(pfp, fp);
        seen += 1;
    });
    assert_eq!(seen, 1);
    // The next submission of an equivalent query starts warm.
    let id = m.submit(spec);
    assert!(m.wait_idle(IDLE));
    let s = m.status(id).unwrap();
    assert!(s.warm_start);
    assert_eq!(s.first_report.as_ref().unwrap().plans_generated, 0);
}

#[test]
fn live_sessions_tracks_admission_load() {
    let m = manager(2);
    assert_eq!(m.live_sessions(), 0);
    let a = m.submit(Arc::new(testkit::chain_query(2, 10_000)));
    let b = m.submit(Arc::new(testkit::chain_query(3, 10_000)));
    assert_eq!(m.live_sessions(), 2);
    assert!(m.wait_idle(IDLE));
    // Parked-but-unfinished sessions still count as live.
    assert_eq!(m.live_sessions(), 2);
    m.finish(a).unwrap();
    assert_eq!(m.live_sessions(), 1);
    // Selecting a plan retires the session and sheds its load.
    let choice = m.frontier(b).unwrap().min_by_metric(0).unwrap().plan;
    m.command(b, SessionCommand::SelectPlan(choice)).unwrap();
    assert!(m.wait_idle(IDLE));
    assert_eq!(m.live_sessions(), 0);
}

#[test]
fn similar_queries_share_one_enumeration_plan() {
    let m = manager(2);
    // Three chain-4 queries with pairwise different statistics: distinct
    // fingerprints (no frontier sharing) but one join-graph shape.
    let ids: Vec<_> = [10_000u64, 50_000, 250_000]
        .into_iter()
        .map(|card| m.submit(Arc::new(testkit::chain_query(4, card))))
        .collect();
    // A different shape forces a second plan.
    let star = m.submit(Arc::new(testkit::star_query(4, 100_000)));
    assert!(m.wait_idle(IDLE));
    for id in ids.iter().chain([&star]) {
        assert!(!m.frontier(*id).unwrap().is_empty());
    }
    let plans = m.plan_cache_stats();
    assert_eq!(plans.entries, 2, "expected one plan per shape");
    assert_eq!(plans.misses, 2);
    assert_eq!(plans.hits, 2, "similar chain queries must share the plan");
    // No frontier-cache involvement: these are four distinct fingerprints.
    assert_eq!(m.cache_stats().hits, 0);
}

#[test]
fn preference_requests_auto_select_without_a_round_trip() {
    let m = manager(2);
    let pref = moqo_core::Preference::WeightedSum(vec![1.0, 0.01, 0.01]);
    let id = m
        .open(
            SessionRequest::new(Arc::new(testkit::chain_query(3, 55_000)))
                .with_preference(pref.clone()),
        )
        .unwrap();
    assert!(m.wait_idle(IDLE));
    let s = m.status(id).unwrap();
    match s.outcome {
        Some(SessionOutcome::Selected {
            plan,
            by_preference,
        }) => {
            assert!(by_preference, "the preference must have fired");
            // The selection matches what the preference would pick from
            // the final frontier.
            let best = pref.select(&s.frontier, &s.bounds).unwrap().unwrap();
            assert_eq!(plan, best.plan);
        }
        other => panic!("expected an auto-selected outcome, got {other:?}"),
    }
    // The session retired on its own; its frontier parked for reuse.
    assert_eq!(m.live_sessions(), 0);
    assert_eq!(m.cache_stats().entries, 1);
}

#[test]
fn per_session_cost_models_share_nothing_across_models() {
    // One manager, one query, two cost models (same metric layout,
    // different parameters). The fingerprint embeds the model identity,
    // so each model's sessions warm only their own parked frontiers —
    // zero crossover.
    let m = manager(2);
    let spec = Arc::new(testkit::chain_query(3, 65_000));
    let custom: SharedCostModel = Arc::new(StandardCostModel::new(
        moqo_costmodel::MetricSet::paper(),
        StandardCostModelConfig {
            dops: vec![1, 2],
            sampling_rates_pm: vec![250],
            ..StandardCostModelConfig::default()
        },
    ));
    let default_id = m.submit(spec.clone());
    let custom_id = m
        .open(SessionRequest::new(spec.clone()).with_cost_model(custom.clone()))
        .unwrap();
    assert!(m.wait_idle(IDLE));
    let d = m.status(default_id).unwrap();
    let c = m.status(custom_id).unwrap();
    assert!(!d.model_override);
    assert!(c.model_override);
    assert_ne!(
        d.fingerprint, c.fingerprint,
        "same query, different model: fingerprints must differ"
    );
    // Different models produce different frontiers over the same query.
    assert_ne!(
        (
            d.frontier.len(),
            d.frontier.costs().first().map(|x| x[0].to_bits())
        ),
        (
            c.frontier.len(),
            c.frontier.costs().first().map(|x| x[0].to_bits())
        ),
    );
    m.finish(default_id).unwrap();
    m.finish(custom_id).unwrap();
    assert_eq!(m.cache_stats().entries, 2, "one parked frontier per model");

    // Resubmitting under each model warms from exactly its own frontier.
    let d2 = m.submit(spec.clone());
    let c2 = m
        .open(SessionRequest::new(spec).with_cost_model(custom))
        .unwrap();
    assert!(m.wait_idle(IDLE));
    let d2s = m.status(d2).unwrap();
    let c2s = m.status(c2).unwrap();
    assert!(d2s.warm_start && c2s.warm_start);
    assert_eq!(d2s.first_report.as_ref().unwrap().plans_generated, 0);
    assert_eq!(c2s.first_report.as_ref().unwrap().plans_generated, 0);
    // Each resumed the frontier its model built (bit-exact lengths and
    // costs match the pre-finish state per model).
    assert_eq!(d2s.frontier.len(), d.frontier.len());
    assert_eq!(c2s.frontier.len(), c.frontier.len());
    let stats = m.cache_stats();
    assert_eq!(stats.hits, 2);
    assert_eq!(stats.entries, 0, "both hits transferred ownership out");
}

#[test]
fn similar_queries_transplant_sub_frontiers() {
    // chain(5) and chain(7) share their even-offset contiguous subchains
    // (testkit chains alternate cardinalities by position parity), so a
    // finished chain(5) session's harvested sub-frontiers seed many table
    // subsets of a later chain(7) session — a warm start across *similar*,
    // not identical, queries.
    let m = manager(2);
    let small = Arc::new(testkit::chain_query(5, 60_000));
    let big = Arc::new(testkit::chain_query(7, 60_000));

    let donor = m.submit(small);
    assert!(m.wait_idle(IDLE));
    m.finish(donor).unwrap();
    let harvested = m.subfrontier_stats();
    assert!(
        harvested.insertions > 0,
        "finish must harvest sub-frontiers"
    );
    assert!(harvested.entries > 0);

    let seeded = m.submit(big.clone());
    assert!(m.wait_idle(IDLE));
    let s = m.status(seeded).unwrap();
    assert!(!s.warm_start, "different query: not an exact warm hit");
    assert!(!s.rebased, "different shape: not a rebase");
    assert!(
        s.seeded_subsets > 0,
        "shared subchains must transplant: {s:?}"
    );
    assert!(m.subfrontier_stats().hits > 0);
    assert!(!s.frontier.is_empty());

    // The transplant pays: a cold manager over the same query generates
    // more plans across the full ladder.
    let fp = moqo_engine::QueryFingerprint::of(&big, &m.model());
    m.finish(seeded).unwrap();
    let seeded_plans = m
        .with_parked(fp, |opt| opt.stats().plans_generated)
        .expect("finished session parks");
    let transplanted = m
        .with_parked(fp, |opt| opt.stats().transplanted_candidates)
        .unwrap();
    assert!(transplanted > 0);

    let cold = manager(2);
    let cold_id = cold.submit(big.clone());
    assert!(cold.wait_idle(IDLE));
    cold.finish(cold_id).unwrap();
    let cold_plans = cold
        .with_parked(fp, |opt| opt.stats().plans_generated)
        .unwrap();
    assert!(
        seeded_plans < cold_plans,
        "transplant must cut generation: seeded={seeded_plans} cold={cold_plans}"
    );
}

#[test]
fn drifted_statistics_rebase_the_parked_frontier() {
    // The same query resubmitted after a stats refresh: the exact
    // fingerprint misses, but the cardinality-blind RebaseKey finds the
    // parked frontier and the new session starts from its plans,
    // re-costed under the fresh statistics.
    let m = manager(2);
    let spec = Arc::new(testkit::chain_query(4, 80_000));
    let drifted = Arc::new(testkit::drift_cardinalities(&spec, 1.07));
    let model = m.model();
    let donor_fp = moqo_engine::QueryFingerprint::of(&spec, &model);
    let drifted_fp = moqo_engine::QueryFingerprint::of(&drifted, &model);
    assert_ne!(donor_fp, drifted_fp);

    let donor = m.submit(spec);
    assert!(m.wait_idle(IDLE));
    m.finish(donor).unwrap();

    let id = m.submit(drifted.clone());
    assert!(m.wait_idle(IDLE));
    let s = m.status(id).unwrap();
    assert!(!s.warm_start);
    assert!(s.rebased, "drifted twin must rebase: {s:?}");
    assert!(!s.frontier.is_empty());
    assert!(m.cache_stats().rebase_hits >= 1);
    // The donor stays parked for exact repeats of its own statistics.
    assert!(m.has_parked(donor_fp));

    m.finish(id).unwrap();
    let rebased_plans = m
        .with_parked(drifted_fp, |opt| opt.stats().plans_generated)
        .unwrap();
    let cold = manager(2);
    let cold_id = cold.submit(drifted);
    assert!(cold.wait_idle(IDLE));
    cold.finish(cold_id).unwrap();
    let cold_plans = cold
        .with_parked(drifted_fp, |opt| opt.stats().plans_generated)
        .unwrap();
    assert!(
        rebased_plans < cold_plans,
        "rebase must cut generation: rebased={rebased_plans} cold={cold_plans}"
    );
}
