//! Pareto-set utilities.
//!
//! Section 3 of the paper defines Pareto-optimal plans, Pareto plan sets,
//! and `alpha`-approximate (`b`-bounded) Pareto plan sets. This module
//! provides the corresponding set-level operations on bare cost vectors:
//! filtering a set to its Pareto frontier, checking (approximate) coverage
//! of a reference frontier, and measuring the realized approximation factor
//! of a result set — the quantity that the formal guarantee
//! `alpha_r^n` (Theorem 2) upper-bounds.

use crate::bounds::Bounds;
use crate::vector::CostVector;

/// Returns the indices of the vectors in `costs` that are not strictly
/// dominated by any other vector (a Pareto plan set of minimal size, up to
/// duplicates: among equal vectors the first index is kept).
pub fn pareto_filter(costs: &[CostVector]) -> Vec<usize> {
    let mut keep = Vec::new();
    'outer: for (i, c) in costs.iter().enumerate() {
        for (j, other) in costs.iter().enumerate() {
            if i == j {
                continue;
            }
            if other.strictly_dominates(c) {
                continue 'outer;
            }
            // Tie-break exact duplicates by index so only one survives.
            if other == c && j < i {
                continue 'outer;
            }
        }
        keep.push(i);
    }
    keep
}

/// True if `costs[i]` is Pareto-optimal within `costs`.
pub fn is_pareto_optimal(costs: &[CostVector], i: usize) -> bool {
    let c = &costs[i];
    !costs
        .iter()
        .enumerate()
        .any(|(j, other)| j != i && other.strictly_dominates(c))
}

/// True if `set` is an `alpha`-approximate cover of `reference`: for every
/// `r` in `reference` there is an `s` in `set` with `s ⪯ alpha · r`.
pub fn covers(set: &[CostVector], reference: &[CostVector], alpha: f64) -> bool {
    reference
        .iter()
        .all(|r| set.iter().any(|s| s.dominates_scaled(r, alpha)))
}

/// True if `set` is an `alpha`-approximate *b-bounded* cover of `reference`:
/// for every `r` in `reference` with `alpha · r ⪯ b` there is an `s` in
/// `set` with `s ⪯ alpha · r` (the paper's bounded Pareto-set definition).
pub fn covers_bounded(
    set: &[CostVector],
    reference: &[CostVector],
    alpha: f64,
    bounds: &Bounds,
) -> bool {
    reference
        .iter()
        .filter(|r| bounds.respects(&r.scaled(alpha)))
        .all(|r| set.iter().any(|s| s.dominates_scaled(r, alpha)))
}

/// The smallest `alpha` such that `set` is an `alpha`-approximate cover of
/// `reference`, i.e. `max over r of (min over s of domination_factor(s, r))`.
///
/// Returns `1.0` when the set covers the reference exactly (or better) and
/// `f64::INFINITY` when some reference point cannot be covered by any finite
/// scaling (only possible with zero-cost components). An empty reference is
/// covered with factor `1.0`; an empty set cannot cover a non-empty
/// reference.
pub fn coverage_factor(set: &[CostVector], reference: &[CostVector]) -> f64 {
    let mut worst: f64 = 1.0;
    for r in reference {
        let best = set
            .iter()
            .map(|s| s.domination_factor(r))
            .fold(f64::INFINITY, f64::min);
        worst = worst.max(best);
    }
    worst
}

/// Incrementally maintains a minimal Pareto frontier under insertion.
///
/// Used by the exhaustive baseline (full-Pareto dynamic programming) where,
/// unlike IAMA's result sets, dominated entries *are* discarded eagerly.
/// `T` is an arbitrary payload (e.g. a plan identifier).
#[derive(Clone, Debug, Default)]
pub struct ParetoAccumulator<T> {
    entries: Vec<(CostVector, T)>,
}

impl<T> ParetoAccumulator<T> {
    /// Creates an empty frontier.
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// Inserts `(cost, payload)` unless it is dominated by an existing
    /// entry; evicts existing entries that the new one strictly dominates.
    /// Returns true if the entry was inserted.
    ///
    /// A new entry whose cost *equals* an existing entry's cost is rejected
    /// (the frontier keeps one representative per cost vector).
    pub fn insert(&mut self, cost: CostVector, payload: T) -> bool {
        for (c, _) in &self.entries {
            if c.dominates(&cost) {
                return false;
            }
        }
        self.entries.retain(|(c, _)| !cost.strictly_dominates(c));
        self.entries.push((cost, payload));
        true
    }

    /// Number of frontier entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the frontier is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(cost, payload)` entries.
    pub fn iter(&self) -> impl Iterator<Item = &(CostVector, T)> {
        self.entries.iter()
    }

    /// The frontier's cost vectors.
    pub fn costs(&self) -> Vec<CostVector> {
        self.entries.iter().map(|(c, _)| *c).collect()
    }

    /// Consumes the accumulator and returns its entries.
    pub fn into_entries(self) -> Vec<(CostVector, T)> {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &[f64]) -> CostVector {
        CostVector::new(s)
    }

    #[test]
    fn pareto_filter_drops_dominated() {
        let costs = vec![
            v(&[1.0, 4.0]),
            v(&[2.0, 2.0]),
            v(&[3.0, 3.0]),
            v(&[4.0, 1.0]),
        ];
        let keep = pareto_filter(&costs);
        assert_eq!(keep, vec![0, 1, 3]);
    }

    #[test]
    fn pareto_filter_keeps_one_duplicate() {
        let costs = vec![v(&[1.0, 1.0]), v(&[1.0, 1.0]), v(&[2.0, 0.5])];
        let keep = pareto_filter(&costs);
        assert_eq!(keep, vec![0, 2]);
    }

    #[test]
    fn pareto_filter_empty() {
        assert!(pareto_filter(&[]).is_empty());
    }

    #[test]
    fn is_pareto_optimal_matches_filter() {
        let costs = vec![v(&[1.0, 4.0]), v(&[2.0, 5.0]), v(&[4.0, 1.0])];
        assert!(is_pareto_optimal(&costs, 0));
        assert!(!is_pareto_optimal(&costs, 1));
        assert!(is_pareto_optimal(&costs, 2));
    }

    #[test]
    fn coverage_exact_and_approximate() {
        let reference = vec![v(&[1.0, 4.0]), v(&[4.0, 1.0])];
        // A singleton within factor 4 of both reference points.
        let set = vec![v(&[4.0, 4.0])];
        assert!(!covers(&set, &reference, 1.0));
        assert!(covers(&set, &reference, 4.0));
        assert_eq!(coverage_factor(&set, &reference), 4.0);
        // The reference covers itself exactly.
        assert_eq!(coverage_factor(&reference, &reference), 1.0);
    }

    #[test]
    fn coverage_of_empty_reference_is_trivial() {
        assert!(covers(&[], &[], 1.0));
        assert_eq!(coverage_factor(&[], &[]), 1.0);
    }

    #[test]
    fn empty_set_cannot_cover() {
        let reference = vec![v(&[1.0])];
        assert!(!covers(&[], &reference, 100.0));
        assert_eq!(coverage_factor(&[], &reference), f64::INFINITY);
    }

    #[test]
    fn bounded_coverage_ignores_out_of_bounds_reference_points() {
        let reference = vec![v(&[1.0, 10.0]), v(&[100.0, 1.0])];
        let set = vec![v(&[1.0, 10.0])];
        let bounds = Bounds::from_slice(&[10.0, 10.0]);
        // The 100-cost point is outside alpha*b, so it need not be covered.
        assert!(covers_bounded(&set, &reference, 1.0, &bounds));
        assert!(!covers(&set, &reference, 1.0));
    }

    #[test]
    fn accumulator_maintains_minimal_frontier() {
        let mut acc = ParetoAccumulator::new();
        assert!(acc.insert(v(&[2.0, 2.0]), "a"));
        assert!(acc.insert(v(&[1.0, 3.0]), "b"));
        // Dominated by "a":
        assert!(!acc.insert(v(&[3.0, 3.0]), "c"));
        // Equal to "a": rejected.
        assert!(!acc.insert(v(&[2.0, 2.0]), "a2"));
        // Dominates "a": evicts it.
        assert!(acc.insert(v(&[1.5, 1.5]), "d"));
        let costs = acc.costs();
        assert_eq!(acc.len(), 2);
        assert!(costs.contains(&v(&[1.0, 3.0])));
        assert!(costs.contains(&v(&[1.5, 1.5])));
    }

    #[test]
    fn accumulator_result_is_pareto_set() {
        // Inserting a batch in any order yields exactly the Pareto filter.
        let costs = vec![
            v(&[5.0, 1.0]),
            v(&[1.0, 5.0]),
            v(&[3.0, 3.0]),
            v(&[4.0, 4.0]),
            v(&[2.0, 4.5]),
        ];
        let mut acc = ParetoAccumulator::new();
        for (i, c) in costs.iter().enumerate() {
            acc.insert(*c, i);
        }
        let expected: Vec<CostVector> = pareto_filter(&costs)
            .into_iter()
            .map(|i| costs[i])
            .collect();
        let mut got = acc.costs();
        got.sort_by(|a, b| a[0].partial_cmp(&b[0]).unwrap());
        let mut exp = expected;
        exp.sort_by(|a, b| a[0].partial_cmp(&b[0]).unwrap());
        assert_eq!(got.len(), exp.len());
        for (g, e) in got.iter().zip(&exp) {
            assert_eq!(g.as_slice(), e.as_slice());
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn cost_vec(dim: usize) -> impl Strategy<Value = CostVector> {
        // Coarse grid so that dominance relations are common.
        proptest::collection::vec(0u32..20, dim)
            .prop_map(|v| CostVector::from_fn(v.len(), |i| v[i] as f64))
    }

    fn cost_set(dim: usize, max: usize) -> impl Strategy<Value = Vec<CostVector>> {
        proptest::collection::vec(cost_vec(dim), 0..max)
    }

    proptest! {
        /// The Pareto filter output covers the input with factor 1 and
        /// contains no strictly dominated entries.
        #[test]
        fn filter_sound_and_complete(costs in cost_set(3, 24)) {
            let keep = pareto_filter(&costs);
            let frontier: Vec<CostVector> = keep.iter().map(|&i| costs[i]).collect();
            // Complete: every input point is dominated by a kept point.
            prop_assert!(covers(&frontier, &costs, 1.0));
            // Sound: no kept point is strictly dominated by another kept point.
            for (a_idx, &i) in keep.iter().enumerate() {
                for (b_idx, &j) in keep.iter().enumerate() {
                    if a_idx != b_idx {
                        prop_assert!(!costs[j].strictly_dominates(&costs[i]));
                    }
                }
            }
        }

        /// The accumulator agrees with the batch filter on frontier size.
        #[test]
        fn accumulator_matches_filter(costs in cost_set(2, 24)) {
            let mut acc = ParetoAccumulator::new();
            for (i, c) in costs.iter().enumerate() {
                acc.insert(*c, i);
            }
            let keep = pareto_filter(&costs);
            prop_assert_eq!(acc.len(), keep.len());
        }

        /// coverage_factor is the threshold for covers().
        #[test]
        fn coverage_factor_is_threshold(set in cost_set(2, 10), reference in cost_set(2, 10)) {
            // Shift to strictly positive costs so factors stay finite.
            let shift = |v: &CostVector| CostVector::from_fn(v.dim(), |i| v[i] + 1.0);
            let set: Vec<_> = set.iter().map(shift).collect();
            let reference: Vec<_> = reference.iter().map(shift).collect();
            if set.is_empty() && !reference.is_empty() {
                prop_assert_eq!(coverage_factor(&set, &reference), f64::INFINITY);
            } else {
                let f = coverage_factor(&set, &reference);
                prop_assert!(covers(&set, &reference, f * (1.0 + 1e-12)));
                if f > 1.0 + 1e-9 {
                    prop_assert!(!covers(&set, &reference, f * (1.0 - 1e-9)));
                }
            }
        }
    }
}
