//! Experiment harness regenerating the paper's figures.
//!
//! Every figure of the paper's evaluation (and the conceptual figures of
//! the introduction) maps to a function here; the `repro` binary prints
//! the same series the paper reports and the criterion benches in
//! `benches/` time the same code. See DESIGN.md §5 for the experiment
//! index and EXPERIMENTS.md for the recorded paper-vs-measured results.

#![warn(missing_docs)]

pub mod benchjson;
pub mod churn;
pub mod diff;
pub mod experiments;
pub mod fleet;
pub mod harness;
pub mod net;
pub mod net_scale;
pub mod pruning;
pub mod replay;
pub mod serve;
pub mod similarity;
pub mod stats;
pub mod workload;

pub use benchjson::Json;
pub use churn::churn_experiment;
pub use diff::{diff_envelopes, diff_files, DiffOutcome};
pub use experiments::*;
pub use fleet::{
    fleet_experiment, fleet_node_serve, fleet_router_experiment, fleet_router_watch,
    fleet_workload, WatchReport,
};
pub use harness::{Direction, Experiment, ExperimentReport, Metric, Trial, Value};
pub use net::{net_serving_experiment, net_workload};
pub use net_scale::{net_scale_experiment, net_scale_templates, proc_status};
pub use pruning::{build_pruning_grid, pruning_experiment, KERNEL_CELL_SIZES, KERNEL_DIMS};
pub use replay::replay_experiment;
pub use serve::{serving_experiment, serving_workload};
pub use similarity::{similarity_donors, similarity_experiment, similarity_recipients};
pub use stats::{Samples, Summary};
pub use workload::{bench_model, bench_model_small, ExperimentSetup, XorShift};
