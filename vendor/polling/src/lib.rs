//! Offline readiness-polling shim: a minimal mio-style `Poll` /
//! `Events` / `Token` / `Interest` API over raw OS primitives.
//!
//! The workspace builds without network access, so instead of depending
//! on `mio`/`polling` from crates.io this crate binds the two system
//! facilities directly (std already links libc — no new dependency):
//!
//! * **epoll** (Linux): `epoll_create1`/`epoll_ctl`/`epoll_wait`,
//!   level-triggered, O(ready) wakeups. The default backend on Linux.
//! * **poll(2)** (portable fallback): the registration table lives in
//!   userspace and every wait rebuilds a `pollfd` array — O(registered)
//!   per call, but available on every Unix and a useful cross-check of
//!   the epoll path. Selected automatically off-Linux, or explicitly
//!   via `MOQO_POLL_BACKEND=poll` / [`Backend::Poll`].
//!
//! Both backends are **level-triggered**: an fd that stays readable
//! keeps reporting readable. Callers drain until `WouldBlock`.
//!
//! A [`Waker`] (self-pipe) lets any thread interrupt a blocked
//! [`Poll::poll`]; it surfaces as a readable [`Event`] on the token it
//! was registered with. The socket helpers at the bottom
//! ([`set_send_buffer`], [`raise_nofile_limit`]) exist for the serving
//! layer's backpressure tests and 10k-connection experiments.

use std::io;
use std::os::fd::RawFd;
use std::sync::Mutex;
use std::time::Duration;

mod sys {
    //! The handful of libc functions this crate needs, declared
    //! directly: std links libc on every Unix target, so `extern "C"`
    //! declarations resolve at link time with no added dependency.
    #![allow(non_camel_case_types)]

    pub type c_int = i32;
    pub type c_short = i16;
    pub type c_uint = u32;
    pub type c_ulong = u64;
    pub type nfds_t = c_ulong;

    /// Kernel ABI: packed on x86-64 (the 12-byte layout), natural
    /// alignment everywhere else — mirrors libc's definition.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct epoll_event {
        pub events: u32,
        pub u64: u64,
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct epoll_event {
        pub events: u32,
        pub u64: u64,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct pollfd {
        pub fd: c_int,
        pub events: c_short,
        pub revents: c_short,
    }

    #[repr(C)]
    pub struct rlimit {
        pub rlim_cur: c_ulong,
        pub rlim_max: c_ulong,
    }

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const POLLIN: c_short = 0x001;
    pub const POLLOUT: c_short = 0x004;
    pub const POLLERR: c_short = 0x008;
    pub const POLLHUP: c_short = 0x010;

    pub const O_NONBLOCK: c_int = 0o4000;
    pub const O_CLOEXEC: c_int = 0o2000000;
    pub const F_GETFL: c_int = 3;
    pub const F_SETFL: c_int = 4;

    pub const SOL_SOCKET: c_int = 1;
    pub const SO_SNDBUF: c_int = 7;
    pub const SO_RCVBUF: c_int = 8;

    pub const RLIMIT_NOFILE: c_int = 7;

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut epoll_event,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn poll(fds: *mut pollfd, nfds: nfds_t, timeout: c_int) -> c_int;
        pub fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
        pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
        pub fn setsockopt(
            fd: c_int,
            level: c_int,
            name: c_int,
            value: *const c_int,
            len: c_uint,
        ) -> c_int;
        pub fn getsockopt(
            fd: c_int,
            level: c_int,
            name: c_int,
            value: *mut c_int,
            len: *mut c_uint,
        ) -> c_int;
        pub fn getrlimit(resource: c_int, rlim: *mut rlimit) -> c_int;
        pub fn setrlimit(resource: c_int, rlim: *const rlimit) -> c_int;
    }
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Opaque per-registration identifier, echoed back on every [`Event`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// Which readiness classes a registration subscribes to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Subscribe to read readiness (and peer hangup).
    pub const READABLE: Interest = Interest(0b01);
    /// Subscribe to write readiness.
    pub const WRITABLE: Interest = Interest(0b10);

    /// Combines two interests (`READABLE.add(WRITABLE)`).
    pub const fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// Whether read readiness is subscribed.
    pub const fn is_readable(self) -> bool {
        self.0 & 0b01 != 0
    }

    /// Whether write readiness is subscribed.
    pub const fn is_writable(self) -> bool {
        self.0 & 0b10 != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

/// One readiness notification: a token plus what fired.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    token: Token,
    readable: bool,
    writable: bool,
    closed: bool,
}

impl Event {
    /// The token the fd was registered with.
    pub fn token(&self) -> Token {
        self.token
    }

    /// Read readiness (data buffered, EOF pending, or an error that a
    /// read will surface — error/hangup conditions fold into readable
    /// so the caller's read path observes them).
    pub fn is_readable(&self) -> bool {
        self.readable
    }

    /// Write readiness.
    pub fn is_writable(&self) -> bool {
        self.writable
    }

    /// Peer hangup or error condition was reported alongside.
    pub fn is_closed(&self) -> bool {
        self.closed
    }
}

/// Reusable buffer [`Poll::poll`] fills with ready [`Event`]s.
#[derive(Debug, Default)]
pub struct Events {
    inner: Vec<Event>,
}

impl Events {
    /// An empty buffer. (Capacity is managed internally; the wait
    /// syscall caps one batch at an internal maximum and the next call
    /// picks up whatever remained ready — level triggering keeps this
    /// lossless.)
    pub fn new() -> Events {
        Events::default()
    }

    /// Iterates the events of the last poll.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.inner.iter()
    }

    /// Number of events from the last poll.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the last poll returned no events (timeout).
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    fn clear(&mut self) {
        self.inner.clear();
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

/// Which OS facility backs a [`Poll`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Linux `epoll` — O(ready) wakeups, the serving default.
    Epoll,
    /// Portable `poll(2)` — O(registered) per wait, always available.
    Poll,
}

/// Largest batch a single wait syscall returns; level triggering makes
/// the cap lossless (still-ready fds reappear on the next wait).
const MAX_BATCH: usize = 1024;

enum PollImpl {
    Epoll {
        epfd: RawFd,
    },
    Poll {
        table: Mutex<Vec<(RawFd, Token, Interest)>>,
    },
}

/// The readiness selector: register fds with a token and an interest,
/// then [`poll`](Poll::poll) for whatever is ready.
///
/// Level-triggered on both backends. `register`/`reregister`/
/// `deregister` take `&self` and are safe from any thread; `poll` is
/// intended to be driven by one event-loop thread.
pub struct Poll {
    imp: PollImpl,
    backend: Backend,
}

impl Poll {
    /// Creates a selector on the default backend: epoll on Linux (or
    /// whatever `MOQO_POLL_BACKEND=epoll|poll` requests), `poll(2)`
    /// elsewhere.
    pub fn new() -> io::Result<Poll> {
        let backend = match std::env::var("MOQO_POLL_BACKEND").as_deref() {
            Ok("poll") => Backend::Poll,
            Ok("epoll") => Backend::Epoll,
            _ if cfg!(target_os = "linux") => Backend::Epoll,
            _ => Backend::Poll,
        };
        Poll::with_backend(backend)
    }

    /// Creates a selector on an explicit backend.
    pub fn with_backend(backend: Backend) -> io::Result<Poll> {
        let imp = match backend {
            Backend::Epoll => {
                let epfd = cvt(unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) })?;
                PollImpl::Epoll { epfd }
            }
            Backend::Poll => PollImpl::Poll {
                table: Mutex::new(Vec::new()),
            },
        };
        Ok(Poll { imp, backend })
    }

    /// The backend this selector runs on.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    fn epoll_mask(interest: Interest) -> u32 {
        let mut mask = sys::EPOLLRDHUP;
        if interest.is_readable() {
            mask |= sys::EPOLLIN;
        }
        if interest.is_writable() {
            mask |= sys::EPOLLOUT;
        }
        mask
    }

    /// Starts watching `fd` under `token`. The fd must stay open until
    /// [`deregister`](Poll::deregister); registering the same fd twice
    /// is an error on both backends.
    pub fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        match &self.imp {
            PollImpl::Epoll { epfd } => {
                let mut ev = sys::epoll_event {
                    events: Self::epoll_mask(interest),
                    u64: token.0 as u64,
                };
                cvt(unsafe { sys::epoll_ctl(*epfd, sys::EPOLL_CTL_ADD, fd, &mut ev) })?;
                Ok(())
            }
            PollImpl::Poll { table } => {
                let mut table = table.lock().unwrap();
                if table.iter().any(|(f, _, _)| *f == fd) {
                    return Err(io::Error::new(
                        io::ErrorKind::AlreadyExists,
                        "fd already registered",
                    ));
                }
                table.push((fd, token, interest));
                Ok(())
            }
        }
    }

    /// Changes the token and/or interest of an existing registration.
    pub fn reregister(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        match &self.imp {
            PollImpl::Epoll { epfd } => {
                let mut ev = sys::epoll_event {
                    events: Self::epoll_mask(interest),
                    u64: token.0 as u64,
                };
                cvt(unsafe { sys::epoll_ctl(*epfd, sys::EPOLL_CTL_MOD, fd, &mut ev) })?;
                Ok(())
            }
            PollImpl::Poll { table } => {
                let mut table = table.lock().unwrap();
                match table.iter_mut().find(|(f, _, _)| *f == fd) {
                    Some(entry) => {
                        entry.1 = token;
                        entry.2 = interest;
                        Ok(())
                    }
                    None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
                }
            }
        }
    }

    /// Stops watching `fd`. Call before closing the fd — epoll drops
    /// closed fds silently, but the `poll(2)` table would keep a stale
    /// entry otherwise.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        match &self.imp {
            PollImpl::Epoll { epfd } => {
                let mut ev = sys::epoll_event { events: 0, u64: 0 };
                cvt(unsafe { sys::epoll_ctl(*epfd, sys::EPOLL_CTL_DEL, fd, &mut ev) })?;
                Ok(())
            }
            PollImpl::Poll { table } => {
                let mut table = table.lock().unwrap();
                let before = table.len();
                table.retain(|(f, _, _)| *f != fd);
                if table.len() == before {
                    return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
                }
                Ok(())
            }
        }
    }

    /// Blocks until at least one registration is ready, the timeout
    /// elapses (`events` left empty), or a [`Waker`] fires. `None`
    /// means wait indefinitely.
    pub fn poll(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        let timeout_ms: i32 = match timeout {
            None => -1,
            // Round up so a 100µs timeout still sleeps (0 would spin).
            Some(d) => d
                .as_millis()
                .max(if d.is_zero() { 0 } else { 1 })
                .min(i32::MAX as u128) as i32,
        };
        match &self.imp {
            PollImpl::Epoll { epfd } => {
                let mut raw = [sys::epoll_event { events: 0, u64: 0 }; MAX_BATCH];
                let n = loop {
                    let n = unsafe {
                        sys::epoll_wait(*epfd, raw.as_mut_ptr(), MAX_BATCH as i32, timeout_ms)
                    };
                    if n >= 0 {
                        break n as usize;
                    }
                    let err = io::Error::last_os_error();
                    if err.kind() != io::ErrorKind::Interrupted {
                        return Err(err);
                    }
                };
                for ev in &raw[..n] {
                    let mask = ev.events;
                    let closed = mask & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0;
                    events.inner.push(Event {
                        token: Token(ev.u64 as usize),
                        // Errors and hangups fold into readable: the
                        // caller's read observes EOF or the error.
                        readable: mask & sys::EPOLLIN != 0 || closed,
                        writable: mask & sys::EPOLLOUT != 0,
                        closed,
                    });
                }
                Ok(())
            }
            PollImpl::Poll { table } => {
                let snapshot: Vec<(RawFd, Token, Interest)> = table.lock().unwrap().clone();
                let mut fds: Vec<sys::pollfd> = snapshot
                    .iter()
                    .map(|(fd, _, interest)| sys::pollfd {
                        fd: *fd,
                        events: {
                            let mut e = 0;
                            if interest.is_readable() {
                                e |= sys::POLLIN;
                            }
                            if interest.is_writable() {
                                e |= sys::POLLOUT;
                            }
                            e
                        },
                        revents: 0,
                    })
                    .collect();
                loop {
                    let n = unsafe {
                        sys::poll(fds.as_mut_ptr(), fds.len() as sys::nfds_t, timeout_ms)
                    };
                    if n >= 0 {
                        break;
                    }
                    let err = io::Error::last_os_error();
                    if err.kind() != io::ErrorKind::Interrupted {
                        return Err(err);
                    }
                }
                for (pfd, (_, token, _)) in fds.iter().zip(snapshot.iter()) {
                    if pfd.revents == 0 {
                        continue;
                    }
                    if events.inner.len() == MAX_BATCH {
                        break;
                    }
                    let closed = pfd.revents & (sys::POLLERR | sys::POLLHUP) != 0;
                    events.inner.push(Event {
                        token: *token,
                        readable: pfd.revents & sys::POLLIN != 0 || closed,
                        writable: pfd.revents & sys::POLLOUT != 0,
                        closed,
                    });
                }
                Ok(())
            }
        }
    }
}

impl Drop for Poll {
    fn drop(&mut self) {
        if let PollImpl::Epoll { epfd } = &self.imp {
            unsafe { sys::close(*epfd) };
        }
    }
}

/// Cross-thread wakeup for a blocked [`Poll::poll`]: a nonblocking
/// self-pipe whose read end is registered under the caller's chosen
/// token. [`wake`](Waker::wake) is cheap, signal-safe, and idempotent
/// while a wake is pending (a full pipe already guarantees readability).
pub struct Waker {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl Waker {
    /// Creates the pipe and registers its read end with `poll` under
    /// `token`.
    pub fn new(poll: &Poll, token: Token) -> io::Result<Waker> {
        let mut fds = [0i32; 2];
        cvt(unsafe { sys::pipe2(fds.as_mut_ptr(), sys::O_NONBLOCK | sys::O_CLOEXEC) })?;
        let waker = Waker {
            read_fd: fds[0],
            write_fd: fds[1],
        };
        poll.register(waker.read_fd, token, Interest::READABLE)?;
        Ok(waker)
    }

    /// Makes the registered token report readable on the next poll.
    pub fn wake(&self) -> io::Result<()> {
        let buf = [1u8];
        let n = unsafe { sys::write(self.write_fd, buf.as_ptr(), 1) };
        if n < 0 {
            let err = io::Error::last_os_error();
            // A full pipe means wakes are already pending: mission
            // accomplished, not an error.
            if err.kind() != io::ErrorKind::WouldBlock {
                return Err(err);
            }
        }
        Ok(())
    }

    /// Drains pending wake bytes so the token stops reporting readable
    /// (call from the event loop after observing the wake token).
    pub fn clear(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { sys::read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                break;
            }
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.read_fd);
            sys::close(self.write_fd);
        }
    }
}

// Waker only touches its two fds via read/write/close.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

/// Puts `fd` into nonblocking mode (`O_NONBLOCK` via `fcntl`).
pub fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    let flags = cvt(unsafe { sys::fcntl(fd, sys::F_GETFL, 0) })?;
    cvt(unsafe { sys::fcntl(fd, sys::F_SETFL, flags | sys::O_NONBLOCK) })?;
    Ok(())
}

/// Shrinks (or grows) the kernel send buffer of a socket. The kernel
/// doubles the requested value for bookkeeping and clamps it to a
/// floor; returns the effective size. The serving tests use a tiny
/// send buffer to force `WouldBlock` against a stalled reader
/// deterministically.
pub fn set_send_buffer(fd: RawFd, bytes: usize) -> io::Result<usize> {
    let val = bytes.min(i32::MAX as usize) as i32;
    cvt(unsafe {
        sys::setsockopt(
            fd,
            sys::SOL_SOCKET,
            sys::SO_SNDBUF,
            &val,
            std::mem::size_of::<i32>() as u32,
        )
    })?;
    let mut out: i32 = 0;
    let mut len = std::mem::size_of::<i32>() as u32;
    cvt(unsafe { sys::getsockopt(fd, sys::SOL_SOCKET, sys::SO_SNDBUF, &mut out, &mut len) })?;
    Ok(out.max(0) as usize)
}

/// Shrinks (or grows) the kernel receive buffer of a socket; returns
/// the effective size (see [`set_send_buffer`]).
pub fn set_recv_buffer(fd: RawFd, bytes: usize) -> io::Result<usize> {
    let val = bytes.min(i32::MAX as usize) as i32;
    cvt(unsafe {
        sys::setsockopt(
            fd,
            sys::SOL_SOCKET,
            sys::SO_RCVBUF,
            &val,
            std::mem::size_of::<i32>() as u32,
        )
    })?;
    let mut out: i32 = 0;
    let mut len = std::mem::size_of::<i32>() as u32;
    cvt(unsafe { sys::getsockopt(fd, sys::SOL_SOCKET, sys::SO_RCVBUF, &mut out, &mut len) })?;
    Ok(out.max(0) as usize)
}

/// Raises the soft `RLIMIT_NOFILE` toward `target`, clamped to the
/// hard limit; returns the resulting soft limit. Holding 10k+
/// connections needs ~2× that many fds, well past the usual 1024
/// default soft limit.
pub fn raise_nofile_limit(target: u64) -> io::Result<u64> {
    let mut lim = sys::rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    cvt(unsafe { sys::getrlimit(sys::RLIMIT_NOFILE, &mut lim) })?;
    if lim.rlim_cur >= target {
        return Ok(lim.rlim_cur);
    }
    let want = target.min(lim.rlim_max);
    let new = sys::rlimit {
        rlim_cur: want,
        rlim_max: lim.rlim_max,
    };
    cvt(unsafe { sys::setrlimit(sys::RLIMIT_NOFILE, &new) })?;
    Ok(want)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    fn backends() -> Vec<Backend> {
        if cfg!(target_os = "linux") {
            vec![Backend::Epoll, Backend::Poll]
        } else {
            vec![Backend::Poll]
        }
    }

    fn tokens_of(events: &Events) -> Vec<usize> {
        let mut t: Vec<usize> = events.iter().map(|e| e.token().0).collect();
        t.sort_unstable();
        t
    }

    #[test]
    fn readable_and_writable_readiness_both_backends() {
        for backend in backends() {
            let poll = Poll::with_backend(backend).unwrap();
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let mut client = TcpStream::connect(addr).unwrap();
            let (server, _) = listener.accept().unwrap();

            poll.register(
                server.as_raw_fd(),
                Token(7),
                Interest::READABLE | Interest::WRITABLE,
            )
            .unwrap();
            let mut events = Events::new();

            // Idle socket: writable only.
            poll.poll(&mut events, Some(Duration::from_millis(500)))
                .unwrap();
            assert_eq!(tokens_of(&events), vec![7], "{backend:?}");
            let ev = events.iter().next().unwrap();
            assert!(ev.is_writable() && !ev.is_readable(), "{backend:?}");

            // Peer writes: readable fires (level-triggered, repeats).
            client.write_all(b"ping").unwrap();
            for _ in 0..2 {
                poll.poll(&mut events, Some(Duration::from_millis(500)))
                    .unwrap();
                let ev = events.iter().next().unwrap();
                assert!(ev.is_readable(), "{backend:?}");
            }

            // Interest narrowed to writable: readable stops reporting.
            poll.reregister(server.as_raw_fd(), Token(8), Interest::WRITABLE)
                .unwrap();
            poll.poll(&mut events, Some(Duration::from_millis(500)))
                .unwrap();
            let ev = events.iter().next().unwrap();
            assert_eq!(ev.token(), Token(8), "{backend:?}");
            assert!(!ev.is_readable() && ev.is_writable(), "{backend:?}");

            poll.deregister(server.as_raw_fd()).unwrap();
            poll.poll(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{backend:?}");
            drop(client);
        }
    }

    #[test]
    fn hangup_reports_readable_and_closed() {
        for backend in backends() {
            let poll = Poll::with_backend(backend).unwrap();
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let client = TcpStream::connect(addr).unwrap();
            let (mut server, _) = listener.accept().unwrap();
            poll.register(server.as_raw_fd(), Token(1), Interest::READABLE)
                .unwrap();
            drop(client);
            let mut events = Events::new();
            poll.poll(&mut events, Some(Duration::from_millis(500)))
                .unwrap();
            let ev = events.iter().next().unwrap();
            assert!(ev.is_readable(), "{backend:?}");
            // The read path observes the hangup as EOF.
            let mut buf = [0u8; 8];
            assert_eq!(server.read(&mut buf).unwrap(), 0, "{backend:?}");
        }
    }

    #[test]
    fn waker_interrupts_a_blocked_poll() {
        for backend in backends() {
            let poll = Poll::with_backend(backend).unwrap();
            let waker = std::sync::Arc::new(Waker::new(&poll, Token(usize::MAX)).unwrap());
            let remote = waker.clone();
            let handle = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                remote.wake().unwrap();
            });
            let mut events = Events::new();
            let start = std::time::Instant::now();
            poll.poll(&mut events, Some(Duration::from_secs(10)))
                .unwrap();
            assert!(start.elapsed() < Duration::from_secs(5), "{backend:?}");
            assert_eq!(tokens_of(&events), vec![usize::MAX], "{backend:?}");
            waker.clear();
            // Cleared: the token stops reporting.
            poll.poll(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{backend:?}");
            // Repeated wakes before a clear stay readable (idempotent).
            for _ in 0..3 {
                waker.wake().unwrap();
            }
            poll.poll(&mut events, Some(Duration::from_millis(500)))
                .unwrap();
            assert_eq!(events.len(), 1, "{backend:?}");
            handle.join().unwrap();
        }
    }

    #[test]
    fn double_register_errors_and_timeout_returns_empty() {
        for backend in backends() {
            let poll = Poll::with_backend(backend).unwrap();
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            poll.register(listener.as_raw_fd(), Token(0), Interest::READABLE)
                .unwrap();
            assert!(poll
                .register(listener.as_raw_fd(), Token(1), Interest::READABLE)
                .is_err());
            let mut events = Events::new();
            let start = std::time::Instant::now();
            poll.poll(&mut events, Some(Duration::from_millis(25)))
                .unwrap();
            assert!(events.is_empty(), "{backend:?}");
            assert!(
                start.elapsed() >= Duration::from_millis(20),
                "{backend:?}: timeout returned early"
            );
        }
    }

    #[test]
    fn send_buffer_helper_clamps_and_reports() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let effective = set_send_buffer(client.as_raw_fd(), 4096).unwrap();
        // The kernel doubles and floors the request; it must come back
        // bounded, not zero and not the default ~200KiB.
        assert!(effective >= 4096, "{effective}");
        assert!(effective <= 1 << 20, "{effective}");
    }

    #[test]
    fn nofile_limit_is_monotonic() {
        let before = raise_nofile_limit(0).unwrap();
        let after = raise_nofile_limit(before).unwrap();
        assert!(after >= before);
    }
}
