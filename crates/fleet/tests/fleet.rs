//! Fleet integration: placement routing, planned rebalance with warm
//! hand-off, node death with store adoption, and client failover — all
//! over real loopback sockets (in-process nodes, so kills are
//! deterministic and CI-cheap; `repro fleet` runs the same story with
//! real processes).

use moqo_costmodel::{SharedCostModel, StandardCostModel};
use moqo_fleet::{
    share, FleetClient, FleetNode, FleetNodeConfig, FleetRouter, Placement, Rebalance,
};
use moqo_query::testkit;
use moqo_serve::TicketStatus;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const IDLE: Duration = Duration::from_secs(60);

fn model() -> SharedCostModel {
    Arc::new(StandardCostModel::paper_metrics())
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("moqo-fleet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Starts `n` loopback nodes and a placement listing them.
fn fleet(
    n: usize,
    tag: &str,
    store: Option<&PathBuf>,
) -> (HashMap<String, FleetNode>, moqo_fleet::SharedPlacement) {
    let mut nodes = HashMap::new();
    let mut placement = Placement::new();
    for i in 0..n {
        let id = format!("{tag}-{i}");
        let mut config = FleetNodeConfig::loopback(&id);
        if let Some(dir) = store {
            config = config.with_store(dir).with_sweep(Duration::from_millis(30));
        }
        let node = FleetNode::start(model(), config).expect("bind loopback");
        placement.add_node(&id, node.addr());
        nodes.insert(id, node);
    }
    (nodes, share(placement))
}

/// Runs one session to completion (full ladder, then cancel), returning
/// the id of the node that served it.
fn run_once(client: &FleetClient, spec: Arc<moqo_query::QuerySpec>) -> String {
    let mut session = client
        .submit(moqo_serve::SessionRequest::new(spec))
        .expect("routed");
    assert!(session.admission.is_admitted());
    while session.client.view().invocations < 3 {
        session.client.recv(IDLE).expect("stream healthy");
    }
    session
        .client
        .command(moqo_serve::SessionCommand::Cancel)
        .expect("send");
    session.client.wait_finished(IDLE).expect("terminal event");
    session.node
}

#[test]
fn sessions_route_to_the_placement_home() {
    let (nodes, placement) = fleet(3, "route", None);
    let client = FleetClient::new(placement.clone(), model());
    for n in 2..=5 {
        let spec = Arc::new(testkit::chain_query(n, 45_000));
        let fp = client.fingerprint(&moqo_serve::SessionRequest::new(spec.clone()));
        let expected = placement
            .read()
            .unwrap()
            .home_of(fp)
            .expect("live fleet")
            .id
            .clone();
        let served_by = run_once(&client, spec);
        assert_eq!(served_by, expected);
        // The frontier parked where placement says the key lives.
        assert!(nodes[&served_by].net().moqo().engine().has_parked(fp));
    }
    // Per-node route counters account for every submitted session, and
    // a route never bumps the placement version (topology unchanged).
    let placement = placement.read().unwrap();
    assert_eq!(placement.route_counts().values().sum::<u64>(), 4);
    assert_eq!(
        placement.version(),
        3,
        "routes must not look like rebalances"
    );
    drop(placement);
    for (_, node) in nodes {
        node.stop();
    }
}

#[test]
fn planned_rebalance_ships_warm_state_between_processes() {
    let (nodes, placement) = fleet(2, "rebalance", None);
    let client = FleetClient::new(placement.clone(), model());
    let spec = Arc::new(testkit::chain_query(4, 61_000));
    let fp = client.fingerprint(&moqo_serve::SessionRequest::new(spec.clone()));
    let old_home = run_once(&client, spec.clone());
    let new_home = nodes.keys().find(|id| **id != old_home).unwrap().clone();

    let router = FleetRouter::new(placement.clone());
    match router.rebalance(fp, &new_home).expect("hand-off") {
        Rebalance::Moved { from, to, bytes } => {
            assert_eq!(from, old_home);
            assert_eq!(to, new_home);
            assert!(bytes > 0);
        }
        other => panic!("expected a warm move, got {other:?}"),
    }
    // The new home holds the validated frontier; the repeat routes to it
    // (override pin) and starts warm: zero plans generated.
    assert!(nodes[&new_home].net().moqo().engine().has_parked(fp));
    let mut repeat = client
        .submit(moqo_serve::SessionRequest::new(spec))
        .expect("routed");
    assert_eq!(repeat.node, new_home);
    while repeat.client.view().first_report.is_none() {
        repeat.client.recv(IDLE).expect("stream healthy");
    }
    let first = repeat.client.view().first_report.clone().unwrap();
    assert_eq!(
        first.plans_generated, 0,
        "warm repeat after rebalance must not regenerate plans"
    );
    assert!(nodes[&new_home].net().stats().frontier_pushes >= 1);
    for (_, node) in nodes {
        node.stop();
    }
}

#[test]
fn killed_home_is_detected_and_survivor_adopts_from_the_shared_store() {
    let dir = temp_dir("adopt");
    let (mut nodes, placement) = fleet(3, "adopt", Some(&dir));
    let client = FleetClient::new(placement.clone(), model());
    let spec = Arc::new(testkit::chain_query(4, 83_000));
    let fp = client.fingerprint(&moqo_serve::SessionRequest::new(spec.clone()));
    let home = run_once(&client, spec.clone());

    // Wait for the home's sweeper to persist the parked frontier into
    // the shared directory.
    let file = dir.join(format!("{:016x}.frontier", fp.as_u64()));
    let deadline = Instant::now() + IDLE;
    while !file.exists() {
        assert!(Instant::now() < deadline, "sweep never persisted {file:?}");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Kill the home (crash semantics: no final save) and let the router
    // find the body.
    nodes.remove(&home).unwrap().kill();
    let health = FleetRouter::new(placement.clone()).probe();
    assert!(
        health.iter().any(|h| h.id == home && !h.alive),
        "{health:?}"
    );
    assert!(placement.read().unwrap().node(&home).unwrap().dead);
    let new_home = placement.read().unwrap().home_of(fp).unwrap().id.clone();
    assert_ne!(new_home, home);

    // Adopt: the new home re-parks the dead node's last persisted state
    // from the shared store, lazily, on the router's pull.
    let router = FleetRouter::new(placement.clone());
    let blob = router.adopt(fp).expect("pull answered");
    assert!(blob.is_some(), "shared store must warm the new home");
    assert!(nodes[&new_home].net().moqo().engine().has_parked(fp));

    // The warm repeat generates zero plans on the adopted home, and the
    // client-side view stays bit-identical to the serving node's.
    let mut repeat = client
        .submit(moqo_serve::SessionRequest::new(spec))
        .expect("routed around the corpse");
    assert_eq!(repeat.node, new_home);
    while repeat.client.view().invocations < 3 {
        repeat.client.recv(IDLE).expect("stream healthy");
    }
    let first = repeat.client.view().first_report.clone().unwrap();
    assert_eq!(
        first.plans_generated, 0,
        "adopted frontier must serve the repeat with zero plans"
    );
    repeat
        .client
        .command(moqo_serve::SessionCommand::Cancel)
        .expect("send");
    repeat.client.wait_finished(IDLE).expect("terminal event");
    let ticket = moqo_serve::Ticket::from_u64(repeat.client.server_ticket().unwrap());
    match nodes[&new_home].net().moqo().poll(ticket) {
        Some(TicketStatus::Active { view, .. }) => {
            assert!(repeat.client.view().frontier.bits_eq(&view.frontier));
            assert_eq!(repeat.client.view().epoch, view.epoch);
        }
        other => panic!("expected an active ticket, got {other:?}"),
    }
    for (_, node) in nodes {
        node.stop();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn watch_loop_adopts_orphans_and_levels_a_skewed_fleet() {
    let dir = temp_dir("watch");
    let (mut nodes, placement) = fleet(3, "watch", Some(&dir));
    let client = FleetClient::new(placement.clone(), model());
    let router = FleetRouter::new(placement.clone());
    let specs: Vec<Arc<moqo_query::QuerySpec>> = (2..=5)
        .map(|n| Arc::new(testkit::chain_query(n, 47_000)))
        .collect();
    let fps: Vec<_> = specs
        .iter()
        .map(|s| client.fingerprint(&moqo_serve::SessionRequest::new(s.clone())))
        .collect();

    // Skew the fleet on purpose: pin every key to one node and park the
    // whole workload there.
    let skew_home = "watch-0".to_string();
    for fp in &fps {
        placement.write().unwrap().set_override(*fp, &skew_home);
    }
    for spec in &specs {
        assert_eq!(run_once(&client, spec.clone()), skew_home);
    }

    // A healthy-fleet tick with rebalancing off is pure observation.
    let quiet = router.watch_tick(&fps, usize::MAX);
    assert!(quiet.died.is_empty() && quiet.orphaned == 0 && quiet.rebalanced == 0);
    assert_eq!(quiet.health.len(), 3);

    // Ticks with tight headroom level the skew one warm move at a time.
    let mut moved = 0usize;
    for _ in 0..fps.len() {
        moved += router.watch_tick(&fps, 1).rebalanced;
    }
    let spread = {
        let placement = placement.read().unwrap();
        let counts: Vec<usize> = placement
            .live_nodes()
            .map(|n| {
                fps.iter()
                    .filter(|fp| placement.home_of(**fp).unwrap().id == n.id)
                    .count()
            })
            .collect();
        counts.iter().max().unwrap() - counts.iter().min().unwrap()
    };
    assert!(moved >= 2, "a 4-0-0 skew needs two moves to level out");
    assert!(spread <= 1, "ticks must converge to a level fleet");

    // Wait until every key's frontier reached the shared store, then
    // kill one key's current home: the next tick must find the body and
    // re-park its keys warm on the survivors.
    let deadline = Instant::now() + IDLE;
    for fp in &fps {
        let file = dir.join(format!("{:016x}.frontier", fp.as_u64()));
        while !file.exists() {
            assert!(Instant::now() < deadline, "sweep never persisted {file:?}");
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    let victim = placement
        .read()
        .unwrap()
        .home_of(fps[0])
        .unwrap()
        .id
        .clone();
    let owned_by_victim = {
        let placement = placement.read().unwrap();
        fps.iter()
            .filter(|fp| placement.home_of(**fp).unwrap().id == victim)
            .count()
    };
    nodes.remove(&victim).unwrap().kill();
    let tick = router.watch_tick(&fps, usize::MAX);
    assert_eq!(tick.died, vec![victim.clone()]);
    assert_eq!(tick.orphaned, owned_by_victim);
    assert_eq!(
        tick.adopted_warm, tick.orphaned,
        "every orphaned key was persisted, so every adoption is warm"
    );
    assert_eq!(tick.adopted_cold, 0);
    for fp in &fps {
        let home = placement.read().unwrap().home_of(*fp).unwrap().id.clone();
        assert_ne!(home, victim);
        assert!(nodes[&home].net().moqo().engine().has_parked(*fp));
    }

    // The loop idles once the fleet is healthy again.
    let after = router.watch_tick(&fps, usize::MAX);
    assert!(after.died.is_empty() && after.orphaned == 0);
    assert_eq!(after.health.len(), 2);
    for (_, node) in nodes {
        node.stop();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn idle_sessions_soak_through_sweep_and_probe_periods() {
    // The fleet-level soak: dozens of idle interactive sessions held
    // open while the nodes' persistence sweepers and the router's
    // probe loop keep running. Nothing may fault, no event may be
    // lost, and `live` must stay exactly stable until the clients act.
    const SESSIONS: usize = 48;
    let dir = temp_dir("soak");
    let (nodes, placement) = fleet(2, "soak", Some(&dir));
    let client = FleetClient::new(placement.clone(), model());
    let router = FleetRouter::new(placement.clone());

    let live_total = || -> u64 { nodes.values().map(|n| n.net().stats().live).sum() };
    let faulted_total = || -> u64 { nodes.values().map(|n| n.net().stats().faulted).sum() };

    let mut sessions = Vec::with_capacity(SESSIONS);
    let mut fps = Vec::with_capacity(SESSIONS);
    for i in 0..SESSIONS {
        let spec = Arc::new(testkit::chain_query(2 + i % 3, 40_000 + 1_000 * i as u64));
        let request = moqo_serve::SessionRequest::new(spec);
        fps.push(client.fingerprint(&request));
        let mut session = client.submit(request).expect("routed");
        assert!(session.admission.is_admitted());
        while session.client.view().frontier.is_empty()
            || session.client.view().first_report.is_none()
        {
            session.client.recv(IDLE).expect("stream healthy");
        }
        sessions.push(session);
    }
    assert_eq!(live_total(), SESSIONS as u64);

    // Hold through several 30 ms sweep periods, probing each beat. The
    // probes' connect/handshake/close cycles share the event loops with
    // the idle sessions and must not disturb them.
    for _ in 0..5 {
        std::thread::sleep(Duration::from_millis(40));
        let tick = router.watch_tick(&fps, usize::MAX);
        assert!(tick.died.is_empty(), "a soaking fleet must stay alive");
        assert_eq!(live_total(), SESSIONS as u64, "idle sessions were lost");
        assert_eq!(faulted_total(), 0);
    }

    // Zero event loss: after catching up to the serving node's (final,
    // engine-idle) epoch, every client view must be bit-identical to
    // the node's view of the same ticket.
    for node in nodes.values() {
        assert!(node.net().moqo().wait_idle(IDLE), "engine stuck busy");
    }
    for session in &mut sessions {
        let ticket = moqo_serve::Ticket::from_u64(session.client.server_ticket().unwrap());
        match nodes[&session.node].net().moqo().poll(ticket) {
            Some(TicketStatus::Active { view, .. }) => {
                while session.client.view().epoch < view.epoch {
                    session.client.recv(IDLE).expect("stream healthy");
                }
                assert!(session.client.view().frontier.bits_eq(&view.frontier));
                assert_eq!(session.client.view().epoch, view.epoch);
            }
            other => panic!("expected an active ticket, got {other:?}"),
        }
        session
            .client
            .command(moqo_serve::SessionCommand::Cancel)
            .expect("send");
        session.client.wait_finished(IDLE).expect("terminal event");
    }
    let deadline = Instant::now() + IDLE;
    while live_total() != 0 {
        assert!(Instant::now() < deadline, "fleet did not drain");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(faulted_total(), 0);
    for (_, node) in nodes {
        node.stop();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn client_failover_marks_the_dead_node_and_reroutes() {
    let (mut nodes, placement) = fleet(2, "failover", None);
    let client = FleetClient::new(placement.clone(), model());
    let spec = Arc::new(testkit::chain_query(3, 52_000));
    let fp = client.fingerprint(&moqo_serve::SessionRequest::new(spec.clone()));
    let home = placement.read().unwrap().home_of(fp).unwrap().id.clone();
    // Kill the home before the first submit: the client must discover
    // the death itself (connect failure), record it, and reroute.
    nodes.remove(&home).unwrap().kill();
    let version_before = placement.read().unwrap().version();
    let served_by = run_once(&client, spec);
    assert_ne!(served_by, home);
    let placement = placement.read().unwrap();
    assert!(placement.node(&home).unwrap().dead);
    assert!(placement.version() > version_before);
    drop(placement);
    for (_, node) in nodes {
        node.stop();
    }
}
