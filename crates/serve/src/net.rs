//! The TCP serving front: the session protocol over real sockets,
//! driven by readiness, not polling.
//!
//! [`NetServer`] wraps a [`MoqoServer`] behind a loopback-or-LAN TCP
//! listener speaking the [`moqo_wire`] format: one framed duplex stream
//! per ticket. A connection's lifecycle is exactly the in-process
//! ticket lifecycle:
//!
//! 1. handshake (`MOQOWIRE` + version, both directions);
//! 2. client sends [`ClientMessage::Submit`] — the same
//!    [`SessionRequest`] type that drives every in-process layer, with
//!    per-session cost models resolved **by identity** against the
//!    server's [`ModelRegistry`];
//! 3. server answers [`ServerMessage::Admission`] (admitted / degraded /
//!    queued / rejected — the protocol's [`AdmissionResponse`], typed,
//!    end to end) and then streams [`ServerMessage::Event`]s;
//! 4. client steers with [`ClientMessage::Command`]s; command faults come
//!    back as typed [`ServerMessage::Error`]s, never a dropped socket;
//! 5. the stream ends with the session's terminal event (selection,
//!    cancellation, or preference auto-select). A client that simply
//!    disconnects retires its session, parking the frontier for future
//!    warm starts — a vanished user never leaks a session slot.
//!
//! # Thread model
//!
//! One **event-loop thread** (`moqo-net-loop`) owns a
//! [`moqo_poll::Reactor`], the listener, and every connection. It
//! blocks in `poll` until a socket is ready or the wake channel rings —
//! there is no sleep-polling anywhere on this path, so 10k idle
//! sessions cost zero CPU between events. The loop does only cheap
//! work: accepting, nonblocking framed reads into each connection's
//! incremental [`FrameBuffer`], write-readiness-driven flushes of the
//! per-connection outbound [`WriteBuffer`], and inline dispatch of
//! [`SessionCommand`]s (a short engine-lock hop).
//!
//! Expensive frames — submits (admission + warm-start routing) and
//! frontier transfers (file I/O, validation) — ship to a small pool of
//! **decode/dispatch workers** (`moqo-net-io-*`, [`NetConfig::io_threads`]),
//! keyed by connection so per-stream order is preserved. Workers post
//! completions back and ring the wake channel.
//!
//! Session events flow the same way: the server installs a
//! [`crate::api::ServerEventHook`] so every engine-side publish marks
//! the owning ticket dirty and rings the loop — the push counterpart of
//! the engine's per-session channels, with no thread ever parked on a
//! timeout.
//!
//! # Coalescing and backpressure
//!
//! A slow reader's outbound buffer fills. Once more than
//! [`NetConfig::coalesce_after`] bytes are queued, further
//! [`SessionEvent`]s are **coalesced** instead of serialized: N pending
//! events merge into one frame via [`SessionEvent::coalesce`]
//! (deltas compose with [`FrontierDelta::then`], the event declares the
//! epoch range it covers), so folding the merged frame leaves the
//! client's [`SessionView`] bit-identical to folding the originals
//! one-for-one. The outbound queue is bounded
//! ([`NetConfig::max_outbound`]); a connection that exceeds it, or that
//! makes no write progress for [`NetConfig::write_timeout`], is counted
//! stalled and retired (parking its session). [`NetStats`] exposes the
//! backpressure picture: `coalesced_events`, `outbound_high_water`,
//! `stalled`.
//!
//! [`NetClient`] is the matching blocking client: it folds the event
//! stream into a [`SessionView`] with the same `fold` the in-process
//! reassemblers use, so the client-side view is **bit-identical** to what
//! `MoqoServer::poll` reports on the server (asserted end to end by
//! `examples/network_serving.rs` and the cross-layer conformance test),
//! coalesced frames included.
//!
//! The server owns its tickets' event channels: polling the same ticket
//! concurrently through the in-process API while a connection is live
//! would steal events from the stream. Diagnostics should use
//! [`NetServer::moqo`] only after the connection finished (the admission
//! frame carries the ticket id for exactly this correlation).

use crate::api::{MoqoServer, Ticket, TicketStatus};
use crate::persist::SnapshotStore;
use moqo_core::protocol::{
    AdmissionResponse, FrontierDelta, ProtocolError, SessionCommand, SessionEvent, SessionRequest,
    SessionView,
};
use moqo_core::IamaOptimizer;
use moqo_engine::{ModelRegistry, QueryFingerprint};
use moqo_poll::{Events, Interest, Reactor, Token, WakeHandle, WAKE_TOKEN};
use moqo_wire::{
    check_hello, client_hello, ClientFrameKind, ClientMessage, FrameBuffer, NetError,
    ServerMessage, WireError, WriteBuffer, HELLO_LEN,
};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Network front configuration.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`NetServer::local_addr`]).
    pub addr: String,
    /// Decode/dispatch worker threads. The event loop hands them the
    /// expensive frames (submits, frontier transfers); the optimizer
    /// work itself runs on the engine's shard workers, so a handful
    /// serves many connections.
    pub io_threads: usize,
    /// How long a connection with queued outbound bytes may go without
    /// any write progress before it is counted stalled and retired. A
    /// client that stops reading while the server streams events never
    /// holds a session slot (or buffer memory) longer than this.
    pub write_timeout: Duration,
    /// Kernel send-buffer size (`SO_SNDBUF`) for accepted sockets;
    /// `None` keeps the OS default. Small values surface backpressure
    /// early — the coalescing tests pin this to the kernel minimum to
    /// force slow-reader behavior deterministically.
    pub send_buffer: Option<usize>,
    /// Outbound bytes beyond which session events coalesce into one
    /// pending frame instead of being serialized individually.
    pub coalesce_after: usize,
    /// Hard bound on one connection's outbound buffer. Exceeding it
    /// (a slow reader that also triggered large frames) stalls the
    /// connection out immediately.
    pub max_outbound: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            io_threads: 2,
            write_timeout: Duration::from_secs(5),
            send_buffer: None,
            coalesce_after: 64 << 10,
            max_outbound: 8 << 20,
        }
    }
}

/// Aggregate network-front counters.
#[derive(Clone, Debug, Default)]
pub struct NetStats {
    /// Connections accepted since bind.
    pub accepted: u64,
    /// Frames received from clients.
    pub frames_in: u64,
    /// Frames sent to clients.
    pub frames_out: u64,
    /// Connections dropped on a wire/socket fault (malformed frames,
    /// version skew, mid-stream disconnects, stalled writers).
    pub faulted: u64,
    /// Session events merged into a coalesced frame instead of shipped
    /// individually — the volume of backpressure absorbed for slow
    /// readers.
    pub coalesced_events: u64,
    /// High-water mark of any single connection's outbound buffer, in
    /// bytes (how close the worst reader came to
    /// [`NetConfig::max_outbound`]).
    pub outbound_high_water: u64,
    /// Connections retired for making no write progress within
    /// [`NetConfig::write_timeout`] or overflowing
    /// [`NetConfig::max_outbound`] (also counted in `faulted`).
    pub stalled: u64,
    /// Sessions the engine routed to an exact parked frontier (summed
    /// over shards; includes in-process traffic on the shared server).
    pub warm_routed: u64,
    /// Sessions the engine routed to a rebase donor — a parked frontier
    /// of the same shape under drifted catalog cardinalities.
    pub rebase_routed: u64,
    /// Sub-frontier transplant cache hits: table subsets of admitted
    /// queries seeded from state harvested off *similar* queries.
    pub subfrontier_hits: u64,
    /// Sub-frontier transplant cache misses.
    pub subfrontier_misses: u64,
    /// Sessions the engine started cold — no parked frontier, no rebase
    /// donor (summed over shards; with `warm_routed` and
    /// `rebase_routed` this is the per-node route breakdown a fleet
    /// router balances on).
    pub cold_routed: u64,
    /// Sessions a non-home shard absorbed under rebalance headroom.
    pub rebalanced_in: u64,
    /// Admitted, not-yet-finished sessions right now (load figure).
    pub live: u64,
    /// Sessions parked because their connection disconnected or faulted
    /// before the terminal event — warm state captured off vanished
    /// clients.
    pub disconnect_parked: u64,
    /// `PullFrontier` control requests served (hits and misses both).
    pub frontier_pulls: u64,
    /// `PullFrontier` requests that found nothing parked and nothing in
    /// the snapshot store.
    pub frontier_misses: u64,
    /// `PushFrontier` control requests accepted and parked.
    pub frontier_pushes: u64,
    /// `PushFrontier` requests refused by snapshot validation.
    pub frontier_refused: u64,
}

#[derive(Default)]
struct NetCounters {
    accepted: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    faulted: AtomicU64,
    coalesced_events: AtomicU64,
    outbound_high_water: AtomicU64,
    stalled: AtomicU64,
    disconnect_parked: AtomicU64,
    frontier_pulls: AtomicU64,
    frontier_misses: AtomicU64,
    frontier_pushes: AtomicU64,
    frontier_refused: AtomicU64,
}

const LISTENER_TOKEN: Token = Token(0);
const FIRST_CONN_TOKEN: usize = 1;
/// One socket drain reads at most this much before yielding to the
/// next ready connection (level-triggered polling re-reports the rest).
const MAX_READ_PER_VISIT: usize = 1 << 20;

/// Work the event loop hands to the decode/dispatch pool. Jobs for one
/// connection always land on the same worker (keyed by token), so
/// per-stream order is preserved without any cross-worker coordination.
enum Job {
    /// A raw frame payload whose decode + dispatch is too expensive for
    /// the loop thread (submit, frontier pull/push).
    Frame { token: usize, payload: Vec<u8> },
    /// Park the session of a vanished connection.
    Retire { ticket: Ticket },
}

/// What a worker posts back; the loop applies these in arrival order
/// (per-connection order holds because of worker affinity).
enum Completion {
    Admission {
        token: usize,
        ticket: Ticket,
        response: AdmissionResponse,
    },
    /// Send the typed error, then fault the connection.
    TypedFault { token: usize, error: ProtocolError },
    /// Fault the connection without a protocol-level answer.
    WireFault { token: usize },
    Blob {
        token: usize,
        fingerprint: u64,
        frontier: Vec<u8>,
    },
}

/// Everything the workers (and the loop) share.
struct Front {
    server: Arc<MoqoServer>,
    registry: Arc<ModelRegistry>,
    store: Option<Arc<SnapshotStore>>,
    counters: Arc<NetCounters>,
    completions: Mutex<VecDeque<Completion>>,
    wake: WakeHandle,
}

impl Front {
    fn complete(&self, c: Completion) {
        self.completions
            .lock()
            .expect("net completions poisoned")
            .push_back(c);
        self.wake.wake();
    }
}

fn worker_loop(front: Arc<Front>, jobs: Receiver<Job>) {
    while let Ok(job) = jobs.recv() {
        match job {
            Job::Frame { token, payload } => handle_frame(&front, token, &payload),
            Job::Retire { ticket } => {
                // finish() parks a live session's frontier; queued or
                // rejected tickets come back None and count nothing.
                if front.server.finish(ticket).is_some() {
                    front
                        .counters
                        .disconnect_parked
                        .fetch_add(1, Ordering::Relaxed);
                }
                front.wake.wake();
            }
        }
    }
}

/// Decodes and executes one expensive client frame on a worker thread.
fn handle_frame(front: &Front, token: usize, payload: &[u8]) {
    let msg = match ClientMessage::decode(payload, front.registry.as_ref()) {
        Ok(msg) => msg,
        Err(WireError::UnknownModel { identity }) => {
            // The one wire fault with a protocol-level answer: tell the
            // client which identity was unknown, then drop the stream.
            front.complete(Completion::TypedFault {
                token,
                error: ProtocolError::UnknownCostModel { identity },
            });
            return;
        }
        Err(_) => {
            front.complete(Completion::WireFault { token });
            return;
        }
    };
    match msg {
        ClientMessage::Submit(request) => match front.server.submit(request) {
            Ok((ticket, response)) => front.complete(Completion::Admission {
                token,
                ticket,
                response,
            }),
            Err(error) => {
                // Malformed request: typed answer, then close — exactly
                // what the in-process submit returns.
                front.complete(Completion::TypedFault { token, error });
            }
        },
        // Commands dispatch inline on the loop; one arriving here means
        // the frame router broke, which is a programming error — but
        // workers must never die on data, so fault the connection.
        ClientMessage::Command(_) => front.complete(Completion::WireFault { token }),
        ClientMessage::PullFrontier { fingerprint } => {
            // Ship the parked frontier for this fingerprint, falling
            // back to the shared snapshot store — the adopt-after-death
            // path re-parks the dead home's last persisted state on
            // first demand.
            front
                .counters
                .frontier_pulls
                .fetch_add(1, Ordering::Relaxed);
            let fp = QueryFingerprint::from_u64(fingerprint);
            let engine = front.server.engine();
            let blob = engine
                .export_parked(fp)
                .or_else(|| front.store.as_ref().and_then(|s| s.restore_one(engine, fp)));
            if blob.is_none() {
                front
                    .counters
                    .frontier_misses
                    .fetch_add(1, Ordering::Relaxed);
            }
            front.complete(Completion::Blob {
                token,
                fingerprint,
                frontier: blob.unwrap_or_default(),
            });
        }
        ClientMessage::PushFrontier { frontier } => {
            // Admit a shipped frontier exactly like a snapshot restore —
            // full validation, and the fingerprint recomputed from the
            // decoded spec, never taken from the sender. Refusals ack
            // with the documented fingerprint-0 sentinel.
            let engine = front.server.engine();
            let ack = match IamaOptimizer::import_frontier(engine.model(), &frontier) {
                Ok(opt) => {
                    let model = opt.model();
                    let fp = QueryFingerprint::of(opt.spec(), &model);
                    engine.park(fp, opt);
                    front
                        .counters
                        .frontier_pushes
                        .fetch_add(1, Ordering::Relaxed);
                    fp.as_u64()
                }
                Err(_) => {
                    front
                        .counters
                        .frontier_refused
                        .fetch_add(1, Ordering::Relaxed);
                    0
                }
            };
            front.complete(Completion::Blob {
                token,
                fingerprint: ack,
                frontier: Vec::new(),
            });
        }
    }
}

/// One client connection, owned by the event loop.
struct Conn {
    stream: TcpStream,
    frames: FrameBuffer,
    out: WriteBuffer,
    hello_done: bool,
    ticket: Option<Ticket>,
    /// A submit frame is at a worker; its admission has not come back.
    submit_inflight: bool,
    /// Commands the client pipelined while the submit was in flight.
    queued_cmds: VecDeque<SessionCommand>,
    /// The coalesced not-yet-serialized event for a congested outbound
    /// buffer; newer events merge into it via [`SessionEvent::coalesce`].
    pending_event: Option<SessionEvent>,
    /// True once the client's view was primed (the full-state event sent
    /// after activation); channel events forward only after this.
    primed: bool,
    /// True once the terminal event was captured for delivery (the
    /// session needs no clean-up on disconnect).
    finished: bool,
    /// Close as soon as the outbound buffer drains.
    closing: bool,
    /// Last instant the outbound buffer made progress toward the socket
    /// (or became non-empty); drives the stall deadline.
    last_drain: Instant,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            frames: FrameBuffer::new(),
            out: WriteBuffer::new(),
            hello_done: false,
            ticket: None,
            submit_inflight: false,
            queued_cmds: VecDeque::new(),
            pending_event: None,
            primed: false,
            finished: false,
            closing: false,
            last_drain: Instant::now(),
        }
    }

    /// Serializes a message into the outbound buffer (actual socket
    /// writes happen on write readiness).
    fn enqueue(&mut self, counters: &NetCounters, msg: &ServerMessage) {
        if self.out.is_empty() {
            // The stall clock measures drain progress; restart it when
            // the buffer transitions from idle to loaded.
            self.last_drain = Instant::now();
        }
        self.out.push_frame(&msg.encode());
        counters.frames_out.fetch_add(1, Ordering::Relaxed);
        counters
            .outbound_high_water
            .fetch_max(self.out.pending() as u64, Ordering::Relaxed);
    }
}

/// A full-state event reconstructed from the server-side view at attach
/// time: folding it into a fresh client view reproduces the server's
/// view exactly, and subsequent live deltas continue from its epoch.
/// This is how a stream "joins" a session whose priming event the
/// server consumed at activation (including sessions that sat queued
/// first).
fn prime_event(server: &MoqoServer, view: &SessionView) -> SessionEvent {
    SessionEvent {
        epoch: view.epoch,
        delta: FrontierDelta::full(&view.frontier),
        resolution: view.resolution,
        bounds: view.bounds.unwrap_or_else(|| server.engine().unbounded()),
        invocations: view.invocations,
        report: view.last_report.clone(),
        first_report: view.first_report.clone(),
        outcome: view.outcome,
        coalesced: 0,
    }
}

/// Why a connection is being closed (decides the counters).
enum Close {
    /// Stream complete (terminal event delivered, or typed rejection).
    Done,
    /// Orderly client close before the terminal event.
    Orderly,
    /// Wire/socket fault.
    Fault,
    /// No write progress within the deadline, or outbound overflow.
    Stalled,
}

/// The single-threaded reactor loop owning every connection.
struct EventLoop {
    front: Arc<Front>,
    config: NetConfig,
    reactor: Reactor,
    listener: TcpListener,
    conns: HashMap<usize, Conn>,
    /// Ticket id → conn token, for routing dirty-ticket wakes.
    tickets: HashMap<u64, usize>,
    /// Tokens whose submission was queued by admission control; polled
    /// for activation on every wake (each poll also pumps the server's
    /// admission queue, so this doubles as the activation driver).
    awaiting: Vec<usize>,
    /// Tokens with a non-empty outbound buffer (stall bookkeeping).
    loaded: HashSet<usize>,
    jobs: Vec<Sender<Job>>,
    /// Ticket ids marked dirty by the server event hook.
    dirty: Arc<Mutex<VecDeque<u64>>>,
    stop: Arc<AtomicBool>,
    next_token: usize,
}

impl EventLoop {
    fn run(mut self) {
        let mut events = Events::new();
        while !self.stop.load(Ordering::Relaxed) {
            let timeout = self.next_wakeup();
            if self.reactor.poll(&mut events, timeout).is_err() {
                break; // reactor gone: nothing left to drive
            }
            let mut accept = false;
            let mut ready: Vec<(usize, bool, bool)> = Vec::with_capacity(events.len());
            for ev in events.iter() {
                let token = ev.token();
                if token == WAKE_TOKEN {
                    continue;
                }
                if token == LISTENER_TOKEN {
                    accept = true;
                    continue;
                }
                // Errors and hangups fold into readability: the next
                // read surfaces them as EOF or an error.
                ready.push((
                    token.0,
                    ev.is_readable() || ev.is_closed(),
                    ev.is_writable(),
                ));
            }
            if accept {
                self.accept_ready();
            }
            for (token, readable, writable) in ready {
                if writable {
                    self.pump_out(token);
                }
                if readable {
                    self.read_conn(token);
                }
            }
            self.drain_completions();
            self.drain_dirty();
            self.poll_awaiting();
            self.expire_stalled();
        }
        // Graceful drain: park every unfinished session (via the
        // workers), close the sockets, and let the job senders drop so
        // the workers run dry and exit.
        let tokens: Vec<usize> = self.conns.keys().copied().collect();
        for token in tokens {
            self.close_conn(token, Close::Done);
        }
    }

    /// How long `poll` may block: forever when nothing is buffered
    /// outbound, else until the earliest stall deadline.
    fn next_wakeup(&self) -> Option<Duration> {
        let now = Instant::now();
        self.loaded
            .iter()
            .filter_map(|t| self.conns.get(t))
            .map(|c| {
                (c.last_drain + self.config.write_timeout)
                    .checked_duration_since(now)
                    .unwrap_or(Duration::from_millis(1))
            })
            .min()
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    if let Some(bytes) = self.config.send_buffer {
                        let _ = moqo_poll::set_send_buffer(stream.as_raw_fd(), bytes);
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .reactor
                        .register(&stream, Token(token), Interest::READABLE)
                        .is_err()
                    {
                        continue;
                    }
                    self.front.counters.accepted.fetch_add(1, Ordering::Relaxed);
                    self.conns.insert(token, Conn::new(stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    /// Drains the socket into the frame buffer and processes what
    /// arrived. Level-triggered polling re-reports anything left after
    /// the per-visit read cap.
    fn read_conn(&mut self, token: usize) {
        let mut scratch = [0u8; 64 << 10];
        let fate = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let mut fate = None;
            let mut taken = 0usize;
            loop {
                match conn.stream.read(&mut scratch) {
                    Ok(0) => {
                        fate = Some(Close::Orderly);
                        break;
                    }
                    Ok(n) => {
                        conn.frames.extend(&scratch[..n]);
                        taken += n;
                        if taken > MAX_READ_PER_VISIT {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        fate = Some(Close::Fault);
                        break;
                    }
                }
            }
            fate
        };
        // Frames that arrived before the close still count; a stream
        // whose processing faults overrides an orderly close.
        match self.process_inbound(token) {
            Ok(()) => {
                if let Some(reason) = fate {
                    self.close_conn(token, reason);
                } else {
                    self.pump_out(token);
                }
            }
            Err(e) => {
                if let NetError::Protocol(error) = e {
                    // Typed faults answer before closing (best effort).
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.enqueue(&self.front.counters, &ServerMessage::Error(error));
                    }
                }
                self.close_conn(token, Close::Fault);
            }
        }
    }

    /// Handshake + frame dispatch for everything buffered on `token`.
    fn process_inbound(&mut self, token: usize) -> Result<(), NetError> {
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return Ok(());
            };
            if !conn.hello_done {
                let Some(hello) = conn.frames.take_raw(HELLO_LEN) else {
                    return Ok(());
                };
                let hello: [u8; HELLO_LEN] =
                    hello.try_into().expect("take_raw returned HELLO_LEN bytes");
                check_hello(&hello)?;
                conn.out.push_raw(&client_hello());
                conn.hello_done = true;
            }
        }
        loop {
            let payload = {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return Ok(());
                };
                if conn.closing {
                    // The stream is logically over; ignore the rest.
                    return Ok(());
                }
                match conn.frames.next_frame()? {
                    Some(payload) => payload,
                    None => return Ok(()),
                }
            };
            self.front
                .counters
                .frames_in
                .fetch_add(1, Ordering::Relaxed);
            match ClientMessage::kind_of(&payload) {
                Some(ClientFrameKind::Submit) => {
                    let conn = self.conns.get_mut(&token).expect("conn vanished mid-frame");
                    if conn.ticket.is_some() || conn.submit_inflight {
                        return Err(NetError::UnexpectedFrame("second submit on one stream"));
                    }
                    conn.submit_inflight = true;
                    self.dispatch(token, payload);
                }
                Some(ClientFrameKind::Command) => {
                    let command =
                        match ClientMessage::decode(&payload, self.front.registry.as_ref()) {
                            Ok(ClientMessage::Command(command)) => command,
                            Ok(_) => {
                                return Err(NetError::UnexpectedFrame("mistagged command frame"))
                            }
                            Err(e) => return Err(e.into()),
                        };
                    let conn = self.conns.get_mut(&token).expect("conn vanished mid-frame");
                    if conn.submit_inflight {
                        conn.queued_cmds.push_back(command);
                    } else if let Some(ticket) = conn.ticket {
                        if let Err(error) = self.front.server.command(ticket, command) {
                            let conn = self
                                .conns
                                .get_mut(&token)
                                .expect("conn vanished mid-command");
                            conn.enqueue(&self.front.counters, &ServerMessage::Error(error));
                        }
                    } else {
                        return Err(NetError::UnexpectedFrame("command before submit"));
                    }
                }
                Some(ClientFrameKind::PullFrontier | ClientFrameKind::PushFrontier) => {
                    let conn = self.conns.get(&token).expect("conn vanished mid-frame");
                    if conn.ticket.is_some() || conn.submit_inflight {
                        return Err(NetError::UnexpectedFrame(
                            "control message on a session stream",
                        ));
                    }
                    self.dispatch(token, payload);
                }
                None => return Err(NetError::UnexpectedFrame("unknown client frame tag")),
            }
        }
    }

    fn dispatch(&self, token: usize, payload: Vec<u8>) {
        let worker = token % self.jobs.len();
        let _ = self.jobs[worker].send(Job::Frame { token, payload });
    }

    fn drain_completions(&mut self) {
        loop {
            let completion = self
                .front
                .completions
                .lock()
                .expect("net completions poisoned")
                .pop_front();
            match completion {
                None => return,
                Some(Completion::Admission {
                    token,
                    ticket,
                    response,
                }) => self.finish_admission(token, ticket, response),
                Some(Completion::TypedFault { token, error }) => {
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.enqueue(&self.front.counters, &ServerMessage::Error(error));
                        self.close_conn(token, Close::Fault);
                    }
                }
                Some(Completion::WireFault { token }) => {
                    if self.conns.contains_key(&token) {
                        self.close_conn(token, Close::Fault);
                    }
                }
                Some(Completion::Blob {
                    token,
                    fingerprint,
                    frontier,
                }) => {
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.enqueue(
                            &self.front.counters,
                            &ServerMessage::FrontierBlob {
                                fingerprint,
                                frontier,
                            },
                        );
                        self.pump_out(token);
                    }
                }
            }
        }
    }

    fn finish_admission(&mut self, token: usize, ticket: Ticket, response: AdmissionResponse) {
        if !self.conns.contains_key(&token) {
            // The connection died while the worker admitted: the session
            // must not leak — park it like any other vanished client.
            let worker = token % self.jobs.len();
            let _ = self.jobs[worker].send(Job::Retire { ticket });
            return;
        }
        let admitted = response.is_admitted();
        let rejected = matches!(response, AdmissionResponse::Rejected(_));
        let queued_cmds: Vec<SessionCommand> = {
            let conn = self.conns.get_mut(&token).expect("checked above");
            conn.submit_inflight = false;
            conn.ticket = Some(ticket);
            conn.enqueue(
                &self.front.counters,
                &ServerMessage::Admission {
                    ticket: ticket.as_u64(),
                    response,
                },
            );
            if rejected {
                conn.finished = true;
                conn.closing = true;
            }
            conn.queued_cmds.drain(..).collect()
        };
        if rejected {
            self.pump_out(token);
            return;
        }
        self.tickets.insert(ticket.as_u64(), token);
        for command in queued_cmds {
            if let Err(error) = self.front.server.command(ticket, command) {
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.enqueue(&self.front.counters, &ServerMessage::Error(error));
                }
            }
        }
        if admitted {
            self.try_prime(token);
        } else {
            // Queued by admission control; primed when it activates.
            self.awaiting.push(token);
        }
        self.pump_out(token);
    }

    /// Primes the stream if the ticket went active. Returns `false`
    /// while it still sits in the admission queue.
    fn try_prime(&mut self, token: usize) -> bool {
        let ticket = match self.conns.get(&token) {
            Some(conn) if !conn.primed => match conn.ticket {
                Some(ticket) => ticket,
                None => return true,
            },
            // Gone or already primed: stop tracking either way.
            _ => return true,
        };
        // poll() folds any pending channel events into the server-side
        // view first, so the prime carries them and later recv()s only
        // see strictly newer epochs.
        match self.front.server.poll(ticket) {
            Some(TicketStatus::Active { view, .. }) => {
                let event = prime_event(&self.front.server, &view);
                let is_final = event.is_final();
                let conn = self.conns.get_mut(&token).expect("conn checked above");
                conn.primed = true;
                conn.enqueue(&self.front.counters, &ServerMessage::Event(Box::new(event)));
                if is_final {
                    conn.finished = true;
                    conn.closing = true;
                }
                // Cover events published between activation and the
                // prime's poll: anything newer is already in the
                // channel, so drain it now rather than waiting for the
                // next hook wake.
                self.forward_events(token);
                true
            }
            _ => false,
        }
    }

    fn poll_awaiting(&mut self) {
        if self.awaiting.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.awaiting);
        for token in pending {
            if self.try_prime(token) {
                self.pump_out(token);
            } else {
                self.awaiting.push(token);
            }
        }
    }

    fn drain_dirty(&mut self) {
        loop {
            let id = self
                .dirty
                .lock()
                .expect("net dirty queue poisoned")
                .pop_front();
            let Some(id) = id else { return };
            if let Some(&token) = self.tickets.get(&id) {
                self.forward_events(token);
                self.pump_out(token);
            }
        }
    }

    /// Forwards every buffered session event for `token`'s ticket,
    /// coalescing under backpressure.
    fn forward_events(&mut self, token: usize) {
        loop {
            let ticket = match self.conns.get(&token) {
                Some(conn) if conn.primed && !conn.finished => {
                    conn.ticket.expect("primed conn without a ticket")
                }
                _ => return,
            };
            let Some(event) = self.front.server.recv(ticket, Duration::ZERO) else {
                return;
            };
            self.queue_event(token, event);
        }
    }

    fn queue_event(&mut self, token: usize, event: SessionEvent) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if event.is_final() {
            // The terminal event is captured for delivery (possibly
            // inside a coalesced frame): no clean-up owed on disconnect.
            conn.finished = true;
        }
        if conn.pending_event.is_some() || conn.out.pending() > self.config.coalesce_after {
            let merged = match conn.pending_event.take() {
                Some(prev) => {
                    self.front
                        .counters
                        .coalesced_events
                        .fetch_add(1, Ordering::Relaxed);
                    prev.coalesce(&event)
                }
                None => event,
            };
            conn.pending_event = Some(merged);
        } else {
            let close = conn.finished;
            conn.enqueue(&self.front.counters, &ServerMessage::Event(Box::new(event)));
            if close {
                conn.closing = true;
            }
        }
    }

    /// Flushes the outbound buffer as far as the socket accepts,
    /// promoting the coalesced pending frame when room frees up, and
    /// closing/faulting the connection as its state dictates.
    fn pump_out(&mut self, token: usize) {
        let coalesce_after = self.config.coalesce_after;
        let max_outbound = self.config.max_outbound;
        let mut fate: Option<Close> = None;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            loop {
                let before = conn.out.pending();
                if conn.out.flush_to(&mut conn.stream).is_err() {
                    fate = Some(Close::Fault);
                    break;
                }
                if conn.out.pending() < before {
                    conn.last_drain = Instant::now();
                }
                // Room freed for the coalesced frame? Serialize it and
                // retry so a fast drain ships it in the same visit.
                if conn.pending_event.is_some() && conn.out.pending() <= coalesce_after {
                    let event = conn.pending_event.take().expect("checked above");
                    let close = conn.finished;
                    conn.enqueue(&self.front.counters, &ServerMessage::Event(Box::new(event)));
                    if close {
                        conn.closing = true;
                    }
                    continue;
                }
                break;
            }
            if fate.is_none() {
                if conn.out.pending() > max_outbound {
                    fate = Some(Close::Stalled);
                } else if conn.closing && conn.out.is_empty() && conn.pending_event.is_none() {
                    fate = Some(Close::Done);
                }
            }
            if fate.is_none() {
                if conn.out.is_empty() {
                    self.loaded.remove(&token);
                    let _ = self.reactor.set_interest(Token(token), Interest::READABLE);
                } else {
                    self.loaded.insert(token);
                    let _ = self
                        .reactor
                        .set_interest(Token(token), Interest::READABLE.add(Interest::WRITABLE));
                }
            }
        }
        if let Some(reason) = fate {
            self.close_conn(token, reason);
        }
    }

    /// Retires conns whose outbound buffer made no progress within the
    /// write deadline — slow readers must not hold memory forever.
    fn expire_stalled(&mut self) {
        if self.loaded.is_empty() {
            return;
        }
        let timeout = self.config.write_timeout;
        let now = Instant::now();
        let expired: Vec<usize> = self
            .loaded
            .iter()
            .filter(|t| {
                self.conns
                    .get(t)
                    .is_some_and(|c| now.duration_since(c.last_drain) > timeout)
            })
            .copied()
            .collect();
        for token in expired {
            self.close_conn(token, Close::Stalled);
        }
    }

    fn close_conn(&mut self, token: usize, reason: Close) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        match reason {
            Close::Done | Close::Orderly => {}
            Close::Fault => {
                self.front.counters.faulted.fetch_add(1, Ordering::Relaxed);
            }
            Close::Stalled => {
                self.front.counters.stalled.fetch_add(1, Ordering::Relaxed);
                self.front.counters.faulted.fetch_add(1, Ordering::Relaxed);
            }
        }
        // Hand the kernel whatever still fits (typed errors, terminal
        // frames); anything beyond that is the slow reader's loss.
        let _ = conn.out.flush_to(&mut conn.stream);
        let _ = self.reactor.deregister(Token(token));
        self.loaded.remove(&token);
        self.awaiting.retain(|&t| t != token);
        if let Some(ticket) = conn.ticket.take() {
            self.tickets.remove(&ticket.as_u64());
            if !conn.finished {
                // Disconnects and faults must not leak admission slots:
                // a worker parks the session (and counts it).
                let worker = token % self.jobs.len();
                let _ = self.jobs[worker].send(Job::Retire { ticket });
            }
        }
        let _ = conn.stream.shutdown(Shutdown::Both);
    }
}

/// The TCP front; see the module docs for the thread model and the
/// connection lifecycle.
pub struct NetServer {
    server: Arc<MoqoServer>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    counters: Arc<NetCounters>,
    wake: WakeHandle,
    threads: Vec<JoinHandle<()>>,
}

impl NetServer {
    /// Binds the listener and starts the event loop plus the
    /// decode/dispatch workers.
    ///
    /// `registry` must contain every cost model remote requests may
    /// reference (the deployment default is a sensible seed:
    /// [`ModelRegistry::with_default`]).
    pub fn bind(
        server: Arc<MoqoServer>,
        registry: Arc<ModelRegistry>,
        config: NetConfig,
    ) -> std::io::Result<NetServer> {
        Self::bind_inner(server, registry, config, None)
    }

    /// Like [`NetServer::bind`], with a [`SnapshotStore`] backing the
    /// `PullFrontier` endpoint: a pull for a fingerprint not parked in
    /// memory falls back to the store directory and re-parks what it
    /// finds — the lazy restore path a node uses when placement makes it
    /// the new home of a dead node's shard.
    pub fn bind_with_store(
        server: Arc<MoqoServer>,
        registry: Arc<ModelRegistry>,
        config: NetConfig,
        store: Arc<SnapshotStore>,
    ) -> std::io::Result<NetServer> {
        Self::bind_inner(server, registry, config, Some(store))
    }

    fn bind_inner(
        server: Arc<MoqoServer>,
        registry: Arc<ModelRegistry>,
        config: NetConfig,
        store: Option<Arc<SnapshotStore>>,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let reactor = Reactor::new()?;
        reactor.register(&listener, LISTENER_TOKEN, Interest::READABLE)?;
        let wake = reactor.wake_handle();
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(NetCounters::default());
        let front = Arc::new(Front {
            server: server.clone(),
            registry,
            store,
            counters: counters.clone(),
            completions: Mutex::new(VecDeque::new()),
            wake: wake.clone(),
        });

        // Every engine-side publish marks its ticket dirty and rings
        // the loop: the push path that replaces sleep-polling. The hook
        // runs under the engine state lock, so it touches only leaf
        // state (the queue mutex and the wake latch). `None` means an
        // event for a session whose activation is still in flight; the
        // post-activation prime covers its content, so a bare wake
        // suffices.
        let dirty: Arc<Mutex<VecDeque<u64>>> = Arc::new(Mutex::new(VecDeque::new()));
        {
            let dirty = dirty.clone();
            let wake = wake.clone();
            server.set_event_hook(Arc::new(move |ticket| {
                if let Some(t) = ticket {
                    dirty
                        .lock()
                        .expect("net dirty queue poisoned")
                        .push_back(t.as_u64());
                }
                wake.wake();
            }));
        }

        let mut threads = Vec::new();
        let mut jobs = Vec::new();
        for i in 0..config.io_threads.max(1) {
            let (tx, rx) = mpsc::channel();
            jobs.push(tx);
            let front = front.clone();
            threads.push(
                thread::Builder::new()
                    .name(format!("moqo-net-io-{i}"))
                    .spawn(move || worker_loop(front, rx))?,
            );
        }
        let event_loop = EventLoop {
            front,
            config,
            reactor,
            listener,
            conns: HashMap::new(),
            tickets: HashMap::new(),
            awaiting: Vec::new(),
            loaded: HashSet::new(),
            jobs,
            dirty,
            stop: stop.clone(),
            next_token: FIRST_CONN_TOKEN,
        };
        threads.push(
            thread::Builder::new()
                .name("moqo-net-loop".into())
                .spawn(move || event_loop.run())?,
        );

        Ok(NetServer {
            server,
            addr,
            stop,
            counters,
            wake,
            threads,
        })
    }

    /// The bound address (the actual port when `addr` asked for port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The in-process server behind the front — for diagnostics and
    /// persistence. While a connection is live its ticket's events belong
    /// to the network stream; correlate via the admission frame's ticket
    /// id and poll only after the stream finished.
    pub fn moqo(&self) -> &Arc<MoqoServer> {
        &self.server
    }

    /// Network-front counters.
    pub fn stats(&self) -> NetStats {
        let shards = self.server.engine().shard_stats();
        let sub = self.server.engine().subfrontier_stats();
        NetStats {
            accepted: self.counters.accepted.load(Ordering::Relaxed),
            frames_in: self.counters.frames_in.load(Ordering::Relaxed),
            frames_out: self.counters.frames_out.load(Ordering::Relaxed),
            faulted: self.counters.faulted.load(Ordering::Relaxed),
            coalesced_events: self.counters.coalesced_events.load(Ordering::Relaxed),
            outbound_high_water: self.counters.outbound_high_water.load(Ordering::Relaxed),
            stalled: self.counters.stalled.load(Ordering::Relaxed),
            warm_routed: shards.iter().map(|s| s.warm_routed).sum(),
            rebase_routed: shards.iter().map(|s| s.rebase_routed).sum(),
            subfrontier_hits: sub.hits,
            subfrontier_misses: sub.misses,
            cold_routed: shards.iter().map(|s| s.cold_routed).sum(),
            rebalanced_in: shards.iter().map(|s| s.rebalanced_in).sum(),
            live: shards.iter().map(|s| s.live as u64).sum(),
            disconnect_parked: self.counters.disconnect_parked.load(Ordering::Relaxed),
            frontier_pulls: self.counters.frontier_pulls.load(Ordering::Relaxed),
            frontier_misses: self.counters.frontier_misses.load(Ordering::Relaxed),
            frontier_pushes: self.counters.frontier_pushes.load(Ordering::Relaxed),
            frontier_refused: self.counters.frontier_refused.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, parks every unfinished session, closes all
    /// connections, and joins the threads. Event-driven: the stop flag
    /// plus one wake unblocks the loop immediately, so shutdown takes
    /// milliseconds even under 10k idle connections.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if self.threads.is_empty() {
            return;
        }
        self.stop.store(true, Ordering::Relaxed);
        self.wake.wake();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // Detach the event hook: the reactor it rang is gone.
        self.server.set_event_hook(Arc::new(|_| {}));
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

// ---------------------------------------------------------------------------
// Client.
// ---------------------------------------------------------------------------

/// Blocking client for one session over one connection.
///
/// Events fold into the same [`SessionView`] the in-process reassemblers
/// use, so [`NetClient::view`] is bit-identical to the server-side view
/// (`FrontierSnapshot::bits_eq`) at every point of the stream — including
/// across coalesced frames from a backpressured server.
pub struct NetClient {
    stream: TcpStream,
    frames: FrameBuffer,
    view: SessionView,
    ticket: Option<u64>,
    admission: Option<AdmissionResponse>,
    errors: Vec<ProtocolError>,
    eof: bool,
}

impl NetClient {
    /// Connects and completes the handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<NetClient, NetError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.write_all(&client_hello())?;
        let mut hello = [0u8; HELLO_LEN];
        stream.read_exact(&mut hello)?;
        check_hello(&hello)?;
        Ok(NetClient {
            stream,
            frames: FrameBuffer::new(),
            view: SessionView::default(),
            ticket: None,
            admission: None,
            errors: Vec::new(),
            eof: false,
        })
    }

    /// Submits the connection's one [`SessionRequest`] and blocks for the
    /// admission decision (at most `timeout`). Typed request faults
    /// ([`ProtocolError`], including
    /// [`ProtocolError::UnknownCostModel`]) come back as
    /// [`NetError::Protocol`].
    pub fn submit(
        &mut self,
        request: SessionRequest,
        timeout: Duration,
    ) -> Result<AdmissionResponse, NetError> {
        if self.ticket.is_some() {
            return Err(NetError::UnexpectedFrame("second submit on one stream"));
        }
        moqo_wire::write_frame(&mut self.stream, &ClientMessage::Submit(request).encode())?;
        let deadline = Instant::now() + timeout;
        match self.read_message(deadline)? {
            Some(ServerMessage::Admission { ticket, response }) => {
                self.ticket = Some(ticket);
                self.admission = Some(response.clone());
                Ok(response)
            }
            Some(ServerMessage::Error(e)) => Err(e.into()),
            Some(ServerMessage::Event(_)) => {
                Err(NetError::UnexpectedFrame("event before admission"))
            }
            Some(ServerMessage::FrontierBlob { .. }) => {
                Err(NetError::UnexpectedFrame("frontier blob before admission"))
            }
            // Distinguish a genuinely closed socket from a server that is
            // merely slow to decide admission within `timeout`.
            None if self.eof => Err(NetError::Disconnected),
            None => Err(NetError::Io(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "no admission response within the submit timeout",
            ))),
        }
    }

    /// Sends a [`SessionCommand`]. Commands are pipelined; a command the
    /// server cannot honor surfaces as a typed error on the event stream
    /// (see [`NetClient::take_errors`]).
    pub fn command(&mut self, command: SessionCommand) -> Result<(), NetError> {
        moqo_wire::write_frame(&mut self.stream, &ClientMessage::Command(command).encode())?;
        Ok(())
    }

    /// Blocks for the next [`SessionEvent`] (at most `timeout`), folding
    /// it into the view. `Ok(None)` on timeout, and once the stream ended
    /// after the terminal event. A coalesced frame arrives (and folds) as
    /// one event covering its declared epoch range.
    pub fn recv(&mut self, timeout: Duration) -> Result<Option<SessionEvent>, NetError> {
        let deadline = Instant::now() + timeout;
        loop {
            if self.eof {
                return if self.view.is_finished() {
                    Ok(None)
                } else {
                    Err(NetError::Disconnected)
                };
            }
            match self.read_message(deadline)? {
                Some(ServerMessage::Event(event)) => {
                    self.view.fold(&event)?;
                    return Ok(Some(*event));
                }
                Some(ServerMessage::Error(e)) => {
                    // Command faults interleave with events; they are
                    // collected, not stream-fatal.
                    self.errors.push(e);
                }
                Some(ServerMessage::Admission { .. }) => {
                    return Err(NetError::UnexpectedFrame("second admission"));
                }
                Some(ServerMessage::FrontierBlob { .. }) => {
                    return Err(NetError::UnexpectedFrame(
                        "frontier blob on a session stream",
                    ));
                }
                None => return Ok(None),
            }
        }
    }

    /// Pulls the parked frontier for a raw fingerprint off the server
    /// (control request; only valid before [`NetClient::submit`]).
    /// `Ok(None)` is a miss — nothing parked, nothing in the server's
    /// snapshot store. The bytes are self-validating
    /// `export_frontier` state, importable on any node whose cost model
    /// matches.
    pub fn pull_frontier(
        &mut self,
        fingerprint: u64,
        timeout: Duration,
    ) -> Result<Option<Vec<u8>>, NetError> {
        if self.ticket.is_some() {
            return Err(NetError::UnexpectedFrame("control message after submit"));
        }
        moqo_wire::write_frame(
            &mut self.stream,
            &ClientMessage::PullFrontier { fingerprint }.encode(),
        )?;
        match self.read_message(Instant::now() + timeout)? {
            Some(ServerMessage::FrontierBlob { frontier, .. }) => {
                Ok((!frontier.is_empty()).then_some(frontier))
            }
            Some(ServerMessage::Error(e)) => Err(e.into()),
            Some(_) => Err(NetError::UnexpectedFrame("expected frontier blob")),
            None if self.eof => Err(NetError::Disconnected),
            None => Err(NetError::Io(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "no frontier blob within the pull timeout",
            ))),
        }
    }

    /// Pushes self-validating `export_frontier` bytes onto the server to
    /// be parked at their home shard (control request; only valid before
    /// [`NetClient::submit`]). Returns the admitted fingerprint the
    /// server recomputed from the decoded spec, or `Ok(None)` when the
    /// push was refused by validation.
    pub fn push_frontier(
        &mut self,
        frontier: Vec<u8>,
        timeout: Duration,
    ) -> Result<Option<u64>, NetError> {
        if self.ticket.is_some() {
            return Err(NetError::UnexpectedFrame("control message after submit"));
        }
        moqo_wire::write_frame(
            &mut self.stream,
            &ClientMessage::PushFrontier { frontier }.encode(),
        )?;
        match self.read_message(Instant::now() + timeout)? {
            Some(ServerMessage::FrontierBlob { fingerprint, .. }) => {
                Ok((fingerprint != 0).then_some(fingerprint))
            }
            Some(ServerMessage::Error(e)) => Err(e.into()),
            Some(_) => Err(NetError::UnexpectedFrame("expected frontier blob")),
            None if self.eof => Err(NetError::Disconnected),
            None => Err(NetError::Io(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "no push acknowledgement within the timeout",
            ))),
        }
    }

    /// Drains the stream until the session's terminal event (at most
    /// `timeout`), returning the final view.
    pub fn wait_finished(&mut self, timeout: Duration) -> Result<&SessionView, NetError> {
        let deadline = Instant::now() + timeout;
        while !self.view.is_finished() {
            let now = Instant::now();
            if now >= deadline {
                return Err(NetError::Io(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "session did not finish in time",
                )));
            }
            self.recv(deadline - now)?;
        }
        Ok(&self.view)
    }

    /// The client-side reassembled session state.
    pub fn view(&self) -> &SessionView {
        &self.view
    }

    /// The admission decision, once [`NetClient::submit`] returned.
    pub fn admission(&self) -> Option<&AdmissionResponse> {
        self.admission.as_ref()
    }

    /// The server-side ticket id from the admission frame (correlate with
    /// [`Ticket::from_u64`] for post-session diagnostics).
    pub fn server_ticket(&self) -> Option<u64> {
        self.ticket
    }

    /// Typed command faults received so far (cleared on return).
    pub fn take_errors(&mut self) -> Vec<ProtocolError> {
        std::mem::take(&mut self.errors)
    }

    /// One complete server message, or `None` on deadline/EOF.
    fn read_message(&mut self, deadline: Instant) -> Result<Option<ServerMessage>, NetError> {
        loop {
            if let Some(payload) = self.frames.next_frame()? {
                return Ok(Some(ServerMessage::decode(&payload)?));
            }
            if self.eof {
                return Ok(None);
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            self.stream.set_read_timeout(Some(deadline - now))?;
            let mut scratch = [0u8; 8192];
            match self.stream.read(&mut scratch) {
                Ok(0) => self.eof = true,
                Ok(n) => self.frames.extend(&scratch[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(None);
                }
                Err(e) => return Err(e.into()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::{AdmissionConfig, AdmissionPolicy};
    use crate::shard::ShardConfig;
    use crate::ServeConfig;
    use moqo_cost::ResolutionSchedule;
    use moqo_costmodel::{SharedCostModel, StandardCostModel};
    use moqo_engine::EngineConfig;
    use moqo_query::testkit;

    const IDLE: Duration = Duration::from_secs(60);

    fn start_with(
        admission: AdmissionConfig,
        net: NetConfig,
    ) -> (NetServer, SocketAddr, SharedCostModel) {
        let model: SharedCostModel = Arc::new(StandardCostModel::paper_metrics());
        let server = Arc::new(MoqoServer::new(
            model.clone(),
            ResolutionSchedule::linear(2, 1.1, 0.4),
            ServeConfig {
                shard: ShardConfig {
                    shards: 2,
                    engine: EngineConfig {
                        workers: 2,
                        ..EngineConfig::default()
                    },
                    rebalance_headroom: 8,
                },
                admission,
                retired_tickets: 1024,
            },
        ));
        let registry = Arc::new(ModelRegistry::with_default(model.clone()));
        let net = NetServer::bind(server, registry, net).expect("bind loopback");
        let addr = net.local_addr();
        (net, addr, model)
    }

    fn start(admission: AdmissionConfig) -> (NetServer, SocketAddr, SharedCostModel) {
        start_with(admission, NetConfig::default())
    }

    #[test]
    fn tcp_session_reassembles_bit_exactly_and_parks_on_cancel() {
        let (net, addr, _model) = start(AdmissionConfig::default());
        let mut client = NetClient::connect(addr).expect("connect");
        let response = client
            .submit(
                SessionRequest::new(Arc::new(testkit::chain_query(3, 40_000))),
                IDLE,
            )
            .expect("admitted");
        assert_eq!(response, AdmissionResponse::Admitted);
        // Drain the auto-refined ladder (3 levels).
        while client.view().invocations < 3 {
            client.recv(IDLE).expect("stream healthy");
        }
        assert!(!client.view().frontier.is_empty());
        client.command(SessionCommand::Cancel).expect("send");
        let view = client.wait_finished(IDLE).expect("terminal event");
        assert!(view.selected().is_none());
        // The client view is bit-identical to the server-side one.
        let ticket = Ticket::from_u64(client.server_ticket().unwrap());
        match net.moqo().poll(ticket).expect("closed but queryable") {
            TicketStatus::Active {
                view: server_view, ..
            } => {
                assert!(client.view().frontier.bits_eq(&server_view.frontier));
                assert_eq!(client.view().epoch, server_view.epoch);
                assert_eq!(client.view().invocations, server_view.invocations);
            }
            other => panic!("expected active ticket, got {other:?}"),
        }
        // The cancelled session parked its frontier for warm repeats.
        let fp = net
            .moqo()
            .engine()
            .fingerprint(&testkit::chain_query(3, 40_000));
        assert!(net.moqo().engine().has_parked(fp));
        net.shutdown();
    }

    #[test]
    fn unknown_model_identity_answers_typed_error() {
        let (net, addr, _model) = start(AdmissionConfig::default());
        let foreign: SharedCostModel = Arc::new(StandardCostModel::new(
            moqo_costmodel::MetricSet::paper(),
            moqo_costmodel::StandardCostModelConfig {
                dops: vec![1, 2],
                ..moqo_costmodel::StandardCostModelConfig::default()
            },
        ));
        let mut client = NetClient::connect(addr).expect("connect");
        let err = client
            .submit(
                SessionRequest::new(Arc::new(testkit::chain_query(2, 10_000)))
                    .with_cost_model(foreign.clone()),
                IDLE,
            )
            .expect_err("unregistered model must be refused");
        match err {
            NetError::Protocol(ProtocolError::UnknownCostModel { identity }) => {
                assert_eq!(identity, moqo_costmodel::CostModel::identity(&foreign));
            }
            other => panic!("expected UnknownCostModel, got {other:?}"),
        }
        assert_eq!(net.moqo().stats().live, 0);
        net.shutdown();
    }

    #[test]
    fn command_faults_come_back_typed_without_killing_the_stream() {
        let (net, addr, _model) = start(AdmissionConfig::default());
        let mut client = NetClient::connect(addr).expect("connect");
        client
            .submit(
                SessionRequest::new(Arc::new(testkit::chain_query(2, 10_000))),
                IDLE,
            )
            .expect("admitted");
        while client.view().invocations < 3 {
            client.recv(IDLE).expect("stream healthy");
        }
        // A select for a plan the session never generated: typed error,
        // live stream.
        client
            .command(SessionCommand::SelectPlan(moqo_plan::PlanId(u32::MAX)))
            .expect("send");
        let deadline = Instant::now() + IDLE;
        while client.take_errors().is_empty() {
            assert!(Instant::now() < deadline, "no typed error arrived");
            let _ = client.recv(Duration::from_millis(20)).expect("healthy");
        }
        // The session is still commandable: select a real plan.
        let plan = client.view().frontier.min_by_metric(0).unwrap().plan;
        client
            .command(SessionCommand::SelectPlan(plan))
            .expect("send");
        let view = client.wait_finished(IDLE).expect("terminal event");
        assert_eq!(view.selected(), Some(plan));
        net.shutdown();
    }

    #[test]
    fn rejection_round_trips_and_closes_the_stream() {
        let (net, addr, _model) = start(AdmissionConfig {
            max_live: 1,
            policy: AdmissionPolicy::Reject,
        });
        let mut first = NetClient::connect(addr).expect("connect");
        first
            .submit(
                SessionRequest::new(Arc::new(testkit::chain_query(2, 10_000))),
                IDLE,
            )
            .expect("admitted");
        let mut second = NetClient::connect(addr).expect("connect");
        let response = second
            .submit(
                SessionRequest::new(Arc::new(testkit::chain_query(3, 10_000))),
                IDLE,
            )
            .expect("typed rejection, not an error");
        assert!(matches!(
            response,
            AdmissionResponse::Rejected(moqo_core::RejectReason::Overloaded { .. })
        ));
        net.shutdown();
    }

    /// Runs one session to completion on `addr` (submit, drain the
    /// ladder, cancel) so the server parks its frontier.
    fn park_one(addr: SocketAddr, spec: Arc<moqo_query::QuerySpec>) {
        let mut client = NetClient::connect(addr).expect("connect");
        client
            .submit(SessionRequest::new(spec), IDLE)
            .expect("admitted");
        while client.view().invocations < 3 {
            client.recv(IDLE).expect("stream healthy");
        }
        client.command(SessionCommand::Cancel).expect("send");
        client.wait_finished(IDLE).expect("terminal event");
    }

    #[test]
    fn frontiers_travel_between_nodes_over_the_wire() {
        // Node A refines and parks; a control connection pulls the
        // frontier off A and pushes it onto node B; a repeat of the
        // query on B starts warm and generates zero plans.
        let (a, addr_a, _model) = start(AdmissionConfig::default());
        let (b, addr_b, _model) = start(AdmissionConfig::default());
        let spec = Arc::new(testkit::chain_query(3, 40_000));
        park_one(addr_a, spec.clone());
        let fp = a.moqo().engine().fingerprint(&spec);

        let mut control = NetClient::connect(addr_a).expect("connect");
        // A fingerprint nobody ever parked is a clean miss.
        assert_eq!(control.pull_frontier(1, IDLE).expect("answered"), None);
        let blob = control
            .pull_frontier(fp.as_u64(), IDLE)
            .expect("answered")
            .expect("parked frontier must be pullable");

        let mut control_b = NetClient::connect(addr_b).expect("connect");
        // Garbage is refused by validation, not parked.
        assert_eq!(
            control_b
                .push_frontier(vec![0xa5; 64], IDLE)
                .expect("answered"),
            None
        );
        let admitted = control_b
            .push_frontier(blob, IDLE)
            .expect("answered")
            .expect("validated frontier must be admitted");
        assert_eq!(admitted, fp.as_u64());
        assert!(b.moqo().engine().has_parked(fp));

        // The shipped state serves a warm repeat on B: zero plans.
        let mut repeat = NetClient::connect(addr_b).expect("connect");
        repeat
            .submit(SessionRequest::new(spec), IDLE)
            .expect("admitted");
        while repeat.view().first_report.is_none() {
            repeat.recv(IDLE).expect("stream healthy");
        }
        assert_eq!(
            repeat.view().first_report.as_ref().unwrap().plans_generated,
            0,
            "warm repeat after hand-off must not regenerate plans"
        );

        let sa = a.stats();
        assert_eq!(sa.frontier_pulls, 2);
        assert_eq!(sa.frontier_misses, 1);
        let sb = b.stats();
        assert_eq!(sb.frontier_pushes, 1);
        assert_eq!(sb.frontier_refused, 1);
        assert!(sb.warm_routed >= 1);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn pull_falls_back_to_the_snapshot_store() {
        // A node that never served the query itself adopts it from the
        // shared snapshot directory on first demand — the re-park path a
        // new home runs after its predecessor died.
        let dir = std::env::temp_dir().join(format!("moqo-net-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = Arc::new(testkit::chain_query(4, 52_000));
        let (a, addr_a, _model) = start(AdmissionConfig::default());
        park_one(addr_a, spec.clone());
        let fp = a.moqo().engine().fingerprint(&spec);
        SnapshotStore::new(&dir).save(a.moqo().engine()).unwrap();
        a.shutdown();

        let model: SharedCostModel = Arc::new(StandardCostModel::paper_metrics());
        let server = Arc::new(MoqoServer::new(
            model.clone(),
            ResolutionSchedule::linear(2, 1.1, 0.4),
            ServeConfig::default(),
        ));
        let registry = Arc::new(ModelRegistry::with_default(model));
        let fresh = NetServer::bind_with_store(
            server,
            registry,
            NetConfig::default(),
            Arc::new(SnapshotStore::new(&dir)),
        )
        .expect("bind loopback");
        assert!(!fresh.moqo().engine().has_parked(fp));
        let mut control = NetClient::connect(fresh.local_addr()).expect("connect");
        let blob = control
            .pull_frontier(fp.as_u64(), IDLE)
            .expect("answered")
            .expect("store-backed pull must hit");
        assert!(!blob.is_empty());
        assert!(fresh.moqo().engine().has_parked(fp), "pull must re-park");
        assert_eq!(fresh.stats().frontier_pulls, 1);
        assert_eq!(fresh.stats().frontier_misses, 0);
        fresh.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disconnects_park_and_are_counted() {
        let (net, addr, _model) = start(AdmissionConfig::default());
        let spec = Arc::new(testkit::chain_query(3, 30_000));
        {
            let mut client = NetClient::connect(addr).expect("connect");
            client
                .submit(SessionRequest::new(spec.clone()), IDLE)
                .expect("admitted");
            while client.view().invocations < 3 {
                client.recv(IDLE).expect("stream healthy");
            }
        } // drop without cancel: the vanished-user path
        let deadline = Instant::now() + IDLE;
        while net.stats().disconnect_parked == 0 {
            assert!(Instant::now() < deadline, "disconnect never counted");
            thread::sleep(Duration::from_millis(5));
        }
        let stats = net.stats();
        assert_eq!(stats.disconnect_parked, 1);
        assert_eq!(stats.live, 0, "disconnect must not leak a session slot");
        let fp = net.moqo().engine().fingerprint(&spec);
        assert!(net.moqo().engine().has_parked(fp));
        net.shutdown();
    }

    #[test]
    fn garbage_bytes_fault_the_connection_not_the_server() {
        let (net, addr, _model) = start(AdmissionConfig::default());
        // Raw socket, no handshake: shove noise at the server.
        let mut raw = TcpStream::connect(addr).expect("connect");
        raw.write_all(&[0xa5; 256]).expect("write");
        // The server drops the connection; a well-behaved client still
        // gets service.
        let mut client = NetClient::connect(addr).expect("connect");
        client
            .submit(
                SessionRequest::new(Arc::new(testkit::chain_query(2, 10_000))),
                IDLE,
            )
            .expect("admitted");
        client.command(SessionCommand::Cancel).expect("send");
        client.wait_finished(IDLE).expect("terminal event");
        let deadline = Instant::now() + IDLE;
        while net.stats().faulted == 0 {
            assert!(Instant::now() < deadline, "fault never counted");
            thread::sleep(Duration::from_millis(5));
        }
        net.shutdown();
    }

    #[test]
    fn slow_readers_coalesce_without_tearing_the_view() {
        // A tiny kernel send buffer plus a client that stops reading
        // forces outbound congestion; pending events must merge into
        // coalesced frames, and the client view must still reassemble
        // bit-identical to the server's once it finally drains.
        let (net, addr, _model) = start_with(
            AdmissionConfig::default(),
            NetConfig {
                send_buffer: Some(1), // kernel clamps to its minimum
                coalesce_after: 0,    // any backlog coalesces
                ..NetConfig::default()
            },
        );
        let mut client = NetClient::connect(addr).expect("connect");
        client
            .submit(
                SessionRequest::new(Arc::new(testkit::chain_query(4, 50_000))),
                IDLE,
            )
            .expect("admitted");
        // Wait server-side until the ladder refined — the client is NOT
        // reading, so events pile into the connection's outbound path.
        assert!(net.moqo().wait_idle(IDLE));
        // Bounds drags publish further events (each refocuses the
        // frontier), still unread by the client.
        let unbounded = net.moqo().engine().unbounded();
        for i in 0..60u32 {
            let bounds = unbounded.with_limit(0, (i as f64 + 2.0) * 1e7);
            client
                .command(SessionCommand::SetBounds(bounds))
                .expect("send");
        }
        client
            .command(SessionCommand::SetBounds(unbounded))
            .expect("send");
        assert!(net.moqo().wait_idle(IDLE));
        client.command(SessionCommand::Cancel).expect("send");
        // Now drain everything — coalesced frames included.
        let view = client.wait_finished(IDLE).expect("terminal event");
        assert!(view.is_finished());
        let ticket = Ticket::from_u64(client.server_ticket().unwrap());
        match net.moqo().poll(ticket).expect("closed but queryable") {
            TicketStatus::Active {
                view: server_view, ..
            } => {
                assert!(
                    client.view().frontier.bits_eq(&server_view.frontier),
                    "coalesced stream must reassemble bit-exactly"
                );
                assert_eq!(client.view().epoch, server_view.epoch);
            }
            other => panic!("expected active ticket, got {other:?}"),
        }
        let stats = net.stats();
        assert!(
            stats.coalesced_events > 0,
            "a non-reading client must force coalescing (stats: {stats:?})"
        );
        assert!(stats.outbound_high_water > 0);
        assert_eq!(stats.stalled, 0);
        net.shutdown();
    }

    #[test]
    fn stalled_writers_are_bounded_and_retired() {
        // A reader that stops draining while the server owes it real
        // volume must be cut loose after write_timeout. The volume is
        // generated deterministically: the control connection requests
        // a parked frontier a few hundred times up front and never
        // reads a single reply — the response bytes overwhelm the
        // kernel pipeline (tiny server send buffer + the client's
        // initial receive window), so the userspace outbound buffer
        // stays loaded and the write deadline has to fire.
        let (net, addr, _model) = start_with(
            AdmissionConfig::default(),
            NetConfig {
                send_buffer: Some(1), // kernel clamps to its minimum
                write_timeout: Duration::from_millis(100),
                ..NetConfig::default()
            },
        );
        let spec = Arc::new(testkit::chain_query(4, 40_000));
        park_one(addr, spec.clone());
        let fp = net.moqo().engine().fingerprint(&spec);

        // Raw control connection: handshake, then a burst of pulls with
        // the read side abandoned.
        let mut raw = TcpStream::connect(addr).expect("connect");
        raw.write_all(&client_hello()).expect("hello out");
        let mut hello = [0u8; HELLO_LEN];
        raw.read_exact(&mut hello).expect("hello back");
        check_hello(&hello).expect("version match");
        let pull = ClientMessage::PullFrontier {
            fingerprint: fp.as_u64(),
        }
        .encode();
        for _ in 0..300 {
            moqo_wire::write_frame(&mut raw, &pull).expect("request out");
        }

        let deadline = Instant::now() + IDLE;
        while net.stats().stalled == 0 {
            assert!(Instant::now() < deadline, "stall never detected");
            thread::sleep(Duration::from_millis(10));
        }
        let stats = net.stats();
        assert!(stats.stalled >= 1);
        assert!(stats.outbound_high_water > 0);
        assert_eq!(stats.live, 0, "control connections never hold sessions");
        drop(raw);
        net.shutdown();
    }

    #[test]
    fn idle_connections_hold_without_event_loss() {
        // A batch of sessions goes idle (ladder drained, user thinking);
        // the front must hold them live with zero events lost and zero
        // faults — then finish each one bit-exactly.
        const SESSIONS: usize = 24;
        let (net, addr, _model) = start(AdmissionConfig {
            max_live: SESSIONS,
            ..AdmissionConfig::default()
        });
        let mut clients = Vec::new();
        for i in 0..SESSIONS {
            let mut client = NetClient::connect(addr).expect("connect");
            client
                .submit(
                    SessionRequest::new(Arc::new(testkit::chain_query(
                        2 + (i % 3),
                        10_000 + 1_000 * i as u64,
                    ))),
                    IDLE,
                )
                .expect("admitted");
            clients.push(client);
        }
        for client in &mut clients {
            while client.view().invocations < 3 {
                client.recv(IDLE).expect("stream healthy");
            }
        }
        // Idle period: several probe/sweep intervals long, nobody talks.
        thread::sleep(Duration::from_millis(300));
        let stats = net.stats();
        assert_eq!(stats.live, SESSIONS as u64, "idle sessions must stay live");
        assert_eq!(stats.faulted, 0);
        // Everyone wakes up and finishes; no event was lost while idle.
        for client in &mut clients {
            let plan = client.view().frontier.min_by_metric(0).unwrap().plan;
            client
                .command(SessionCommand::SelectPlan(plan))
                .expect("send");
            let view = client.wait_finished(IDLE).expect("terminal event");
            assert_eq!(view.selected(), Some(plan));
        }
        assert_eq!(net.stats().live, 0);
        net.shutdown();
    }

    #[test]
    fn shutdown_is_event_driven_and_fast() {
        let (net, addr, _model) = start(AdmissionConfig::default());
        let mut clients = Vec::new();
        for _ in 0..8 {
            let mut client = NetClient::connect(addr).expect("connect");
            client
                .submit(
                    SessionRequest::new(Arc::new(testkit::chain_query(2, 10_000))),
                    IDLE,
                )
                .expect("admitted");
            clients.push(client);
        }
        for client in &mut clients {
            while client.view().invocations < 3 {
                client.recv(IDLE).expect("stream healthy");
            }
        }
        // Everything is idle; the loop is blocked in poll with no
        // timeout. Shutdown must ring the wake channel and return well
        // under the no-sleep-polling bound.
        let started = Instant::now();
        net.shutdown();
        let elapsed = started.elapsed();
        assert!(
            elapsed < Duration::from_millis(100),
            "graceful stop took {elapsed:?}, expected < 100ms"
        );
    }
}
