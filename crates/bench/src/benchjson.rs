//! Minimal JSON emitter for the machine-readable `BENCH_*.json` outputs.
//!
//! The `repro` experiments print human tables *and* drop a small JSON
//! file per experiment so scripts can track medians and counters across
//! runs without scraping stdout. The workspace is offline (no serde);
//! the subset of JSON needed here — objects, arrays, strings, numbers,
//! booleans — is small enough to emit by hand. Schemas are documented
//! in `docs/benchmarks.md`.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A JSON value tree, built by the experiments and rendered with
/// [`Json::render`].
#[derive(Clone, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned counter (serialized without a fraction).
    Int(u64),
    /// A float. Non-finite values render as `null` (JSON has no
    /// `Infinity`/`NaN`); finite values use Rust's shortest round-trip
    /// formatting, so readers recover the exact `f64`.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(&'static str, Json)>),
}

impl Json {
    /// Renders the tree as pretty-printed JSON (2-space indent, trailing
    /// newline) for stable, diff-friendly files.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders into `path`, overwriting any previous run's file.
    pub fn write_file(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.render())
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    escape_into(key, out);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                newline(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_the_whole_grammar() {
        let j = Json::Obj(vec![
            ("name", Json::Str("a \"quoted\"\nline".into())),
            ("count", Json::Int(42)),
            ("ratio", Json::Num(2.5)),
            ("unbounded", Json::Num(f64::INFINITY)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("items", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        let s = j.render();
        assert!(s.contains("\"a \\\"quoted\\\"\\nline\""));
        assert!(s.contains("\"count\": 42"));
        assert!(s.contains("\"ratio\": 2.5"));
        assert!(s.contains("\"unbounded\": null"));
        assert!(s.contains("\"items\": [\n"));
        assert!(s.contains("\"empty_arr\": []"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn floats_round_trip_through_the_shortest_repr() {
        let v = 0.1 + 0.2;
        let s = Json::Num(v).render();
        assert_eq!(s.trim().parse::<f64>().unwrap().to_bits(), v.to_bits());
    }
}
