//! The incremental optimizer — Algorithms 2 and 3 of the paper — on top of
//! the precomputed enumeration plane.
//!
//! # Dense subset state
//!
//! The optimizer's per-table-set bookkeeping (result index, candidate
//! index, active list, last-insertion watermark) lives in a flat
//! `Vec<SubsetState>` indexed by the [`EnumerationPlan`]'s dense
//! [`SubsetId`]s — no `TableSet → …` hash probes on the hot path, and the
//! `O(2^k)` split spaces of irrelevant (disconnected) subsets are never
//! visited at all.
//!
//! # Watermarks instead of pair hashing
//!
//! Lemma 6 ("no sub-plan pair is combined twice") is enforced positionally:
//! active lists are append-only (shadowed entries are tombstoned, never
//! removed), so every split carries a watermark rectangle `(wl, wr)`
//! meaning *all pairs of entries below those positions are settled* —
//! combined earlier, or shadowed and never needed. A monotone invocation
//! series (the paper's Section 4.2 Δ-set regime) advances the rectangles
//! in lock-step with the lists and never touches a hash. Only *churn*
//! epochs — bounds loosened, resolution reset, entries excluded by
//! tighter bounds — fall back to the `IsFresh` [`PairSet`] for the pairs
//! the rectangle cannot certify; every combined pair stays covered by
//! `rectangle ∪ hash` at all times, which is the invariant the Lemma 5/6
//! tests verify under chaotic bound changes.

use crate::config::IamaConfig;
use crate::frontier::{FrontierPoint, FrontierSnapshot};
use crate::report::InvocationReport;
use crate::stats::OptimizerStats;
use moqo_cost::{Bounds, CostVector, ResolutionSchedule};
use moqo_costmodel::{PlanInput, SharedCostModel};
use moqo_index::{DynIndex, Entry, PairSet, PlanIndex};
use moqo_plan::{PhysicalProps, PlanArena, PlanId};
use moqo_query::{EnumerationPlan, QuerySpec, SubsetId};
use std::sync::Arc;
use std::time::Instant;

/// One combinable result plan in a subset's active list.
///
/// The list is strictly append-only: plans shadowed by a plainly
/// dominating, order-compatible alternative are tombstoned in place (see
/// [`IamaConfig::shadow_dominated`]), so list *positions* are stable and
/// the per-split watermark rectangles remain meaningful forever.
#[derive(Clone, Copy)]
pub(crate) struct ActiveEntry {
    pub(crate) plan: PlanId,
    pub(crate) cost: CostVector,
    pub(crate) props: PhysicalProps,
    /// Invocation at which the entry was appended; non-decreasing along
    /// the list, so entries of the current invocation form a suffix.
    pub(crate) invocation: u32,
    pub(crate) level: u8,
    /// Tombstone: excluded from all future combinations, kept for
    /// positional stability (the plan itself stays in the cost index as a
    /// pruning witness).
    pub(crate) shadowed: bool,
}

/// A collected combination operand: a live, in-context active entry plus
/// its stable list position (for watermark tests).
#[derive(Clone, Copy)]
struct Operand {
    idx: u32,
    plan: PlanId,
    cost: CostVector,
    props: PhysicalProps,
    fresh: bool,
}

/// All per-subset optimizer state, indexed densely by [`SubsetId`].
pub(crate) struct SubsetState {
    /// Result plans `Res^q`, indexed by cost and resolution. Lazily
    /// created: untouched subsets cost one `Option` each.
    pub(crate) res: Option<DynIndex<PlanId>>,
    /// Candidate plans `Cand^q`.
    pub(crate) cand: Option<DynIndex<PlanId>>,
    /// Append-only combinable view of the result set (the Δ-list of the
    /// current invocation is its suffix with `invocation == current`).
    pub(crate) active: Vec<ActiveEntry>,
    /// Invocation of the most recent result insertion — the auxiliary
    /// index the paper mentions for evaluating `ΔS` cheaply (Section
    /// 4.2): a split whose operands both saw no insertion this invocation
    /// has an empty Δ cross product. `u32::MAX` = never.
    pub(crate) last_res_insert: u32,
    /// Memoized combination view of `active` under the current
    /// invocation's `(bounds, r)` context, valid while `operands_inv`
    /// equals the current invocation: a subset feeding many splits is
    /// filtered once per invocation, and the buffer is reused forever —
    /// phase 2 allocates nothing in steady state.
    operands: Vec<Operand>,
    /// Whether every non-tombstoned `active` entry made it into
    /// `operands` (the watermark-advance precondition).
    operands_clean: bool,
    /// Invocation `operands` was collected for. `u32::MAX` = never.
    operands_inv: u32,
}

impl SubsetState {
    pub(crate) fn new() -> Self {
        Self {
            res: None,
            cand: None,
            active: Vec::new(),
            last_res_insert: u32::MAX,
            operands: Vec::new(),
            operands_clean: false,
            operands_inv: u32::MAX,
        }
    }
}

/// Per-split freshness watermark: every operand pair with positions below
/// `(left, right)` is settled (combined once, or tombstoned).
#[derive(Clone, Copy, Default)]
pub(crate) struct Watermark {
    pub(crate) left: u32,
    pub(crate) right: u32,
}

/// The Incremental Anytime MOQO optimizer (IAMA).
///
/// Holds all state that persists across invocations for one query: the
/// plan arena and, per enumerated subset, the result and candidate plan
/// sets (indexed by cost and resolution) plus the active combination
/// list. Invoke [`IamaOptimizer::optimize`] with bounds and a resolution
/// level (Algorithm 2), or [`IamaOptimizer::run_invocation`] to let the
/// optimizer advance the resolution the way Algorithm 1's main loop does.
///
/// The optimizer *owns* its query and cost model behind `Arc`s, so a
/// session can be stored in a service map, handed between worker threads,
/// or parked in a frontier cache and revived later — nothing borrows from
/// a caller's stack frame. The [`EnumerationPlan`] is likewise shared:
/// construct with [`IamaOptimizer::with_plan`] to reuse one plan across
/// all concurrent sessions of the same join-graph shape.
///
/// ```
/// use moqo_core::IamaOptimizer;
/// use moqo_cost::{Bounds, ResolutionSchedule};
/// use moqo_costmodel::{CostModel, StandardCostModel};
/// use moqo_query::testkit;
/// use std::sync::Arc;
///
/// let spec = Arc::new(testkit::chain_query(3, 50_000));
/// let model = Arc::new(StandardCostModel::paper_metrics());
/// let bounds = Bounds::unbounded(model.dim());
/// let schedule = ResolutionSchedule::linear(3, 1.05, 0.5);
/// let mut opt = IamaOptimizer::new(spec, model, schedule);
///
/// // Anytime refinement: coarse to fine.
/// for r in 0..=opt.schedule().r_max() {
///     let report = opt.optimize(&bounds, r);
///     assert!(report.frontier_size > 0);
/// }
/// // Incrementality: a repeated invocation does no plan work.
/// let again = opt.optimize(&bounds, opt.schedule().r_max());
/// assert_eq!(again.plans_generated, 0);
/// ```
pub struct IamaOptimizer {
    pub(crate) spec: Arc<QuerySpec>,
    pub(crate) model: SharedCostModel,
    pub(crate) schedule: ResolutionSchedule,
    pub(crate) config: IamaConfig,
    pub(crate) plan: Arc<EnumerationPlan>,
    pub(crate) arena: PlanArena,
    /// Dense per-subset state, aligned with `plan.subsets()`.
    pub(crate) states: Vec<SubsetState>,
    /// Per-split watermark rectangles, aligned with `plan.splits()`.
    pub(crate) watermarks: Vec<Watermark>,
    /// `IsFresh` fallback for pairs the watermarks cannot certify
    /// (combined during churn epochs). Empty over monotone series.
    pub(crate) pairs: PairSet,
    /// Tag for entries inserted during the current (or next) invocation.
    pub(crate) invocation: u32,
    /// Bounds and resolution of the most recent invocation.
    pub(crate) last_ctx: Option<(Bounds, usize)>,
    pub(crate) scans_done: bool,
    pub(crate) stats: OptimizerStats,
    /// Warm-start seeds (rebased/transplanted plans, already replayed
    /// into the arena and re-costed) waiting for candidate admission.
    /// Drained FIFO, at most [`IamaConfig::max_seeds_per_slice`] per
    /// invocation, so a very warm donor cannot stall the first frontier
    /// behind one giant candidate drain. Not serialized in snapshots:
    /// seeds are an accelerant, and a parked optimizer that ran its
    /// ladder has long admitted them all.
    pub(crate) pending_seeds: std::collections::VecDeque<(SubsetId, PlanId, CostVector)>,
}

impl IamaOptimizer {
    /// Creates an optimizer with the default configuration.
    pub fn new(spec: Arc<QuerySpec>, model: SharedCostModel, schedule: ResolutionSchedule) -> Self {
        Self::with_config(spec, model, schedule, IamaConfig::default())
    }

    /// Creates an optimizer with an explicit configuration, building a
    /// private enumeration plan for the query's shape.
    pub fn with_config(
        spec: Arc<QuerySpec>,
        model: SharedCostModel,
        schedule: ResolutionSchedule,
        config: IamaConfig,
    ) -> Self {
        let plan = Arc::new(EnumerationPlan::build(
            &spec.graph,
            config.allow_cross_products,
        ));
        Self::with_plan(spec, model, schedule, config, plan)
    }

    /// Creates an optimizer over a shared, precomputed enumeration plan.
    ///
    /// This is the serving-layer constructor: `moqo-engine` caches plans
    /// by [`moqo_query::ShapeKey`] so all concurrent sessions over structurally
    /// similar queries walk one immutable plan.
    ///
    /// # Panics
    /// Panics if the query joins no table, or if `plan` was built for a
    /// different join-graph shape or cross-product policy.
    pub fn with_plan(
        spec: Arc<QuerySpec>,
        model: SharedCostModel,
        schedule: ResolutionSchedule,
        config: IamaConfig,
        plan: Arc<EnumerationPlan>,
    ) -> Self {
        assert!(spec.n_tables() >= 1, "query must join at least one table");
        // Full structural check, not just the 64-bit ShapeKey: a hash
        // collision in a shared plan cache must panic here rather than
        // silently optimize over a wrong enumeration.
        assert!(
            plan.matches(&spec.graph, config.allow_cross_products),
            "enumeration plan does not match the query's shape/policy"
        );
        let states = (0..plan.len()).map(|_| SubsetState::new()).collect();
        let watermarks = vec![Watermark::default(); plan.total_splits()];
        Self {
            spec,
            model,
            schedule,
            config,
            plan,
            arena: PlanArena::new(),
            states,
            watermarks,
            pairs: PairSet::new(),
            invocation: 0,
            last_ctx: None,
            scans_done: false,
            stats: OptimizerStats::default(),
            pending_seeds: std::collections::VecDeque::new(),
        }
    }

    /// The resolution schedule in use.
    pub fn schedule(&self) -> &ResolutionSchedule {
        &self.schedule
    }

    /// The query being optimized.
    pub fn spec(&self) -> &QuerySpec {
        &self.spec
    }

    /// Shared handle to the query being optimized.
    pub fn spec_arc(&self) -> Arc<QuerySpec> {
        Arc::clone(&self.spec)
    }

    /// Shared handle to the cost model.
    pub fn model(&self) -> SharedCostModel {
        Arc::clone(&self.model)
    }

    /// Number of cost metrics of the underlying model.
    pub fn model_dim(&self) -> usize {
        self.model.dim()
    }

    /// The plan arena (for `explain`-style rendering of frontier plans).
    pub fn arena(&self) -> &PlanArena {
        &self.arena
    }

    /// The (possibly shared) enumeration plan driving phase 2.
    pub fn enumeration(&self) -> &Arc<EnumerationPlan> {
        &self.plan
    }

    /// Cumulative instrumentation counters.
    pub fn stats(&self) -> &OptimizerStats {
        &self.stats
    }

    /// Number of completed invocations.
    pub fn invocations(&self) -> u32 {
        self.stats.invocations
    }

    /// Warm-start seed plans still waiting for candidate admission (the
    /// surplus beyond [`IamaConfig::max_seeds_per_slice`] per invocation;
    /// see [`IamaOptimizer::rebase_from`] / [`IamaOptimizer::import_subset`]).
    pub fn pending_seeds(&self) -> usize {
        self.pending_seeds.len()
    }

    /// Resolution level the next [`IamaOptimizer::run_invocation`] will
    /// use for the given bounds (Algorithm 1's update rule).
    pub fn next_resolution(&self, bounds: &Bounds) -> usize {
        match &self.last_ctx {
            Some((lb, lr)) if lb == bounds => (lr + 1).min(self.schedule.r_max()),
            _ => 0,
        }
    }

    /// Runs one invocation, advancing the resolution like Algorithm 1's
    /// main loop: level 0 for new bounds, otherwise one level finer than
    /// the previous invocation (saturating at `rM`).
    pub fn run_invocation(&mut self, bounds: Bounds) -> InvocationReport {
        let r = self.next_resolution(&bounds);
        self.optimize(&bounds, r)
    }

    /// One invocation of the `Optimize` procedure (Algorithm 2) with
    /// explicit bounds and resolution.
    ///
    /// Afterwards, for every table subset `q` with `|q| = k`, the result
    /// set `Res^q[0..b, 0..r]` contains an `alpha_r^k`-approximate
    /// `b`-bounded Pareto plan set (Theorem 2).
    pub fn optimize(&mut self, bounds: &Bounds, r: usize) -> InvocationReport {
        assert!(
            r <= self.schedule.r_max(),
            "resolution {r} exceeds rM={}",
            self.schedule.r_max()
        );
        assert_eq!(
            bounds.dim(),
            self.model.dim(),
            "bounds dimension must match the cost model"
        );
        let start = Instant::now();
        let plans0 = self.stats.plans_generated;
        let cands0 = self.stats.candidate_retrievals;
        let pairs0 = self.stats.pairs_generated;
        let res0 = self.stats.result_insertions;
        let cins0 = self.stats.candidate_insertions;
        let subs0 = self.stats.subsets_visited;
        let sv0 = self.stats.splits_visited;
        let ss0 = self.stats.splits_skipped;

        // Scan plans are generated once per query, before the main loop
        // (Algorithm 1 lines 7-10); lazily on the first invocation here.
        if !self.scans_done {
            self.init_scans(bounds, r);
            self.scans_done = true;
        }

        // Admit up to one slice's worth of warm-start seeds as level-0
        // candidates; phase 1 below drains and re-prunes them like any
        // re-queued candidate (Lemma 7). The surplus stays pending, so
        // the drain of a very warm donor amortizes across the ladder.
        for _ in 0..self.config.max_seeds_per_slice {
            let Some((q, plan, cost)) = self.pending_seeds.pop_front() else {
                break;
            };
            self.insert_candidate(q, plan, cost, 0);
        }

        // Δ-set filtering is sound when every plan now in
        // `Res[0..b, 0..r]` that was inserted *before* this invocation was
        // already pair-combined: bounds at most as permissive as last time
        // and resolution not coarser (see Section 4.2's discussion of
        // invocation series).
        let use_delta = self.config.use_delta
            && match &self.last_ctx {
                None => true, // first invocation: all plans are fresh anyway
                Some((lb, lr)) => lb.contains(bounds) && r >= *lr,
            };

        // Phase 1 (Algorithm 2 lines 6-12): reconsider candidate plans,
        // in dense subset order (ascending cardinality).
        for ix in 0..self.states.len() {
            let drained = match self.states[ix].cand.as_mut() {
                Some(idx) if !idx.is_empty() => idx.drain(bounds, r as u8),
                _ => continue,
            };
            let q = SubsetId::from_index(ix);
            for e in drained {
                self.stats.candidate_retrievals += 1;
                if self.config.track_invariants {
                    *self
                        .stats
                        .candidate_retrieval_counts
                        .entry(e.item.0)
                        .or_insert(0) += 1;
                }
                self.prune(q, e.item, bounds, r);
            }
        }

        // Phase 2 (lines 13-22): generate plans from fresh combinations.
        // The enumeration plan already fixed the visit order (subsets by
        // increasing cardinality) and pre-resolved every valid ordered
        // split, so this is a flat walk over two arrays.
        for ix in 0..self.states.len() {
            let info = self.plan.subsets()[ix];
            if info.split_len == 0 {
                continue;
            }
            self.stats.subsets_visited += 1;
            let q = SubsetId::from_index(ix);
            for off in 0..info.split_len as usize {
                self.combine_split(q, info.split_offset as usize + off, bounds, r, use_delta);
            }
        }

        self.stats.invocations += 1;
        if use_delta {
            self.stats.delta_invocations += 1;
        }
        let report = InvocationReport {
            invocation: self.invocation,
            resolution: r,
            alpha: self.schedule.factor(r),
            duration: start.elapsed(),
            frontier_size: self.frontier(bounds, r).len(),
            plans_generated: self.stats.plans_generated - plans0,
            candidates_retrieved: self.stats.candidate_retrievals - cands0,
            pairs_generated: self.stats.pairs_generated - pairs0,
            result_insertions: self.stats.result_insertions - res0,
            candidate_insertions: self.stats.candidate_insertions - cins0,
            subsets_visited: self.stats.subsets_visited - subs0,
            splits_visited: self.stats.splits_visited - sv0,
            splits_skipped: self.stats.splits_skipped - ss0,
            used_delta: use_delta,
        };
        self.invocation += 1;
        self.last_ctx = Some((*bounds, r));
        report
    }

    /// The completed-plan tradeoffs `Res^Q[0..b, 0..r]` that `Visualize`
    /// would render (Algorithm 1 line 16).
    pub fn frontier(&self, bounds: &Bounds, r: usize) -> FrontierSnapshot {
        let mut points = Vec::new();
        if let Some(idx) = self
            .plan
            .full_set()
            .and_then(|id| self.states[id.index()].res.as_ref())
        {
            // Batched range scan: whole struct-of-arrays blocks per
            // callback on the cell grid, one-row batches elsewhere.
            // Selected rows arrive in `scan` order, so the snapshot is
            // bit-identical to the scalar visitor's.
            idx.scan_batch(bounds, r as u8, &mut |batch| {
                for j in batch.selected() {
                    points.push(FrontierPoint {
                        plan: batch.item(j),
                        cost: batch.cost(j),
                    });
                }
                false
            });
        }
        FrontierSnapshot::new(points)
    }

    /// Total result-set entries across all table sets (diagnostics).
    pub fn result_set_size(&self) -> usize {
        self.states
            .iter()
            .filter_map(|s| s.res.as_ref())
            .map(|i| i.len())
            .sum()
    }

    /// Total candidate-set entries across all table sets (diagnostics).
    pub fn candidate_set_size(&self) -> usize {
        self.states
            .iter()
            .filter_map(|s| s.cand.as_ref())
            .map(|i| i.len())
            .sum()
    }

    /// Generates and prunes all scan plans (Algorithm 1 lines 7-10).
    fn init_scans(&mut self, bounds: &Bounds, r: usize) {
        for pos in 0..self.spec.n_tables() {
            let q = self
                .plan
                .subset_id(moqo_query::TableSet::singleton(pos))
                .expect("singletons are always enumerated");
            for (op, cost, props) in self.model.scan_alternatives(&self.spec, pos) {
                let pid = self.arena.push_scan(op, pos, cost, props);
                self.stats.plans_generated += 1;
                if self.config.track_invariants {
                    *self
                        .stats
                        .plan_generations
                        .entry((op, u32::MAX, u32::MAX))
                        .or_insert(0) += 1;
                }
                self.prune(q, pid, bounds, r);
            }
        }
    }

    /// `Fresh` (Algorithm 3 lines 26-39) followed by pruning of each fresh
    /// plan, for one precomputed ordered split of `q`.
    ///
    /// The fast path never hashes: the split's watermark rectangle settles
    /// repeat pairs positionally, the subset's `last_res_insert` settles
    /// the empty-Δ case, and a rectangle equal to both list lengths skips
    /// the split without touching a single entry.
    fn combine_split(
        &mut self,
        q: SubsetId,
        split_pos: usize,
        bounds: &Bounds,
        r: usize,
        use_delta: bool,
    ) {
        let cur = self.invocation;
        let split = self.plan.splits()[split_pos];
        let (la, rb) = (split.left.index(), split.right.index());
        let na = self.states[la].active.len() as u32;
        let nb = self.states[rb].active.len() as u32;
        if na == 0 || nb == 0 {
            self.stats.splits_skipped += 1;
            return;
        }
        let wm = self.watermarks[split_pos];
        if wm.left == na && wm.right == nb {
            // The rectangle covers the whole cross product: nothing was
            // appended to either operand since the split last combined.
            self.stats.splits_skipped += 1;
            return;
        }
        if use_delta
            && self.states[la].last_res_insert != cur
            && self.states[rb].last_res_insert != cur
        {
            // Empty-Δ short-circuit (the paper's empty-operand check):
            // neither side received a result plan this invocation.
            self.stats.splits_skipped += 1;
            return;
        }

        // Operand views are collected once per subset per invocation (a
        // subset feeding S splits is filtered once, not S times): by the
        // time any split references it, its active list is final for this
        // invocation — phase-1 drains precede phase 2, and a split's
        // operands always carry a smaller dense id than its parent.
        self.refresh_operands(la, bounds, r, cur);
        self.refresh_operands(rb, bounds, r, cur);
        // Take the cached views out of `self` for the duration of the
        // pair loop (prune only ever touches `q`'s state, which is
        // disjoint from both operands); restored untouched below.
        let left = std::mem::take(&mut self.states[la].operands);
        let right = std::mem::take(&mut self.states[rb].operands);
        let restore = |s: &mut Self, left: Vec<Operand>, right: Vec<Operand>| {
            s.states[la].operands = left;
            s.states[rb].operands = right;
        };
        if left.is_empty() || right.is_empty() {
            self.stats.splits_skipped += 1;
            restore(self, left, right);
            return;
        }
        self.stats.splits_visited += 1;
        let hw = left.len() + right.len();
        if hw > self.stats.scratch_high_water {
            self.stats.scratch_high_water = hw;
        }
        let (clean_l, clean_r) = (
            self.states[la].operands_clean,
            self.states[rb].operands_clean,
        );

        // May the rectangle advance to (na, nb) after this pass? Every
        // pair below it must end up settled: `clean` guarantees excluded
        // entries are tombstones (never needed again), and under Δ
        // filtering the old×old block — skipped below — must already lie
        // inside the rectangle.
        let advance = if use_delta {
            let old_l = old_prefix(&self.states[la].active, cur);
            let old_r = old_prefix(&self.states[rb].active, cur);
            clean_l && clean_r && wm.left >= old_l && wm.right >= old_r
        } else {
            clean_l && clean_r
        };

        // Fresh operands form a suffix (append-only lists, invocation
        // order): under Δ filtering an old left operand pairs only with
        // that suffix, so the old×old block is never iterated at all —
        // the pass is O(Δ work), not O(cross product). Jumping to the
        // suffix preserves the lexicographic (left, right) combination
        // order of the full loop.
        let fresh_r = right.partition_point(|o| !o.fresh);
        let q1 = self.plan.tables(split.left);
        let q2 = self.plan.tables(split.right);
        for e1 in &left {
            let skip_to = if use_delta && !e1.fresh { fresh_r } else { 0 };
            for e2 in &right[skip_to..] {
                if use_delta {
                    // Δ rule: at least one side inserted this invocation.
                    // Sound without any lookup — a pair involving an entry
                    // appended now cannot have been combined before, and
                    // old×old pairs within bounds were combined in the
                    // monotone series that made `use_delta` true.
                    if !advance {
                        // The rectangle will not cover this pair: record
                        // it for future churn epochs.
                        self.pairs.mark(e1.plan.0, e2.plan.0);
                    }
                } else {
                    // Full recombine (churn epoch): rectangle first, hash
                    // for the remainder.
                    if e1.idx < wm.left && e2.idx < wm.right {
                        self.stats.pairs_skipped_watermark += 1;
                        continue;
                    }
                    let settled = if advance {
                        !self.pairs.is_fresh(e1.plan.0, e2.plan.0)
                    } else {
                        !self.pairs.mark(e1.plan.0, e2.plan.0)
                    };
                    if settled {
                        self.stats.stale_pairs_skipped += 1;
                        continue;
                    }
                }
                self.stats.pairs_generated += 1;
                if self.config.track_invariants {
                    *self
                        .stats
                        .pair_generations
                        .entry((e1.plan.0, e2.plan.0))
                        .or_insert(0) += 1;
                }
                let left_in = PlanInput {
                    tables: q1,
                    cost: e1.cost,
                    props: e1.props,
                };
                let right_in = PlanInput {
                    tables: q2,
                    cost: e2.cost,
                    props: e2.props,
                };
                for (op, cost, props) in self
                    .model
                    .join_alternatives(&self.spec, &left_in, &right_in)
                {
                    let pid = self.arena.push_join(op, e1.plan, e2.plan, cost, props);
                    self.stats.plans_generated += 1;
                    if self.config.track_invariants {
                        *self
                            .stats
                            .plan_generations
                            .entry((op, e1.plan.0, e2.plan.0))
                            .or_insert(0) += 1;
                    }
                    self.prune(q, pid, bounds, r);
                }
            }
        }
        if advance {
            self.watermarks[split_pos] = Watermark {
                left: na,
                right: nb,
            };
        }
        restore(self, left, right);
    }

    /// Refills subset `x`'s cached operand view if it is stale for the
    /// current invocation. The buffer is reused across invocations, so
    /// phase 2 performs no allocations in steady state.
    fn refresh_operands(&mut self, x: usize, bounds: &Bounds, r: usize, cur: u32) {
        let state = &mut self.states[x];
        if state.operands_inv == cur {
            return;
        }
        let mut buf = std::mem::take(&mut state.operands);
        buf.clear();
        state.operands_clean = collect_operands(&state.active, bounds, r, cur, &mut buf);
        state.operands = buf;
        state.operands_inv = cur;
    }

    /// `Prune` (Algorithm 3 lines 5-22): route a plan into the result set,
    /// the candidate set, or (at maximal resolution) discard it.
    fn prune(&mut self, q: SubsetId, plan: PlanId, bounds: &Bounds, r: usize) {
        let (cost, props) = {
            let node = self.arena.node(plan);
            (node.cost, node.props)
        };
        let alpha = self.schedule.factor(r);

        // Line 7: is there an alternative result plan (within bounds, at
        // resolution <= r, with compatible physical properties) that
        // approximately dominates the new plan? Any such plan has cost
        // dominated by `alpha * c(p)`, so the range query is narrowed to
        // the intersection of the user bounds with that region — this is
        // where the multi-dimensional cost index pays off (Section 4.1).
        // The scan tracks the *best* (smallest) domination factor so
        // eager re-indexing can skip resolution levels at which the same
        // witness would dominate again, and exits early once the minimum
        // reaches the decision threshold: without eager re-indexing the
        // first witness within `alpha` decides; with it, a witness within
        // the *target* factor means the plan is discarded at every
        // remaining level, so the exact minimum is irrelevant. Both the
        // batched (struct-of-arrays lane kernels) and the scalar visitor
        // path visit entries in the same order and compute bit-identical
        // factors, so the routing decision below never depends on which
        // one ran.
        let mut best_factor = f64::INFINITY;
        if let Some(idx) = self.states[q.index()].res.as_ref() {
            let dom_region = bounds.intersect(&Bounds::new(cost.scaled(alpha)));
            let arena = &self.arena;
            let eager = self.config.eager_level_skip;
            let threshold = if eager {
                self.schedule.target_factor()
            } else {
                alpha
            };
            let accept = &mut |item: PlanId| arena.node(item).props.satisfies(&props);
            let timer = self.config.time_pruning.then(Instant::now);
            let scan = if self.config.use_batch_kernels {
                idx.dominance_scan(&dom_region, r as u8, &cost, threshold, accept)
            } else {
                moqo_index::dominance_scan_scalar(
                    idx,
                    &dom_region,
                    r as u8,
                    &cost,
                    threshold,
                    accept,
                )
            };
            if let Some(t) = timer {
                self.stats.prune_nanos += t.elapsed().as_nanos() as u64;
            }
            self.stats.prune_comparisons += scan.comparisons;
            best_factor = scan.best_factor;
        }
        let dominated = best_factor <= alpha;

        if dominated {
            // Keep as candidate for finer resolutions (lines 9-12). With
            // eager re-indexing, jump straight to the first level whose
            // precision factor drops below the witness's domination
            // factor; the plan provably stays dominated by the same
            // witness at every level in between.
            let next_level = if self.config.eager_level_skip {
                ((r + 1)..=self.schedule.r_max()).find(|&r2| self.schedule.factor(r2) < best_factor)
            } else if r < self.schedule.r_max() {
                Some(r + 1)
            } else {
                None
            };
            match next_level {
                Some(level) => self.insert_candidate(q, plan, cost, level as u8),
                None => self.stats.candidates_discarded += 1,
            }
        } else if bounds.exceeds(&cost) {
            // Keep as candidate for different bounds (lines 13-16).
            self.insert_candidate(q, plan, cost, r as u8);
        } else {
            // Immediately relevant (lines 17-20).
            self.insert_result(q, plan, cost, r as u8);
        }
    }

    fn insert_result(&mut self, q: SubsetId, plan: PlanId, cost: CostVector, level: u8) {
        let dim = self.model.dim();
        let kind = self.config.index_kind;
        let invocation = self.invocation;
        let props = self.arena.node(plan).props;
        let shadow = self.config.shadow_dominated;
        let state = &mut self.states[q.index()];
        state
            .res
            .get_or_insert_with(|| DynIndex::new(kind, dim))
            .insert(Entry::new(plan, cost, level, invocation));
        if shadow {
            // Shadow plainly dominated, order-substitutable plans: they
            // stop combining but stay in the index as pruning witnesses,
            // and stay in the list as tombstones so positions are stable.
            for e in state.active.iter_mut() {
                if !e.shadowed && props.satisfies(&e.props) && cost.dominates(&e.cost) {
                    e.shadowed = true;
                }
            }
        }
        state.active.push(ActiveEntry {
            plan,
            cost,
            props,
            invocation,
            level,
            shadowed: false,
        });
        state.last_res_insert = invocation;
        self.stats.result_insertions += 1;
    }

    pub(crate) fn insert_candidate(
        &mut self,
        q: SubsetId,
        plan: PlanId,
        cost: CostVector,
        level: u8,
    ) {
        let dim = self.model.dim();
        let kind = self.config.index_kind;
        let invocation = self.invocation;
        self.states[q.index()]
            .cand
            .get_or_insert_with(|| DynIndex::new(kind, dim))
            .insert(Entry::new(plan, cost, level, invocation));
        self.stats.candidate_insertions += 1;
    }
}

/// Copies the live, in-context entries of an active list into `out`,
/// tagging each with its stable position and Δ-freshness. Returns `true`
/// if the list is *clean*: every non-tombstoned entry made it into `out`,
/// i.e. the excluded remainder is settled forever and a watermark may
/// advance across it.
fn collect_operands(
    active: &[ActiveEntry],
    bounds: &Bounds,
    r: usize,
    cur: u32,
    out: &mut Vec<Operand>,
) -> bool {
    let mut clean = true;
    for (i, e) in active.iter().enumerate() {
        if e.shadowed {
            continue;
        }
        if e.level as usize <= r && bounds.respects(&e.cost) {
            out.push(Operand {
                idx: i as u32,
                plan: e.plan,
                cost: e.cost,
                props: e.props,
                fresh: e.invocation == cur,
            });
        } else {
            clean = false;
        }
    }
    clean
}

/// Number of leading entries inserted before invocation `cur` (entries
/// are appended in invocation order, so the old block is a prefix).
fn old_prefix(active: &[ActiveEntry], cur: u32) -> u32 {
    active.partition_point(|e| e.invocation < cur) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_cost::coverage_factor;
    use moqo_costmodel::StandardCostModel;
    use moqo_query::testkit;

    fn schedule() -> ResolutionSchedule {
        ResolutionSchedule::linear(4, 1.05, 0.5)
    }

    #[test]
    fn single_invocation_produces_a_frontier() {
        let spec = Arc::new(testkit::chain_query(3, 100_000));
        let model = Arc::new(StandardCostModel::paper_metrics());
        let mut opt = IamaOptimizer::new(spec.clone(), model.clone(), schedule());
        let b = Bounds::unbounded(3);
        let report = opt.optimize(&b, 0);
        assert!(report.frontier_size > 0, "no complete plans found");
        assert!(report.plans_generated > 0);
        assert_eq!(report.resolution, 0);
        let frontier = opt.frontier(&b, 0);
        assert_eq!(frontier.len(), report.frontier_size);
        // Every frontier plan joins all tables.
        for p in &frontier.points {
            assert_eq!(opt.arena().tables(p.plan), spec.all_tables());
        }
    }

    #[test]
    fn refining_resolution_grows_the_frontier() {
        let spec = Arc::new(testkit::chain_query(3, 500_000));
        let model = Arc::new(StandardCostModel::paper_metrics());
        let mut opt = IamaOptimizer::new(spec.clone(), model.clone(), schedule());
        let b = Bounds::unbounded(3);
        let mut sizes = Vec::new();
        for r in 0..=opt.schedule().r_max() {
            opt.optimize(&b, r);
            sizes.push(opt.frontier(&b, r).len());
        }
        assert!(
            sizes.last().unwrap() >= sizes.first().unwrap(),
            "finer resolution should not shrink the frontier: {sizes:?}"
        );
    }

    #[test]
    fn run_invocation_follows_main_loop_resolution_rule() {
        let spec = Arc::new(testkit::chain_query(2, 100_000));
        let model = Arc::new(StandardCostModel::paper_metrics());
        let mut opt = IamaOptimizer::new(
            spec.clone(),
            model.clone(),
            ResolutionSchedule::linear(2, 1.05, 0.5),
        );
        let b = Bounds::unbounded(3);
        assert_eq!(opt.run_invocation(b).resolution, 0);
        assert_eq!(opt.run_invocation(b).resolution, 1);
        assert_eq!(opt.run_invocation(b).resolution, 2);
        // Saturates at rM.
        assert_eq!(opt.run_invocation(b).resolution, 2);
        // Bound change resets to 0.
        let tight = b.with_limit(0, 1e9);
        assert_eq!(opt.run_invocation(tight).resolution, 0);
    }

    #[test]
    fn incremental_invariants_hold_over_a_series() {
        let spec = Arc::new(testkit::chain_query(4, 200_000));
        let model = Arc::new(StandardCostModel::paper_metrics());
        let sched = schedule();
        let r_max = sched.r_max();
        let mut opt =
            IamaOptimizer::with_config(spec.clone(), model.clone(), sched, IamaConfig::tracked());
        let b = Bounds::unbounded(3);
        for r in 0..=r_max {
            opt.optimize(&b, r);
        }
        let stats = opt.stats();
        // Lemma 5: each plan generated at most once.
        assert!(
            stats.max_plan_generations() <= 1,
            "a plan was generated twice"
        );
        // Lemma 6: each ordered pair combined at most once.
        assert!(
            stats.max_pair_generations() <= 1,
            "a sub-plan pair was combined twice"
        );
        // Lemma 7: each plan retrieved at most rM + 1 times as candidate.
        assert!(
            stats.max_candidate_retrievals() as usize <= r_max + 1,
            "candidate retrieved too often: {}",
            stats.max_candidate_retrievals()
        );
    }

    #[test]
    fn repeated_invocations_at_max_resolution_do_no_work() {
        let spec = Arc::new(testkit::chain_query(3, 100_000));
        let model = Arc::new(StandardCostModel::paper_metrics());
        let mut opt = IamaOptimizer::new(spec.clone(), model.clone(), schedule());
        let b = Bounds::unbounded(3);
        for r in 0..=opt.schedule().r_max() {
            opt.optimize(&b, r);
        }
        let report = opt.optimize(&b, opt.schedule().r_max());
        assert_eq!(
            report.plans_generated, 0,
            "steady state must generate nothing"
        );
        assert_eq!(report.pairs_generated, 0);
        assert_eq!(report.candidates_retrieved, 0);
        // The watermarks settle every split without a single pair visit.
        assert_eq!(report.splits_visited, 0, "watermarks failed to settle");
    }

    #[test]
    fn steady_state_skips_splits_by_watermark_not_hash() {
        // The monotone regime must never populate the IsFresh fallback:
        // Lemma 6 is enforced purely by watermark position.
        let spec = Arc::new(testkit::chain_query(4, 150_000));
        let model = Arc::new(StandardCostModel::paper_metrics());
        let mut opt = IamaOptimizer::new(spec.clone(), model.clone(), schedule());
        let b = Bounds::unbounded(3);
        for r in 0..=opt.schedule().r_max() {
            opt.optimize(&b, r);
        }
        opt.optimize(&b, opt.schedule().r_max());
        assert!(
            opt.pairs.is_empty(),
            "monotone series must not touch the pair hash"
        );
        assert!(opt.stats().splits_skipped > 0);
    }

    #[test]
    fn frontier_respects_bounds() {
        let spec = Arc::new(testkit::chain_query(3, 200_000));
        let model = Arc::new(StandardCostModel::paper_metrics());
        let mut opt = IamaOptimizer::new(spec.clone(), model.clone(), schedule());
        let unb = Bounds::unbounded(3);
        let r_max = opt.schedule().r_max();
        for r in 0..=r_max {
            opt.optimize(&unb, r);
        }
        let full = opt.frontier(&unb, r_max);
        assert!(!full.is_empty());
        // Constrain time to the median frontier time: fewer plans visible,
        // all within bounds.
        let mut times: Vec<f64> = full.points.iter().map(|p| p.cost[0]).collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = times[times.len() / 2];
        let bounded = Bounds::unbounded(3).with_limit(0, median);
        let shown = opt.frontier(&bounded, r_max);
        assert!(shown.len() <= full.len());
        assert!(shown.points.iter().all(|p| bounded.respects(&p.cost)));
    }

    #[test]
    fn bound_change_reuses_candidates_not_regeneration() {
        let spec = Arc::new(testkit::chain_query(3, 200_000));
        let model = Arc::new(StandardCostModel::paper_metrics());
        let mut opt = IamaOptimizer::with_config(
            spec.clone(),
            model.clone(),
            schedule(),
            IamaConfig::tracked(),
        );
        // Start with tight time bounds.
        let r_max = opt.schedule().r_max();
        let unb = Bounds::unbounded(3);
        opt.optimize(&unb, 0);
        let t_min = opt
            .frontier(&unb, 0)
            .min_by_metric(0)
            .map(|p| p.cost[0])
            .unwrap();
        let tight = Bounds::unbounded(3).with_limit(0, t_min * 1.5);
        for r in 0..=r_max {
            opt.optimize(&tight, r);
        }
        let plans_before = opt.stats().plans_generated;
        // Loosen the bounds: candidates stored as out-of-bounds re-enter.
        for r in 0..=r_max {
            opt.optimize(&unb, r);
        }
        let stats = opt.stats();
        assert!(
            stats.max_plan_generations() <= 1,
            "bound change caused plan regeneration"
        );
        assert!(stats.max_pair_generations() <= 1);
        // New plans may be generated (pairs that were never within tight
        // bounds), but the frontier must now be at least as large.
        assert!(stats.plans_generated >= plans_before);
        assert!(!opt.frontier(&unb, r_max).is_empty());
    }

    #[test]
    fn final_result_is_within_alpha_n_of_level_specific_runs() {
        // Coverage sanity: running all levels and querying at rM covers
        // the coarse frontier within the coarse factor.
        let spec = Arc::new(testkit::chain_query(3, 100_000));
        let model = Arc::new(StandardCostModel::paper_metrics());
        let sched = schedule();
        let r_max = sched.r_max();
        let mut opt = IamaOptimizer::new(spec.clone(), model.clone(), sched);
        let b = Bounds::unbounded(3);
        let mut coarse_costs = Vec::new();
        for r in 0..=r_max {
            opt.optimize(&b, r);
            if r == 0 {
                coarse_costs = opt.frontier(&b, 0).costs();
            }
        }
        let fine = opt.frontier(&b, r_max).costs();
        // The fine frontier must cover the coarse one at factor 1 (coarse
        // plans remain result plans — nothing is ever discarded).
        assert!(coverage_factor(&fine, &coarse_costs) <= 1.0 + 1e-9);
    }

    #[test]
    fn single_table_query_works() {
        let spec = Arc::new(testkit::chain_query(1, 100_000));
        let model = Arc::new(StandardCostModel::paper_metrics());
        let mut opt = IamaOptimizer::new(spec.clone(), model.clone(), schedule());
        let b = Bounds::unbounded(3);
        let report = opt.optimize(&b, 0);
        assert!(report.frontier_size >= 1);
        assert_eq!(report.pairs_generated, 0);
    }

    #[test]
    fn shared_plan_reuse_across_similar_queries() {
        // One enumeration plan drives two structurally identical queries
        // with different statistics — the cross-session sharing shape.
        let a = Arc::new(testkit::chain_query(4, 100_000));
        let z = Arc::new(testkit::chain_query(4, 7_777));
        let model = Arc::new(StandardCostModel::paper_metrics());
        let plan = Arc::new(EnumerationPlan::build(&a.graph, false));
        let b = Bounds::unbounded(3);
        for spec in [a, z] {
            let mut opt = IamaOptimizer::with_plan(
                spec,
                model.clone(),
                schedule(),
                IamaConfig::default(),
                Arc::clone(&plan),
            );
            let report = opt.optimize(&b, 0);
            assert!(report.frontier_size > 0);
        }
        assert_eq!(Arc::strong_count(&plan), 1, "optimizers dropped the plan");
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn rejects_mismatched_enumeration_plan() {
        let chain = Arc::new(testkit::chain_query(3, 1000));
        let star = testkit::star_query(3, 1000);
        let model = Arc::new(StandardCostModel::paper_metrics());
        let wrong = Arc::new(EnumerationPlan::build(&star.graph, false));
        IamaOptimizer::with_plan(chain, model, schedule(), IamaConfig::default(), wrong);
    }

    #[test]
    fn disconnected_query_yields_empty_frontier_without_cross_products() {
        use moqo_catalog::CatalogBuilder;
        let mut cb = CatalogBuilder::new();
        let t0 = cb.add_table("iso_a", 1000, 50, vec![]);
        let t1 = cb.add_table("iso_b", 2000, 50, vec![]);
        let g = moqo_query::JoinGraph::new(vec![t0, t1]);
        let spec = Arc::new(QuerySpec::new("disconnected", g, Arc::new(cb.build())));
        let model = Arc::new(StandardCostModel::paper_metrics());
        let b = Bounds::unbounded(3);
        let mut opt = IamaOptimizer::new(spec.clone(), model.clone(), schedule());
        let report = opt.optimize(&b, 0);
        assert_eq!(report.frontier_size, 0);
        assert_eq!(report.pairs_generated, 0);
        // With cross products allowed the same query completes.
        let mut cp = IamaOptimizer::with_config(
            spec,
            model,
            schedule(),
            IamaConfig {
                allow_cross_products: true,
                ..IamaConfig::default()
            },
        );
        assert!(cp.optimize(&b, 0).frontier_size > 0);
    }

    #[test]
    #[should_panic(expected = "exceeds rM")]
    fn rejects_out_of_schedule_resolution() {
        let spec = Arc::new(testkit::chain_query(2, 1000));
        let model = Arc::new(StandardCostModel::paper_metrics());
        let mut opt = IamaOptimizer::new(
            spec.clone(),
            model.clone(),
            ResolutionSchedule::linear(1, 1.1, 0.5),
        );
        opt.optimize(&Bounds::unbounded(3), 5);
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn rejects_mismatched_bounds_dimension() {
        let spec = Arc::new(testkit::chain_query(2, 1000));
        let model = Arc::new(StandardCostModel::paper_metrics());
        let mut opt = IamaOptimizer::new(spec.clone(), model.clone(), schedule());
        opt.optimize(&Bounds::unbounded(2), 0);
    }
}
