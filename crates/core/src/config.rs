//! Optimizer configuration.

use moqo_index::IndexKind;

/// Tunables of [`crate::IamaOptimizer`].
#[derive(Clone, Debug)]
pub struct IamaConfig {
    /// Which (cost, resolution) index implementation backs the result and
    /// candidate sets (ablation: `CellGrid` is the paper's suggestion,
    /// `Linear` the naive baseline).
    pub index_kind: IndexKind,
    /// Enable Δ-set filtering in `Fresh`: when an invocation series allows
    /// it, only combine sub-plan pairs involving a plan inserted in the
    /// current invocation. Disabling falls back to `ΔS = S` always — every
    /// invocation re-walks the full cross products, with duplicate pairs
    /// suppressed positionally by the per-split watermark rectangles and,
    /// for pairs combined during churn epochs, by the `IsFresh` hash
    /// fallback; used by the `ablation-delta` benchmark.
    pub use_delta: bool,
    /// Consider cross-product joins even when the join graph connects the
    /// two operands nowhere. Off by default (Postgres behaviour).
    pub allow_cross_products: bool,
    /// Track per-plan/per-pair generation and retrieval counts so tests
    /// can verify Lemmas 5–7. Small constant overhead per operation.
    pub track_invariants: bool,
    /// Eager candidate re-indexing: when a plan is approximately dominated
    /// at resolution `r`, compute the *first* level whose precision factor
    /// falls below the best dominator's domination factor and register the
    /// candidate directly there (or discard it if even `alpha_rM` keeps it
    /// dominated). The paper re-indexes dominated candidates at `r + 1`
    /// and re-examines them once per level (Lemma 7's `rM + 1` bound);
    /// skipping levels strengthens the same idea — "the knowledge gained
    /// in the current invocation ... is not lost" — and preserves the
    /// Theorem 1/2 guarantees because the dominating witness stays in the
    /// result set forever. Disable for strict pseudo-code behaviour (the
    /// `ablation-requeue` benchmark compares both).
    pub eager_level_skip: bool,
    /// Shadow strictly-dominated result plans: when a new result plan
    /// plainly dominates an existing one (and can substitute for it
    /// order-wise), the old plan stops participating in *future* sub-plan
    /// combinations. The paper keeps dominated result plans combinable
    /// because "discarding a result plan would require to discard at the
    /// same time all plans that use it as sub-plan" — but with an
    /// append-only arena nothing needs physical removal: the shadowed
    /// plan's node, its index entry (it remains a valid pruning witness),
    /// and all plans built on it stay intact. Every coverage witness the
    /// Theorem 1/2 induction needs re-routes through the dominating plan,
    /// so the approximation guarantee is unaffected (the integration tests
    /// verify it in both modes). Without shadowing, synthetic cost spaces
    /// inflate result sets several-fold, which quadratically inflates pair
    /// generation (the `ablation-shadow` benchmark quantifies this).
    pub shadow_dominated: bool,
    /// Run the pruning witness search through the index's batched
    /// struct-of-arrays kernels (`PlanIndex::dominance_scan`): the cell
    /// grid evaluates bounds-respect and domination factors over whole
    /// 64-row lane blocks instead of one `dyn` visitor call per entry.
    /// Decision-equivalent to the scalar path — identical frontiers, bit
    /// for bit; only the `prune_comparisons` accounting granularity
    /// differs — so this is a pure speed knob (`repro pruning` measures
    /// it). Disabling forces the scalar visitor scan on every index
    /// kind; the linear/kd-tree kinds use the scalar path either way.
    ///
    /// Not serialized in snapshots: both settings produce byte-identical
    /// exported state, so imported optimizers simply use the default.
    pub use_batch_kernels: bool,
    /// Accumulate the wall-clock nanoseconds spent in the pruning
    /// witness search into `OptimizerStats::prune_nanos`. Off by
    /// default: two clock reads per generated plan are measurable
    /// against sub-microsecond scans. `repro pruning` switches it on to
    /// report the prune-path share of invocation time. Not serialized
    /// in snapshots (pure diagnostics).
    pub time_pruning: bool,
    /// Upper bound on warm-start **seed** candidates (rebased or
    /// transplanted plans, see [`crate::IamaOptimizer::rebase_from`] and
    /// [`crate::IamaOptimizer::import_subset`]) admitted into the
    /// candidate sets per invocation. Seeds beyond the cap wait in a
    /// plain pending queue — already replayed and re-costed, but not yet
    /// indexed — and are admitted in FIFO order at the start of later
    /// invocations, amortizing the drain of a very warm donor across the
    /// refinement ladder instead of paying it all in the first
    /// invocation's candidate phase. Seeding is an accelerant, never a
    /// correctness input, so deferral (or even loss, when a session ends
    /// before its queue empties) cannot weaken Theorem 2: native
    /// enumeration still covers every plan. The default is generous
    /// enough that typical donors are admitted in one slice; not
    /// serialized in snapshots (imports run with the default).
    pub max_seeds_per_slice: usize,
}

impl Default for IamaConfig {
    fn default() -> Self {
        Self {
            index_kind: IndexKind::CellGrid,
            use_delta: true,
            allow_cross_products: false,
            track_invariants: false,
            eager_level_skip: true,
            shadow_dominated: true,
            use_batch_kernels: true,
            time_pruning: false,
            max_seeds_per_slice: 4096,
        }
    }
}

impl IamaConfig {
    /// Default configuration with invariant tracking enabled (for tests).
    pub fn tracked() -> Self {
        Self {
            track_invariants: true,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_the_paper() {
        let c = IamaConfig::default();
        assert_eq!(c.index_kind, IndexKind::CellGrid);
        assert!(c.use_delta);
        assert!(!c.allow_cross_products);
        assert!(!c.track_invariants);
        assert!(c.eager_level_skip);
        assert!(c.shadow_dominated);
        assert!(c.use_batch_kernels);
        assert!(!c.time_pruning);
        assert_eq!(c.max_seeds_per_slice, 4096);
        assert!(IamaConfig::tracked().track_invariants);
    }
}
