//! Engine serving demo: many simultaneous interactive sessions on one
//! worker pool, plus a warm-frontier cache hit for a repeated query.
//!
//! ```text
//! cargo run --release --example engine_serving
//! ```
//!
//! Twelve users "connect" at once — TPC-H analysts and synthetic ad-hoc
//! queries — and every session's anytime frontier refines concurrently
//! under round-robin time slicing. One user then drags their time bound,
//! another re-runs a query someone already finished (served straight from
//! the cached frontier: zero plans generated), and a third picks a plan.

use moqo::prelude::*;
use moqo::viz::TextTable;
use std::sync::Arc;
use std::time::Duration;

const IDLE: Duration = Duration::from_secs(120);

fn main() {
    let model = Arc::new(StandardCostModel::paper_metrics());
    let schedule = ResolutionSchedule::linear(5, 1.02, 0.4);
    let manager = SessionManager::new(
        model.clone(),
        schedule,
        EngineConfig {
            workers: 4,
            ..EngineConfig::default()
        },
    );

    // --- 12 concurrent sessions: a mixed serving workload. ---
    let mut specs: Vec<Arc<QuerySpec>> = Vec::new();
    for name in ["q03", "q05", "q07", "q09", "q10"] {
        specs.push(Arc::new(
            moqo::tpch::query_block(name, 0.01).expect("tpch block"),
        ));
    }
    for n in 2..=5 {
        specs.push(Arc::new(moqo::query::testkit::chain_query(n, 50_000)));
    }
    specs.push(Arc::new(moqo::query::testkit::star_query(4, 150_000)));
    specs.push(Arc::new(moqo::query::testkit::random_query(4, 7)));
    specs.push(Arc::new(moqo::query::testkit::random_query(5, 11)));
    assert!(specs.len() >= 8, "demo needs at least 8 sessions");

    let ids: Vec<SessionId> = specs.iter().map(|s| manager.submit(s.clone())).collect();
    println!(
        "submitted {} concurrent sessions to a 4-worker pool...",
        ids.len()
    );
    assert!(manager.wait_idle(IDLE), "engine did not drain");

    let mut table = TextTable::new(vec![
        "session",
        "query",
        "warm",
        "invocations",
        "frontier",
        "last invocation",
    ]);
    for &id in &ids {
        let s = manager.status(id).expect("live session");
        table.row(vec![
            s.id.to_string(),
            s.query.clone(),
            if s.warm_start { "yes" } else { "no" }.to_string(),
            s.invocations.to_string(),
            s.frontier.len().to_string(),
            format!(
                "{:.2} ms",
                s.last_report.as_ref().map_or(0.0, |r| r.seconds() * 1e3)
            ),
        ]);
    }
    println!("{}", table.render());

    // --- User interaction 1: drag a time bound on session 1. ---
    let s0 = manager.status(ids[0]).unwrap();
    let t_anchor = s0.frontier.min_by_metric(0).unwrap().cost[0];
    let tight = Bounds::unbounded(model.dim()).with_limit(0, t_anchor * 3.0);
    manager
        .command(ids[0], SessionCommand::SetBounds(tight))
        .expect("live session");
    assert!(manager.wait_idle(IDLE));
    let s0b = manager.status(ids[0]).unwrap();
    println!(
        "session {}: dragged time bound to {:.1} -> frontier {} -> {} plans (all within bounds)",
        s0b.id,
        t_anchor * 3.0,
        s0.frontier.len(),
        s0b.frontier.len(),
    );

    // --- User interaction 2: pick a plan; the session retires. ---
    let pick = manager
        .frontier(ids[1])
        .unwrap()
        .min_by_metric(0)
        .unwrap()
        .plan;
    manager
        .command(ids[1], SessionCommand::SelectPlan(pick))
        .expect("live session");
    assert!(manager.wait_idle(IDLE));
    println!(
        "session {}: user selected plan {:?}; optimizer parked in the frontier cache",
        ids[1], pick
    );

    // --- Repeated query: a new session over q03 starts warm. ---
    manager.finish(ids[0]).unwrap();
    let mut rerun = moqo::tpch::query_block("q03", 0.01).expect("q03");
    rerun.name = "q03-rerun-by-another-user".into();
    let warm_id = manager.submit(Arc::new(rerun));
    assert!(manager.wait_idle(IDLE));
    let warm = manager.status(warm_id).unwrap();
    let first = warm.first_report.as_ref().unwrap();
    println!(
        "repeated query '{}': warm_start={} first-invocation plans_generated={} frontier={}",
        warm.query,
        warm.warm_start,
        first.plans_generated,
        warm.frontier.len()
    );
    assert!(warm.warm_start);
    assert_eq!(
        first.plans_generated, 0,
        "warm start must not rebuild plans"
    );

    let stats = manager.cache_stats();
    println!(
        "cache: {} hits, {} misses, {} parked optimizers",
        stats.hits, stats.misses, stats.entries
    );
}
