//! Recursive-descent parser for the SQL subset.

use crate::ast::{ColumnRef, Comparison, Condition, Literal, SelectStatement, TableRef};
use crate::lexer::{tokenize, LexError, Token};
use std::fmt;

/// A parse error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Description of what went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.to_string(),
        }
    }
}

/// Parses a `SELECT` statement.
pub fn parse_select(sql: &str) -> Result<SelectStatement, ParseError> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.select()?;
    if p.pos != p.tokens.len() {
        return Err(p.error(format!(
            "trailing input starting at {}",
            p.peek().map(|t| t.to_string()).unwrap_or_default()
        )));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

const KEYWORDS: &[&str] = &["select", "from", "where", "and", "in", "exists", "as"];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.iter().any(|k| s.eq_ignore_ascii_case(k))
}

impl Parser {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(self.error(format!(
                "expected {kw}, found {}",
                other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) if !is_keyword(&s) => Ok(s),
            other => Err(self.error(format!(
                "expected identifier, found {}",
                other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    /// `alias.column`
    fn column_ref(&mut self) -> Result<ColumnRef, ParseError> {
        let table = self.ident()?;
        match self.next() {
            Some(Token::Dot) => {}
            other => {
                return Err(self.error(format!(
                    "expected '.' after alias {table:?}, found {}",
                    other
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "end of input".into())
                )))
            }
        }
        let column = self.ident()?;
        Ok(ColumnRef { table, column })
    }

    fn select(&mut self) -> Result<SelectStatement, ParseError> {
        self.expect_keyword("select")?;
        // Projections: `*` or a comma list of column refs.
        let mut projections = Vec::new();
        if matches!(self.peek(), Some(Token::Star)) {
            self.next();
        } else {
            loop {
                projections.push(self.column_ref()?);
                if matches!(self.peek(), Some(Token::Comma)) {
                    self.next();
                } else {
                    break;
                }
            }
        }
        self.expect_keyword("from")?;
        // FROM list: `table [AS] alias?` comma-separated.
        let mut from = Vec::new();
        loop {
            let table = self.ident()?;
            if self.peek_keyword("as") {
                self.next();
            }
            let alias = match self.peek() {
                Some(Token::Ident(s)) if !is_keyword(s) => {
                    let a = s.clone();
                    self.next();
                    a
                }
                _ => table.clone(),
            };
            from.push(TableRef { table, alias });
            if matches!(self.peek(), Some(Token::Comma)) {
                self.next();
            } else {
                break;
            }
        }
        // Optional WHERE with AND-connected conjuncts.
        let mut conditions = Vec::new();
        if self.peek_keyword("where") {
            self.next();
            loop {
                conditions.push(self.condition()?);
                if self.peek_keyword("and") {
                    self.next();
                } else {
                    break;
                }
            }
        }
        Ok(SelectStatement {
            projections,
            from,
            conditions,
        })
    }

    fn condition(&mut self) -> Result<Condition, ParseError> {
        // EXISTS (SELECT …)
        if self.peek_keyword("exists") {
            self.next();
            self.expect_token(Token::LParen)?;
            let sub = self.select()?;
            self.expect_token(Token::RParen)?;
            return Ok(Condition::Exists(Box::new(sub)));
        }
        let left = self.column_ref()?;
        // col IN (SELECT …)
        if self.peek_keyword("in") {
            self.next();
            self.expect_token(Token::LParen)?;
            let sub = self.select()?;
            self.expect_token(Token::RParen)?;
            return Ok(Condition::InSubquery(left, Box::new(sub)));
        }
        let op = match self.next() {
            Some(Token::Eq) => Comparison::Eq,
            Some(Token::Neq) => Comparison::Neq,
            Some(Token::Lt) => Comparison::Lt,
            Some(Token::Le) => Comparison::Le,
            Some(Token::Gt) => Comparison::Gt,
            Some(Token::Ge) => Comparison::Ge,
            other => {
                return Err(self.error(format!(
                    "expected comparison operator, found {}",
                    other
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "end of input".into())
                )))
            }
        };
        // Right side: column (join predicate, only for `=`) or literal.
        match self.peek().cloned() {
            Some(Token::Number(n)) => {
                self.next();
                Ok(Condition::Filter(left, op, Literal::Number(n)))
            }
            Some(Token::String(s)) => {
                self.next();
                Ok(Condition::Filter(left, op, Literal::String(s)))
            }
            Some(Token::Ident(_)) => {
                let right = self.column_ref()?;
                if op != Comparison::Eq {
                    return Err(
                        self.error("only equality join predicates between columns are supported")
                    );
                }
                Ok(Condition::Join(left, right))
            }
            other => Err(self.error(format!(
                "expected literal or column after operator, found {}",
                other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    fn expect_token(&mut self, expected: Token) -> Result<(), ParseError> {
        match self.next() {
            Some(t) if t == expected => Ok(()),
            other => Err(self.error(format!(
                "expected {expected}, found {}",
                other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into())
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_three_way_join() {
        let stmt = parse_select(
            "SELECT c.name FROM customer c, orders o, lineitem l \
             WHERE c.custkey = o.custkey AND o.orderkey = l.orderkey \
             AND c.segment = 'BUILDING' AND o.total > 1000",
        )
        .unwrap();
        assert_eq!(stmt.from.len(), 3);
        assert_eq!(stmt.conditions.len(), 4);
        assert!(matches!(stmt.conditions[0], Condition::Join(..)));
        assert!(matches!(stmt.conditions[2], Condition::Filter(..)));
        assert_eq!(stmt.projections.len(), 1);
    }

    #[test]
    fn parses_select_star_and_default_alias() {
        let stmt = parse_select("SELECT * FROM orders").unwrap();
        assert!(stmt.projections.is_empty());
        assert_eq!(stmt.from[0].alias, "orders");
        assert!(stmt.conditions.is_empty());
    }

    #[test]
    fn parses_as_alias() {
        let stmt = parse_select("SELECT o.x FROM orders AS o").unwrap();
        assert_eq!(stmt.from[0].alias, "o");
    }

    #[test]
    fn parses_nested_in_subquery() {
        let stmt = parse_select(
            "SELECT o.k FROM orders o WHERE o.k IN \
             (SELECT l.orderkey FROM lineitem l WHERE l.qty > 300)",
        )
        .unwrap();
        assert_eq!(stmt.subqueries().len(), 1);
        let sub = stmt.subqueries()[0];
        assert_eq!(sub.from[0].table, "lineitem");
        assert_eq!(sub.conditions.len(), 1);
    }

    #[test]
    fn parses_exists_subquery() {
        let stmt = parse_select(
            "SELECT o.k FROM orders o WHERE EXISTS \
             (SELECT l.k FROM lineitem l WHERE l.orderkey = o.orderkey)",
        )
        .unwrap();
        assert!(matches!(stmt.conditions[0], Condition::Exists(_)));
    }

    #[test]
    fn deeply_nested_subqueries() {
        let stmt = parse_select(
            "SELECT a.x FROM t1 a WHERE a.x IN (SELECT b.y FROM t2 b \
             WHERE b.z IN (SELECT c.w FROM t3 c))",
        )
        .unwrap();
        let sub = stmt.subqueries()[0];
        assert_eq!(sub.subqueries().len(), 1);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_select("").is_err());
        assert!(parse_select("SELECT FROM t").is_err());
        assert!(parse_select("SELECT a.x FROM").is_err());
        assert!(parse_select("SELECT a.x FROM t a WHERE").is_err());
        assert!(parse_select("SELECT a.x FROM t a WHERE a.x").is_err());
        assert!(parse_select("SELECT a.x FROM t a extra junk").is_err());
        // Non-equality column-column predicates are unsupported.
        assert!(parse_select("SELECT a.x FROM t a, u b WHERE a.x < b.y").is_err());
        // Unqualified columns are rejected (aliases are mandatory).
        assert!(parse_select("SELECT x FROM t").is_err());
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let stmt = parse_select("select o.x from orders o where o.x = 1 AND o.y <= 2").unwrap();
        assert_eq!(stmt.conditions.len(), 2);
    }
}
