//! # moqo — Multi-Objective Query Optimization
//!
//! A from-scratch Rust reproduction of *"An Incremental Anytime Algorithm
//! for Multi-Objective Query Optimization"* (Trummer & Koch, SIGMOD 2015).
//!
//! This facade crate re-exports every subsystem of the workspace so that
//! examples and downstream users can depend on a single crate:
//!
//! * [`cost`] — cost vectors, dominance, Pareto utilities, resolution
//!   schedules;
//! * [`catalog`] — tables, columns, statistics;
//! * [`tpch`] — the TPC-H schema and the join graphs of its queries;
//! * [`query`] — join graphs, predicates, selectivity estimation;
//! * [`sql`] — a minimal SQL front-end with Selinger-style decomposition
//!   of nested statements into optimizable query blocks;
//! * [`plan`] — the plan arena, scan/join operators, physical properties;
//! * [`costmodel`] — PONO-compliant multi-metric cost models;
//! * [`index`] — plan-set indexes with (cost, resolution) range queries;
//! * [`core`] — the IAMA incremental anytime optimizer itself;
//! * [`engine`] — the concurrent multi-session serving layer: session
//!   manager, worker pool, and the warm-frontier cache;
//! * [`serve`] — the sharded, admission-controlled serving front:
//!   fingerprint-hash shard routing, bounded admission (reject / queue /
//!   degrade), per-ticket channels, frontier persistence across
//!   restarts, and the TCP network front (`NetServer` / `NetClient`);
//! * [`wire`] — the versioned, length-prefixed binary wire format the
//!   network front speaks: handshake, frames, and message envelopes over
//!   the validated per-type codecs of `moqo_core::wire`;
//! * [`fleet`] — cross-process shard placement: a deterministic
//!   rendezvous-hash `Placement` over named nodes, the `FleetRouter`
//!   control plane (health probes, death detection, warm-state
//!   rebalancing over `PullFrontier`/`PushFrontier`), and the
//!   placement-routed `FleetClient` with failover;
//! * [`baselines`] — memoryless, one-shot, exhaustive, and single-objective
//!   reference optimizers;
//! * [`viz`] — ASCII rendering of cost frontiers.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` (single query) and
//! `examples/engine_serving.rs` (many concurrent sessions); in short:
//!
//! ```
//! use moqo::prelude::*;
//! use std::sync::Arc;
//!
//! // A 3-table chain query over a synthetic catalog. The optimizer owns
//! // its inputs behind `Arc`s so sessions can move across threads.
//! let spec = Arc::new(moqo::query::testkit::chain_query(3, 10_000));
//! let model = Arc::new(moqo::costmodel::StandardCostModel::paper_metrics());
//! let bounds = Bounds::unbounded(model.dim());
//! let schedule = ResolutionSchedule::linear(5, 1.05, 0.5);
//! let mut opt = IamaOptimizer::new(spec, model, schedule);
//! let report = opt.run_invocation(bounds);
//! assert!(report.frontier_size > 0);
//! ```

pub use moqo_baselines as baselines;
pub use moqo_catalog as catalog;
pub use moqo_core as core;
pub use moqo_cost as cost;
pub use moqo_costmodel as costmodel;
pub use moqo_engine as engine;
pub use moqo_fleet as fleet;
pub use moqo_index as index;
pub use moqo_plan as plan;
pub use moqo_query as query;
pub use moqo_serve as serve;
pub use moqo_sql as sql;
pub use moqo_tpch as tpch;
pub use moqo_viz as viz;
pub use moqo_wire as wire;

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use moqo_core::{
        AdmissionResponse, FrontierDelta, IamaOptimizer, InvocationReport, Preference,
        ProtocolError, Session, SessionCommand, SessionEvent, SessionOutcome, SessionRequest,
        SessionView,
    };
    pub use moqo_cost::{Bounds, CostVector, ResolutionSchedule};
    pub use moqo_costmodel::{CostModel, SharedCostModel, StandardCostModel};
    pub use moqo_engine::{
        EngineConfig, ModelRegistry, QueryFingerprint, SessionId, SessionManager,
    };
    pub use moqo_fleet::{FleetClient, FleetNode, FleetNodeConfig, FleetRouter, Placement};
    pub use moqo_query::QuerySpec;
    pub use moqo_serve::{
        AdmissionConfig, AdmissionPolicy, MoqoServer, NetClient, NetConfig, NetServer, ServeConfig,
        ShardConfig, ShardedEngine, SnapshotStore, Ticket, TicketStatus,
    };
}
