//! Synthetic query generators for tests, examples, and benchmarks.
//!
//! Each generator builds a fresh catalog plus join graph, so callers don't
//! have to wire statistics by hand. Cardinalities and selectivities are
//! chosen to produce non-trivial Pareto frontiers (cheap-but-imprecise vs.
//! expensive-but-exact plan alternatives).

use crate::graph::JoinGraph;
use crate::spec::QuerySpec;
use moqo_catalog::CatalogBuilder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A chain query `t0 ⋈ t1 ⋈ … ⋈ t{n-1}` with edges only between
/// neighbours. `base_card` sets the cardinality of the largest table;
/// tables alternate between `base_card` and `base_card / 10`.
pub fn chain_query(n: usize, base_card: u64) -> QuerySpec {
    assert!(n >= 1);
    let mut b = CatalogBuilder::new();
    let mut ids = Vec::with_capacity(n);
    for i in 0..n {
        let card = if i % 2 == 0 {
            base_card
        } else {
            base_card / 10
        }
        .max(10);
        ids.push(b.add_table(format!("chain_t{i}"), card, 100, vec![]));
    }
    let mut g = JoinGraph::new(ids);
    for i in 0..n.saturating_sub(1) {
        // Selectivity that keeps intermediate results comparable in size
        // to the inputs (FK-join-like).
        g.add_edge(i, i + 1, 1.0 / base_card as f64);
    }
    QuerySpec::new(format!("chain-{n}"), g, Arc::new(b.build()))
}

/// The same query under refreshed table statistics: every cardinality is
/// scaled by `factor` (floored at 10 rows) while names, row widths,
/// columns, local filters, and join selectivities stay untouched — the
/// "hourly stats refresh" twin of a spec, used to exercise frontier
/// **rebasing** (same cardinality-blind identity, different exact
/// fingerprint).
pub fn drift_cardinalities(spec: &QuerySpec, factor: f64) -> QuerySpec {
    let mut b = CatalogBuilder::new();
    let mut ids = Vec::with_capacity(spec.graph.n_tables());
    for pos in 0..spec.graph.n_tables() {
        let t = spec.catalog.table(spec.graph.tables[pos]);
        let card = ((t.cardinality as f64 * factor) as u64).max(10);
        ids.push(b.add_table(t.name.clone(), card, t.row_width, t.columns.clone()));
    }
    let mut g = JoinGraph::new(ids);
    for e in &spec.graph.edges {
        g.add_edge(e.left, e.right, e.selectivity);
    }
    for (pos, &f) in spec.graph.filters.iter().enumerate() {
        g.set_filter(pos, f);
    }
    QuerySpec::new(spec.name.clone(), g, Arc::new(b.build()))
}

/// A star query: a large fact table at position 0 joined to `n - 1`
/// dimension tables.
pub fn star_query(n: usize, fact_card: u64) -> QuerySpec {
    assert!(n >= 1);
    let mut b = CatalogBuilder::new();
    let mut ids = Vec::with_capacity(n);
    ids.push(b.add_table("star_fact", fact_card, 200, vec![]));
    for i in 1..n {
        let dim_card = (fact_card / 100).max(10) * i as u64;
        ids.push(b.add_table(format!("star_dim{i}"), dim_card, 80, vec![]));
    }
    let mut g = JoinGraph::new(ids);
    for i in 1..n {
        let dim_card = (fact_card / 100).max(10) * i as u64;
        g.add_edge(0, i, 1.0 / dim_card as f64);
    }
    QuerySpec::new(format!("star-{n}"), g, Arc::new(b.build()))
}

/// A cycle query: `t0 ⋈ t1 ⋈ … ⋈ t{n-1}` with neighbour edges plus a
/// closing edge between `t{n-1}` and `t0` (requires `n >= 3`; smaller `n`
/// degenerates to a chain). Cycles exercise enumeration beyond chains —
/// every rotation of the ring is a connected subset — without the `O(3^n)`
/// blow-up of cliques.
pub fn cycle_query(n: usize, base_card: u64) -> QuerySpec {
    assert!(n >= 1);
    let mut spec = chain_query(n, base_card);
    if n >= 3 {
        spec.graph.add_edge(n - 1, 0, 1.0 / base_card as f64);
    }
    spec.name = format!("cycle-{n}");
    spec
}

/// A clique query: every pair of tables is connected.
pub fn clique_query(n: usize, base_card: u64) -> QuerySpec {
    assert!(n >= 1);
    let mut b = CatalogBuilder::new();
    let mut ids = Vec::with_capacity(n);
    for i in 0..n {
        ids.push(b.add_table(
            format!("clique_t{i}"),
            base_card * (i as u64 + 1),
            100,
            vec![],
        ));
    }
    let mut g = JoinGraph::new(ids);
    for i in 0..n {
        for j in (i + 1)..n {
            g.add_edge(i, j, 1.0 / (base_card as f64 * (j as f64 + 1.0)));
        }
    }
    QuerySpec::new(format!("clique-{n}"), g, Arc::new(b.build()))
}

/// A random connected query: a random spanning tree plus extra random
/// edges, with log-uniform cardinalities and selectivities. Deterministic
/// for a given seed.
pub fn random_query(n: usize, seed: u64) -> QuerySpec {
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CatalogBuilder::new();
    let mut ids = Vec::with_capacity(n);
    for i in 0..n {
        // Cardinalities from 100 to 10^6, log-uniform.
        let exp: f64 = rng.gen_range(2.0..6.0);
        let card = 10f64.powf(exp) as u64;
        ids.push(b.add_table(
            format!("rand{seed}_t{i}"),
            card,
            rng.gen_range(40..240),
            vec![],
        ));
    }
    let mut g = JoinGraph::new(ids);
    // Random spanning tree: connect each table i >= 1 to a random earlier one.
    for i in 1..n {
        let j = rng.gen_range(0..i);
        let sel = 10f64.powf(rng.gen_range(-6.0..-1.0));
        g.add_edge(i, j, sel);
    }
    // A few extra edges for denser graphs.
    let extra = n / 3;
    for _ in 0..extra {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i != j
            && !g
                .edges
                .iter()
                .any(|e| e.left == i.min(j) && e.right == i.max(j))
        {
            let sel = 10f64.powf(rng.gen_range(-6.0..-1.0));
            g.add_edge(i, j, sel);
        }
    }
    // Random local filters on some tables.
    for i in 0..n {
        if rng.gen_bool(0.3) {
            g.set_filter(i, rng.gen_range(0.05..1.0));
        }
    }
    QuerySpec::new(format!("random-{n}-{seed}"), g, Arc::new(b.build()))
}

/// The two-table query `R ⋈ S` from the paper's Example 3.
pub fn example3_query() -> QuerySpec {
    let mut b = CatalogBuilder::new();
    let r = b.add_table("R", 100_000, 100, vec![]);
    let s = b.add_table("S", 20_000, 60, vec![]);
    let mut g = JoinGraph::new(vec![r, s]);
    g.add_edge(0, 1, 1.0 / 20_000.0);
    QuerySpec::new("example3", g, Arc::new(b.build()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_shape() {
        let q = chain_query(5, 10_000);
        assert_eq!(q.n_tables(), 5);
        assert_eq!(q.graph.edges.len(), 4);
        assert!(q.graph.is_connected());
    }

    #[test]
    fn star_shape() {
        let q = star_query(4, 1_000_000);
        assert_eq!(q.graph.edges.len(), 3);
        assert!(q.graph.edges.iter().all(|e| e.left == 0));
        assert!(q.graph.is_connected());
    }

    #[test]
    fn cycle_shape() {
        let q = cycle_query(5, 10_000);
        assert_eq!(q.graph.edges.len(), 5);
        assert!(q.graph.is_connected());
        assert_eq!(q.name, "cycle-5");
        // Degenerate sizes fall back to chains.
        assert_eq!(cycle_query(2, 100).graph.edges.len(), 1);
        assert_eq!(cycle_query(1, 100).graph.edges.len(), 0);
    }

    #[test]
    fn clique_shape() {
        let q = clique_query(4, 1000);
        assert_eq!(q.graph.edges.len(), 6);
        assert!(q.graph.is_connected());
    }

    #[test]
    fn random_queries_are_connected_and_deterministic() {
        for seed in 0..10 {
            let q = random_query(6, seed);
            assert!(q.graph.is_connected(), "seed {seed} disconnected");
            let q2 = random_query(6, seed);
            assert_eq!(q.graph.edges.len(), q2.graph.edges.len());
            for (a, b) in q.graph.edges.iter().zip(&q2.graph.edges) {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn single_table_queries_work() {
        assert_eq!(chain_query(1, 100).n_tables(), 1);
        assert_eq!(random_query(1, 7).graph.edges.len(), 0);
    }

    #[test]
    fn example3_matches_paper_setup() {
        let q = example3_query();
        assert_eq!(q.n_tables(), 2);
        assert_eq!(q.name, "example3");
    }
}
