//! Canonical query fingerprints.
//!
//! Two interactive sessions over "the same" query should share optimizer
//! state: a user re-running yesterday's dashboard query must not pay for
//! plan generation from resolution 0 again. The fingerprint captures
//! exactly the inputs the optimizer's plan sets depend on —
//!
//! * the **join-graph shape**: table count, join edges with their
//!   selectivities, and per-table local-filter selectivities;
//! * the **catalog statistics** of the referenced tables: cardinality and
//!   row width (what the cost formulas consume);
//! * the **cost model**: its metric layout *and* its
//!   [identity](moqo_costmodel::CostModel::identity) — two sessions over
//!   one query under differently parameterized models produce different
//!   frontiers, so their warm state must never cross —
//!
//! and deliberately ignores presentation-level identity such as the query
//! or table *names*: `chain-3` submitted twice under different labels is
//! one cache entry.

use moqo_costmodel::CostModel;
use moqo_query::{QuerySpec, ShapeKey, TableSet};

/// A 64-bit canonical fingerprint of (query shape, catalog stats, cost
/// model).
///
/// Computed with FNV-1a over a canonical byte encoding; collisions are
/// astronomically unlikely at serving-cache sizes, and a collision's worst
/// case is a warm start from an unrelated frontier — costs are recomputed
/// per plan, never trusted across specs, so results stay correct only if
/// the specs really were equivalent; treat the fingerprint as an equality
/// proxy for *equivalent* specs, which is how [`crate::FrontierCache`]
/// uses it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryFingerprint(u64);

impl QueryFingerprint {
    /// Fingerprints a query spec under a cost model (metric layout plus
    /// model identity).
    pub fn of<M: CostModel + ?Sized>(spec: &QuerySpec, model: &M) -> Self {
        let metrics = model.metrics();
        let mut h = moqo_cost::Fnv64::new();
        let g = &spec.graph;
        h.u64(g.n_tables() as u64);
        for pos in 0..g.n_tables() {
            let table = spec.catalog.table(g.tables[pos]);
            h.u64(table.cardinality);
            h.u64(table.row_width as u64);
            h.u64(g.filters[pos].to_bits());
        }
        // Edges in canonical order (JoinEdge::new normalizes left < right).
        let mut edges: Vec<(usize, usize, u64)> = g
            .edges
            .iter()
            .map(|e| (e.left, e.right, e.selectivity.to_bits()))
            .collect();
        edges.sort_unstable();
        for (l, r, sel) in edges {
            h.u64(l as u64);
            h.u64(r as u64);
            h.u64(sel);
        }
        for i in 0..metrics.dim() {
            h.str(metrics.metric(i).name());
        }
        h.u64(model.identity());
        Self(h.finish())
    }

    /// The raw 64-bit value (diagnostics, logging, sharding).
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Reconstructs a fingerprint from its raw value (wire transport,
    /// snapshot file names). Only meaningful for values produced by
    /// [`QueryFingerprint::as_u64`]; an arbitrary value simply never
    /// matches any cached entry.
    pub const fn from_u64(v: u64) -> Self {
        Self(v)
    }
}

/// A cardinality-blind variant of [`QueryFingerprint`]: everything the
/// full fingerprint hashes *except* the per-table cardinalities.
///
/// Two specs share a `RebaseKey` exactly when they differ only in catalog
/// cardinalities — the hourly-stats-refresh near miss. A parked frontier
/// whose `RebaseKey` matches a cold submission is a **rebase donor**: its
/// plans can be re-admitted as level-0 candidates under the new stats
/// (re-costed at the door), which by Lemma 7 is cheaper than regenerating
/// them from scratch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RebaseKey(u64);

impl RebaseKey {
    /// Computes the cardinality-blind key of a spec under a cost model.
    pub fn of<M: CostModel + ?Sized>(spec: &QuerySpec, model: &M) -> Self {
        let metrics = model.metrics();
        let mut h = moqo_cost::Fnv64::new();
        let g = &spec.graph;
        h.u64(g.n_tables() as u64);
        for pos in 0..g.n_tables() {
            let table = spec.catalog.table(g.tables[pos]);
            // Cardinality deliberately excluded: that is the drift the
            // rebase absorbs. Row widths and filters still discriminate.
            h.u64(table.row_width as u64);
            h.u64(g.filters[pos].to_bits());
        }
        let mut edges: Vec<(usize, usize, u64)> = g
            .edges
            .iter()
            .map(|e| (e.left, e.right, e.selectivity.to_bits()))
            .collect();
        edges.sort_unstable();
        for (l, r, sel) in edges {
            h.u64(l as u64);
            h.u64(r as u64);
            h.u64(sel);
        }
        for i in 0..metrics.dim() {
            h.str(metrics.metric(i).name());
        }
        h.u64(model.identity());
        Self(h.finish())
    }

    /// The raw 64-bit value (diagnostics, logging).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// Canonical fingerprint of one connected table subset's warm state: the
/// induced sub-shape (via [`ShapeKey::of_subset`], position independent),
/// the induced catalog statistics and join selectivities in local index
/// order, the metric layout, and the cost-model identity.
///
/// Two *different* queries whose induced subgraphs agree on all of the
/// above hash equal here, so a sub-frontier exported from one can seed
/// the other — the key of [`crate::SubFrontierCache`]. The exported blob
/// itself re-validates the statistics on import, so a hash collision can
/// never transplant wrong state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubsetFingerprint(u64);

impl SubsetFingerprint {
    /// Fingerprints the subset `tables` of a spec under a cost model.
    pub fn of<M: CostModel + ?Sized>(spec: &QuerySpec, tables: TableSet, model: &M) -> Self {
        let metrics = model.metrics();
        let g = &spec.graph;
        let mut h = moqo_cost::Fnv64::new();
        // Sub-shape, relabeled to local indices (the cross-product policy
        // is plan-sharing vocabulary, not state identity: fix it to the
        // default so both policies share sub-frontiers).
        h.u64(ShapeKey::of_subset(g, tables, false).as_u64());
        let mut local = vec![u8::MAX; g.n_tables()];
        for (k, pos) in tables.iter().enumerate() {
            local[pos] = k as u8;
            let table = spec.catalog.table(g.tables[pos]);
            h.u64(table.cardinality);
            h.u64(table.row_width as u64);
            h.u64(g.filters[pos].to_bits());
        }
        let mut edges: Vec<(u8, u8, u64)> = g
            .edges
            .iter()
            .filter(|e| tables.contains(e.left) && tables.contains(e.right))
            .map(|e| (local[e.left], local[e.right], e.selectivity.to_bits()))
            .collect();
        edges.sort_unstable();
        for (l, r, sel) in edges {
            h.u64(l as u64);
            h.u64(r as u64);
            h.u64(sel);
        }
        for i in 0..metrics.dim() {
            h.str(metrics.metric(i).name());
        }
        h.u64(model.identity());
        Self(h.finish())
    }

    /// The raw 64-bit value (diagnostics, logging).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_costmodel::{MetricSet, StandardCostModel, StandardCostModelConfig};
    use moqo_query::testkit;

    fn model() -> StandardCostModel {
        StandardCostModel::paper_metrics()
    }

    #[test]
    fn equivalent_specs_share_a_fingerprint_despite_names() {
        let m = model();
        let a = testkit::chain_query(3, 100_000);
        let b = testkit::chain_query(3, 100_000);
        // testkit names tables identically, but even a renamed spec matches:
        // fingerprints ignore the spec's display name entirely.
        let mut c = testkit::chain_query(3, 100_000);
        c.name = "totally-different-label".into();
        assert_eq!(QueryFingerprint::of(&a, &m), QueryFingerprint::of(&b, &m));
        assert_eq!(QueryFingerprint::of(&a, &m), QueryFingerprint::of(&c, &m));
    }

    #[test]
    fn shape_stats_metrics_and_model_identity_all_discriminate() {
        let m = model();
        let base = QueryFingerprint::of(&testkit::chain_query(3, 100_000), &m);
        // Different join-graph shape.
        assert_ne!(
            base,
            QueryFingerprint::of(&testkit::star_query(3, 100_000), &m)
        );
        // Different catalog stats.
        assert_ne!(
            base,
            QueryFingerprint::of(&testkit::chain_query(3, 200_000), &m)
        );
        // Different metric set.
        let cloud = StandardCostModel::new(MetricSet::cloud(), StandardCostModelConfig::default());
        assert_ne!(
            base,
            QueryFingerprint::of(&testkit::chain_query(3, 100_000), &cloud)
        );
        // Same metric layout, different cost parameters: the model
        // identity keeps warm state from crossing models.
        let tweaked = StandardCostModel::new(
            MetricSet::paper(),
            StandardCostModelConfig {
                dops: vec![1, 2],
                ..StandardCostModelConfig::default()
            },
        );
        assert_ne!(
            base,
            QueryFingerprint::of(&testkit::chain_query(3, 100_000), &tweaked)
        );
    }

    #[test]
    fn subset_fingerprints_cross_query_boundaries() {
        // testkit chains share their prefix: the first 3 tables and 2
        // edges of chain(5) are identical to chain(3). A subset
        // fingerprint is position-relabeled and induced-stat keyed, so
        // the {0, 1, 2} subset of the larger query hashes equal to the
        // full set of the smaller one — the hit that lets a sub-frontier
        // harvested from one query seed the other.
        let m = model();
        let small = testkit::chain_query(3, 100_000);
        let large = testkit::chain_query(5, 100_000);
        let prefix = TableSet::from_positions(0..3);
        assert_eq!(
            SubsetFingerprint::of(&small, small.all_tables(), &m),
            SubsetFingerprint::of(&large, prefix, &m),
        );
        // Drifted cardinalities miss (that near-miss is RebaseKey's job).
        let drifted = testkit::chain_query(5, 120_000);
        assert_ne!(
            SubsetFingerprint::of(&large, prefix, &m),
            SubsetFingerprint::of(&drifted, prefix, &m),
        );
        // Different induced shape misses.
        assert_ne!(
            SubsetFingerprint::of(&large, prefix, &m),
            SubsetFingerprint::of(&large, TableSet::from_positions(0..4), &m),
        );
    }

    #[test]
    fn rebase_key_is_blind_to_cardinality_and_nothing_else() {
        let m = model();
        let spec = testkit::chain_query(3, 100_000);
        let base = RebaseKey::of(&spec, &m);
        // The hourly stats refresh: same shape, new cardinalities. (The
        // exact fingerprint diverges on the same pair, of course.)
        let drifted = testkit::drift_cardinalities(&spec, 2.5);
        assert_eq!(base, RebaseKey::of(&drifted, &m));
        assert_ne!(
            QueryFingerprint::of(&spec, &m),
            QueryFingerprint::of(&drifted, &m)
        );
        // Changed selectivities (chain_query derives them from the base
        // cardinality) or shapes still discriminate.
        assert_ne!(base, RebaseKey::of(&testkit::chain_query(3, 250_000), &m));
        assert_ne!(base, RebaseKey::of(&testkit::star_query(3, 100_000), &m));
        assert_ne!(base, RebaseKey::of(&testkit::chain_query(4, 100_000), &m));
        // So does the model identity.
        let tweaked = StandardCostModel::new(
            MetricSet::paper(),
            StandardCostModelConfig {
                dops: vec![1, 2],
                ..StandardCostModelConfig::default()
            },
        );
        assert_ne!(
            base,
            RebaseKey::of(&testkit::chain_query(3, 100_000), &tweaked)
        );
    }
}
