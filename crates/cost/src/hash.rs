//! The workspace's one FNV-1a accumulator.
//!
//! Canonical identities all over the stack — query fingerprints, cost
//! model identities, snapshot dirty-tracking content hashes — are FNV-1a
//! over explicit byte encodings. They live in different crates but must
//! agree on the algorithm's constants forever, so the accumulator is
//! defined once here (the bottom of the crate graph) instead of being
//! re-rolled per layer. No `std::hash::Hasher` indirection: the encoding
//! stays explicit and stable.

/// Incremental FNV-1a (64-bit) accumulator.
#[derive(Clone, Debug)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// The standard FNV-1a offset basis.
    pub fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    /// Feeds one byte.
    #[inline]
    pub fn byte(&mut self, b: u8) {
        self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }

    /// Feeds a byte slice (no length delimiter; see [`Fnv64::str`]).
    pub fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.byte(b);
        }
    }

    /// Feeds a `u64` in little-endian byte order.
    pub fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Feeds a string with a trailing length delimiter, so
    /// `"ab" + "c"` hashes differently from `"a" + "bc"`.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
        self.u64(s.len() as u64);
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }

    /// One-shot hash of a byte blob.
    pub fn hash_bytes(bytes: &[u8]) -> u64 {
        let mut h = Self::new();
        h.bytes(bytes);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_reference_vectors() {
        // Classic FNV-1a test vectors.
        assert_eq!(Fnv64::new().finish(), 0xcbf2_9ce4_8422_2325);
        assert_eq!(Fnv64::hash_bytes(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(Fnv64::hash_bytes(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn str_is_length_delimited() {
        let mut a = Fnv64::new();
        a.str("ab");
        a.str("c");
        let mut b = Fnv64::new();
        b.str("a");
        b.str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
