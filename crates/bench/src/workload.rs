//! Shared experiment configuration.

use moqo_cost::ResolutionSchedule;
use moqo_costmodel::{MetricSet, StandardCostModel, StandardCostModelConfig};

/// A tiny deterministic xorshift generator so benchmark inputs are
/// reproducible without external crates in library code. Shared by the
/// pruning grid builder and the traffic-replay/churn experiments.
pub struct XorShift(u64);

impl XorShift {
    /// Seeds the generator (`seed | 1`, so zero seeds still cycle).
    pub fn new(seed: u64) -> Self {
        Self(seed | 1)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The cost model used for figure reproduction: the paper's three metrics
/// (time, cores, error) over the full operator space, with Postgres-style
/// fuzzy cost granularity (1 % multiplicative grid, cf. Postgres's
/// `STD_FUZZ_FACTOR`) so that Pareto sets saturate at fine resolutions the
/// way real optimizer cost spaces do.
pub fn bench_model() -> StandardCostModel {
    StandardCostModel::new(
        MetricSet::paper(),
        StandardCostModelConfig {
            quantize_grid: Some(1.02),
            dops: vec![1, 4],
            sampling_rates_pm: vec![500],
            eval_spin: 400,
            ..StandardCostModelConfig::default()
        },
    )
}

/// A reduced operator space (fewer parallel degrees and sampling rates)
/// for experiments that need an exhaustive ground truth.
pub fn bench_model_small() -> StandardCostModel {
    StandardCostModel::new(
        MetricSet::paper(),
        StandardCostModelConfig {
            dops: vec![1, 4],
            sampling_rates_pm: vec![100, 500],
            ..StandardCostModelConfig::default()
        },
    )
}

/// Parameters of one figure-reproduction run.
#[derive(Clone, Debug)]
pub struct ExperimentSetup {
    /// TPC-H scale factor.
    pub sf: f64,
    /// Target precision `alpha_T`.
    pub alpha_t: f64,
    /// Precision step `alpha_S`.
    pub alpha_s: f64,
    /// Numbers of resolution levels to compare (the paper uses 1, 5, 20).
    pub level_counts: Vec<usize>,
}

impl ExperimentSetup {
    /// Figure 3 setup: moderate target precision.
    pub fn fig3() -> Self {
        Self {
            sf: 1.0,
            alpha_t: 1.01,
            alpha_s: 0.05,
            level_counts: vec![1, 5, 20],
        }
    }

    /// Figure 4/5 setup: fine target precision.
    pub fn fig4() -> Self {
        Self {
            sf: 1.0,
            alpha_t: 1.005,
            alpha_s: 0.5,
            level_counts: vec![1, 5, 20],
        }
    }

    /// The schedule for a given number of resolution levels.
    pub fn schedule(&self, levels: usize) -> ResolutionSchedule {
        assert!(levels >= 1);
        ResolutionSchedule::linear(levels - 1, self.alpha_t, self.alpha_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_setups_match_the_paper() {
        let f3 = ExperimentSetup::fig3();
        assert_eq!(f3.alpha_t, 1.01);
        assert_eq!(f3.alpha_s, 0.05);
        let f4 = ExperimentSetup::fig4();
        assert_eq!(f4.alpha_t, 1.005);
        assert_eq!(f4.alpha_s, 0.5);
        assert_eq!(f3.level_counts, vec![1, 5, 20]);
    }

    #[test]
    fn schedule_has_requested_levels() {
        let s = ExperimentSetup::fig3().schedule(5);
        assert_eq!(s.levels(), 5);
        assert!((s.target_factor() - 1.01).abs() < 1e-12);
        let one = ExperimentSetup::fig3().schedule(1);
        assert_eq!(one.levels(), 1);
    }
}
