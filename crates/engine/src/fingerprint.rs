//! Canonical query fingerprints.
//!
//! Two interactive sessions over "the same" query should share optimizer
//! state: a user re-running yesterday's dashboard query must not pay for
//! plan generation from resolution 0 again. The fingerprint captures
//! exactly the inputs the optimizer's plan sets depend on —
//!
//! * the **join-graph shape**: table count, join edges with their
//!   selectivities, and per-table local-filter selectivities;
//! * the **catalog statistics** of the referenced tables: cardinality and
//!   row width (what the cost formulas consume);
//! * the **metric set**: the cost-vector layout the frontier lives in —
//!
//! and deliberately ignores presentation-level identity such as the query
//! or table *names*: `chain-3` submitted twice under different labels is
//! one cache entry.

use moqo_costmodel::MetricSet;
use moqo_query::QuerySpec;

/// A 64-bit canonical fingerprint of (query shape, catalog stats, metrics).
///
/// Computed with FNV-1a over a canonical byte encoding; collisions are
/// astronomically unlikely at serving-cache sizes, and a collision's worst
/// case is a warm start from an unrelated frontier — costs are recomputed
/// per plan, never trusted across specs, so results stay correct only if
/// the specs really were equivalent; treat the fingerprint as an equality
/// proxy for *equivalent* specs, which is how [`crate::FrontierCache`]
/// uses it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryFingerprint(u64);

impl QueryFingerprint {
    /// Fingerprints a query spec under a metric layout.
    pub fn of(spec: &QuerySpec, metrics: &MetricSet) -> Self {
        let mut h = Fnv::new();
        let g = &spec.graph;
        h.u64(g.n_tables() as u64);
        for pos in 0..g.n_tables() {
            let table = spec.catalog.table(g.tables[pos]);
            h.u64(table.cardinality);
            h.u64(table.row_width as u64);
            h.u64(g.filters[pos].to_bits());
        }
        // Edges in canonical order (JoinEdge::new normalizes left < right).
        let mut edges: Vec<(usize, usize, u64)> = g
            .edges
            .iter()
            .map(|e| (e.left, e.right, e.selectivity.to_bits()))
            .collect();
        edges.sort_unstable();
        for (l, r, sel) in edges {
            h.u64(l as u64);
            h.u64(r as u64);
            h.u64(sel);
        }
        for i in 0..metrics.dim() {
            h.str(metrics.metric(i).name());
        }
        Self(h.finish())
    }

    /// The raw 64-bit value (diagnostics, logging, sharding).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// Minimal FNV-1a accumulator (no `std::hash::Hasher` indirection so the
/// encoding stays explicit and stable).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    fn byte(&mut self, b: u8) {
        self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    fn str(&mut self, s: &str) {
        for b in s.bytes() {
            self.byte(b);
        }
        // Length delimiter so "ab"+"c" != "a"+"bc".
        self.u64(s.len() as u64);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_query::testkit;

    #[test]
    fn equivalent_specs_share_a_fingerprint_despite_names() {
        let metrics = MetricSet::paper();
        let a = testkit::chain_query(3, 100_000);
        let b = testkit::chain_query(3, 100_000);
        // testkit names tables identically, but even a renamed spec matches:
        // fingerprints ignore the spec's display name entirely.
        let mut c = testkit::chain_query(3, 100_000);
        c.name = "totally-different-label".into();
        assert_eq!(
            QueryFingerprint::of(&a, &metrics),
            QueryFingerprint::of(&b, &metrics)
        );
        assert_eq!(
            QueryFingerprint::of(&a, &metrics),
            QueryFingerprint::of(&c, &metrics)
        );
    }

    #[test]
    fn shape_stats_and_metrics_all_discriminate() {
        let metrics = MetricSet::paper();
        let base = QueryFingerprint::of(&testkit::chain_query(3, 100_000), &metrics);
        // Different join-graph shape.
        assert_ne!(
            base,
            QueryFingerprint::of(&testkit::star_query(3, 100_000), &metrics)
        );
        // Different catalog stats.
        assert_ne!(
            base,
            QueryFingerprint::of(&testkit::chain_query(3, 200_000), &metrics)
        );
        // Different metric set.
        assert_ne!(
            base,
            QueryFingerprint::of(&testkit::chain_query(3, 100_000), &MetricSet::cloud())
        );
    }
}
