//! Query specifications: a join graph bound to a catalog, with cardinality
//! estimation for arbitrary table subsets.

use crate::graph::JoinGraph;
use crate::tableset::TableSet;
use moqo_catalog::Catalog;
use std::sync::Arc;

/// A query ready for optimization: join graph plus catalog.
///
/// Cardinality estimation follows the classical System-R model: the
/// cardinality of joining a table set `q` is the product of the (filtered)
/// base cardinalities times the selectivities of all join edges inside `q`.
/// This makes intermediate-result estimates independent of the join order,
/// which is what dynamic programming over table *sets* requires.
#[derive(Clone, Debug)]
pub struct QuerySpec {
    /// Human-readable name (e.g. `"tpch-q5"` or `"chain-4"`).
    pub name: String,
    /// The join graph.
    pub graph: JoinGraph,
    /// The catalog the graph's tables refer to.
    pub catalog: Arc<Catalog>,
}

impl QuerySpec {
    /// Binds a join graph to a catalog.
    ///
    /// # Panics
    /// Panics if a graph table references a missing catalog table.
    pub fn new(name: impl Into<String>, graph: JoinGraph, catalog: Arc<Catalog>) -> Self {
        for tid in &graph.tables {
            assert!(
                tid.index() < catalog.len(),
                "join graph references table {tid:?} outside the catalog"
            );
        }
        Self {
            name: name.into(),
            graph,
            catalog,
        }
    }

    /// Number of tables (the paper's `n`).
    #[inline]
    pub fn n_tables(&self) -> usize {
        self.graph.n_tables()
    }

    /// The set of all table positions.
    #[inline]
    pub fn all_tables(&self) -> TableSet {
        self.graph.all_tables()
    }

    /// Effective cardinality of the base table at `pos` after local filters.
    pub fn base_cardinality(&self, pos: usize) -> f64 {
        let table = self.catalog.table(self.graph.tables[pos]);
        (table.cardinality as f64 * self.graph.filters[pos]).max(1.0)
    }

    /// Row width (bytes) of the base table at `pos`.
    pub fn base_row_width(&self, pos: usize) -> f64 {
        self.catalog.table(self.graph.tables[pos]).row_width as f64
    }

    /// Unfiltered cardinality of the base table at `pos` (what a scan must
    /// read before filtering).
    pub fn raw_cardinality(&self, pos: usize) -> f64 {
        self.catalog.table(self.graph.tables[pos]).cardinality as f64
    }

    /// Estimated cardinality of the join of all tables in `set`.
    ///
    /// Product of filtered base cardinalities times the selectivities of
    /// the join edges inside `set`; at least 1 row.
    pub fn cardinality(&self, set: TableSet) -> f64 {
        let mut card: f64 = 1.0;
        for pos in set.iter() {
            card *= self.base_cardinality(pos);
        }
        for e in &self.graph.edges {
            if e.within(set) {
                card *= e.selectivity;
            }
        }
        card.max(1.0)
    }

    /// True if joining `a` and `b` would be a cross product.
    #[inline]
    pub fn is_cross_product(&self, a: TableSet, b: TableSet) -> bool {
        !self.graph.connected(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_catalog::{CatalogBuilder, TableId};

    fn spec() -> QuerySpec {
        let catalog = Arc::new(
            CatalogBuilder::new()
                .table("a", 1000, 100, vec![])
                .table("b", 500, 50, vec![])
                .table("c", 2000, 80, vec![])
                .build(),
        );
        let mut g = JoinGraph::new(vec![TableId(0), TableId(1), TableId(2)]);
        g.add_edge(0, 1, 0.01).add_edge(1, 2, 0.001);
        g.set_filter(0, 0.5);
        QuerySpec::new("test", g, catalog)
    }

    #[test]
    fn base_cardinalities_apply_filters() {
        let s = spec();
        assert_eq!(s.base_cardinality(0), 500.0); // 1000 * 0.5
        assert_eq!(s.base_cardinality(1), 500.0);
        assert_eq!(s.raw_cardinality(0), 1000.0); // filter not applied
    }

    #[test]
    fn join_cardinality_is_order_independent() {
        let s = spec();
        let all = s.all_tables();
        // 500 * 500 * 2000 * 0.01 * 0.001 = 5000
        assert!((s.cardinality(all) - 5000.0).abs() < 1e-9);
        // Subset without internal edges: plain product.
        let ac = TableSet::from_positions([0, 2]);
        assert!((s.cardinality(ac) - 500.0 * 2000.0).abs() < 1e-9);
    }

    #[test]
    fn cardinality_never_below_one() {
        let s = spec();
        // Very selective subset still reports >= 1 row.
        let mut g = s.graph.clone();
        g.add_edge(0, 2, 1e-30);
        let tiny = QuerySpec::new("tiny", g, s.catalog.clone());
        assert!(tiny.cardinality(tiny.all_tables()) >= 1.0);
    }

    #[test]
    fn cross_product_detection() {
        let s = spec();
        assert!(s.is_cross_product(TableSet::singleton(0), TableSet::singleton(2)));
        assert!(!s.is_cross_product(TableSet::singleton(0), TableSet::singleton(1)));
    }

    #[test]
    #[should_panic(expected = "outside the catalog")]
    fn rejects_dangling_table_reference() {
        let catalog = Arc::new(CatalogBuilder::new().table("a", 1, 1, vec![]).build());
        let g = JoinGraph::new(vec![TableId(5)]);
        QuerySpec::new("bad", g, catalog);
    }
}
