//! End-to-end interactive-session tests (Algorithm 1 over real workloads,
//! spoken in the session protocol) plus property-based cross-checks of
//! the whole stack.

use moqo::core::{IamaOptimizer, Session, SessionCommand, SessionView};
use moqo::cost::{Bounds, ResolutionSchedule};
use moqo::costmodel::{CostModel, MetricSet, StandardCostModel, StandardCostModelConfig};
use moqo::query::testkit;
use proptest::prelude::*;
use std::sync::Arc;

fn model() -> Arc<StandardCostModel> {
    Arc::new(StandardCostModel::new(
        MetricSet::paper(),
        StandardCostModelConfig {
            dops: vec![1, 4],
            sampling_rates_pm: vec![500],
            eval_spin: 0,
            ..StandardCostModelConfig::default()
        },
    ))
}

#[test]
fn session_on_tpch_refines_then_selects() {
    let model = model();
    let spec = Arc::new(moqo::tpch::query_block("q05", 0.01).expect("q05"));
    let schedule = ResolutionSchedule::linear(6, 1.02, 0.4);
    let optimizer = IamaOptimizer::new(spec.clone(), model.clone(), schedule);
    let mut session = Session::new(optimizer);
    let mut sizes = Vec::new();
    for _ in 0..7 {
        session.apply(SessionCommand::Refine).expect("live session");
        sizes.push(session.frontier().len());
    }
    // The visualized set never shrinks during pure refinement.
    assert!(sizes.windows(2).all(|w| w[0] <= w[1]), "sizes {sizes:?}");
    let choice = session.frontier().min_by_metric(0).unwrap().plan;
    let fin = session
        .apply(SessionCommand::SelectPlan(choice))
        .expect("live session");
    assert_eq!(fin.outcome.and_then(|o| o.selected()), Some(choice));
}

#[test]
fn bound_dragging_focuses_the_frontier() {
    let model = model();
    let spec = Arc::new(moqo::tpch::query_block("q09", 0.01).expect("q09"));
    let schedule = ResolutionSchedule::linear(8, 1.02, 0.4);
    let optimizer = IamaOptimizer::new(spec.clone(), model.clone(), schedule);
    let mut session = Session::new(optimizer);
    // Refine, then constrain cores to 1 (serial plans only).
    for _ in 0..4 {
        session.apply(SessionCommand::Refine).expect("live session");
    }
    let serial = Bounds::unbounded(model.dim()).with_limit(1, 1.0);
    session
        .apply(SessionCommand::SetBounds(serial))
        .expect("live session");
    for _ in 0..4 {
        session.apply(SessionCommand::Refine).expect("live session");
    }
    let frontier = session.frontier();
    assert!(!frontier.is_empty(), "no serial plans found");
    assert!(
        frontier.points.iter().all(|p| p.cost[1] <= 1.0),
        "frontier leaked parallel plans past the bound"
    );
}

#[test]
fn two_metric_cloud_session_works() {
    let model = Arc::new(StandardCostModel::new(
        MetricSet::cloud(),
        StandardCostModelConfig {
            eval_spin: 0,
            ..StandardCostModelConfig::default()
        },
    ));
    let spec = Arc::new(testkit::example3_query());
    let schedule = ResolutionSchedule::linear(5, 1.05, 0.5);
    let optimizer = IamaOptimizer::new(spec.clone(), model.clone(), schedule);
    let mut session = Session::new(optimizer);
    let reports = session.run_uninterrupted(6);
    assert_eq!(reports.len(), 6);
    assert!(reports.iter().all(|r| r.frontier_size >= 1));
}

#[test]
fn five_metric_optimization_works() {
    // The paper's class of metrics extends beyond three; exercise l = 5.
    let model = Arc::new(StandardCostModel::new(
        MetricSet::all(),
        StandardCostModelConfig {
            dops: vec![1, 4],
            sampling_rates_pm: vec![500],
            eval_spin: 0,
            ..StandardCostModelConfig::default()
        },
    ));
    let spec = Arc::new(testkit::chain_query(3, 100_000));
    let schedule = ResolutionSchedule::linear(3, 1.05, 0.5);
    let mut opt = IamaOptimizer::new(spec.clone(), model.clone(), schedule.clone());
    let b = Bounds::unbounded(model.dim());
    for r in 0..=schedule.r_max() {
        let rep = opt.optimize(&b, r);
        assert!(rep.frontier_size >= 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random command sequences (refine / set random bound / reset) never
    /// break the session, the frontier's bound discipline, or the
    /// delta-stream reassembly invariant.
    #[test]
    fn random_command_sequences_are_safe(
        seed in 0u64..500,
        commands in proptest::collection::vec(0u8..3, 1..10),
        metric in 0usize..3,
        scale in 1.5f64..8.0,
    ) {
        let model = model();
        let spec = Arc::new(testkit::random_query(4, seed));
        let schedule = ResolutionSchedule::linear(4, 1.05, 0.5);
        let optimizer = IamaOptimizer::new(spec.clone(), model.clone(), schedule);
        let mut session = Session::new(optimizer);
        let mut view = SessionView::default();
        // Establish a reference point for bound placement.
        let first = session.apply(SessionCommand::Refine).expect("live session");
        view.fold(&first).expect("ordered stream");
        prop_assume!(!view.frontier.is_empty());
        let anchor = view.frontier.min_by_metric(metric).unwrap().cost[metric];
        for cmd in commands {
            let command = match cmd {
                0 => SessionCommand::Refine,
                1 => SessionCommand::SetBounds(
                    Bounds::unbounded(3).with_limit(metric, anchor * scale),
                ),
                _ => SessionCommand::SetBounds(Bounds::unbounded(3)),
            };
            let event = session.apply(command).expect("well-formed command");
            view.fold(&event).expect("ordered stream");
            // Every visualized point respects the session's bounds (the
            // command applies before the invocation, so the event's
            // frontier is already focused).
            for p in &view.frontier.points {
                prop_assert!(session.bounds().respects(&p.cost));
                prop_assert!(p.cost.is_finite());
            }
            // The delta-reassembled view matches the session exactly.
            prop_assert!(view.frontier.bits_eq(session.frontier()));
        }
    }
}
