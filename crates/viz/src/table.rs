//! Fixed-width text tables for experiment output.

/// A simple right-aligned text table builder.
///
/// ```
/// use moqo_viz::TextTable;
/// let mut t = TextTable::new(vec!["tables", "IAMA", "memoryless"]);
/// t.row(vec!["2".into(), "0.01".into(), "0.02".into()]);
/// let s = t.render();
/// assert!(s.contains("tables"));
/// ```
#[derive(Clone, Debug)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Self {
        Self {
            headers: headers.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are dropped.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a header separator line.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().take(cols).enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>w$}", w = w));
            }
            line
        };
        out.push_str(&render_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (for EXPERIMENTS.md data capture).
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a", "bbbb"]);
        t.row(vec!["123".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("bbbb"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].contains("123"));
    }

    #[test]
    fn short_rows_render_empty_cells() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["x".into()]);
        let s = t.render();
        assert!(s.contains('x'));
    }

    #[test]
    fn csv_output() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }
}
