//! A small, fast, non-cryptographic hasher (FxHash-style multiply-xor).
//!
//! The optimizer hashes millions of small integer keys (plan ids, table
//! sets, pair keys); SipHash's HashDoS protection is unnecessary here and
//! measurably slow for such keys. Implemented in-repo to keep the
//! dependency set minimal (see DESIGN.md §7).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit multiply-rotate hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.mix(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(u64::MAX, "max");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.get(&u64::MAX), Some(&"max"));
        assert_eq!(m.get(&2), None);

        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
        assert!(s.contains(&(1, 2)));
    }

    #[test]
    fn hash_is_deterministic_and_spreads() {
        let hash = |v: u64| {
            let mut h = FxHasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_eq!(hash(42), hash(42));
        // Nearby keys should land in different buckets for small tables.
        let buckets: std::collections::HashSet<u64> =
            (0..1000u64).map(|v| hash(v) % 1024).collect();
        assert!(buckets.len() > 500, "poor spread: {}", buckets.len());
    }

    #[test]
    fn byte_writes_cover_remainders() {
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]); // 8-byte chunk + 1 remainder
        let a = h.finish();
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_ne!(a, h2.finish());
    }
}
