//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! Provides the surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::{iter, iter_with_setup}`, and the `criterion_group!` /
//! `criterion_main!` macros — with a deliberately simple measurement loop:
//! a fixed warm-up iteration followed by `sample_size` timed iterations,
//! reporting mean / min / max to stdout. No statistics, plots, or saved
//! baselines; the point is that `cargo bench` compiles and produces
//! comparable wall-clock numbers without network access.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbench group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_bench(name, 10, &mut f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_bench(&id.into().0, self.sample_size, &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_bench(&id.0, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark (function name plus parameter).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self(format!("{}/{}", function_name.into(), parameter))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up iteration.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh untimed `setup` output each iteration.
    pub fn iter_with_setup<S, O, Setup: FnMut() -> S, R: FnMut(S) -> O>(
        &mut self,
        mut setup: Setup,
        mut routine: R,
    ) {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {name}: no samples recorded");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().unwrap();
    let max = bencher.samples.iter().max().unwrap();
    println!(
        "  {name}: mean {mean:?}  min {min:?}  max {max:?}  ({} samples)",
        bencher.samples.len()
    );
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function(BenchmarkId::new("count", 1), |b| {
            b.iter(|| runs += 1);
        });
        group.bench_with_input(BenchmarkId::new("sum", "x"), &21u32, |b, &x| {
            b.iter_with_setup(|| x, |v| v * 2);
        });
        group.finish();
        assert!(runs >= 3);
    }
}
