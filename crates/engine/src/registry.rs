//! Server-side cost-model registry.
//!
//! Cost models are code, not data: a wire-serialized
//! [`SessionRequest`](moqo_core::SessionRequest) and a persisted frontier
//! snapshot both carry only the model's
//! [identity](moqo_costmodel::CostModel::identity). A serving deployment
//! therefore keeps a [`ModelRegistry`] of every model it is willing to run
//! — the deployment default plus any per-session overrides — and resolves
//! identities through the [`ModelResolver`] hook that the wire codec
//! consumes. An identity that was never registered stays unresolvable: a
//! remote client cannot make a server optimize under cost semantics the
//! operator did not deploy.

use moqo_costmodel::{CostModel, ModelResolver, SharedCostModel};
use std::collections::HashMap;
use std::sync::RwLock;

/// Identity-keyed set of deployable cost models (thread-safe; shared by
/// the network front's connection workers).
#[derive(Default)]
pub struct ModelRegistry {
    models: RwLock<HashMap<u64, SharedCostModel>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry seeded with the deployment's default model.
    pub fn with_default(model: SharedCostModel) -> Self {
        let registry = Self::new();
        registry.register(model);
        registry
    }

    /// Registers a model, returning its identity. Registering a model
    /// whose identity is already present replaces it (the identity
    /// contract says the two instances are behaviorally identical).
    pub fn register(&self, model: SharedCostModel) -> u64 {
        let identity = model.identity();
        self.models
            .write()
            .expect("model registry poisoned")
            .insert(identity, model);
        identity
    }

    /// The registered model with this identity, if any.
    pub fn resolve(&self, identity: u64) -> Option<SharedCostModel> {
        self.models
            .read()
            .expect("model registry poisoned")
            .get(&identity)
            .cloned()
    }

    /// Identities of every registered model.
    pub fn identities(&self) -> Vec<u64> {
        self.models
            .read()
            .expect("model registry poisoned")
            .keys()
            .copied()
            .collect()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.read().expect("model registry poisoned").len()
    }

    /// True if no model was registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl ModelResolver for ModelRegistry {
    fn resolve_model(&self, identity: u64) -> Option<SharedCostModel> {
        self.resolve(identity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_costmodel::{MetricSet, StandardCostModel, StandardCostModelConfig};
    use std::sync::Arc;

    #[test]
    fn registry_resolves_exactly_what_was_registered() {
        let default: SharedCostModel = Arc::new(StandardCostModel::paper_metrics());
        let tweaked: SharedCostModel = Arc::new(StandardCostModel::new(
            MetricSet::paper(),
            StandardCostModelConfig {
                dops: vec![1, 2],
                ..StandardCostModelConfig::default()
            },
        ));
        let registry = ModelRegistry::with_default(default.clone());
        assert_eq!(registry.len(), 1);
        let id = registry.register(tweaked.clone());
        assert_eq!(registry.len(), 2);
        assert_ne!(default.identity(), id, "distinct configs, distinct ids");
        assert!(registry.resolve(default.identity()).is_some());
        assert_eq!(
            registry.resolve_model(id).map(|m| m.identity()),
            Some(tweaked.identity())
        );
        assert!(registry.resolve(id ^ 1).is_none());
    }
}
